"""Algorithm-hardware co-design search (paper Section V-C / Fig. 18).

Runs the exhaustive joint search over FABNet hyperparameters and
accelerator parallelism for the LRA-Text workload on a VCU128-class
device, prints the Pareto front, and verifies a handful of design points
with *real* training via the TrainedAccuracyOracle (the paper's full
search trains every point — ~10 GPU-hours; the surrogate oracle makes the
full grid instant, and the trained oracle spot-checks its ordering).

Run:  python examples/codesign_search.py
"""

from repro.codesign import (
    DesignSpace,
    SurrogateAccuracyOracle,
    TrainedAccuracyOracle,
    design_space_spread,
    run_codesign,
)
from repro.hardware.perf import WorkloadSpec


def main() -> None:
    print("== Full-grid search with the surrogate accuracy oracle ==")
    space = DesignSpace()
    oracle = SurrogateAccuracyOracle(task="text")
    result = run_codesign(oracle, seq_len=4096, space=space, max_accuracy_loss=0.015)
    print(f"evaluated {len(result.points)} design points; "
          f"Pareto front has {len(result.pareto)} points")
    print(f"{'Dhid':>5s} {'Rffn':>4s} {'Ntot':>4s} {'NAB':>3s} "
          f"{'Pbe':>4s} {'Pbu':>3s} {'acc':>6s} {'ms':>9s}")
    for p in result.pareto:
        print(f"{p.spec.d_hidden:>5d} {p.spec.r_ffn:>4d} {p.spec.n_total:>4d} "
              f"{p.spec.n_abfly:>3d} {p.config.pbe:>4d} {p.config.pbu:>3d} "
              f"{p.accuracy:>6.3f} {p.latency_ms:>9.3f}")
    sel = result.selected
    print(f"\nselected (accuracy loss <= {result.max_accuracy_loss:.3f} vs "
          f"Transformer {result.reference_accuracy:.3f}):")
    print(f"  FABNet {{Dhid={sel.spec.d_hidden}, Rffn={sel.spec.r_ffn}, "
          f"Ntotal={sel.spec.n_total}, NABfly={sel.spec.n_abfly}}}  "
          f"HW {{Pbe={sel.config.pbe}, Pbu={sel.config.pbu}, "
          f"Pqk={sel.config.pqk}, Psv={sel.config.psv}}}")
    print(f"  accuracy={sel.accuracy:.3f}  latency={sel.latency_ms:.3f} ms  "
          f"DSPs={sel.dsps}")
    spread = design_space_spread(result)
    print(f"  spread: +{100 * spread['accuracy_gain']:.1f}% accuracy in the same "
          f"latency range; {spread['speedup']:.0f}x faster in the same accuracy range")

    print("\n== Spot-check: real training on three design points ==")
    trained = TrainedAccuracyOracle(task="text", seq_len=64, n_samples=240, epochs=3)
    for d_hidden, n_total in ((32, 1), (64, 2), (128, 2)):
        spec = WorkloadSpec(seq_len=64, d_hidden=d_hidden, r_ffn=2,
                            n_total=n_total, n_abfly=0, n_heads=4)
        acc = trained.accuracy(spec)
        print(f"  Dhid={d_hidden:<4d} Ntotal={n_total}: trained accuracy {acc:.3f}")


if __name__ == "__main__":
    main()
