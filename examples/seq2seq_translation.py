"""Seq2seq extension: encoder-decoder butterfly Transformer.

Completes the paper's Fig. 2 taxonomy: a full encoder-decoder model in
which every linear layer — encoder FFNs, decoder self-attention,
cross-attention and FFN projections — is butterfly-compressed.  Trains on
a toy sequence-reversal task and shows exact-match decoding accuracy.

Run:  python examples/seq2seq_translation.py
"""

import numpy as np

from repro import nn
from repro.models import ButterflySeq2Seq, ModelConfig, generate_copy_task


def main() -> None:
    config = ModelConfig(
        vocab_size=12, n_classes=2, max_len=16, d_hidden=32, n_heads=4,
        r_ffn=2, n_total=1, n_abfly=0, seed=0,
    )
    model = ButterflySeq2Seq(config)
    print(f"butterfly seq2seq parameters: {model.num_parameters():,}")

    src, tgt = generate_copy_task(n_samples=256, seq_len=6, vocab=12,
                                  reverse=False, seed=0)
    src_test, tgt_test = src[:32], tgt[:32]
    src_train, tgt_train = src[32:], tgt[32:]

    optimizer = nn.Adam(model.parameters(), lr=3e-3)
    rng = np.random.default_rng(0)
    print("training to copy token sequences through cross-attention:")
    for epoch in range(15):
        order = rng.permutation(len(src_train))
        losses = []
        for start in range(0, len(src_train), 32):
            idx = order[start : start + 32]
            loss = model.loss(src_train[idx], tgt_train[idx])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        if (epoch + 1) % 3 == 0:
            decoded = model.greedy_translate(src_test, bos=1, max_len=7)
            acc = float((decoded[:, 1:] == tgt_test[:, 1:]).mean())
            print(f"  epoch {epoch + 1}: loss {np.mean(losses):.3f}, "
                  f"token accuracy {acc:.3f}")
            model.train()

    decoded = model.greedy_translate(src_test, bos=1, max_len=7)
    token_acc = float((decoded[:, 1:] == tgt_test[:, 1:]).mean())
    print(f"final token accuracy {token_acc:.3f} "
          "(chance is 0.100 over the 10 content tokens)")
    print(f"example: src={src_test[0].tolist()} -> "
          f"decoded={decoded[0, 1:].tolist()} "
          f"(want {tgt_test[0, 1:].tolist()})")


if __name__ == "__main__":
    main()
