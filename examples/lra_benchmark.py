"""Compare Transformer, FNet and FABNet across synthetic LRA tasks.

Reproduces the *structure* of the paper's Table III at laptop scale:
train all three models on each synthetic Long-Range-Arena task and report
test accuracy side by side, plus each model's parameter count — showing
that FABNet matches the dense baselines with a fraction of the weights.

Run:  python examples/lra_benchmark.py            (all 5 tasks, ~minutes)
      python examples/lra_benchmark.py text image (subset)
"""

import sys

from repro.data import load_task
from repro.models import (
    DualEncoderClassifier,
    ModelConfig,
    build_fabnet,
    build_fnet,
    build_transformer,
)
from repro.training import train_model_on_task

TASK_SETTINGS = {
    "listops": dict(n_samples=400, seq_len=64),
    "text": dict(n_samples=320, seq_len=64),
    "retrieval": dict(n_samples=320, seq_len=32),
    "image": dict(n_samples=400, grid=8),
    "pathfinder": dict(n_samples=400, grid=8),
}

BUILDERS = {
    "transformer": build_transformer,
    "fnet": build_fnet,
    "fabnet": build_fabnet,
}


def run_task(task: str) -> dict:
    dataset = load_task(task, seed=0, **TASK_SETTINGS[task])
    scores = {}
    for name, builder in BUILDERS.items():
        config = ModelConfig(
            vocab_size=dataset.vocab_size,
            n_classes=dataset.n_classes,
            max_len=dataset.seq_len,
            d_hidden=32,
            n_heads=4,
            r_ffn=2,
            n_total=2,
            n_abfly=1 if name == "fabnet" else 0,
            seed=0,
        )
        model = builder(config)
        if dataset.paired:
            model = DualEncoderClassifier(model)
        result = train_model_on_task(model, dataset, epochs=5, lr=3e-3, seed=0)
        scores[name] = {
            "accuracy": result.best_test_accuracy,
            "params": model.num_parameters(),
        }
        print(f"  {name:12s} acc={result.best_test_accuracy:.3f} "
              f"params={model.num_parameters():,}")
    return scores


def main() -> None:
    tasks = sys.argv[1:] or list(TASK_SETTINGS)
    results = {}
    for task in tasks:
        print(f"== {task} ==")
        results[task] = run_task(task)
    print("\nSummary (test accuracy):")
    header = f"{'task':12s}" + "".join(f"{m:>14s}" for m in BUILDERS)
    print(header)
    for task, scores in results.items():
        row = f"{task:12s}" + "".join(
            f"{scores[m]['accuracy']:>14.3f}" for m in BUILDERS
        )
        print(row)


if __name__ == "__main__":
    main()
