"""Tour of the hardware models: functional engine, memory system, and
the analytical latency/resource/power estimators.

Demonstrates the paper's core hardware claims at value level:

1. the *same* adaptable Butterfly Engine executes an FFT and a trainable
   butterfly linear transform (unified datapath, Fig. 6/7) with identical
   multiplier usage;
2. the S2P permuted data layout eliminates the bank conflicts that
   row-/column-major layouts suffer (Fig. 8-10);
3. the cycle-level model shows where a deployment is compute- vs
   bandwidth-bound (Fig. 21) and what it costs in DSP/BRAM/power
   (Tables VI/VII).

Run:  python examples/hardware_simulation.py
"""

import numpy as np

from repro.butterfly import ButterflyMatrix
from repro.hardware import (
    AcceleratorConfig,
    ButterflyPerformanceModel,
    WorkloadSpec,
    estimate_power,
    estimate_resources,
    latency_vs_bandwidth,
)
from repro.hardware.functional import ButterflyEngine, stage_read_cycles
from repro.butterfly.factor import stage_halves


def unified_engine_demo() -> None:
    print("== 1. Unified engine: FFT and butterfly on the same datapath ==")
    rng = np.random.default_rng(0)
    engine = ButterflyEngine(pbu=4)

    x = rng.normal(size=64)
    matrix = ButterflyMatrix.random(64, rng)
    hw = engine.run_butterfly(x, matrix)
    ref = matrix.apply(x)
    bfly_stats = engine.last_stats
    print(f"  butterfly: max|err|={np.abs(hw - ref).max():.2e}  "
          f"mults={bfly_stats.mult_ops} conflicts={bfly_stats.bank_conflicts}")

    xc = rng.normal(size=64) + 1j * rng.normal(size=64)
    hw_fft = engine.run_fft(xc)
    fft_stats = engine.last_stats
    print(f"  fft:       max|err|={np.abs(hw_fft - np.fft.fft(xc)).max():.2e}  "
          f"mults={fft_stats.mult_ops} conflicts={fft_stats.bank_conflicts}")
    print("  same multiplier count in both modes: "
          f"{bfly_stats.mult_ops == fft_stats.mult_ops}")


def memory_layout_demo() -> None:
    print("\n== 2. Bank conflicts: butterfly layout vs row/column major ==")
    n, nbanks = 64, 8
    print(f"  n={n}, banks={nbanks}; read cycles per stage (optimum {n // nbanks}):")
    print(f"  {'stage half':>10s} {'butterfly':>10s} {'column':>8s} {'row':>6s}")
    for half in stage_halves(n):
        cycles = {
            layout: stage_read_cycles(n, half, nbanks, layout)
            for layout in ("butterfly", "column_major", "row_major")
        }
        print(f"  {half:>10d} {cycles['butterfly']:>10d} "
              f"{cycles['column_major']:>8d} {cycles['row_major']:>6d}")


def deployment_demo() -> None:
    print("\n== 3. Cycle-level latency, bandwidth sensitivity, cost ==")
    spec = WorkloadSpec(seq_len=1024, d_hidden=1024, r_ffn=4, n_total=24, n_abfly=0)
    print("  FABNet-Large, seq 1024; latency vs off-chip bandwidth:")
    bandwidths = [6, 12, 25, 50, 100, 200]
    for n_bes in (16, 64, 128):
        lats = latency_vs_bandwidth(spec, n_bes, bandwidths)
        formatted = " ".join(f"{v:8.1f}" for v in lats)
        print(f"    {n_bes:3d} BEs: {formatted}  ms @ {bandwidths} GB/s")

    config = AcceleratorConfig(pbe=64, pbu=4)
    report = ButterflyPerformanceModel(config).model_latency(spec)
    print(f"  at 450 GB/s (HBM): {report.latency_ms:.2f} ms "
          f"({report.total_cycles:,.0f} cycles)")
    resources = estimate_resources(config)
    power = estimate_power(config, resources)
    print(f"  resources: {resources.dsps} DSPs, {resources.brams} BRAMs, "
          f"{resources.luts:,} LUTs")
    print(f"  power: {power.total:.2f} W "
          f"(dynamic {power.dynamic:.2f} W, static {power.static:.2f} W)")


def main() -> None:
    unified_engine_demo()
    memory_layout_demo()
    deployment_demo()


if __name__ == "__main__":
    main()
