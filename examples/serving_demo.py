"""Serving subsystem demo: concurrent requests through ``ServingEngine``.

The ROADMAP's north star is a system serving heavy traffic; this example
shows the inference runtime doing exactly that at toy scale:

1. train a small butterfly decoder LM on the synthetic character grammar;
2. submit a burst of concurrent requests with mixed sampling parameters
   (greedy, temperature, top-k, nucleus) and a deliberately small batch
   cap, so the continuous-batching scheduler queues, admits, compacts
   and interleaves prefill with decode;
3. stream one request token-by-token while the rest decode alongside it;
4. report per-request TTFT/latency and the aggregate throughput metrics.

Run:  python examples/serving_demo.py
"""

import numpy as np

from repro import nn
from repro.data.charlm import VOCAB_SIZE, decode_tokens, encode_text, generate_charlm
from repro.models import ModelConfig, build_butterfly_decoder
from repro.serving import CostModelAdmission, SamplingParams, ServingEngine


def train_tiny_lm() -> nn.Module:
    config = ModelConfig(
        vocab_size=VOCAB_SIZE, n_classes=2, max_len=48, d_hidden=64,
        n_heads=4, r_ffn=2, n_total=2, seed=0,
    )
    model = build_butterfly_decoder(config)
    train, _ = generate_charlm(n_samples=120, seq_len=48, seed=0)
    optimizer = nn.Adam(model.parameters(), lr=3e-3)
    rng = np.random.default_rng(0)
    for epoch in range(3):
        order = rng.permutation(len(train))
        losses = []
        for start in range(0, len(train), 16):
            batch = train[order[start:start + 16]]
            loss = model.loss(batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        print(f"  epoch {epoch + 1}: train loss {np.mean(losses):.3f}")
    return model.eval()


def main() -> None:
    print("training a tiny butterfly decoder on the synthetic grammar:")
    model = train_tiny_lm()

    admission = CostModelAdmission(model.config, step_budget_ms=1.0)
    print("cost-model admission: modeled decode step at batch 4 = "
          f"{admission.estimate_step_ms(4) * 1e3:.1f} us/step "
          f"(budget admits up to batch {admission.max_batch_within_budget(64)})")

    engine = ServingEngine(model, max_batch_size=4, admission=admission, seed=0)
    workloads = [
        ("cat ", SamplingParams(max_new_tokens=20, temperature=0.0)),
        ("dog ", SamplingParams(max_new_tokens=20, temperature=0.7, seed=1)),
        ("bird ", SamplingParams(max_new_tokens=20, temperature=0.9, top_k=8,
                                 seed=2)),
        ("fox ", SamplingParams(max_new_tokens=20, temperature=0.9, top_p=0.9,
                                seed=3)),
        ("ant ", SamplingParams(max_new_tokens=20, temperature=0.8, top_k=12,
                                seed=4)),
        ("cat sees ", SamplingParams(max_new_tokens=14, temperature=0.6,
                                     seed=5)),
    ]
    ids = {}
    for text, params in workloads:
        ids[engine.submit(encode_text(text), params)] = text

    # Stream the first request live; the other five decode in the same
    # batched steps (continuous batching, not one-request-at-a-time).
    first = next(iter(ids))
    print(f"\nstreaming request {first} ({ids[first]!r}):")
    streamed = [token for token in engine.stream(first)]
    print(f"  -> {decode_tokens(np.array(streamed))!r}")

    results = engine.run()
    print("\nall requests:")
    for rid, text in ids.items():
        result = results[rid]
        metric = engine.metrics.requests[rid].summary()
        print(f"  [{rid}] {text!r:12s} -> "
              f"{decode_tokens(np.array(result.tokens))!r:24s} "
              f"({result.finish_reason}, ttft {metric['ttft_ms']:.1f} ms)")

    agg = engine.metrics.aggregate()
    print(f"\naggregate: {agg['completed']}/{agg['requests']} requests, "
          f"{agg['total_new_tokens']} tokens in {agg['steps']} steps, "
          f"{agg['tokens_per_s']:.0f} tokens/s, "
          f"mean ttft {agg['mean_ttft_ms']:.1f} ms, "
          f"max queue depth {agg['max_queue_depth']}, "
          f"mean batch {agg['mean_batch_size']:.2f}")


if __name__ == "__main__":
    main()
