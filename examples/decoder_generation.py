"""Decoder extension: a GPT-style butterfly language model.

The paper's hardware section notes the design "is flexible and applicable
to decoders too" — a decoder block is the same butterfly attention + FFN
pipeline with a causal score mask.  This example makes that concrete:

1. train a small butterfly decoder LM on a synthetic character grammar;
2. sample text from it and watch the grammar emerge;
3. compare parameter counts against the dense decoder baseline;
4. verify the fp16 datapath leaves generation unaffected.

Run:  python examples/decoder_generation.py
"""

import numpy as np

from repro import nn
from repro.data.charlm import (
    VOCAB_SIZE,
    decode_tokens,
    encode_text,
    generate_charlm,
)
from repro.hardware import accuracy_under_fp16
from repro.models import ModelConfig, build_butterfly_decoder, build_dense_decoder


def main() -> None:
    config = ModelConfig(
        vocab_size=VOCAB_SIZE, n_classes=2, max_len=48, d_hidden=64,
        n_heads=4, r_ffn=2, n_total=2, seed=0,
    )
    butterfly_lm = build_butterfly_decoder(config)
    dense_lm = build_dense_decoder(config)
    print(f"butterfly decoder: {butterfly_lm.num_parameters():,} params; "
          f"dense decoder: {dense_lm.num_parameters():,} params "
          f"(x{dense_lm.num_parameters() / butterfly_lm.num_parameters():.1f} larger)")

    train, test = generate_charlm(n_samples=160, seq_len=48, seed=0)
    optimizer = nn.Adam(butterfly_lm.parameters(), lr=3e-3)
    print("training on the synthetic grammar ('cat sees food ...'):")
    rng = np.random.default_rng(0)
    for epoch in range(4):
        order = rng.permutation(len(train))
        losses = []
        for start in range(0, len(train), 16):
            batch = train[order[start : start + 16]]
            loss = butterfly_lm.loss(batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        with nn.no_grad():
            val = butterfly_lm.loss(test).item()
        print(f"  epoch {epoch + 1}: train loss {np.mean(losses):.3f}, "
              f"val loss {val:.3f}")

    prompt = encode_text("cat ")[None, :]
    sample = butterfly_lm.generate(prompt, max_new_tokens=24)
    print(f"greedy sample:  {decode_tokens(sample[0])!r}")
    sample = butterfly_lm.generate(prompt, max_new_tokens=24, temperature=0.8,
                                   rng=np.random.default_rng(1))
    print(f"sampled (T=0.8): {decode_tokens(sample[0])!r}")

    # fp16 weights (what the accelerator buffers hold) barely move logits:
    # token-level next-token accuracy is unchanged.
    tokens = test[:16, :16]
    report = accuracy_under_fp16(
        butterfly_lm.eval(), tokens[:, :-1], tokens[:, 1:]
    )
    print(f"fp16 max logit error: {report['max_logit_error']:.2e}; "
          f"token accuracy delta: {report['accuracy_delta']:+.4f}")


if __name__ == "__main__":
    main()
