"""Quickstart: train FABNet on a synthetic LRA task and run it on the
simulated butterfly accelerator.

Walks the full pipeline of the paper in under a minute on a laptop CPU:

1. generate a synthetic Long-Range-Arena Text task;
2. build FABNet (Fourier mixing + butterfly FFNs) and train it;
3. execute the trained model on the functional accelerator simulator and
   check it matches the software forward pass;
4. estimate the end-to-end latency, resources and power of a deployment
   configuration with the analytical models.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.codesign import SurrogateAccuracyOracle  # noqa: F401  (public API tour)
from repro.data import load_task
from repro.hardware import (
    AcceleratorConfig,
    ButterflyPerformanceModel,
    WorkloadSpec,
    estimate_power,
    estimate_resources,
)
from repro.hardware.functional import ButterflyAccelerator
from repro.models import ModelConfig, build_fabnet
from repro.training import train_model_on_task


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Synthetic LRA-Text (byte-level classification, long sequences).
    # ------------------------------------------------------------------
    dataset = load_task("text", n_samples=320, seq_len=64, seed=0)
    print(f"task={dataset.name} seq_len={dataset.seq_len} "
          f"train={dataset.n_train} test={dataset.n_test}")

    # ------------------------------------------------------------------
    # 2. FABNet: 2 FBfly blocks (Fourier mixing + butterfly FFN).
    # ------------------------------------------------------------------
    config = ModelConfig(
        vocab_size=dataset.vocab_size,
        n_classes=dataset.n_classes,
        max_len=dataset.seq_len,
        d_hidden=32,
        n_heads=4,
        r_ffn=2,
        n_total=2,
        n_abfly=0,
        seed=0,
    )
    model = build_fabnet(config)
    print(f"FABNet parameters: {model.num_parameters():,}")
    result = train_model_on_task(model, dataset, epochs=4, lr=3e-3,
                                 log=lambda msg: print("  " + msg))
    print(f"final test accuracy: {result.final_test_accuracy:.3f}")

    # ------------------------------------------------------------------
    # 3. Run the trained model on the functional accelerator simulator.
    # ------------------------------------------------------------------
    model.eval()
    tokens = dataset.x_test[:4]
    accelerator = ButterflyAccelerator(AcceleratorConfig(pbe=1, pbu=4))
    hw_logits = accelerator.run_encoder(model, tokens)
    sw_logits = model(tokens).data
    err = float(np.abs(hw_logits - sw_logits).max())
    print(f"accelerator vs software max |err| = {err:.2e} "
          f"(bank conflicts: {accelerator.trace.bank_conflicts})")

    # ------------------------------------------------------------------
    # 4. Analytical deployment estimate on a VCU128-class device.
    # ------------------------------------------------------------------
    deploy = AcceleratorConfig(pbe=64, pbu=4, bandwidth_gbs=450.0)
    spec = WorkloadSpec(seq_len=1024, d_hidden=256, r_ffn=4, n_total=2, n_abfly=0)
    latency = ButterflyPerformanceModel(deploy).model_latency(spec)
    resources = estimate_resources(deploy)
    power = estimate_power(deploy, resources)
    print(f"deployment: latency={latency.latency_ms:.3f} ms, "
          f"DSPs={resources.dsps}, BRAMs={resources.brams}, "
          f"power={power.total:.1f} W")


if __name__ == "__main__":
    main()
