"""Synthetic character-level language-modeling corpus for the decoder.

Generates text from a small procedural grammar (subject-verb-object
sentences over a fixed word inventory) so a language model has real
structure to learn: word-internal character transitions, word boundaries
and short-range syntax.  Used by the decoder example and tests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

PAD = 0
CHAR_BASE = 1  # 'a' maps to CHAR_BASE, space to CHAR_BASE + 26
N_SYMBOLS = 27
VOCAB_SIZE = CHAR_BASE + N_SYMBOLS  # 28

_SUBJECTS = ("cat", "dog", "bird", "fox", "ant")
_VERBS = ("sees", "likes", "eats", "finds")
_OBJECTS = ("food", "toys", "bugs", "seeds", "nests")


def encode_text(text: str) -> np.ndarray:
    """Map lowercase letters and spaces to token ids."""
    out = np.empty(len(text), dtype=np.int64)
    for i, ch in enumerate(text):
        if ch == " ":
            out[i] = CHAR_BASE + 26
        elif "a" <= ch <= "z":
            out[i] = CHAR_BASE + ord(ch) - ord("a")
        else:
            raise ValueError(f"unsupported character {ch!r}")
    return out


def decode_tokens(tokens: np.ndarray) -> str:
    """Inverse of :func:`encode_text`; PAD renders as '_'."""
    chars: List[str] = []
    for t in np.asarray(tokens).reshape(-1):
        if t == PAD:
            chars.append("_")
        elif t == CHAR_BASE + 26:
            chars.append(" ")
        else:
            chars.append(chr(ord("a") + int(t) - CHAR_BASE))
    return "".join(chars)


def generate_sentences(rng: np.random.Generator, n_sentences: int) -> str:
    """Sample 'subject verb object' sentences joined by spaces."""
    parts = []
    for _ in range(n_sentences):
        parts.append(
            f"{rng.choice(_SUBJECTS)} {rng.choice(_VERBS)} {rng.choice(_OBJECTS)}"
        )
    return " ".join(parts)


def generate_charlm(
    n_samples: int = 256, seq_len: int = 64, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate (train_tokens, test_tokens) windows of grammar text."""
    rng = np.random.default_rng(seed)
    windows = np.zeros((n_samples, seq_len), dtype=np.int64)
    for i in range(n_samples):
        text = generate_sentences(rng, n_sentences=seq_len // 8 + 2)
        tokens = encode_text(text)[:seq_len]
        windows[i, : len(tokens)] = tokens
    n_test = max(1, n_samples // 5)
    return windows[n_test:], windows[:n_test]
