"""Registry over the five synthetic Long-Range-Arena tasks."""

from __future__ import annotations

from typing import Callable, Dict

from .base import TaskDataset
from .image import generate_image
from .listops import generate_listops
from .pathfinder import generate_pathfinder
from .retrieval import generate_retrieval
from .text import generate_text

TASK_GENERATORS: Dict[str, Callable[..., TaskDataset]] = {
    "listops": generate_listops,
    "text": generate_text,
    "retrieval": generate_retrieval,
    "image": generate_image,
    "pathfinder": generate_pathfinder,
}

LRA_TASKS = tuple(TASK_GENERATORS)

# Sequence lengths of the *real* LRA tasks (used by the analytical
# hardware/FLOPs models, where no training is involved).
LRA_FULL_SEQ_LEN = {
    "listops": 2048,
    "text": 4096,
    "retrieval": 4096,
    "image": 1024,
    "pathfinder": 1024,
}


def load_task(name: str, **kwargs) -> TaskDataset:
    """Generate a synthetic LRA task by name.

    Keyword arguments are forwarded to the task generator (``n_samples``,
    ``seq_len``/``grid``, ``seed`` ...).
    """
    try:
        generator = TASK_GENERATORS[name]
    except KeyError:
        raise ValueError(f"unknown LRA task {name!r}; choose from {sorted(TASK_GENERATORS)}")
    return generator(**kwargs)
