"""Synthetic LRA-Pathfinder: long-range spatial connectivity on pixels.

Pathfinder asks whether two marked endpoints are connected by a dashed
path in an image.  We draw two non-intersecting random-walk paths on a
grid, place endpoint markers either on the same path (positive) or on
different paths (negative), render to pixel intensities and flatten.
The decision depends on following a contour across the whole flattened
sequence — the long-range spatial dependency the task is named for.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import TaskDataset, train_test_split

PATH_LEVEL = 1
MARKER_LEVEL = 2
VOCAB_SIZE = 3  # background / path / endpoint marker


def _random_walk(
    rng: np.random.Generator, grid: int, length: int, occupied: np.ndarray
) -> List[Tuple[int, int]]:
    """Self-avoiding-ish walk that stays off ``occupied`` cells.

    Always returns a non-empty path: after 20 random restarts the best
    (longest) attempt is returned, and if every random start was blocked,
    the first free cell is used as a length-1 path.
    """
    best: List[Tuple[int, int]] = []
    for _ in range(20):  # restart attempts
        r = int(rng.integers(1, grid - 1))
        c = int(rng.integers(1, grid - 1))
        if occupied[r, c]:
            continue
        path = [(r, c)]
        taken = {(r, c)}
        for _ in range(length - 1):
            moves = [(r + dr, c + dc) for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0))]
            rng.shuffle(moves)
            advanced = False
            for nr, nc in moves:
                if 0 <= nr < grid and 0 <= nc < grid and (nr, nc) not in taken \
                        and not occupied[nr, nc]:
                    r, c = nr, nc
                    path.append((r, c))
                    taken.add((r, c))
                    advanced = True
                    break
            if not advanced:
                break
        if len(path) >= max(4, length // 2):
            return path
        if len(path) > len(best):
            best = path
    if not best:
        free = np.argwhere(~occupied)
        if len(free) == 0:
            raise RuntimeError("no free cell left for a path; grid too small")
        best = [tuple(free[int(rng.integers(0, len(free)))])]
    return best


def generate_pathfinder(
    n_samples: int = 512,
    grid: int = 16,
    path_length: int = 24,
    seed: int = 0,
    test_fraction: float = 0.25,
) -> TaskDataset:
    """Generate connectivity-labeled pixel sequences; seq_len = grid * grid."""
    rng = np.random.default_rng(seed)
    seq_len = grid * grid
    xs = np.zeros((n_samples, seq_len), dtype=np.int64)
    ys = rng.integers(0, 2, size=n_samples).astype(np.int64)
    length = min(path_length, grid * grid // 4)
    for i in range(n_samples):
        canvas = np.zeros((grid, grid), dtype=np.int64)
        occupied = np.zeros((grid, grid), dtype=bool)
        path_a = _random_walk(rng, grid, length, occupied)
        while len(path_a) < 2:  # need two distinct endpoint cells
            path_a = _random_walk(rng, grid, length, occupied)
        for r, c in path_a:
            occupied[r, c] = True
        # Keep a 1-cell moat around path A so the two paths never touch.
        moat = occupied.copy()
        for r, c in path_a:
            moat[max(0, r - 1) : r + 2, max(0, c - 1) : c + 2] = True
        path_b = _random_walk(rng, grid, length, moat)
        for r, c in path_a + path_b:
            canvas[r, c] = PATH_LEVEL
        if ys[i] == 1:  # endpoints on the same path -> connected
            canvas[path_a[0]] = MARKER_LEVEL
            canvas[path_a[-1]] = MARKER_LEVEL
        else:  # endpoints on different paths -> not connected
            canvas[path_a[0]] = MARKER_LEVEL
            canvas[path_b[-1]] = MARKER_LEVEL
        xs[i] = canvas.reshape(-1)
    x_train, y_train, x_test, y_test = train_test_split(xs, ys, test_fraction, rng)
    return TaskDataset(
        name="pathfinder",
        vocab_size=VOCAB_SIZE,
        n_classes=2,
        seq_len=seq_len,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
    )
