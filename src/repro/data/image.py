"""Synthetic LRA-Image: classify images presented as raw pixel sequences.

LRA-Image is grayscale CIFAR-10 flattened to 1024 pixel tokens.  We
substitute ten procedurally generated texture/shape classes rendered on a
``grid x grid`` canvas, quantized to ``n_levels`` intensity tokens and
flattened row-major.  Recognizing a class requires integrating spatial
structure that is far apart in the flattened sequence (e.g. vertical
stripes place correlated pixels ``grid`` positions apart), which is the
property the LRA task isolates.
"""

from __future__ import annotations

import numpy as np

from .base import TaskDataset, train_test_split

N_CLASSES = 10


def _render_class(rng: np.random.Generator, label: int, grid: int) -> np.ndarray:
    """Render one float image in [0, 1] for the given class label."""
    y, x = np.mgrid[0:grid, 0:grid]
    phase = int(rng.integers(0, 4))
    period = int(rng.integers(3, 6))
    img = np.zeros((grid, grid))
    if label == 0:  # horizontal stripes
        img = ((y + phase) // period) % 2
    elif label == 1:  # vertical stripes
        img = ((x + phase) // period) % 2
    elif label == 2:  # diagonal stripes
        img = ((x + y + phase) // period) % 2
    elif label == 3:  # checkerboard
        img = (((x + phase) // period) + ((y + phase) // period)) % 2
    elif label == 4:  # centered disc
        cx, cy = grid / 2 + rng.normal(0, 1), grid / 2 + rng.normal(0, 1)
        r = grid / 4 + rng.normal(0, 0.5)
        img = ((x - cx) ** 2 + (y - cy) ** 2 <= r**2).astype(float)
    elif label == 5:  # hollow square border
        t = int(rng.integers(1, 3))
        img = np.zeros((grid, grid))
        img[t:-t, t:-t] = 1.0
        img[2 * t : -2 * t, 2 * t : -2 * t] = 0.0
    elif label == 6:  # cross
        w = int(rng.integers(1, 3))
        c = grid // 2 + int(rng.integers(-1, 2))
        img = np.zeros((grid, grid))
        img[c - w : c + w, :] = 1.0
        img[:, c - w : c + w] = 1.0
    elif label == 7:  # horizontal gradient
        img = (x + phase) / (grid + 3)
    elif label == 8:  # vertical gradient
        img = (y + phase) / (grid + 3)
    elif label == 9:  # two corner blobs on the main diagonal
        r = grid / 5
        img = (
            ((x - r) ** 2 + (y - r) ** 2 <= r**2)
            | ((x - (grid - r)) ** 2 + (y - (grid - r)) ** 2 <= r**2)
        ).astype(float)
    else:
        raise ValueError(f"label must be in [0, {N_CLASSES}), got {label}")
    return img.astype(float)


def generate_image(
    n_samples: int = 512,
    grid: int = 16,
    n_levels: int = 16,
    noise: float = 0.15,
    seed: int = 0,
    test_fraction: float = 0.25,
) -> TaskDataset:
    """Generate flattened pixel-sequence images; seq_len = grid * grid."""
    rng = np.random.default_rng(seed)
    seq_len = grid * grid
    xs = np.zeros((n_samples, seq_len), dtype=np.int64)
    ys = (np.arange(n_samples) % N_CLASSES).astype(np.int64)
    rng.shuffle(ys)
    for i in range(n_samples):
        img = _render_class(rng, int(ys[i]), grid)
        img = img + rng.normal(0.0, noise, size=img.shape)
        img = np.clip(img, 0.0, 1.0)
        tokens = np.minimum((img * n_levels).astype(np.int64), n_levels - 1)
        xs[i] = tokens.reshape(-1)
    x_train, y_train, x_test, y_test = train_test_split(xs, ys, test_fraction, rng)
    return TaskDataset(
        name="image",
        vocab_size=n_levels,
        n_classes=N_CLASSES,
        seq_len=seq_len,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
    )
