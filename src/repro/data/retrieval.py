"""Synthetic LRA-Retrieval: byte-level document matching.

LRA-Retrieval asks whether two long documents are related (citation
matching on ACL).  We substitute a topic model: each topic has its own
character lexicon; a positive pair draws both documents from the same
topic, a negative pair from two different topics.  Deciding requires
comparing distributed lexical statistics of *both* sequences, which is
what makes the task exercise the dual-encoder path.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import TaskDataset, train_test_split
from .text import SPACE, VOCAB_SIZE, _make_lexicon


def _render_doc(
    rng: np.random.Generator,
    lexicon: List[np.ndarray],
    neutral: List[np.ndarray],
    seq_len: int,
    word_len: int,
    signal_ratio: float,
) -> np.ndarray:
    doc = np.zeros(seq_len, dtype=np.int64)
    pos = 0
    while pos + word_len + 1 <= seq_len:
        source = lexicon if rng.random() < signal_ratio else neutral
        word = source[int(rng.integers(0, len(source)))]
        doc[pos : pos + word_len] = word
        pos += word_len
        doc[pos] = SPACE
        pos += 1
    return doc


def generate_retrieval(
    n_samples: int = 512,
    seq_len: int = 128,
    n_topics: int = 8,
    n_lexicon_words: int = 10,
    word_len: int = 4,
    signal_ratio: float = 0.5,
    seed: int = 0,
    test_fraction: float = 0.25,
) -> TaskDataset:
    """Generate (doc1, doc2, same-topic?) pairs; shape (n, 2, seq_len)."""
    rng = np.random.default_rng(seed)
    topics = [_make_lexicon(rng, n_lexicon_words, word_len) for _ in range(n_topics)]
    neutral = _make_lexicon(rng, 4 * n_lexicon_words, word_len)

    xs = np.zeros((n_samples, 2, seq_len), dtype=np.int64)
    ys = rng.integers(0, 2, size=n_samples).astype(np.int64)
    for i in range(n_samples):
        t1 = int(rng.integers(0, n_topics))
        if ys[i] == 1:
            t2 = t1
        else:
            t2 = int(rng.integers(0, n_topics - 1))
            if t2 >= t1:
                t2 += 1
        xs[i, 0] = _render_doc(rng, topics[t1], neutral, seq_len, word_len, signal_ratio)
        xs[i, 1] = _render_doc(rng, topics[t2], neutral, seq_len, word_len, signal_ratio)
    x_train, y_train, x_test, y_test = train_test_split(xs, ys, test_fraction, rng)
    return TaskDataset(
        name="retrieval",
        vocab_size=VOCAB_SIZE,
        n_classes=2,
        seq_len=seq_len,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        paired=True,
    )
