"""Synthetic ListOps: hierarchical prefix expressions over digits.

Mirrors LRA-ListOps: sequences are flattened nested expressions such as
``[MAX 2 [MIN 3 7] 4 [MED 1 5 9]]`` and the label is the value of the
expression (ten classes, 0-9).  Solving it requires tracking the tree
structure across the whole sequence, i.e. genuinely hierarchical
long-range reasoning.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import TaskDataset, train_test_split

PAD = 0
DIGIT_BASE = 1  # digits d in 0..9 encode as DIGIT_BASE + d
OP_MAX, OP_MIN, OP_MED, OP_SM = 11, 12, 13, 14  # opening tokens "[OP"
CLOSE = 15
VOCAB_SIZE = 16

_OPS = (OP_MAX, OP_MIN, OP_MED, OP_SM)


def _eval_op(op: int, args: List[int]) -> int:
    if op == OP_MAX:
        return max(args)
    if op == OP_MIN:
        return min(args)
    if op == OP_MED:
        return int(np.median(args))
    if op == OP_SM:
        return sum(args) % 10
    raise ValueError(f"unknown op token {op}")


def _gen_expression(
    rng: np.random.Generator, depth: int, max_args: int
) -> Tuple[List[int], int]:
    """Generate one (token_list, value) expression of the given depth."""
    if depth == 0:
        digit = int(rng.integers(0, 10))
        return [DIGIT_BASE + digit], digit
    op = int(rng.choice(_OPS))
    n_args = int(rng.integers(2, max_args + 1))
    tokens: List[int] = [op]
    values: List[int] = []
    for _ in range(n_args):
        # Bias toward leaves so the sequence length stays bounded.
        child_depth = depth - 1 if rng.random() < 0.4 else 0
        child_tokens, child_value = _gen_expression(rng, child_depth, max_args)
        tokens.extend(child_tokens)
        values.append(child_value)
    tokens.append(CLOSE)
    return tokens, _eval_op(op, values)


def generate_listops(
    n_samples: int = 512,
    seq_len: int = 128,
    depth: int = 2,
    max_args: int = 4,
    seed: int = 0,
    test_fraction: float = 0.25,
) -> TaskDataset:
    """Generate a balanced-ish ListOps dataset padded to ``seq_len``."""
    rng = np.random.default_rng(seed)
    xs = np.zeros((n_samples, seq_len), dtype=np.int64)
    ys = np.zeros(n_samples, dtype=np.int64)
    count = 0
    while count < n_samples:
        tokens, value = _gen_expression(rng, depth, max_args)
        if len(tokens) > seq_len or len(tokens) < 4:
            continue
        xs[count, : len(tokens)] = tokens
        ys[count] = value
        count += 1
    x_train, y_train, x_test, y_test = train_test_split(xs, ys, test_fraction, rng)
    return TaskDataset(
        name="listops",
        vocab_size=VOCAB_SIZE,
        n_classes=10,
        seq_len=seq_len,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
    )
