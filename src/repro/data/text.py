"""Synthetic LRA-Text: byte-level document classification.

LRA-Text is byte-level IMDb sentiment.  We substitute a two-lexicon
generative model: documents are sequences of character-level "words"
drawn from a positive or negative lexicon, mixed with shared neutral
words.  The label is the dominant lexicon.  The sentiment signal is
distributed over the entire document, so a model must aggregate evidence
across the full sequence, as in the real task.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import TaskDataset

PAD = 0
SPACE = 1
CHAR_BASE = 2
N_CHARS = 26
VOCAB_SIZE = CHAR_BASE + N_CHARS  # 28


def _make_lexicon(rng: np.random.Generator, n_words: int, word_len: int) -> List[np.ndarray]:
    return [
        rng.integers(CHAR_BASE, CHAR_BASE + N_CHARS, size=word_len).astype(np.int64)
        for _ in range(n_words)
    ]


def generate_text(
    n_samples: int = 512,
    seq_len: int = 256,
    n_lexicon_words: int = 12,
    word_len: int = 4,
    signal_ratio: float = 0.35,
    variable_length: bool = False,
    min_length_fraction: float = 0.5,
    seed: int = 0,
    test_fraction: float = 0.25,
) -> TaskDataset:
    """Generate byte-level documents labeled by their dominant lexicon.

    ``signal_ratio`` is the fraction of words drawn from the label's
    lexicon; the rest come from a shared neutral lexicon, so a classifier
    must pool weak evidence across the document.  With
    ``variable_length=True``, documents have random true lengths in
    ``[min_length_fraction * seq_len, seq_len]`` and are zero-padded; the
    dataset then carries length annotations for mask-aware training (the
    real LRA-Text has variable-length reviews).
    """
    rng = np.random.default_rng(seed)
    positive = _make_lexicon(rng, n_lexicon_words, word_len)
    negative = _make_lexicon(rng, n_lexicon_words, word_len)
    neutral = _make_lexicon(rng, 4 * n_lexicon_words, word_len)

    xs = np.zeros((n_samples, seq_len), dtype=np.int64)
    ys = rng.integers(0, 2, size=n_samples).astype(np.int64)
    lengths = np.full(n_samples, seq_len, dtype=np.int64)
    min_len = max(word_len + 1, int(seq_len * min_length_fraction))
    for i in range(n_samples):
        lexicon = positive if ys[i] == 1 else negative
        limit = int(rng.integers(min_len, seq_len + 1)) if variable_length else seq_len
        pos = 0
        while pos + word_len + 1 <= limit:
            source = lexicon if rng.random() < signal_ratio else neutral
            word = source[int(rng.integers(0, len(source)))]
            xs[i, pos : pos + word_len] = word
            pos += word_len
            xs[i, pos] = SPACE
            pos += 1
        lengths[i] = pos if variable_length else seq_len
    order = rng.permutation(n_samples)
    n_test = max(1, int(n_samples * test_fraction))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return TaskDataset(
        name="text",
        vocab_size=VOCAB_SIZE,
        n_classes=2,
        seq_len=seq_len,
        x_train=xs[train_idx],
        y_train=ys[train_idx],
        x_test=xs[test_idx],
        y_test=ys[test_idx],
        lengths_train=lengths[train_idx] if variable_length else None,
        lengths_test=lengths[test_idx] if variable_length else None,
    )
