"""Synthetic Long-Range-Arena task generators."""

from .base import TaskDataset, train_test_split
from .image import generate_image
from .listops import generate_listops
from .lra import LRA_FULL_SEQ_LEN, LRA_TASKS, TASK_GENERATORS, load_task
from .pathfinder import generate_pathfinder
from .retrieval import generate_retrieval
from .text import generate_text

__all__ = [
    "LRA_FULL_SEQ_LEN",
    "LRA_TASKS",
    "TASK_GENERATORS",
    "TaskDataset",
    "generate_image",
    "generate_listops",
    "generate_pathfinder",
    "generate_retrieval",
    "generate_text",
    "load_task",
    "train_test_split",
]
