"""Common dataset container for the synthetic Long-Range-Arena tasks.

The paper evaluates on five LRA tasks (ListOps, Text, Retrieval, Image,
Pathfinder).  The real dataset is a 33 GB download; we substitute
procedurally generated tasks that keep each task's defining property —
long token sequences whose labels depend on interactions across the whole
sequence — at a scale where numpy CPU training converges in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass
class TaskDataset:
    """A generated classification task.

    ``x_*`` arrays hold integer token ids.  For single-sequence tasks the
    shape is ``(n, seq_len)``; for the paired Retrieval task it is
    ``(n, 2, seq_len)`` and ``paired`` is True.
    """

    name: str
    vocab_size: int
    n_classes: int
    seq_len: int
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    paired: bool = False
    lengths_train: np.ndarray = None  # true lengths when sequences are padded
    lengths_test: np.ndarray = None

    def __post_init__(self) -> None:
        for split, (x, y) in (
            ("train", (self.x_train, self.y_train)),
            ("test", (self.x_test, self.y_test)),
        ):
            if len(x) != len(y):
                raise ValueError(f"{split}: {len(x)} inputs vs {len(y)} labels")
            if x.max(initial=0) >= self.vocab_size:
                raise ValueError(f"{split}: token id exceeds vocab_size {self.vocab_size}")
            if y.max(initial=0) >= self.n_classes:
                raise ValueError(f"{split}: label exceeds n_classes {self.n_classes}")
        expected_ndim = 3 if self.paired else 2
        if self.x_train.ndim != expected_ndim:
            raise ValueError(
                f"expected {expected_ndim}-d inputs for paired={self.paired}, "
                f"got shape {self.x_train.shape}"
            )
        for name, lengths, x in (
            ("lengths_train", self.lengths_train, self.x_train),
            ("lengths_test", self.lengths_test, self.x_test),
        ):
            if lengths is not None:
                if len(lengths) != len(x):
                    raise ValueError(f"{name} does not match sample count")
                if lengths.max(initial=0) > self.seq_len:
                    raise ValueError(f"{name} exceeds seq_len {self.seq_len}")

    @property
    def has_lengths(self) -> bool:
        return self.lengths_train is not None and self.lengths_test is not None

    def masks(self, split: str = "train") -> np.ndarray:
        """Boolean (n, seq_len) validity masks from the stored lengths."""
        if not self.has_lengths:
            raise ValueError(f"dataset {self.name!r} has no length annotations")
        lengths = self.lengths_train if split == "train" else self.lengths_test
        return np.arange(self.seq_len)[None, :] < lengths[:, None]

    @property
    def n_train(self) -> int:
        return len(self.y_train)

    @property
    def n_test(self) -> int:
        return len(self.y_test)

    def batches(
        self, batch_size: int, rng: np.random.Generator, split: str = "train"
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield shuffled (tokens, labels) mini-batches from a split."""
        x, y = (
            (self.x_train, self.y_train) if split == "train" else (self.x_test, self.y_test)
        )
        order = rng.permutation(len(y))
        for start in range(0, len(y), batch_size):
            idx = order[start : start + batch_size]
            yield x[idx], y[idx]

    def batches_with_masks(
        self, batch_size: int, rng: np.random.Generator, split: str = "train"
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Like :meth:`batches` but also yields validity masks."""
        x, y = (
            (self.x_train, self.y_train) if split == "train" else (self.x_test, self.y_test)
        )
        masks = self.masks(split)
        order = rng.permutation(len(y))
        for start in range(0, len(y), batch_size):
            idx = order[start : start + batch_size]
            yield x[idx], y[idx], masks[idx]


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_fraction: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split arrays into train/test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    order = rng.permutation(len(y))
    n_test = max(1, int(len(y) * test_fraction))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]
