"""Deterministic fault injection: named points, seeded schedules, typed errors.

Production serving engines are hardened by *failure-injection tests* —
kill a worker mid-decode, drop a write between buffer and disk — and the
ROADMAP names exactly those tests as the prerequisite for the sharded
multi-worker engine.  This module is the substrate they drive: a seeded
:class:`FaultInjector` that raises typed faults at **named injection
points** threaded through the stack, on a schedule that is a pure
function of the spec and the seed (so a failing chaos run replays
bit-identically).

Follows the :mod:`repro.telemetry` opt-in contract:

* **Zero-cost when disabled.**  No injector is installed by default;
  :func:`fault_point` is one attribute load and a ``None`` check before
  returning, so instrumented hot paths (kernel GEMMs, decode steps) stay
  within noise of uninstrumented ones (gated by the ``fault_overhead``
  benchmark).
* **Opt-in via environment or API.**  ``REPRO_FAULTS="<spec>"`` installs
  an injector at import time (``REPRO_FAULTS_SEED`` seeds it);
  :func:`install` / :func:`use_faults` do the same from code.

Injection points are named ``subsystem.op`` after the telemetry span
convention (see CONTRIBUTING)::

    kernels.matmul            backend GEMM dispatch
    kernels.butterfly_apply   fused butterfly ladder entry
    serving.prefill           per-request prompt prefill
    serving.decode_step       batched single-token decode
    serving.sample            per-request token sampling
    worker.step               cluster worker engine-step loop (a ``fatal``
                              here kills the *process*, not a request —
                              the supervisor's failover path recovers)
    io.save                   checkpoint write, between temp file and rename

Spec strings are ``;``-separated rules, each
``point:kind[:key=value[,key=value...]]``::

    REPRO_FAULTS="serving.decode_step:transient:after=2,every=3,times=5"
    REPRO_FAULTS="io.save:fatal"  # first save dies

``kind`` is ``transient`` (retryable — the resilience layer rolls back
and retries) or ``fatal`` (not retryable — the victim request fails).
``after`` skips the first N traversals of the point, ``every`` fires on
each Nth traversal thereafter, ``times`` caps total fires (default 1;
0 = unlimited), and ``p`` fires probabilistically per traversal from the
injector's seeded stream (still deterministic for a fixed seed).

Faults raised here are *errors by construction*: :class:`TransientFault`
models recoverable glitches (a lost worker, a flaky kernel launch),
:class:`FatalFault` models unrecoverable ones (corrupted state).  The
serving resilience layer (:mod:`repro.serving.resilience`) turns the
former into bit-identical retries and the latter into single-request
failures instead of a poisoned batch.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .telemetry import counter_inc

__all__ = [
    "FaultError",
    "TransientFault",
    "FatalFault",
    "FaultRule",
    "FaultInjector",
    "INJECTION_POINTS",
    "KINDS",
    "STATE",
    "active",
    "fault_point",
    "get_injector",
    "install",
    "install_from_env",
    "parse_fault_spec",
    "register_injection_point",
    "rules_to_spec",
    "uninstall",
    "use_faults",
]

#: Known injection points (``subsystem.op``).  Rules naming an unknown
#: point fail fast at parse time — a typo'd chaos spec that silently
#: never fires is worse than an error.
INJECTION_POINTS = {
    "kernels.matmul",
    "kernels.butterfly_apply",
    "serving.prefill",
    "serving.decode_step",
    "serving.sample",
    "worker.step",
    "io.save",
}

KINDS = ("transient", "fatal")


def register_injection_point(point: str) -> None:
    """Declare a new injection point name (``subsystem.op``)."""
    if "." not in point:
        raise ValueError(
            f"injection point {point!r} must be named subsystem.op"
        )
    INJECTION_POINTS.add(point)


class FaultError(Exception):
    """Base class of injected faults; carries the point and call context."""

    def __init__(self, point: str, context: Optional[dict] = None,
                 rule: Optional["FaultRule"] = None) -> None:
        self.point = point
        self.context = dict(context or {})
        self.rule = rule
        detail = f" [{self.context}]" if self.context else ""
        super().__init__(f"injected {self.kind} fault at {point}{detail}")

    kind = "fault"

    @property
    def request_id(self) -> Optional[int]:
        """The victim request, when the point is request-scoped."""
        rid = self.context.get("request_id")
        return int(rid) if rid is not None else None


class TransientFault(FaultError):
    """Recoverable: the resilience layer rolls back and retries."""

    kind = "transient"


class FatalFault(FaultError):
    """Unrecoverable: the affected request fails, the batch survives."""

    kind = "fatal"


_FAULT_CLASSES = {"transient": TransientFault, "fatal": FatalFault}


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: fire ``kind`` at ``point`` per the counters.

    A rule observes every traversal of its point.  Traversal ``h``
    (1-based) is *eligible* when ``h > after`` and
    ``(h - after - 1) % every == 0``; an eligible traversal fires unless
    ``times`` fires already happened (``times=0`` means unlimited) — or,
    with ``p`` set, fires with probability ``p`` from the injector's
    seeded stream instead of unconditionally.
    """

    point: str
    kind: str = "transient"
    after: int = 0
    every: int = 1
    times: int = 1
    p: Optional[float] = None

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; known: "
                f"{sorted(INJECTION_POINTS)} (register_injection_point "
                f"to add one)"
            )
        if self.kind not in KINDS:
            raise ValueError(f"fault kind must be one of {KINDS}, got {self.kind!r}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")
        if self.p is not None and not 0.0 < self.p <= 1.0:
            raise ValueError(f"p must lie in (0, 1], got {self.p}")


def parse_fault_spec(spec: str) -> List[FaultRule]:
    """Parse a ``;``-separated spec string into :class:`FaultRule` list.

    Each rule is ``point:kind[:key=value[,key=value...]]`` with keys
    ``after`` / ``every`` / ``times`` (ints) and ``p`` (float).
    """
    rules: List[FaultRule] = []
    for raw in spec.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.split(":")
        if len(parts) < 2 or len(parts) > 3:
            raise ValueError(
                f"bad fault rule {raw!r}: expected "
                "'point:kind[:key=value,...]'"
            )
        point, kind = parts[0].strip(), parts[1].strip()
        kwargs: Dict[str, object] = {}
        if len(parts) == 3 and parts[2].strip():
            for pair in parts[2].split(","):
                if "=" not in pair:
                    raise ValueError(
                        f"bad fault option {pair!r} in rule {raw!r}: "
                        "expected key=value"
                    )
                key, value = (s.strip() for s in pair.split("=", 1))
                if key in ("after", "every", "times"):
                    kwargs[key] = int(value)
                elif key == "p":
                    kwargs[key] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault option {key!r} in rule {raw!r}; "
                        "known: after, every, times, p"
                    )
        rules.append(FaultRule(point=point, kind=kind, **kwargs))
    if not rules:
        raise ValueError(f"fault spec {spec!r} contains no rules")
    return rules


def rules_to_spec(rules: Sequence[FaultRule]) -> str:
    """Serialize rules back into a spec string (:func:`parse_fault_spec`
    inverse).  Round-tripping lets a supervisor hand its installed fault
    schedule to spawned worker processes via ``REPRO_FAULTS``."""
    parts: List[str] = []
    for rule in rules:
        opts = []
        if rule.after:
            opts.append(f"after={rule.after}")
        if rule.every != 1:
            opts.append(f"every={rule.every}")
        if rule.times != 1:
            opts.append(f"times={rule.times}")
        if rule.p is not None:
            opts.append(f"p={rule.p:g}")
        fields = [rule.point, rule.kind] + ([",".join(opts)] if opts else [])
        parts.append(":".join(fields))
    return ";".join(parts)


class FaultInjector:
    """Seeded, thread-safe scheduler of injected faults.

    ``check(point, context)`` advances every rule watching ``point`` and
    raises the first that fires.  All counters live here, so the
    schedule is global across threads (the threaded kernel backend
    traverses points from pool workers) and a rolled-back serving step
    *keeps* its consumed traversals — which is exactly what makes
    retry-after-rollback deterministic: the fault that already fired is
    spent.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._hits: List[int] = [0] * len(self.rules)
        self._fired: List[int] = [0] * len(self.rules)
        self._injected: Dict[Tuple[str, str], int] = {}

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        return cls(parse_fault_spec(spec), seed=seed)

    # ------------------------------------------------------------------
    def check(self, point: str, context: Optional[dict] = None) -> None:
        """Advance rules watching ``point``; raise if one fires."""
        fire: Optional[Tuple[int, FaultRule]] = None
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.point != point:
                    continue
                self._hits[i] += 1
                h = self._hits[i]
                if h <= rule.after or (h - rule.after - 1) % rule.every:
                    continue
                if rule.times and self._fired[i] >= rule.times:
                    continue
                if rule.p is not None and self._rng.random() >= rule.p:
                    continue
                if fire is None:  # first matching rule wins, later rules
                    fire = (i, rule)  # still consume their traversal
            if fire is not None:
                i, rule = fire
                self._fired[i] += 1
                key = (point, rule.kind)
                self._injected[key] = self._injected.get(key, 0) + 1
        if fire is not None:
            _, rule = fire
            counter_inc("faults_injected_total", point=point, kind=rule.kind)
            raise _FAULT_CLASSES[rule.kind](point, context, rule)

    # ------------------------------------------------------------------
    @property
    def injected_total(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready stats: fires per (point, kind) plus rule counters."""
        with self._lock:
            return {
                "injected_total": sum(self._injected.values()),
                "injected": {
                    f"{point}:{kind}": count
                    for (point, kind), count in sorted(self._injected.items())
                },
                "rules": [
                    {
                        "point": rule.point, "kind": rule.kind,
                        "hits": self._hits[i], "fired": self._fired[i],
                    }
                    for i, rule in enumerate(self.rules)
                ],
            }


# ----------------------------------------------------------------------
# Global installation (mirrors telemetry.STATE: one attribute load gates
# every instrumented hot path)
# ----------------------------------------------------------------------
class _State:
    __slots__ = ("injector",)

    def __init__(self) -> None:
        self.injector: Optional[FaultInjector] = None


STATE = _State()


def active() -> bool:
    """Whether an injector is installed (faults may fire)."""
    return STATE.injector is not None


def get_injector() -> Optional[FaultInjector]:
    return STATE.injector


def install(injector: FaultInjector) -> None:
    """Install ``injector`` process-wide; points start firing per spec."""
    STATE.injector = injector


def uninstall() -> None:
    """Remove the installed injector; every point returns to no-op."""
    STATE.injector = None


class use_faults:
    """Scope an injector: ``with use_faults("io.save:fatal"): ...``.

    Accepts an injector, a spec string, or a rule list; restores the
    previously installed injector (usually ``None``) on exit.
    """

    def __init__(self, injector, seed: int = 0) -> None:
        if isinstance(injector, str):
            injector = FaultInjector.from_spec(injector, seed=seed)
        elif isinstance(injector, (list, tuple)):
            injector = FaultInjector(injector, seed=seed)
        self.injector = injector
        self._prev: Optional[FaultInjector] = None

    def __enter__(self) -> FaultInjector:
        self._prev = STATE.injector
        STATE.injector = self.injector
        return self.injector

    def __exit__(self, *exc) -> bool:
        STATE.injector = self._prev
        return False


def fault_point(point: str, **context) -> None:
    """Traverse an injection point; raises when the installed schedule
    says so, returns immediately (no allocation) when none is installed.
    """
    injector = STATE.injector
    if injector is None:
        return
    injector.check(point, context)


def install_from_env() -> Optional[FaultInjector]:
    """Install an injector from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``."""
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        return None
    seed = int(os.environ.get("REPRO_FAULTS_SEED", "0"))
    injector = FaultInjector.from_spec(spec, seed=seed)
    install(injector)
    return injector


install_from_env()
