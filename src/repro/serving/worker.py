"""Cluster worker: one serving replica in its own process fault domain.

:func:`worker_main` is the entry point the supervisor
(:class:`repro.serving.cluster.ClusterEngine`) spawns into a child
process.  It owns a private :class:`~repro.serving.engine.ServingEngine`
replica and speaks a small message protocol over a duplex
``multiprocessing`` pipe:

parent → child
    ``("submit", gid, prompt, params)``  queue a session (global id)
    ``("cancel", gid)``                  cancel a queued/running session
    ``("stop",)``                        shut the engine down and exit 0

child → parent
    ``("hello", pid)``                   boot complete, engine ready
    ``("events", [(gid, token, finished, reason), ...])``  step output
    ``("heartbeat", stats)``             liveness + queue/batch/fault stats
    ``("stopped", stats)``               graceful-stop acknowledgement
    ``("fatal", message)``               unexpected crash, about to exit

The worker traverses the ``worker.step`` fault point before every engine
step: an injected :class:`~repro.faults.FatalFault` there **kills the
process** (``os._exit``, no goodbye message — indistinguishable from a
``SIGKILL`` to the supervisor), which is how chaos tests exercise the
failover path without real signals.  Transient/fatal faults at the inner
serving points keep their PR-8 semantics inside the worker's own
resilient engine step.

:func:`child_environment` is the one env-prep helper shared by the
cluster and the tests: it pins the BLAS/OMP pools to one thread and
serializes the parent's live fault-injection and telemetry opt-ins into
``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED`` / ``REPRO_TELEMETRY``, so a
spawned child (or a subprocess-driven CLI) behaves exactly like the
process that launched it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..faults import FatalFault, FaultRule, fault_point, rules_to_spec
from ..telemetry import enabled as telemetry_enabled

__all__ = [
    "BLAS_PIN_VARS",
    "WORKER_FAULT_EXIT",
    "WorkerConfig",
    "child_environment",
    "worker_main",
]

#: Thread-pool pins propagated into every worker (see scripts/verify.sh:
#: parallelism in this repo comes from explicit backends and worker
#: processes, never from a BLAS pool).
BLAS_PIN_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

#: Exit code of a worker killed by an injected ``worker.step`` fatal
#: fault — distinguishable from real crashes (1) and signals (<0) in
#: supervisor logs, identical in recovery semantics.
WORKER_FAULT_EXIT = 23


def child_environment(base: Optional[dict] = None) -> Dict[str, str]:
    """Environment for a child process so its behavior matches the parent.

    Starts from ``base`` (default: a copy of ``os.environ``), then

    * pins every BLAS/OMP pool variable to ``"1"`` unless already set;
    * exports the parent's *installed* fault injector — even one
      installed via the API rather than ``REPRO_FAULTS`` — as a spec
      string plus its seed, so the child's import-time
      :func:`repro.faults.install_from_env` rebuilds the same schedule
      (with fresh counters: each fault domain runs its own schedule);
    * exports ``REPRO_TELEMETRY=1`` when telemetry is enabled here, and
      drops a stale opt-in when it is not.

    Used by the cluster before spawning workers and by tests that drive
    the CLI through ``subprocess``.
    """
    env = dict(os.environ if base is None else base)
    for var in BLAS_PIN_VARS:
        env.setdefault(var, "1")
    injector = faults.get_injector()
    if injector is not None and injector.rules:
        env["REPRO_FAULTS"] = rules_to_spec(injector.rules)
        env["REPRO_FAULTS_SEED"] = str(injector.seed)
    else:
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_FAULTS_SEED", None)
    if telemetry_enabled():
        env["REPRO_TELEMETRY"] = "1"
    else:
        env.pop("REPRO_TELEMETRY", None)
    return env


@dataclass
class WorkerConfig:
    """Everything a worker process needs beyond the model itself.

    ``fault_rules=None`` inherits whatever the child's environment (or,
    under the ``fork`` start method, the parent's installed injector)
    provides; an explicit list — possibly empty, which uninstalls —
    replaces it.  ``resilience`` must be picklable (the default
    ``time.sleep`` backoff is; test lambdas are not).
    """

    worker_id: int
    max_batch_size: int = 8
    seed: int = 0
    quantize: Optional[str] = None
    backend: Optional[str] = None
    resilience: Optional[object] = None
    heartbeat_interval_s: float = 0.05
    idle_poll_s: float = 0.01
    fault_rules: Optional[List[FaultRule]] = None
    fault_seed: int = 0
    telemetry: Optional[bool] = None
    env: Dict[str, str] = field(default_factory=dict)


def _apply_worker_state(config: WorkerConfig) -> None:
    """Align the child's process-global opt-ins with the supervisor's."""
    os.environ.update(config.env)
    if config.fault_rules is not None:
        if config.fault_rules:
            faults.install(
                faults.FaultInjector(config.fault_rules, seed=config.fault_seed)
            )
        else:
            faults.uninstall()
    if config.telemetry is not None:
        from .. import telemetry

        if config.telemetry:
            telemetry.enable()
        else:
            telemetry.disable()


def _translate(events, gid_by_local: Dict[int, int]) -> List[Tuple]:
    out = []
    for event in events:
        gid = gid_by_local.get(event.request_id)
        if gid is not None:
            out.append((gid, event.token, event.finished, event.finish_reason))
    return out


def worker_main(conn, model, config: WorkerConfig) -> None:
    """Run one serving replica until told to stop (or killed).

    The loop interleaves three duties: drain supervisor commands from
    the pipe, advance the engine one step when it has work (forwarding
    the step's events), and emit a heartbeat every
    ``heartbeat_interval_s`` — also while idle, so a wedged worker and a
    quiet one are distinguishable.
    """
    try:
        _apply_worker_state(config)
        # Import after the env/opt-in alignment so even lazily-loaded
        # modules see the final state.
        from .engine import ServingEngine

        engine = ServingEngine(
            model,
            max_batch_size=config.max_batch_size,
            seed=config.seed,
            quantize=config.quantize,
            backend=config.backend,
            resilience=config.resilience,
        )
        gid_by_local: Dict[int, int] = {}
        local_by_gid: Dict[int, int] = {}
        steps = 0
        last_heartbeat = 0.0
        conn.send(("hello", os.getpid()))
        while True:
            timeout = 0.0 if engine.has_work else config.idle_poll_s
            while conn.poll(timeout):
                timeout = 0.0
                msg = conn.recv()
                kind = msg[0]
                if kind == "submit":
                    _, gid, prompt, params = msg
                    local = engine.submit(
                        np.asarray(prompt, dtype=np.int64), params
                    )
                    gid_by_local[local] = gid
                    local_by_gid[gid] = local
                    result = engine.result(local)
                    if result.finished:  # e.g. shed at the replica door
                        conn.send(("events", [
                            (gid, None, True, result.finish_reason)
                        ]))
                elif kind == "cancel":
                    local = local_by_gid.get(msg[1])
                    if local is not None and engine.cancel(local):
                        conn.send(("events", [
                            (msg[1], None, True, "cancelled")
                        ]))
                elif kind == "stop":
                    engine.shutdown(drain=False)
                    conn.send(("stopped", {"steps": steps}))
                    return
                else:
                    raise ValueError(f"unknown worker command {kind!r}")
            if engine.has_work:
                fault_point("worker.step", worker_id=config.worker_id)
                events = engine.step()
                steps += 1
                payload = _translate(events, gid_by_local)
                if payload:
                    conn.send(("events", payload))
            now = time.monotonic()
            if now - last_heartbeat >= config.heartbeat_interval_s:
                last_heartbeat = now
                injector = faults.get_injector()
                conn.send(("heartbeat", {
                    "steps": steps,
                    "queue_depth": engine.scheduler.queue_depth,
                    "batch_size": engine.scheduler.batch_size,
                    "faults_injected": (
                        injector.injected_total if injector else 0
                    ),
                }))
    except FatalFault:
        # Simulated process death: no farewell message, no cleanup —
        # from the supervisor's side this is exactly a SIGKILL.
        os._exit(WORKER_FAULT_EXIT)
    except (EOFError, BrokenPipeError, OSError):
        # Supervisor vanished; nothing useful left to do.
        os._exit(1)
    except BaseException as exc:  # pragma: no cover - defensive
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        os._exit(1)
