"""Vectorized token sampling shared by ``generate`` and the serving engine.

The seed ``ButterflyDecoderLM.generate`` sampled with a per-row Python
loop over ``rng.choice``; this module replaces it with the Gumbel-max
trick (``argmax(logits/T + G)`` with ``G ~ Gumbel(0, 1)`` draws exactly
from the softmax distribution), which vectorizes over the batch and
composes with top-k / top-p (nucleus) filtering.  All functions operate
on plain numpy logits so both the model's ``generate`` loop and the
per-request samplers in :mod:`repro.serving.engine` use the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class SamplingParams:
    """Per-request decoding parameters.

    ``temperature == 0`` selects greedy decoding (top-k/top-p are then
    ignored).  ``top_k == 0`` and ``top_p == 1.0`` disable the
    respective filters.  ``seed`` makes the request's sampling stream
    reproducible regardless of how it is batched with other requests.
    ``deadline_s`` is a wall-clock budget measured from submission on
    the engine's injectable clock; a request still unfinished past it
    is cancelled with ``finish_reason="deadline"`` (see
    :mod:`repro.serving.resilience`).
    """

    max_new_tokens: int = 16
    temperature: float = 1.0
    top_k: int = 0
    top_p: float = 1.0
    seed: Optional[int] = None
    stop_token: Optional[int] = None
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        if self.temperature < 0.0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")
        if not 0.0 < self.top_p <= 1.0:
            raise ValueError(f"top_p must lie in (0, 1], got {self.top_p}")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )


def filter_logits(logits: np.ndarray, top_k: int = 0, top_p: float = 1.0) -> np.ndarray:
    """Mask logits outside the top-k / nucleus support with ``-inf``.

    Operates row-wise on ``(..., vocab)`` logits.  Top-k keeps every
    entry tied with the k-th largest (so ties never drop below k
    candidates); top-p keeps the smallest prefix of the
    probability-sorted vocabulary whose mass reaches ``top_p`` (the
    most probable token is always kept).
    """
    logits = np.array(logits, dtype=np.float64, copy=True)
    vocab = logits.shape[-1]
    if top_k < 0:
        raise ValueError(f"top_k must be >= 0, got {top_k}")
    if not 0.0 < top_p <= 1.0:
        raise ValueError(f"top_p must lie in (0, 1], got {top_p}")
    if 0 < top_k < vocab:
        kth = np.partition(logits, -top_k, axis=-1)[..., -top_k, None]
        logits[logits < kth] = -np.inf
    if top_p < 1.0:
        order = np.argsort(-logits, axis=-1)
        ranked = np.take_along_axis(logits, order, axis=-1)
        shifted = ranked - ranked[..., :1]
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        cumulative = np.cumsum(probs, axis=-1)
        keep_ranked = (cumulative - probs) < top_p
        keep_ranked[..., 0] = True
        keep = np.zeros_like(keep_ranked)
        np.put_along_axis(keep, order, keep_ranked, axis=-1)
        logits[~keep] = -np.inf
    return logits


def sample_logits(
    logits: np.ndarray,
    temperature: float = 0.0,
    top_k: int = 0,
    top_p: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Draw next tokens from ``(..., vocab)`` logits, vectorized.

    Greedy argmax when ``temperature <= 0``; otherwise temperature
    scaling, optional top-k / top-p filtering, and a Gumbel-max draw.
    Returns an integer array with the leading shape of ``logits``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if temperature <= 0.0:
        return logits.argmax(axis=-1)
    filtered = filter_logits(logits / temperature, top_k=top_k, top_p=top_p)
    rng = rng or np.random.default_rng()
    uniform = np.clip(rng.random(filtered.shape), 1e-12, 1.0 - 1e-12)
    gumbel = -np.log(-np.log(uniform))
    return np.argmax(filtered + gumbel, axis=-1)
