"""Cost-based admission control backed by the accelerator performance model.

Continuous batching trades per-request latency for throughput: every
admitted sequence adds projection/FFN rows and attention reads to each
decode step.  :class:`CostModelAdmission` bounds that trade-off with the
cycle-level model from :mod:`repro.hardware.perf` — a request is admitted
only while the *modeled* decode-step latency at the grown batch size
stays within a budget, i.e. the same analytical machinery the paper uses
for encoder latency, applied to the serving regime (one query token per
sequence against a ``ctx_len``-deep KV cache).
"""

from __future__ import annotations

from typing import Optional

from ..hardware.config import BE120_CONFIG, AcceleratorConfig
from ..hardware.perf import ButterflyPerformanceModel
from ..models.config import ModelConfig


def estimate_decode_step_ms(
    model_config: ModelConfig,
    accel_config: AcceleratorConfig,
    batch: int,
    ctx_len: Optional[int] = None,
) -> float:
    """Modeled latency of one batched decode step, in milliseconds.

    Per decoder block, a step runs the Q/K/V/output projections and the
    two FFN butterflies over ``batch`` single-token rows on the BP
    (:meth:`ButterflyPerformanceModel.butterfly_linear`), plus an
    attention core of one query per sequence against ``ctx_len`` cached
    keys on the AP (falling back to the BP's multipliers when the
    configuration has no AP lanes, as in the all-FBfly design points).
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    ctx = model_config.max_len if ctx_len is None else ctx_len
    pm = ButterflyPerformanceModel(accel_config)
    d = model_config.d_hidden
    d_head = d // model_config.n_heads
    cycles = 0.0
    proj_shapes = [(d, d)] * 4 + [(d, model_config.d_ffn), (model_config.d_ffn, d)]
    for in_features, out_features in proj_shapes:
        cycles += pm.butterfly_linear(batch, in_features, out_features).total_cycles
    # Attention: QK^T and SV over the cached context, one query per row.
    mac_lanes = accel_config.attention_multipliers or accel_config.butterfly_multipliers
    qk_macs = batch * model_config.n_heads * ctx * d_head
    cycles += 2.0 * qk_macs / mac_lanes
    softmax_lanes = accel_config.pae or accel_config.pbe
    cycles += batch * model_config.n_heads * ctx / max(1, softmax_lanes)
    cycles *= model_config.n_total
    return cycles / (accel_config.clock_mhz * 1e3)


class AlwaysAdmit:
    """Admission policy that only honors the scheduler's batch-size cap."""

    def admit(self, prospective_batch: int) -> bool:
        return True


class LoadSheddingAdmission:
    """Shed requests at submit time when the engine is visibly overloaded.

    Batch-level admission (``admit``) delegates to an optional ``inner``
    policy; what this class adds is :meth:`shed_reason`, consulted by
    :meth:`ServingEngine.submit` *before* a request is queued.  Shedding
    at the door is the graceful-degradation half of SLO-aware admission:
    a bounded queue keeps worst-case waiting time bounded, and a request
    whose deadline cannot be met even if everything ahead of it runs at
    the estimated step rate is refused immediately (cheap, honest
    failure) rather than timed out after consuming queue capacity.

    ``depth_source`` makes the policy **cluster-aware**: when set (a
    zero-argument callable returning the aggregate queued-request count
    across every worker replica, e.g. :meth:`repro.serving.cluster.
    ClusterEngine.aggregate_queue_depth`), shedding decisions use the
    *fleet-wide* backlog rather than the depth the local caller passes
    in — a replica with a short local queue still sheds when the cluster
    as a whole is drowning.  Left ``None`` (the default), behavior is
    exactly the single-engine policy: only the caller-provided depth
    counts.
    """

    def __init__(
        self,
        inner=None,
        max_queue_depth: Optional[int] = None,
        est_step_s: Optional[float] = None,
        depth_source=None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if est_step_s is not None and est_step_s <= 0.0:
            raise ValueError(f"est_step_s must be positive, got {est_step_s}")
        if depth_source is not None and not callable(depth_source):
            raise TypeError("depth_source must be callable (or None)")
        self.inner = inner
        self.max_queue_depth = max_queue_depth
        self.est_step_s = est_step_s
        self.depth_source = depth_source

    def admit(self, prospective_batch: int) -> bool:
        if self.inner is None:
            return True
        return self.inner.admit(prospective_batch)

    def shed_reason(
        self, queue_depth: int, deadline_s: Optional[float] = None
    ) -> Optional[str]:
        """Why a new submission should be refused, or None to accept.

        ``queue_depth`` is the number of requests already waiting (at
        this replica); ``deadline_s`` the submission's remaining
        deadline budget.  With a ``depth_source`` bound, the effective
        depth is the larger of the local and aggregate views — the
        cluster-wide backlog can only tighten admission, never loosen a
        locally-full replica.
        """
        if self.depth_source is not None:
            queue_depth = max(int(queue_depth), int(self.depth_source()))
        if (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        ):
            return "queue_full"
        if (
            self.est_step_s is not None
            and deadline_s is not None
            # Even the optimistic bound — every queued request taking a
            # single estimated step before this one starts — overshoots
            # the deadline: admitting it only manufactures a timeout.
            and self.est_step_s * queue_depth > deadline_s
        ):
            return "deadline_unreachable"
        return None


class CostModelAdmission:
    """Admit requests while the modeled decode step fits a latency budget."""

    def __init__(
        self,
        model_config: ModelConfig,
        accel_config: Optional[AcceleratorConfig] = None,
        step_budget_ms: float = 1.0,
        ctx_len: Optional[int] = None,
    ) -> None:
        if step_budget_ms <= 0.0:
            raise ValueError(f"step_budget_ms must be positive, got {step_budget_ms}")
        self.model_config = model_config
        self.accel_config = accel_config or BE120_CONFIG
        self.step_budget_ms = step_budget_ms
        self.ctx_len = model_config.max_len if ctx_len is None else ctx_len

    def estimate_step_ms(self, batch: int) -> float:
        return estimate_decode_step_ms(
            self.model_config, self.accel_config, batch, self.ctx_len
        )

    def admit(self, prospective_batch: int) -> bool:
        """Whether a batch grown to ``prospective_batch`` stays in budget."""
        return self.estimate_step_ms(prospective_batch) <= self.step_budget_ms

    def max_batch_within_budget(self, limit: int = 256) -> int:
        """Largest batch the budget admits (0 if even one row exceeds it)."""
        batch = 0
        while batch < limit and self.admit(batch + 1):
            batch += 1
        return batch
