"""Batched inference serving: KV caching, continuous batching, engine API.

This package turns the reproduction into an inference runtime, the
ROADMAP's "serve heavy traffic" direction made concrete:

* :mod:`repro.serving.kv_cache` — per-layer key/value caches so a decode
  step costs one single-token forward instead of the O(T^2) full-window
  recompute;
* :mod:`repro.serving.sampling` — vectorized Gumbel-max sampling with
  temperature / top-k / top-p, shared with ``ButterflyDecoderLM.generate``;
* :mod:`repro.serving.scheduler` — continuous batching: request queue,
  admission, prefill/decode interleaving and batch compaction;
* :mod:`repro.serving.engine` — :class:`ServingEngine` submit/stream/
  cancel API with per-request and aggregate metrics;
* :mod:`repro.serving.admission` — cost-based admission backed by the
  :mod:`repro.hardware.perf` cycle model, plus queue-depth/deadline
  load shedding;
* :mod:`repro.serving.metrics` — TTFT / tokens-per-second / queue-depth
  accounting;
* :mod:`repro.serving.resilience` — step-level snapshot/rollback, retry
  with bounded backoff and single-request fault isolation over the
  :mod:`repro.faults` injection framework;
* :mod:`repro.serving.cluster` / :mod:`repro.serving.worker` —
  supervised multi-worker serving: N engine replicas in child-process
  fault domains under a heartbeat supervisor with bit-identical session
  failover, restart budgets, graceful drain and rolling restart;
* :mod:`repro.serving.api` — the unified :class:`Engine` protocol and
  typed :class:`RequestHandle` both engine classes conform to — the
  only supported integration surface for front ends;
* :mod:`repro.serving.server` — the asyncio HTTP/1.1 control plane
  (``/v1/generate`` with SSE streaming, ``/v1/cancel``, ``/healthz``,
  ``/metrics``) over any :class:`Engine`.

Import structure: ``sampling``, ``kv_cache`` and ``metrics`` are
self-contained (numpy/stdlib only) and imported eagerly — they are the
pieces :mod:`repro.models.decoder` pulls in, so they must not import the
model zoo back.  ``engine``, ``scheduler`` and ``admission`` sit above
the models/hardware layers and are loaded lazily on first attribute
access to keep the package acyclic.
"""

from __future__ import annotations

from .kv_cache import DecoderKVCache, LayerKV
from .metrics import RequestMetrics, ServingMetrics
from .sampling import SamplingParams, filter_logits, sample_logits

_LAZY = {
    "Engine": "api",
    "RequestHandle": "api",
    "SubmitResult": "api",
    "ServingHTTPServer": "server",
    "ServerThread": "server",
    "start_http_server": "server",
    "run_http_server": "server",
    "AlwaysAdmit": "admission",
    "CostModelAdmission": "admission",
    "LoadSheddingAdmission": "admission",
    "estimate_decode_step_ms": "admission",
    "ContinuousBatchScheduler": "scheduler",
    "Request": "scheduler",
    "StepEvent": "scheduler",
    "GenerationResult": "engine",
    "ServingEngine": "engine",
    "ResilienceConfig": "resilience",
    "SchedulerSnapshot": "resilience",
    "StepReport": "resilience",
    "resilient_step": "resilience",
    "ClusterEngine": "cluster",
    "derive_request_seed": "cluster",
    "WorkerConfig": "worker",
    "child_environment": "worker",
    "worker_main": "worker",
    "WORKER_FAULT_EXIT": "worker",
    "BLAS_PIN_VARS": "worker",
}

__all__ = [
    "AlwaysAdmit",
    "BLAS_PIN_VARS",
    "ClusterEngine",
    "ContinuousBatchScheduler",
    "CostModelAdmission",
    "DecoderKVCache",
    "Engine",
    "GenerationResult",
    "LayerKV",
    "LoadSheddingAdmission",
    "Request",
    "RequestHandle",
    "RequestMetrics",
    "ResilienceConfig",
    "SamplingParams",
    "SchedulerSnapshot",
    "ServerThread",
    "ServingEngine",
    "ServingHTTPServer",
    "ServingMetrics",
    "StepEvent",
    "StepReport",
    "SubmitResult",
    "WORKER_FAULT_EXIT",
    "WorkerConfig",
    "child_environment",
    "derive_request_seed",
    "estimate_decode_step_ms",
    "filter_logits",
    "resilient_step",
    "run_http_server",
    "sample_logits",
    "start_http_server",
    "worker_main",
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
