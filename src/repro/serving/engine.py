"""`ServingEngine`: the submit/stream/cancel API over continuous batching.

The engine wraps :class:`repro.serving.scheduler.ContinuousBatchScheduler`
with request-id management, per-request results, streaming iterators and
:class:`repro.serving.metrics.ServingMetrics`.  It is synchronous by
design — ``step()`` advances the world one token; ``run()`` drains it —
so behavior is deterministic and testable, while the API mirrors what an
async front-end would expose.

Typical use::

    engine = ServingEngine(model, max_batch_size=8)
    rid = engine.submit(prompt, SamplingParams(max_new_tokens=32, seed=0))
    for token in engine.stream(rid):
        ...                       # tokens arrive as the batch advances
    print(engine.metrics.aggregate())
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..faults import active as faults_active
from ..faults import get_injector
from ..telemetry import enabled as telemetry_enabled
from ..telemetry import get_registry, render_prometheus, span
from .api import RequestHandle
from .metrics import ServingMetrics
from .resilience import ResilienceConfig, resilient_step
from .sampling import SamplingParams
from .scheduler import (
    FINISH_CANCELLED,
    FINISH_DEADLINE,
    FINISH_SHED,
    ContinuousBatchScheduler,
    Request,
    StepEvent,
)


@dataclass
class GenerationResult:
    """Final state of one request: generated ids plus the finish reason."""

    request_id: int
    prompt: np.ndarray
    tokens: List[int] = field(default_factory=list)
    finish_reason: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.finish_reason is not None

    def full_sequence(self) -> np.ndarray:
        """Prompt and generated tokens as one id array."""
        return np.concatenate([
            np.asarray(self.prompt, dtype=np.int64).reshape(-1),
            np.asarray(self.tokens, dtype=np.int64),
        ])


class ServingEngine:
    """Batched inference engine over a KV-cached decoder language model.

    ``model`` must expose the incremental-decoding protocol of
    :class:`repro.models.decoder.ButterflyDecoderLM` (``config``,
    ``make_cache``, ``prefill``, ``decode_step``); the engine puts it in
    eval mode and never trains it.

    ``quantize`` serves a *storage-tier replica*: the model is run
    through :func:`repro.nn.quantize_for_inference` at construction and
    the engine decodes against the reduced-storage copy — ``"int8"``
    per-channel symmetric weights, ``"fp16"`` half-precision storage or
    ``"int4"`` grouped nibble-packed codes, all with dequant-on-the-fly
    kernels — while the caller's model object stays untouched in full
    precision.  This is the serving-side switch for the reduced-
    precision datapath the hardware model quantifies.

    ``backend`` selects the kernel execution backend (``"serial"`` /
    ``"threaded"``, :mod:`repro.kernels.backend`); every ``step()`` runs
    under it.  Backends never change numerics, so serial and threaded
    engines generate identical tokens.

    ``resilience`` (:class:`repro.serving.resilience.ResilienceConfig`)
    governs fault recovery, per-request deadlines and the slow-step
    watchdog.  The retry/rollback machinery engages only while a fault
    injector is installed (:mod:`repro.faults`); deadlines and the
    watchdog run whenever configured.
    """

    QUANTIZE_MODES = (None, "int8", "fp16", "int4")

    def __init__(
        self,
        model,
        max_batch_size: int = 8,
        admission=None,
        seed: int = 0,
        clock=None,
        quantize: Optional[str] = None,
        backend: Optional[str] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        if quantize not in self.QUANTIZE_MODES:
            raise ValueError(
                f"quantize must be one of {self.QUANTIZE_MODES}, got {quantize!r}"
            )
        self.quantize = quantize
        if backend is None:
            backend = getattr(getattr(model, "config", None), "backend", "serial")
        from ..kernels.backend import resolve_backend

        self._backend = resolve_backend(backend)  # validates the name eagerly
        if quantize is not None:
            from ..nn.quantized import quantize_for_inference

            model = quantize_for_inference(model, mode=quantize)
        self.scheduler = ContinuousBatchScheduler(
            model, max_batch_size=max_batch_size, admission=admission, seed=seed,
        )
        self.metrics = ServingMetrics(**({"clock": clock} if clock else {}))
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self._results: Dict[int, GenerationResult] = {}
        self._deadlines: Dict[int, float] = {}
        self._next_id = 0
        self._shut_down = False
        # Serializes every state mutation (submit/cancel/step/shutdown)
        # so a threaded front end — the asyncio HTTP control plane runs
        # steps on an executor thread while handlers submit from the
        # event loop — sees atomic transitions.  Reentrant: shutdown's
        # drain runs step() under the same lock.
        self._lock = threading.RLock()

    @property
    def backend(self) -> str:
        """Name of the kernel backend every step runs under."""
        return self._backend.name

    # ------------------------------------------------------------------
    @property
    def model(self):
        return self.scheduler.model

    @property
    def has_work(self) -> bool:
        return self.scheduler.has_work()

    def submit(
        self, prompt: np.ndarray, params: Optional[SamplingParams] = None
    ) -> RequestHandle:
        """Queue a prompt for generation; returns the request handle.

        The returned :class:`~repro.serving.api.RequestHandle` is an
        ``int`` subclass, so callers that treat it as the bare request
        id keep working (that view is the deprecated shim — prefer the
        handle's ``stream``/``result``/``finish_reason`` accessors).

        Validation happens before any engine state changes: an invalid
        prompt raises without burning a request id or leaving a
        half-registered result.  When the admission policy implements
        ``shed_reason`` (:class:`~repro.serving.admission.
        LoadSheddingAdmission`) and refuses the submission, the request
        is registered already finished with ``finish_reason="shed"``
        instead of joining the queue.
        """
        with self._lock:
            if self._shut_down:
                raise RuntimeError(
                    "engine is shut down and no longer admits requests"
                )
            params = params or SamplingParams()
            prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
            if prompt.size == 0:
                raise ValueError("request prompt must be non-empty")

            deadline_s = params.deadline_s
            if deadline_s is None:
                deadline_s = self.resilience.default_deadline_s

            shed_reason = getattr(
                self.scheduler.admission, "shed_reason", None
            )
            reason = (
                shed_reason(self.scheduler.queue_depth, deadline_s)
                if shed_reason is not None else None
            )
            if reason is not None:
                request_id = self._next_id
                self._next_id += 1
                result = GenerationResult(request_id, prompt)
                result.finish_reason = FINISH_SHED
                self._results[request_id] = result
                self.metrics.on_submit(request_id, prompt_tokens=prompt.size)
                self.metrics.on_finish(request_id, FINISH_SHED)
                self.metrics.registry.counter(
                    "serving_shed_total", reason=reason
                ).inc()
                return RequestHandle(request_id, self)

            request_id = self._next_id
            # add_request re-validates; only commit the id and register
            # engine-side state once the scheduler has accepted the
            # request.
            self.scheduler.add_request(Request(request_id, prompt, params))
            self._next_id += 1
            self._results[request_id] = GenerationResult(request_id, prompt)
            self.metrics.on_submit(request_id, prompt_tokens=prompt.size)
            if deadline_s is not None:
                self._deadlines[request_id] = self.metrics.clock() + deadline_s
            return RequestHandle(request_id, self)

    def cancel(self, request_id: int) -> bool:
        """Cancel a queued or running request; False if unknown/finished."""
        with self._lock:
            result = self._results.get(request_id)
            if result is None or result.finished:
                return False
            if not self.scheduler.cancel(request_id):
                return False
            # Queued requests vanish immediately; running rows are
            # dropped at the next step, which emits the cancellation
            # event.  Either way the result is final now.
            result.finish_reason = FINISH_CANCELLED
            self._deadlines.pop(request_id, None)
            self.metrics.on_finish(request_id, FINISH_CANCELLED)
            return True

    def result(self, request_id: int) -> GenerationResult:
        return self._results[request_id]

    # ------------------------------------------------------------------
    def _expire_deadlines(self) -> None:
        """Cancel live requests whose wall-clock deadline has passed."""
        if not self._deadlines:
            return
        now = self.metrics.clock()
        for request_id, expires_at in list(self._deadlines.items()):
            result = self._results[request_id]
            if result.finished:
                del self._deadlines[request_id]
                continue
            if now < expires_at:
                continue
            del self._deadlines[request_id]
            # The scheduler drops the row at the top of the next step and
            # emits a "cancelled" event; the engine-side reason recorded
            # here takes precedence (the event handler skips events whose
            # result is already final).
            self.scheduler.cancel(request_id)
            result.finish_reason = FINISH_DEADLINE
            self.metrics.on_finish(request_id, FINISH_DEADLINE)
            self.metrics.registry.counter(
                "serving_deadline_exceeded_total"
            ).inc()

    def step(self) -> List[StepEvent]:
        """Advance every live request by one token; record metrics.

        While a fault injector is active (:mod:`repro.faults`) and
        resilience is enabled, the scheduler step runs under
        :func:`~repro.serving.resilience.resilient_step`: injected
        transient faults roll the batch back and retry bit-identically;
        unrecoverable ones fail a single victim request with
        ``finish_reason="error"``.
        """
        from ..kernels.backend import use_backend

        with self._lock:
            if self._shut_down:
                return []
            self._expire_deadlines()
            config = self.resilience
            step_started = self.metrics.clock()
            with span("serve.step", batch=self.scheduler.batch_size,
                      queued=self.scheduler.queue_depth):
                with use_backend(self._backend):
                    if config.enabled and faults_active():
                        events, report = resilient_step(self.scheduler, config)
                        if report.retries:
                            self.metrics.registry.counter(
                                "serving_fault_retries_total"
                            ).inc(report.retries)
                        if report.rollbacks:
                            self.metrics.registry.counter(
                                "serving_fault_rollbacks_total"
                            ).inc(report.rollbacks)
                        if report.failed_events:
                            self.metrics.registry.counter(
                                "serving_request_errors_total"
                            ).inc(len(report.failed_events))
                    else:
                        events = self.scheduler.step()
            if (
                config.watchdog_step_s is not None
                and self.metrics.clock() - step_started > config.watchdog_step_s
            ):
                self.metrics.registry.counter(
                    "serving_watchdog_slow_steps_total").inc()
            for event in events:
                result = self._results[event.request_id]
                if event.token is not None:
                    result.tokens.append(event.token)
                    self.metrics.on_token(event.request_id)
                if event.finished and event.finish_reason != FINISH_CANCELLED \
                        and not result.finished:
                    result.finish_reason = event.finish_reason
                    self._deadlines.pop(event.request_id, None)
                    self.metrics.on_finish(
                        event.request_id, event.finish_reason
                    )
            self.metrics.on_step(
                queue_depth=self.scheduler.queue_depth,
                batch_size=self.scheduler.batch_size,
            )
            return events

    def metrics_snapshot(self) -> Dict[str, object]:
        """Aggregate summary plus every engine-local instrument's state.

        ``aggregate`` is :meth:`ServingMetrics.aggregate`;
        ``instruments`` maps ``name{labels}`` keys to counter/gauge
        values or histogram summaries (count/sum/min/max/mean/p50/p95/
        p99/buckets) from the engine-local registry.  When the global
        telemetry opt-in is on, process-wide instruments (kernel
        counters etc.) are included under ``global_instruments``.
        """
        snapshot: Dict[str, object] = {
            "aggregate": self.metrics.aggregate(),
            "instruments": self.metrics.registry.snapshot(),
        }
        if telemetry_enabled():
            snapshot["global_instruments"] = get_registry().snapshot()
        if faults_active():
            snapshot["faults"] = get_injector().snapshot()
        return snapshot

    def render_prometheus(self) -> str:
        """Engine-local metrics (plus the global registry when enabled)
        in the Prometheus text exposition format."""
        registries = [self.metrics.registry]
        if telemetry_enabled():
            registries.append(get_registry())
        return render_prometheus(*registries)

    def run(self, max_steps: Optional[int] = None) -> Dict[int, GenerationResult]:
        """Drain the queue and all running requests; return every result."""
        steps = 0
        while self.has_work:
            if max_steps is not None and steps >= max_steps:
                break
            made_progress = bool(self.step())
            steps += 1
            if not made_progress and self.scheduler.batch_size == 0:
                raise RuntimeError(
                    "scheduler made no progress: the admission policy "
                    "rejects every queued request"
                )
        return dict(self._results)

    # ------------------------------------------------------------------
    @property
    def shut_down(self) -> bool:
        """Whether :meth:`shutdown` has run; a shut-down engine refuses
        new submissions."""
        return self._shut_down

    def shutdown(
        self, drain: bool = True, max_steps: Optional[int] = None
    ) -> Dict[int, GenerationResult]:
        """Stop the engine; idempotent, and no stream is left hanging.

        With ``drain=True`` (the default) the engine first runs the
        queue and every in-flight request to completion (bounded by
        ``max_steps`` when given); with ``drain=False`` it stops
        immediately.  Either way, every request still live afterwards is
        flushed to a terminal ``finish_reason="cancelled"`` — results
        are final, :meth:`stream` iterators terminate instead of
        spinning on a batch that will never advance — and the scheduler
        is emptied so the batch KV cache is released.  Subsequent
        :meth:`submit` calls raise; repeated shutdowns are no-ops
        returning the same results.
        """
        with self._lock:
            if self._shut_down:
                return dict(self._results)
            if drain:
                self.run(max_steps)
            self._shut_down = True
            for request_id, result in self._results.items():
                if result.finished:
                    continue
                # Flush the pending terminal event engine-side: the
                # scheduler would only emit it on a step that will never
                # happen now.
                self.scheduler.cancel(request_id)
                result.finish_reason = FINISH_CANCELLED
                self._deadlines.pop(request_id, None)
                self.metrics.on_finish(request_id, FINISH_CANCELLED)
            self.scheduler.active.clear()
            self.scheduler.waiting.clear()
            self.scheduler.cache = None
            self._deadlines.clear()
            return dict(self._results)

    def drain(
        self, timeout_s: Optional[float] = None
    ) -> Dict[int, GenerationResult]:
        """Graceful stop (:class:`~repro.serving.api.Engine` protocol):
        finish every queued and in-flight request, then shut down.

        Raises ``TimeoutError`` when ``timeout_s`` (measured on the
        engine clock) elapses with work still live — a hung request is
        an error, not a silent stall.  Idempotent.
        """
        deadline = (
            None if timeout_s is None else self.metrics.clock() + timeout_s
        )
        while True:
            with self._lock:
                if self._shut_down or not self.has_work:
                    return self.shutdown(drain=False)
                self.step()
            if deadline is not None and self.metrics.clock() > deadline:
                live = [
                    rid for rid, r in self._results.items() if not r.finished
                ]
                raise TimeoutError(
                    f"requests {live} unfinished after {timeout_s}s"
                )

    def close(self) -> Dict[int, GenerationResult]:
        """Hard stop (:class:`~repro.serving.api.Engine` protocol):
        equivalent to ``shutdown(drain=False)`` — still-live requests
        are flushed to ``finish_reason="cancelled"``.  Idempotent."""
        return self.shutdown(drain=False)

    def health(self) -> Dict[str, object]:
        """Liveness summary (:class:`~repro.serving.api.Engine`
        protocol).  A single in-process engine is one implicit worker:
        healthy until shut down."""
        healthy = not self._shut_down
        return {
            "healthy": healthy,
            "workers_alive": 1 if healthy else 0,
            "workers_total": 1,
            "workers": {0: {"alive": healthy, "restarts": 0}},
        }

    def stream(self, request_id: int) -> Iterator[int]:
        """Yield the request's tokens as they are generated.

        Drives :meth:`step` while the request is live, so other
        in-flight requests advance alongside it (their tokens are
        recorded in their own results).  Safe against a concurrent
        :meth:`shutdown`: the iterator observes the flushed
        ``finish_reason="cancelled"`` and terminates instead of
        stepping an emptied scheduler (or hanging).
        """
        if request_id not in self._results:
            raise KeyError(f"unknown request id {request_id}")
        emitted = 0
        while True:
            result = self._results[request_id]
            while emitted < len(result.tokens):
                yield result.tokens[emitted]
                emitted += 1
            if result.finished:
                return
            with self._lock:
                # Re-check under the lock: a shutdown that won the race
                # has already flushed every live request to "cancelled"
                # (atomically, under this same lock), so the next top-of-
                # loop iteration observes the terminal state and returns.
                if result.finished or self._shut_down:
                    continue
                if not self.has_work:
                    return
                if not self.step() and self.scheduler.batch_size == 0:
                    raise RuntimeError(
                        "scheduler made no progress: the admission policy "
                        "rejects every queued request"
                    )
