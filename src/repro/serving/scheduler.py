"""Continuous-batching scheduler: queue, admission, prefill/decode interleave.

One :meth:`ContinuousBatchScheduler.step` advances every in-flight
sequence by exactly one token:

1. rows cancelled since the last step are dropped from the batch cache;
2. running rows take a batched single-token decode against the shared
   KV cache — except rows at the ``max_len`` sliding-window edge, which
   are re-prefilled from their clipped window (absolute positions shift,
   so cached keys cannot be reused across the slide);
3. finished rows (stop token or per-request token budget) are compacted
   out of the cache;
4. queued requests are admitted into the freed capacity — bounded by the
   batch-size cap and the pluggable admission policy — and prefilled,
   producing their first token in the same step (their TTFT).

The scheduler owns no timing or result bookkeeping; it emits
:class:`StepEvent` records that :class:`repro.serving.engine.ServingEngine`
turns into metrics and per-request results.  Sequences keep dedicated
RNGs (seeded per request) so sampled output is reproducible regardless
of how requests are interleaved into batches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..faults import fault_point
from ..telemetry import counter_inc, span
from .kv_cache import DecoderKVCache
from .sampling import SamplingParams, sample_logits

FINISH_LENGTH = "length"
FINISH_STOP = "stop"
FINISH_CANCELLED = "cancelled"
FINISH_ERROR = "error"
FINISH_DEADLINE = "deadline"
FINISH_SHED = "shed"


@dataclass(frozen=True)
class Request:
    """A prompt plus sampling parameters, as queued by the engine."""

    request_id: int
    prompt: np.ndarray
    params: SamplingParams


@dataclass(frozen=True)
class StepEvent:
    """One generated-token (or cancellation) event from a scheduler step."""

    request_id: int
    token: Optional[int]
    index: int  # 0-based position among the request's generated tokens
    first: bool
    finished: bool
    finish_reason: Optional[str] = None


class _Sequence:
    """Scheduler-internal state of one in-flight request."""

    __slots__ = ("request", "tokens", "generated", "rng", "cancelled")

    def __init__(self, request: Request, rng: np.random.Generator) -> None:
        self.request = request
        self.tokens: List[int] = [int(t) for t in np.asarray(request.prompt).reshape(-1)]
        self.generated: List[int] = []
        self.rng = rng
        self.cancelled = False

    def window(self, max_len: int) -> np.ndarray:
        return np.asarray(self.tokens[-max_len:], dtype=np.int64)

    def sample(self, logits_row: np.ndarray) -> int:
        fault_point("serving.sample", request_id=self.request.request_id)
        params = self.request.params
        token = int(sample_logits(
            logits_row, temperature=params.temperature,
            top_k=params.top_k, top_p=params.top_p, rng=self.rng,
        ))
        self.generated.append(token)
        self.tokens.append(token)
        return token

    # -- step-snapshot support (repro.serving.resilience) --------------
    def capture_state(self) -> tuple:
        """Everything a retried step must see unchanged: token history
        and the sampling RNG's exact position in its stream."""
        return (
            list(self.tokens), list(self.generated),
            self.rng.bit_generator.state, self.cancelled,
        )

    def restore_state(self, state: tuple) -> None:
        tokens, generated, rng_state, cancelled = state
        self.tokens = list(tokens)
        self.generated = list(generated)
        self.rng.bit_generator.state = rng_state
        self.cancelled = cancelled

    def finish_reason(self) -> Optional[str]:
        params = self.request.params
        if params.stop_token is not None and self.generated[-1] == params.stop_token:
            return FINISH_STOP
        if len(self.generated) >= params.max_new_tokens:
            return FINISH_LENGTH
        return None


class ContinuousBatchScheduler:
    """Interleaves prefill and decode over a bounded, compacting batch."""

    def __init__(
        self,
        model,
        max_batch_size: int = 8,
        admission=None,
        seed: int = 0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        model.eval()
        self.model = model
        self.max_batch_size = max_batch_size
        self.admission = admission
        self.seed = seed
        self.waiting: Deque[_Sequence] = deque()
        self.active: List[_Sequence] = []
        self.cache: Optional[DecoderKVCache] = None

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self.waiting)

    @property
    def batch_size(self) -> int:
        return len(self.active)

    def has_work(self) -> bool:
        return bool(self.waiting or self.active)

    def add_request(self, request: Request) -> None:
        if request.prompt is None or np.asarray(request.prompt).size == 0:
            raise ValueError("request prompt must be non-empty")
        seed = request.params.seed
        if seed is None:
            # Derive a stable per-request stream from the scheduler seed.
            seed_seq = np.random.SeedSequence([self.seed, request.request_id])
            rng = np.random.default_rng(seed_seq)
        else:
            rng = np.random.default_rng(seed)
        self.waiting.append(_Sequence(request, rng))

    def fail_request(
        self, request_id: int, reason: str = FINISH_ERROR
    ) -> Optional[StepEvent]:
        """Evict a queued or running request with a terminal ``reason``.

        The resilience layer calls this when retries are exhausted or a
        fatal fault names a victim: the request leaves the batch (its
        cache row is compacted out) and only *it* fails — the rest of
        the continuous batch keeps decoding.  Returns the terminal
        event, or None when the id is not live.
        """
        for i, seq in enumerate(self.active):
            if seq.request.request_id == request_id:
                self._drop_rows([i])
                return StepEvent(
                    request_id=request_id, token=None,
                    index=len(seq.generated), first=False,
                    finished=True, finish_reason=reason,
                )
        for seq in self.waiting:
            if seq.request.request_id == request_id:
                self.waiting.remove(seq)
                return StepEvent(
                    request_id=request_id, token=None,
                    index=len(seq.generated), first=False,
                    finished=True, finish_reason=reason,
                )
        return None

    def cancel(self, request_id: int) -> bool:
        """Mark a queued or running request cancelled; True if it was live."""
        for seq in self.waiting:
            if seq.request.request_id == request_id:
                self.waiting.remove(seq)
                return True
        for seq in self.active:
            if seq.request.request_id == request_id and not seq.cancelled:
                seq.cancelled = True
                return True
        return False

    # ------------------------------------------------------------------
    def _admit_allowed(self, prospective_batch: int) -> bool:
        if prospective_batch > self.max_batch_size:
            return False
        if self.admission is None:
            return True
        allowed = self.admission.admit(prospective_batch)
        if not allowed:
            counter_inc("serving_admission_reject_total")
        return allowed

    def _prefill_one(self, seq: _Sequence) -> Tuple[np.ndarray, DecoderKVCache]:
        """Prefill a single sequence's clipped window into a fresh cache."""
        fault_point("serving.prefill", request_id=seq.request.request_id)
        window = seq.window(self.model.config.max_len)
        cache = self.model.make_cache(1)
        logits = self.model.prefill(window[None, :], cache)
        return logits[0], cache

    def _drop_rows(self, drop: List[int]) -> None:
        """Compact ``drop`` row indices out of the batch cache and active set."""
        if not drop:
            return
        keep = [i for i in range(len(self.active)) if i not in set(drop)]
        self.active = [self.active[i] for i in keep]
        self.cache = self.cache.select_rows(keep) if keep else None

    # ------------------------------------------------------------------
    def step(self) -> List[StepEvent]:
        """Advance every live sequence by one token; admit new requests."""
        events: List[StepEvent] = []

        # 1. Purge rows cancelled since the previous step.
        cancelled_rows = [i for i, s in enumerate(self.active) if s.cancelled]
        for i in cancelled_rows:
            seq = self.active[i]
            events.append(StepEvent(
                request_id=seq.request.request_id, token=None,
                index=len(seq.generated), first=False,
                finished=True, finish_reason=FINISH_CANCELLED,
            ))
        self._drop_rows(cancelled_rows)

        # 2. Decode the running batch (re-prefilling rows at the window edge).
        finished_rows: List[int] = []
        if self.active:
            with span("serve.decode", batch=len(self.active)):
                full = self.cache.rows_full()
                if not full.any():
                    # Hot path: decode in place on the shared batch cache,
                    # no row copies.
                    fault_point("serving.decode_step", batch=len(self.active))
                    pending = np.asarray(
                        [s.tokens[-1] for s in self.active], dtype=np.int64
                    )
                    row_logits = list(self.model.decode_step(pending, self.cache))
                else:
                    decode_rows = [i for i in range(len(self.active)) if not full[i]]
                    refill_rows = [i for i in range(len(self.active)) if full[i]]

                    # Reorder so cache rows keep matching self.active after
                    # the merge: surviving decode rows first, re-prefilled
                    # appended.
                    decode_seqs = [self.active[i] for i in decode_rows]
                    refill_seqs = [self.active[i] for i in refill_rows]
                    caches = []
                    row_logits = []
                    if decode_seqs:
                        fault_point("serving.decode_step",
                                    batch=len(decode_seqs))
                        decode_cache = self.cache.select_rows(decode_rows)
                        pending = np.asarray(
                            [s.tokens[-1] for s in decode_seqs], dtype=np.int64
                        )
                        logits = self.model.decode_step(pending, decode_cache)
                        row_logits.extend(logits)
                        caches.append(decode_cache)
                    counter_inc("serving_window_refills_total",
                                amount=len(refill_seqs))
                    for seq in refill_seqs:
                        # The pending token is already in seq.tokens, so the
                        # clipped window ends with it and prefill yields the
                        # same next-token logits a (impossible) decode past
                        # max_len would have.
                        logits_row, cache_one = self._prefill_one(seq)
                        row_logits.append(logits_row)
                        caches.append(cache_one)
                    self.active = decode_seqs + refill_seqs
                    self.cache = DecoderKVCache.merge(caches)

            with span("serve.sample", batch=len(self.active)):
                for row, seq in enumerate(self.active):
                    token = seq.sample(row_logits[row])
                    reason = seq.finish_reason()
                    events.append(StepEvent(
                        request_id=seq.request.request_id, token=token,
                        index=len(seq.generated) - 1, first=False,
                        finished=reason is not None, finish_reason=reason,
                    ))
                    if reason is not None:
                        finished_rows.append(row)
        self._drop_rows(finished_rows)

        # 3. Admit + prefill queued requests into the freed capacity.
        admitted: List[_Sequence] = []
        admitted_caches: List[DecoderKVCache] = []
        if self.waiting:
            with span("serve.prefill", queued=len(self.waiting)):
                while self.waiting and self._admit_allowed(
                    len(self.active) + len(admitted) + 1
                ):
                    seq = self.waiting.popleft()
                    counter_inc("serving_admission_accept_total")
                    logits_row, cache_one = self._prefill_one(seq)
                    token = seq.sample(logits_row)
                    reason = seq.finish_reason()
                    events.append(StepEvent(
                        request_id=seq.request.request_id, token=token,
                        index=0, first=True,
                        finished=reason is not None, finish_reason=reason,
                    ))
                    if reason is None:
                        admitted.append(seq)
                        admitted_caches.append(cache_one)
        if admitted_caches:
            caches = ([self.cache] if self.cache is not None else []) + admitted_caches
            self.cache = DecoderKVCache.merge(caches)
            self.active.extend(admitted)
        return events
