"""Per-layer key/value caches for incremental decoder inference.

A :class:`DecoderKVCache` holds, for every decoder block, the projected
keys and values of all tokens seen so far, so a decode step only runs
the projections for the newest token and attends against the cache
(O(T) per token instead of the O(T^2) full-window recompute the seed
``generate`` loop performed).

Rows are per-request: ``lengths[b]`` tracks how many cached positions
row ``b`` holds, so a single cache serves a continuously-batched set of
sequences at different context lengths (padded slots are masked inside
attention).  Rows can be dropped (:meth:`select_rows`) when sequences
finish and caches can be concatenated (:meth:`merge`) when freshly
prefilled requests join the running batch — the two compaction
primitives the scheduler builds on.

Capacity is fixed at ``max_len`` (the model's positional-embedding
horizon).  The sliding-window eviction policy lives one level up: the
model uses learned *absolute* positions, so once a row reaches
``max_len`` its cached keys cannot simply shift — the caller re-prefills
the clipped window instead (see ``ButterflyDecoderLM.generate`` and the
scheduler), which keeps incremental decoding exactly equivalent to the
full-window recompute at the boundary.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..kernels.dtype import get_default_dtype


class LayerKV:
    """Cached keys/values of one attention layer: ``(batch, heads, max_len, d_head)``."""

    __slots__ = ("_cache", "k", "v")

    def __init__(self, cache: "DecoderKVCache", k: np.ndarray, v: np.ndarray) -> None:
        self._cache = cache
        self.k = k
        self.v = v

    @property
    def lengths(self) -> np.ndarray:
        """Valid positions per row (shared across all layers of the cache)."""
        return self._cache.lengths

    def write(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Store ``(batch, heads, s_new, d_head)`` projections at each row's tail."""
        batch, _, s_new, _ = k_new.shape
        if batch != self.k.shape[0]:
            raise ValueError(
                f"batch mismatch: cache has {self.k.shape[0]} rows, got {batch}"
            )
        positions = self.lengths[:, None] + np.arange(s_new)[None, :]
        if positions.size and positions.max() >= self.k.shape[2]:
            raise ValueError(
                f"cache overflow: writing positions up to {positions.max()} "
                f"into capacity {self.k.shape[2]} (re-prefill the window instead)"
            )
        rows = np.arange(batch)[:, None]
        self.k[rows, :, positions] = np.swapaxes(k_new, 1, 2)
        self.v[rows, :, positions] = np.swapaxes(v_new, 1, 2)

    def view(self, total: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached keys/values truncated to ``total`` positions."""
        return self.k[:, :, :total], self.v[:, :, :total]


class DecoderKVCache:
    """Key/value cache for every block of a decoder, batched over requests."""

    def __init__(
        self,
        n_layers: int,
        batch: int,
        n_heads: int,
        d_head: int,
        max_len: int,
        dtype=None,
    ) -> None:
        if n_layers < 1 or batch < 0 or n_heads < 1 or d_head < 1 or max_len < 1:
            raise ValueError("cache dimensions must be positive")
        dtype = dtype or get_default_dtype()
        self.n_layers = n_layers
        self.n_heads = n_heads
        self.d_head = d_head
        self.max_len = max_len
        self.dtype = np.dtype(dtype)
        self.lengths = np.zeros(batch, dtype=np.int64)
        shape = (batch, n_heads, max_len, d_head)
        self._layers = [
            LayerKV(self, np.zeros(shape, dtype=dtype), np.zeros(shape, dtype=dtype))
            for _ in range(n_layers)
        ]

    # ------------------------------------------------------------------
    @property
    def batch(self) -> int:
        return self.lengths.shape[0]

    def layer(self, index: int) -> LayerKV:
        return self._layers[index]

    def advance(self, s_new: int) -> None:
        """Commit ``s_new`` freshly written positions on every row."""
        self.lengths = self.lengths + s_new

    def free_slots(self) -> np.ndarray:
        """Remaining capacity per row before the sliding-window edge."""
        return self.max_len - self.lengths

    def rows_full(self) -> np.ndarray:
        """Boolean mask of rows that hit ``max_len`` (need window re-prefill)."""
        return self.lengths >= self.max_len

    def clone(self) -> "DecoderKVCache":
        """Deep copy of every layer's keys/values and the length vector.

        This is the KV half of the resilience layer's step snapshot
        (:mod:`repro.serving.resilience`): a clone taken before a decode
        step, restored after an injected fault, makes the retried step
        bit-identical to the failed attempt's starting state.
        """
        out = DecoderKVCache(
            self.n_layers, 0, self.n_heads, self.d_head,
            self.max_len, dtype=self.dtype,
        )
        out.lengths = self.lengths.copy()
        for src, dst in zip(self._layers, out._layers):
            dst.k = src.k.copy()
            dst.v = src.v.copy()
        return out

    # ------------------------------------------------------------------
    # Continuous-batching primitives
    # ------------------------------------------------------------------
    def select_rows(self, rows: Sequence[int]) -> "DecoderKVCache":
        """New cache holding only ``rows``, in the given order (compaction)."""
        rows = np.asarray(rows, dtype=np.int64)
        out = DecoderKVCache(
            self.n_layers, len(rows), self.n_heads, self.d_head,
            self.max_len, dtype=self.dtype,
        )
        out.lengths = self.lengths[rows].copy()
        for src, dst in zip(self._layers, out._layers):
            dst.k[...] = src.k[rows]
            dst.v[...] = src.v[rows]
        return out

    @staticmethod
    def merge(caches: Sequence["DecoderKVCache"]) -> "DecoderKVCache":
        """Concatenate cache rows (new requests joining the running batch)."""
        caches = [c for c in caches if c is not None and c.batch > 0]
        if not caches:
            raise ValueError("merge requires at least one non-empty cache")
        first = caches[0]
        for other in caches[1:]:
            if (
                other.n_layers != first.n_layers
                or other.n_heads != first.n_heads
                or other.d_head != first.d_head
                or other.max_len != first.max_len
            ):
                raise ValueError("cannot merge caches of different geometry")
        total_batch = sum(c.batch for c in caches)
        out = DecoderKVCache(
            first.n_layers, 0, first.n_heads,
            first.d_head, first.max_len, dtype=first.dtype,
        )
        out.lengths = np.concatenate([c.lengths for c in caches])
        # Allocate uninitialized and slice-assign each source (rather than
        # zero-fill + np.concatenate temporaries): merge sits on the
        # scheduler's admission path, so the memory traffic matters.  The
        # slice assignments below cover every row, and every source buffer
        # is itself zeros-born (__init__/select_rows) — so no slot is ever
        # truly uninitialized, an invariant the attention kernels' masking
        # relies on (stale slots are finite, never NaN).
        shape = (total_batch, first.n_heads, first.max_len, first.d_head)
        for layer_idx in range(first.n_layers):
            layer = out._layers[layer_idx]
            layer.k = np.empty(shape, dtype=first.dtype)
            layer.v = np.empty(shape, dtype=first.dtype)
            offset = 0
            for cache in caches:
                src = cache._layers[layer_idx]
                layer.k[offset:offset + cache.batch] = src.k
                layer.v[offset:offset + cache.batch] = src.v
                offset += cache.batch
        return out
