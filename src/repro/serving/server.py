"""Asyncio HTTP/1.1 control plane over the unified ``Engine`` protocol.

This is the serving front door the ROADMAP's "serve heavy traffic"
direction calls for: a dependency-free (stdlib ``asyncio`` + a minimal
HTTP/1.1 handler) server that speaks to *any*
:class:`~repro.serving.api.Engine` conformer, so ``--workers 1``
(:class:`~repro.serving.engine.ServingEngine`) and ``--workers N``
(:class:`~repro.serving.cluster.ClusterEngine`) are literally the same
code path.

Endpoints
    ``POST /v1/generate``
        JSON body ``{"prompt": [ids], "max_new_tokens", "temperature",
        "top_k", "top_p", "seed", "stop_token", "deadline_s",
        "stream"}``.  Blocking by default (JSON response with the full
        token list); with ``"stream": true`` the response is
        Server-Sent Events over chunked transfer encoding — a ``start``
        event carrying the request id, one ``data:`` event per token,
        then a terminal event with the finish reason.
    ``POST /v1/cancel``
        JSON body ``{"request_id": id}``; cancels a queued or running
        request (e.g. mid-stream from another connection).
    ``GET /healthz``
        Engine liveness (``engine.health()``): 200 while healthy, 503
        once workers are gone or the engine is closed/draining.
    ``GET /metrics``
        Prometheus text exposition (``engine.render_prometheus()``),
        which includes the per-endpoint HTTP counters/histograms the
        server records into the engine-local registry.

Concurrency model
    The engines are synchronous and thread-safe (an internal
    ``RLock``); the event loop must never block on a decode step.  A
    single **dispatcher task** owns engine stepping: it runs
    ``engine.step()`` on a one-thread executor and, after each step,
    routes newly generated tokens to per-request ``asyncio.Queue``s
    that the handler coroutines consume.  Handlers call
    ``submit``/``cancel`` through the same executor, so every engine
    operation is serialized off-loop and the event loop stays free to
    accept connections and flush streams.

Backpressure & deadlines are enforced at the HTTP boundary: an
engine-level :class:`~repro.serving.admission.LoadSheddingAdmission`
shed surfaces as **429** with a ``Retry-After`` hint, and a request's
``deadline_s`` rides into :class:`~repro.serving.sampling.
SamplingParams` so the engine's deadline machinery cancels it with
``finish_reason="deadline"`` (**504** on the blocking path).

On SIGTERM/SIGINT (:func:`run_http_server`) the server stops accepting
connections, keeps the dispatcher stepping until every in-flight
request — streaming or blocking — has finished, then stops.
:class:`ServerThread` wraps the same server in a background thread with
its own event loop for tests, benches and the CLI self-test.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

import numpy as np

from .metrics import LATENCY_MS_BOUNDARIES
from .sampling import SamplingParams
from .scheduler import FINISH_DEADLINE, FINISH_ERROR, FINISH_SHED

__all__ = [
    "ServingHTTPServer",
    "ServerThread",
    "start_http_server",
    "run_http_server",
]

#: Sampling fields accepted in a /v1/generate body (everything else in
#: the request object is a server-level field or an error).
_PARAM_FIELDS = (
    "max_new_tokens", "temperature", "top_k", "top_p",
    "seed", "stop_token", "deadline_s",
)
_SERVER_FIELDS = ("prompt", "stream")

_REASON_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Blocking-path HTTP status per terminal finish reason.  ``length`` /
#: ``stop`` / ``cancelled`` are successful request lifecycles (the body
#: carries the reason); shed, deadline and engine error map to the
#: standard overload / timeout / server-fault codes.
_FINISH_STATUS = {
    FINISH_SHED: 429,
    FINISH_DEADLINE: 504,
    FINISH_ERROR: 500,
}


class _BadRequest(Exception):
    """Client error: carries the HTTP status and a message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _Tracked:
    """Dispatcher-side record of one in-flight HTTP request."""

    __slots__ = ("request_id", "queue", "delivered", "done")

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        #: token / sentinel queue consumed by the handler coroutine.
        self.queue: asyncio.Queue = asyncio.Queue()
        #: how many engine-side tokens were already routed.
        self.delivered = 0
        self.done = False


class ServingHTTPServer:
    """Asyncio HTTP front end over one :class:`~repro.serving.api.Engine`.

    ``engine`` may be any protocol conformer; the server never touches
    anything engine-specific.  ``own_engine=True`` makes ``stop()``
    close the engine as well (the CLI path); tests usually keep the
    engine alive to inspect results after the server exits.

    ``step_idle_s`` paces the dispatcher when a step makes no progress
    (idle engine, cluster waiting on worker pipes) so an idle server
    doesn't spin a core.  ``drain_timeout_s`` bounds the stop-time
    drain; ``None`` waits indefinitely.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 1 << 20,
        step_idle_s: float = 0.002,
        drain_timeout_s: Optional[float] = 30.0,
        own_engine: bool = False,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.step_idle_s = step_idle_s
        self.drain_timeout_s = drain_timeout_s
        self.own_engine = own_engine
        self.registry = engine.metrics.registry
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        # One worker on purpose: engine calls are serialized off-loop in
        # submission order, and the engine lock is never contended from
        # the server side.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-http-engine"
        )
        self._tracked: Dict[int, _Tracked] = {}
        self._stopping = False
        self._stopped = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "ServingHTTPServer":
        """Bind the listening socket and start the dispatcher task."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-http-dispatcher"
        )
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting; optionally drain in-flight requests; stop.

        With ``drain=True`` the dispatcher keeps stepping the engine
        until every tracked request has reached a terminal state (bounded
        by ``drain_timeout_s``); with ``drain=False`` live requests are
        cancelled first so their streams terminate with
        ``finish_reason="cancelled"``.  Idempotent.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if not drain:
            for tracked in list(self._tracked.values()):
                await self._engine_call(self.engine.cancel, tracked.request_id)
        try:
            await asyncio.wait_for(
                self._await_drained(), timeout=self.drain_timeout_s
            )
        except asyncio.TimeoutError:
            self.registry.counter("http_drain_timeouts_total").inc()
            for tracked in list(self._tracked.values()):
                await self._engine_call(self.engine.cancel, tracked.request_id)
            await self._await_drained()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self.own_engine:
            await self._engine_call(self.engine.close)
        self._executor.shutdown(wait=True)
        self._stopped.set()

    async def _await_drained(self) -> None:
        while self._tracked:
            await asyncio.sleep(self.step_idle_s)

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` runs (e.g. from a signal handler)."""
        await self._stopped.wait()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain-then-stop (main thread only)."""
        import signal as _signal

        loop = asyncio.get_running_loop()
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.stop(drain=True))
            )

    def _engine_call(self, fn, *args):
        """Run an engine method on the serialized executor thread."""
        return self._loop.run_in_executor(self._executor, fn, *args)

    # -- dispatcher ----------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """The single engine-stepping task.

        Steps the engine off-loop whenever work exists, then routes new
        tokens / terminal states to the per-request queues.  Runs until
        cancelled by :meth:`stop` (it must outlive the accept loop so
        in-flight requests finish during drain).
        """
        while True:
            progressed = False
            if self._tracked or self.engine.has_work:
                try:
                    await self._engine_call(self.engine.step)
                except Exception:
                    self.registry.counter("http_step_errors_total").inc()
                progressed = self._route_tokens()
            if not progressed:
                await asyncio.sleep(self.step_idle_s)

    def _route_tokens(self) -> bool:
        """Push newly generated tokens/finishes into request queues.

        Runs on the event loop between executor steps, so it never races
        an in-progress ``step`` (the dispatcher is the only step
        driver); appended tokens are immutable once visible.
        """
        progressed = False
        for request_id in list(self._tracked):
            tracked = self._tracked[request_id]
            result = self.engine.result(request_id)
            tokens = result.tokens
            while tracked.delivered < len(tokens):
                tracked.queue.put_nowait(("token", tokens[tracked.delivered]))
                tracked.delivered += 1
                progressed = True
            if result.finished and not tracked.done:
                tracked.done = True
                tracked.queue.put_nowait(("finish", result.finish_reason))
                del self._tracked[request_id]
                progressed = True
        return progressed

    # -- HTTP plumbing -------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = self.engine.metrics.clock()
        endpoint = "unknown"
        status = 500
        try:
            try:
                method, path, headers = await asyncio.wait_for(
                    self._read_head(reader), timeout=10.0
                )
            except asyncio.TimeoutError:
                status = 408
                await self._respond_json(
                    writer, 408, {"error": "request header timeout"}
                )
                return
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return  # client went away before sending a request
            endpoint = f"{method} {path}"
            try:
                body = await self._read_body(reader, headers)
                status = await self._route(
                    writer, method, path, body
                )
            except _BadRequest as exc:
                status = exc.status
                await self._respond_json(
                    writer, exc.status, {"error": exc.message}
                )
        except (ConnectionResetError, BrokenPipeError):
            status = 499  # client disconnected mid-response
        finally:
            elapsed_ms = (self.engine.metrics.clock() - started) * 1e3
            self.registry.counter(
                "http_requests_total", endpoint=endpoint, status=status
            ).inc()
            self.registry.histogram(
                "http_request_ms",
                boundaries=LATENCY_MS_BOUNDARIES,
                endpoint=endpoint,
            ).observe(elapsed_ms)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _BadRequest(400, f"malformed request line: {request_line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        length = int(headers.get("content-length", "0") or "0")
        if length > self.max_body_bytes:
            raise _BadRequest(
                413, f"body of {length} bytes exceeds {self.max_body_bytes}"
            )
        if length <= 0:
            return b""
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), timeout=10.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            raise _BadRequest(400, "request body shorter than Content-Length")

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> int:
        if path == "/healthz":
            if method != "GET":
                return await self._method_not_allowed(writer, "GET")
            return await self._handle_healthz(writer)
        if path == "/metrics":
            if method != "GET":
                return await self._method_not_allowed(writer, "GET")
            return await self._handle_metrics(writer)
        if path == "/v1/generate":
            if method != "POST":
                return await self._method_not_allowed(writer, "POST")
            return await self._handle_generate(writer, body)
        if path == "/v1/cancel":
            if method != "POST":
                return await self._method_not_allowed(writer, "POST")
            return await self._handle_cancel(writer, body)
        await self._respond_json(
            writer, 404, {"error": f"no such endpoint: {path}"}
        )
        return 404

    async def _method_not_allowed(
        self, writer: asyncio.StreamWriter, allowed: str
    ) -> int:
        await self._respond_json(
            writer, 405, {"error": f"method not allowed; use {allowed}"},
            extra_headers=[("Allow", allowed)],
        )
        return 405

    # -- endpoints -----------------------------------------------------
    async def _handle_healthz(self, writer: asyncio.StreamWriter) -> int:
        health = self.engine.health()
        healthy = bool(health.get("healthy")) and not self._stopping
        status = 200 if healthy else 503
        payload = dict(health)
        payload["healthy"] = healthy
        payload["draining"] = self._stopping
        # JSON object keys must be strings; worker slots are ints.
        if isinstance(payload.get("workers"), dict):
            payload["workers"] = {
                str(slot): info for slot, info in payload["workers"].items()
            }
        await self._respond_json(writer, status, payload)
        return status

    async def _handle_metrics(self, writer: asyncio.StreamWriter) -> int:
        text = self.engine.render_prometheus()
        await self._respond(
            writer, 200, text.encode("utf-8"),
            content_type="text/plain; version=0.0.4",
        )
        return 200

    def _parse_generate(self, body: bytes):
        request = _parse_json_object(body)
        unknown = sorted(
            set(request) - set(_SERVER_FIELDS) - set(_PARAM_FIELDS)
        )
        if unknown:
            raise _BadRequest(400, f"unknown fields: {', '.join(unknown)}")
        prompt = request.get("prompt")
        if not isinstance(prompt, list) or not prompt or not all(
            isinstance(token, int) and not isinstance(token, bool)
            for token in prompt
        ):
            raise _BadRequest(
                400, "prompt must be a non-empty list of token ids"
            )
        stream = request.get("stream", False)
        if not isinstance(stream, bool):
            raise _BadRequest(400, "stream must be a boolean")
        fields = {
            name: request[name] for name in _PARAM_FIELDS if name in request
        }
        try:
            params = SamplingParams(**fields)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(400, f"invalid sampling params: {exc}")
        return np.asarray(prompt, dtype=np.int64), params, stream

    async def _handle_generate(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> int:
        prompt, params, stream = self._parse_generate(body)
        if self._stopping:
            await self._respond_json(
                writer, 503, {"error": "server is draining"},
                extra_headers=[("Retry-After", "1")],
            )
            return 503
        try:
            handle = await self._engine_call(
                self.engine.submit, prompt, params
            )
        except RuntimeError as exc:  # engine draining/closed under us
            await self._respond_json(writer, 503, {"error": str(exc)})
            return 503
        request_id = int(handle)
        result = self.engine.result(request_id)
        if result.finished and result.finish_reason == FINISH_SHED:
            await self._respond_json(
                writer, 429,
                {"error": "request shed: engine overloaded",
                 "request_id": request_id, "finish_reason": FINISH_SHED},
                extra_headers=[("Retry-After", self._retry_after())],
            )
            return 429
        # Track *after* submit returns: any tokens generated in between
        # are still in result.tokens, so the dispatcher's first routing
        # pass delivers them (and the terminal state, even if the
        # request already finished — e.g. an at-submit deadline).
        tracked = _Tracked(request_id)
        self._tracked[request_id] = tracked
        if stream:
            return await self._stream_response(writer, request_id, tracked)
        return await self._blocking_response(writer, request_id, tracked)

    def _retry_after(self) -> str:
        """Retry hint from the admission cost model when available."""
        admission = getattr(
            getattr(self.engine, "scheduler", None), "admission", None
        ) or getattr(self.engine, "admission", None)
        est = getattr(admission, "est_step_s", None)
        depth = getattr(admission, "max_queue_depth", None)
        if est and depth:
            return f"{max(est * depth, 0.001):.3f}"
        return "1"

    async def _blocking_response(
        self, writer: asyncio.StreamWriter, request_id: int, tracked: _Tracked
    ) -> int:
        tokens = []
        while True:
            kind, value = await tracked.queue.get()
            if kind == "token":
                tokens.append(int(value))
            else:
                finish_reason = value
                break
        status = _FINISH_STATUS.get(finish_reason, 200)
        await self._respond_json(writer, status, {
            "request_id": request_id,
            "tokens": tokens,
            "finish_reason": finish_reason,
        })
        return status

    async def _stream_response(
        self, writer: asyncio.StreamWriter, request_id: int, tracked: _Tracked
    ) -> int:
        await self._write_head(
            writer, 200, [
                ("Content-Type", "text/event-stream"),
                ("Cache-Control", "no-cache"),
                ("Transfer-Encoding", "chunked"),
                ("Connection", "close"),
            ],
        )
        index = 0
        try:
            await self._write_sse(
                writer, {"request_id": request_id}, event="start"
            )
            while True:
                kind, value = await tracked.queue.get()
                if kind == "token":
                    await self._write_sse(
                        writer, {"token": int(value), "index": index}
                    )
                    index += 1
                else:
                    await self._write_sse(writer, {
                        "request_id": request_id,
                        "finish_reason": value,
                        "tokens": index,
                    }, event="end")
                    break
            await _write_chunk(writer, b"data: [DONE]\n\n")
            await _write_chunk(writer, b"")  # terminal zero-length chunk
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Client hung up mid-stream: cancel server-side so the
            # engine stops decoding for a dead connection.
            self._tracked.pop(request_id, None)
            await self._engine_call(self.engine.cancel, request_id)
            self.registry.counter("http_stream_disconnects_total").inc()
            return 499
        return 200

    async def _handle_cancel(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> int:
        request = _parse_json_object(body)
        request_id = request.get("request_id")
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            raise _BadRequest(400, "request_id must be an integer")
        try:
            self.engine.result(request_id)
        except KeyError:
            await self._respond_json(
                writer, 404, {"error": f"unknown request id {request_id}"}
            )
            return 404
        cancelled = await self._engine_call(self.engine.cancel, request_id)
        await self._respond_json(writer, 200, {
            "request_id": request_id, "cancelled": bool(cancelled),
        })
        return 200

    # -- response helpers ----------------------------------------------
    async def _write_head(self, writer, status: int, headers) -> None:
        phrase = _REASON_PHRASES.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {phrase}"]
        lines += [f"{name}: {value}" for name, value in headers]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _respond(
        self, writer, status: int, body: bytes,
        content_type: str = "application/json",
        extra_headers=(),
    ) -> None:
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
            ("Connection", "close"),
            *extra_headers,
        ]
        await self._write_head(writer, status, headers)
        writer.write(body)
        await writer.drain()

    async def _respond_json(
        self, writer, status: int, payload, extra_headers=()
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        await self._respond(
            writer, status, body, extra_headers=extra_headers
        )

    async def _write_sse(self, writer, payload, event=None) -> None:
        text = ""
        if event is not None:
            text += f"event: {event}\n"
        text += f"data: {json.dumps(payload)}\n\n"
        await _write_chunk(writer, text.encode("utf-8"))


def _parse_json_object(body: bytes) -> Dict[str, object]:
    if not body:
        raise _BadRequest(400, "request body must be a JSON object")
    try:
        request = json.loads(body)
    except json.JSONDecodeError as exc:
        raise _BadRequest(400, f"invalid JSON body: {exc}")
    if not isinstance(request, dict):
        raise _BadRequest(400, "request body must be a JSON object")
    return request


async def _write_chunk(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """One HTTP/1.1 chunked-transfer frame (empty payload terminates)."""
    writer.write(f"{len(payload):x}\r\n".encode("latin-1"))
    writer.write(payload)
    writer.write(b"\r\n")
    await writer.drain()


class ServerThread:
    """Run a :class:`ServingHTTPServer` on a background event loop.

    The thread owns its own ``asyncio`` loop; :meth:`start` blocks until
    the socket is bound (so ``server.port`` is final) and :meth:`stop`
    requests a drain-then-stop and joins the thread.  Context-manager
    form stops on exit::

        with ServerThread(engine) as server:
            requests.get(f"http://127.0.0.1:{server.port}/healthz")
    """

    def __init__(self, engine, host: str = "127.0.0.1", port: int = 0,
                 **server_kwargs) -> None:
        self.server = ServingHTTPServer(
            engine, host=host, port=port, **server_kwargs
        )
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None

    @property
    def engine(self):
        return self.server.engine

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self, timeout_s: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-http-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise TimeoutError("HTTP server failed to start in time")
        if self._error is not None:
            raise RuntimeError("HTTP server failed to start") from self._error
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # pragma: no cover - boot failures
            self._error = exc
            self._started.set()

    async def _serve(self) -> None:
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await self.server.serve_forever()

    def stop(self, drain: bool = True, timeout_s: float = 60.0) -> None:
        """Drain-then-stop the server and join its thread.  Idempotent."""
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(drain=drain), self._loop
            )
        self._thread.join(timeout_s)
        if self._thread.is_alive():  # pragma: no cover - hung shutdown
            raise TimeoutError("HTTP server thread did not stop in time")

    def __enter__(self) -> "ServerThread":
        return self.start() if not self._started.is_set() else self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def start_http_server(engine, host: str = "127.0.0.1", port: int = 0,
                      **server_kwargs) -> ServerThread:
    """Start a background HTTP server over ``engine``; returns the
    running :class:`ServerThread` (``.port`` is the bound port)."""
    return ServerThread(engine, host=host, port=port, **server_kwargs).start()


def run_http_server(engine, host: str = "127.0.0.1", port: int = 0,
                    **server_kwargs) -> None:
    """Blocking CLI entry point: serve until SIGTERM/SIGINT, then drain.

    Owns the engine: after the drain completes the engine is closed, so
    a supervisor (systemd, k8s) sending SIGTERM gets a clean exit with
    zero accepted requests dropped.
    """

    async def _main() -> None:
        server = ServingHTTPServer(
            engine, host=host, port=port, own_engine=True, **server_kwargs
        )
        await server.start()
        server.install_signal_handlers()
        print(f"serving on http://{server.host}:{server.port} "
              f"(SIGTERM drains)", flush=True)
        await server.serve_forever()

    asyncio.run(_main())
