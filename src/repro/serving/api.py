"""The unified ``Engine`` protocol: one serving API, any topology.

PR 9 left the repo with two parallel engine surfaces —
:class:`~repro.serving.engine.ServingEngine` (in-process) and
:class:`~repro.serving.cluster.ClusterEngine` (supervised multi-worker)
— that duplicated ``submit/stream/cancel/metrics_snapshot`` with
diverging spellings (local ``request_id`` vs cluster ``gid``, bare-int
ids, method-vs-property ``has_work``, ``shutdown`` vs ``drain/close``).
Every consumer (CLI serve/chaos, benches, and now the HTTP control
plane) had to branch on the engine class.

This module is the single integration surface that replaces that:

* :class:`Engine` — a :class:`typing.Protocol` naming the one supported
  serving API.  Both engine classes conform; new front ends (the HTTP
  server in :mod:`repro.serving.server`, the load harness) target the
  protocol only, so ``--workers 1`` and ``--workers N`` are the same
  code path.
* :class:`RequestHandle` — the typed result of ``submit``.  It is an
  ``int`` subclass carrying the engine reference, so the *old* calling
  convention (``rid = engine.submit(...); engine.stream(rid)``) keeps
  working unchanged — the bare-int view is the deprecation shim — while
  new code uses the handle directly: ``handle.stream()``,
  ``handle.finish_reason``, ``handle.cancel()``.  Handles pickle as
  plain ints (the cluster ships ids over worker pipes).

Deprecation notes (one release):

* Treating the return of ``submit`` as a bare request id still works
  but is deprecated; use the :class:`RequestHandle` accessors.
* The cluster-specific ``gid`` spelling is gone from public signatures;
  every engine speaks ``request_id``.

``SubmitResult`` is the protocol-level name for what ``submit``
returns; today that is exactly :class:`RequestHandle`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    Optional,
    Protocol,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import GenerationResult
    from .sampling import SamplingParams

__all__ = [
    "Engine",
    "RequestHandle",
    "SubmitResult",
]


class RequestHandle(int):
    """Typed handle for one submitted request.

    The handle *is* the request id (``int`` subclass), so everything
    that treated ``submit``'s return as a bare id — dict keys, pipe
    messages, log formatting, ``engine.stream(rid)`` — keeps working.
    That bare-int view is the compatibility shim; the handle accessors
    are the supported API:

    ``handle.id``
        The request id as a plain ``int``.
    ``handle.stream()``
        Token iterator (drives the engine like ``engine.stream(id)``).
    ``handle.result()``
        The live :class:`~repro.serving.engine.GenerationResult`.
    ``handle.finish_reason``
        Terminal reason, or ``None`` while the request is in flight.
    ``handle.cancel()``
        Cancel the request; ``False`` if already finished.

    Handles reduce to plain ints under pickle: the engine reference is
    process-local (worker pipes and caches must not drag the engine
    along), and an unpickled id is still a valid argument to every
    engine method.
    """

    def __new__(cls, request_id: int, engine=None) -> "RequestHandle":
        handle = super().__new__(cls, request_id)
        handle._engine = engine
        return handle

    def __reduce__(self):
        # Pickle as the bare id: the engine reference is process-local.
        return (int, (int(self),))

    @property
    def id(self) -> int:
        """The request id as a plain ``int``."""
        return int(self)

    @property
    def engine(self):
        """The engine this request was submitted to."""
        return self._engine

    def _require_engine(self):
        if self._engine is None:
            raise RuntimeError(
                "this RequestHandle is detached (e.g. unpickled); call the "
                "engine directly with the bare id instead"
            )
        return self._engine

    def stream(self) -> Iterator[int]:
        """Yield this request's tokens as they are generated."""
        return self._require_engine().stream(int(self))

    def result(self) -> "GenerationResult":
        """The request's (possibly still-running) generation result."""
        return self._require_engine().result(int(self))

    @property
    def finish_reason(self) -> Optional[str]:
        """Terminal finish reason, or ``None`` while in flight."""
        return self.result().finish_reason

    @property
    def finished(self) -> bool:
        return self.result().finished

    def cancel(self) -> bool:
        """Cancel this request; ``False`` if unknown or already final."""
        return self._require_engine().cancel(int(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RequestHandle({int(self)})"


#: Protocol-level name for what ``Engine.submit`` returns.
SubmitResult = RequestHandle


@runtime_checkable
class Engine(Protocol):
    """The one supported serving integration surface.

    Conformers: :class:`~repro.serving.engine.ServingEngine` (in-process
    continuous batching) and :class:`~repro.serving.cluster.
    ClusterEngine` (supervised multi-worker).  Front ends — the HTTP
    control plane, the CLI, the chaos oracle, the load harness — must
    target this protocol and nothing engine-specific, so single- and
    multi-worker serving are the same code path.

    Semantics shared by all conformers:

    * ``submit`` validates before any state change, sheds at the door
      when the admission policy refuses (the returned handle is already
      final with ``finish_reason="shed"``), and pins per-request
      determinism (sampling seed) at submit time.
    * ``step`` advances the world without blocking indefinitely: one
      batched decode step in-process, one supervision cycle (pump
      events / detect deaths / dispatch) for the cluster.
    * ``drain`` stops admitting and finishes every in-flight request;
      ``close`` stops immediately and flushes still-live requests to
      ``finish_reason="cancelled"``.  Both are idempotent and neither
      leaves a ``stream`` iterator hanging.
    * ``metrics_snapshot``/``render_prometheus`` expose the always-on
      engine-local registry.
    """

    def submit(
        self, prompt, params: Optional["SamplingParams"] = None
    ) -> RequestHandle:
        """Queue a prompt; returns the typed request handle."""
        ...

    def stream(self, request_id: int) -> Iterator[int]:
        """Yield the request's tokens as they are generated."""
        ...

    def cancel(self, request_id: int) -> bool:
        """Cancel a queued/running request; ``False`` if unknown/final."""
        ...

    def result(self, request_id: int) -> "GenerationResult":
        """The request's (possibly still-running) result record."""
        ...

    def step(self) -> object:
        """Advance the engine one scheduling quantum."""
        ...

    @property
    def has_work(self) -> bool:
        """Whether any request is queued or in flight."""
        ...

    def drain(
        self, timeout_s: Optional[float] = None
    ) -> Dict[int, "GenerationResult"]:
        """Stop admitting, finish everything in flight, then stop."""
        ...

    def close(self) -> Dict[int, "GenerationResult"]:
        """Hard stop; flushes live requests to ``cancelled``."""
        ...

    def health(self) -> Dict[str, object]:
        """Liveness summary: ``healthy`` plus worker liveness detail."""
        ...

    def metrics_snapshot(self) -> Dict[str, object]:
        """Aggregate summary plus per-instrument registry state."""
        ...

    def render_prometheus(self) -> str:
        """Engine metrics in the Prometheus text exposition format."""
        ...
