"""Step-level resilience for the serving engine: snapshot, retry, isolate.

One exception inside :meth:`ContinuousBatchScheduler.step` used to
poison the whole continuous batch — every in-flight request died with
it.  This module gives the engine the single-engine resilience substrate
the ROADMAP's multi-worker failure-injection tests will drive:

* :class:`SchedulerSnapshot` — a bit-exact capture of everything a step
  mutates: the batched KV cache (:meth:`DecoderKVCache.clone`), every
  sequence's token history and sampling-RNG stream position, and the
  active/waiting membership.  Restoring it makes a retried step
  indistinguishable from the failed attempt's first run.
* :func:`resilient_step` — runs ``scheduler.step()`` under that
  snapshot.  A :class:`~repro.faults.TransientFault` rolls the world
  back and retries with bounded exponential backoff (the injected
  fault's schedule slot is spent, so the retry replays the *same*
  tokens unless the schedule says to fail again).  A
  :class:`~repro.faults.FatalFault`, or a transient one that exhausts
  the retry budget, evicts exactly one victim request with
  ``finish_reason="error"`` — attributed from the fault's
  ``request_id`` context when the point is request-scoped (prefill,
  sample), falling back to the oldest batch row for batch-scoped points
  (decode, kernels) — and the step re-runs without it.

The snapshot is taken **only while a fault injector is installed**
(:func:`repro.faults.active`): the fault-free production path pays one
attribute check per step, nothing more (gated by the ``fault_overhead``
benchmark).  :class:`ResilienceConfig` also carries the engine's
per-request deadline default, the slow-step watchdog threshold, and the
retry/backoff budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..faults import FatalFault, FaultError, TransientFault
from ..telemetry import counter_inc
from .scheduler import FINISH_ERROR, ContinuousBatchScheduler, StepEvent

__all__ = [
    "ResilienceConfig",
    "SchedulerSnapshot",
    "StepReport",
    "resilient_step",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry, deadline, watchdog and shedding policy for an engine.

    ``max_retries`` bounds transient-fault retries *per step attempt
    round* (a fresh victim eviction resets the budget — each surviving
    subset of the batch deserves its own retries).  Backoff after the
    k-th retry sleeps ``min(backoff_cap_s, backoff_base_s * 2**(k-1))``
    through the injectable ``sleep`` (tests and the chaos CLI pass a
    no-op).  ``default_deadline_s`` applies to requests whose
    :class:`~repro.serving.sampling.SamplingParams` carry no deadline;
    ``watchdog_step_s`` flags steps slower than the threshold into the
    ``serving_watchdog_slow_steps_total`` counter.  ``enabled=False``
    restores the pre-resilience engine step wholesale (the benchmark
    baseline).
    """

    enabled: bool = True
    max_retries: int = 3
    backoff_base_s: float = 0.0
    backoff_cap_s: float = 0.05
    default_deadline_s: Optional[float] = None
    watchdog_step_s: Optional[float] = None
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        if self.watchdog_step_s is not None and self.watchdog_step_s <= 0:
            raise ValueError("watchdog_step_s must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), capped exponential."""
        if self.backoff_base_s <= 0.0:
            return 0.0
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** (attempt - 1)))


class SchedulerSnapshot:
    """Single-use capture of scheduler state for bit-identical rollback."""

    def __init__(self, scheduler: ContinuousBatchScheduler) -> None:
        self._scheduler = scheduler
        self._cache = (
            scheduler.cache.clone() if scheduler.cache is not None else None
        )
        self._active = list(scheduler.active)
        self._waiting = list(scheduler.waiting)
        # A sequence may appear in either list but never both; capture
        # each exactly once.
        self._states = [
            (seq, seq.capture_state())
            for seq in self._active + self._waiting
        ]
        self._used = False

    def restore(self) -> None:
        """Put the scheduler back exactly where :meth:`__init__` saw it.

        Single-use: the restored cache is the snapshot's own clone, and
        the scheduler will mutate it in place on the next attempt — a
        second restore would hand out the already-dirty arrays.  Take a
        fresh snapshot per attempt instead.
        """
        if self._used:
            raise RuntimeError(
                "SchedulerSnapshot.restore() is single-use; capture a new "
                "snapshot before every attempt"
            )
        self._used = True
        s = self._scheduler
        s.cache = self._cache
        s.active = list(self._active)
        s.waiting.clear()
        s.waiting.extend(self._waiting)
        for seq, state in self._states:
            seq.restore_state(state)


@dataclass
class StepReport:
    """What resilience did during one engine step (feeds the counters)."""

    retries: int = 0
    rollbacks: int = 0
    backoff_s: float = 0.0
    failed_events: List[StepEvent] = field(default_factory=list)


def _pick_victim(
    fault: FaultError, scheduler: ContinuousBatchScheduler
) -> Optional[int]:
    """The request to evict for an unretryable fault.

    Request-scoped points (prefill, sample) name their victim in the
    fault context.  Batch-scoped points (decode, kernel GEMMs) cannot —
    the fault hit shared work — so the oldest active row is evicted,
    deterministically (the serving analogue of suspect-and-evict
    worker replacement; with the whole batch suspect, seniority is the
    only stable tiebreak).
    """
    rid = fault.request_id
    if rid is not None:
        live = [s.request.request_id for s in scheduler.active]
        live += [s.request.request_id for s in scheduler.waiting]
        if rid in live:
            return rid
    if scheduler.active:
        return scheduler.active[0].request.request_id
    if scheduler.waiting:
        return scheduler.waiting[0].request.request_id
    return None


def resilient_step(
    scheduler: ContinuousBatchScheduler,
    config: ResilienceConfig,
) -> Tuple[List[StepEvent], StepReport]:
    """``scheduler.step()`` with rollback/retry/isolation semantics.

    Returns the step's events — eviction events for requests failed this
    step are prepended, mirroring how the scheduler itself reports
    cancellations first — plus a :class:`StepReport`.
    """
    report = StepReport()
    error_events: List[StepEvent] = []
    while True:
        attempt = 0
        while True:
            snapshot = SchedulerSnapshot(scheduler)
            try:
                events = scheduler.step()
                return error_events + events, report
            except FaultError as fault:
                snapshot.restore()
                report.rollbacks += 1
                counter_inc("serving_fault_rollbacks_total")
                retryable = (
                    isinstance(fault, TransientFault)
                    and not isinstance(fault, FatalFault)
                    and attempt < config.max_retries
                )
                if retryable:
                    attempt += 1
                    report.retries += 1
                    counter_inc("serving_fault_retries_total")
                    delay = config.backoff_s(attempt)
                    if delay > 0.0:
                        report.backoff_s += delay
                        config.sleep(delay)
                    continue
                victim = _pick_victim(fault, scheduler)
                if victim is None:
                    # No live request to evict — nothing to shield; let
                    # the fault surface to the caller.
                    raise
                event = scheduler.fail_request(victim, FINISH_ERROR)
                if event is not None:
                    error_events.append(event)
                    report.failed_events.append(event)
                break  # outer loop: fresh retry budget without the victim
