"""Per-request and aggregate serving metrics (TTFT, tokens/s, occupancy).

The engine reports every lifecycle event here; the clock is injectable
so tests can drive deterministic timelines.  All durations are seconds;
the aggregate summary converts latencies to milliseconds for
readability.

Storage is **bounded**: per-step queue-depth/batch-size samples and
request latencies stream into :class:`repro.telemetry.Histogram`
instruments (fixed buckets + a bounded reservoir for exact-while-small
p50/p95/p99) instead of the append-forever lists this replaces, so a
long-lived engine's metrics footprint is O(1) in steps.  The instruments
live in an engine-local :class:`repro.telemetry.Registry` — always on,
independent of the global ``REPRO_TELEMETRY`` opt-in — which the engine
exposes through ``metrics_snapshot()`` and renders as Prometheus text.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..telemetry import Histogram, Registry

#: TTFT / request-latency bucket bounds (milliseconds).
LATENCY_MS_BOUNDARIES = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)

#: Queue-depth / batch-size bucket bounds (requests).
OCCUPANCY_BOUNDARIES = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass
class RequestMetrics:
    """Timing record of a single request's lifetime."""

    request_id: int
    prompt_tokens: int
    submitted_at: float
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    new_tokens: int = 0
    finish_reason: Optional[str] = None

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token: submission until the first decode event."""
        if self.first_token_at is None:
            return None
        return self.first_token_at - self.submitted_at

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def decode_tokens_per_s(self) -> Optional[float]:
        """Generation rate: first-token-to-completion when the request
        decoded more than one token, prefill-inclusive otherwise.

        Single-token generations have no decode span, but dropping them
        from rate stats silently skews aggregates toward long requests —
        so they report ``new_tokens / latency`` (the whole-request rate)
        instead of ``None``.
        """
        if self.finished_at is None or self.first_token_at is None:
            return None
        span = self.finished_at - self.first_token_at
        if self.new_tokens > 1 and span > 0.0:
            return (self.new_tokens - 1) / span
        latency = self.latency_s
        if self.new_tokens >= 1 and latency is not None and latency > 0.0:
            return self.new_tokens / latency
        return None

    def summary(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "prompt_tokens": self.prompt_tokens,
            "new_tokens": self.new_tokens,
            "ttft_ms": None if self.ttft_s is None else self.ttft_s * 1e3,
            "latency_ms": None if self.latency_s is None else self.latency_s * 1e3,
            "decode_tokens_per_s": self.decode_tokens_per_s,
            "finish_reason": self.finish_reason,
        }


class ServingMetrics:
    """Aggregates request metrics plus per-step queue/batch occupancy.

    ``registry`` is engine-local and always live (the global telemetry
    opt-in gates only the process-wide registry); every distribution the
    old per-step sample lists tracked now streams into its histograms.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.requests: Dict[int, RequestMetrics] = {}
        self.steps = 0
        self.started_at: Optional[float] = None
        self.last_event_at: Optional[float] = None
        self.registry = Registry(clock=clock)
        self.ttft_ms: Histogram = self.registry.histogram(
            "serving_ttft_ms", boundaries=LATENCY_MS_BOUNDARIES)
        self.latency_ms: Histogram = self.registry.histogram(
            "serving_latency_ms", boundaries=LATENCY_MS_BOUNDARIES)
        self.queue_depth: Histogram = self.registry.histogram(
            "serving_queue_depth", boundaries=OCCUPANCY_BOUNDARIES)
        self.batch_size: Histogram = self.registry.histogram(
            "serving_batch_size", boundaries=OCCUPANCY_BOUNDARIES)
        self._tokens = self.registry.counter("serving_tokens_total")
        self._submitted = self.registry.counter("serving_requests_total")
        self._steps = self.registry.counter("serving_steps_total")

    # ------------------------------------------------------------------
    def on_submit(self, request_id: int, prompt_tokens: int) -> None:
        now = self.clock()
        if self.started_at is None:
            self.started_at = now
        self.requests[request_id] = RequestMetrics(
            request_id=request_id, prompt_tokens=prompt_tokens, submitted_at=now,
        )
        self._submitted.inc()

    def on_token(self, request_id: int) -> None:
        record = self.requests[request_id]
        now = self.clock()
        if record.first_token_at is None:
            record.first_token_at = now
            ttft = record.ttft_s
            if ttft is not None:
                self.ttft_ms.observe(ttft * 1e3)
        record.new_tokens += 1
        self._tokens.inc()
        self.last_event_at = now

    def on_finish(self, request_id: int, reason: str) -> None:
        record = self.requests[request_id]
        record.finished_at = self.clock()
        record.finish_reason = reason
        self.last_event_at = record.finished_at
        latency = record.latency_s
        if latency is not None:
            self.latency_ms.observe(latency * 1e3)
        self.registry.counter("serving_finished_total", reason=reason).inc()

    def on_step(self, queue_depth: int, batch_size: int) -> None:
        self.steps += 1
        self._steps.inc()
        self.queue_depth.observe(queue_depth)
        self.batch_size.observe(batch_size)

    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, object]:
        """Fleet-level summary across all requests seen so far."""
        finished = [r for r in self.requests.values() if r.finished_at is not None]
        # "completed" means the request produced its full answer; every
        # other terminal reason is a distinct failure/abort bucket.
        aborted_reasons = ("cancelled", "error", "deadline", "shed")
        completed = [r for r in finished if r.finish_reason not in aborted_reasons]
        by_reason = {
            reason: sum(1 for r in finished if r.finish_reason == reason)
            for reason in aborted_reasons
        }
        total_new = sum(r.new_tokens for r in self.requests.values())
        elapsed = None
        if self.started_at is not None and self.last_event_at is not None:
            elapsed = self.last_event_at - self.started_at
        tokens_per_s = (
            total_new / elapsed if elapsed and elapsed > 0 and total_new else None
        )
        ttft = self.ttft_ms
        return {
            "requests": len(self.requests),
            "completed": len(completed),
            "cancelled": by_reason["cancelled"],
            "errors": by_reason["error"],
            "deadline_exceeded": by_reason["deadline"],
            "shed": by_reason["shed"],
            "steps": self.steps,
            "total_new_tokens": total_new,
            "elapsed_s": elapsed,
            "tokens_per_s": tokens_per_s,
            "mean_ttft_ms": ttft.mean,
            "max_ttft_ms": ttft.max,
            "p50_ttft_ms": ttft.percentile(50),
            "p99_ttft_ms": ttft.percentile(99),
            "p50_latency_ms": self.latency_ms.percentile(50),
            "p99_latency_ms": self.latency_ms.percentile(99),
            "max_queue_depth": int(self.queue_depth.max or 0),
            "mean_batch_size": self.batch_size.mean or 0.0,
        }
