"""Per-request and aggregate serving metrics (TTFT, tokens/s, queue depth).

The engine reports every lifecycle event here; the clock is injectable
so tests can drive deterministic timelines.  All durations are seconds;
the aggregate summary converts TTFT to milliseconds for readability.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class RequestMetrics:
    """Timing record of a single request's lifetime."""

    request_id: int
    prompt_tokens: int
    submitted_at: float
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    new_tokens: int = 0
    finish_reason: Optional[str] = None

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token: submission until the first decode event."""
        if self.first_token_at is None:
            return None
        return self.first_token_at - self.submitted_at

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def decode_tokens_per_s(self) -> Optional[float]:
        """Generation rate from first token to completion."""
        if self.finished_at is None or self.first_token_at is None:
            return None
        span = self.finished_at - self.first_token_at
        if span <= 0.0 or self.new_tokens <= 1:
            return None
        return (self.new_tokens - 1) / span

    def summary(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "prompt_tokens": self.prompt_tokens,
            "new_tokens": self.new_tokens,
            "ttft_ms": None if self.ttft_s is None else self.ttft_s * 1e3,
            "latency_ms": None if self.latency_s is None else self.latency_s * 1e3,
            "decode_tokens_per_s": self.decode_tokens_per_s,
            "finish_reason": self.finish_reason,
        }


@dataclass
class ServingMetrics:
    """Aggregates request metrics plus per-step queue/batch occupancy."""

    clock: Callable[[], float] = time.perf_counter
    requests: Dict[int, RequestMetrics] = field(default_factory=dict)
    steps: int = 0
    queue_depth_samples: List[int] = field(default_factory=list)
    batch_size_samples: List[int] = field(default_factory=list)
    started_at: Optional[float] = None
    last_event_at: Optional[float] = None

    # ------------------------------------------------------------------
    def on_submit(self, request_id: int, prompt_tokens: int) -> None:
        now = self.clock()
        if self.started_at is None:
            self.started_at = now
        self.requests[request_id] = RequestMetrics(
            request_id=request_id, prompt_tokens=prompt_tokens, submitted_at=now,
        )

    def on_token(self, request_id: int) -> None:
        record = self.requests[request_id]
        now = self.clock()
        if record.first_token_at is None:
            record.first_token_at = now
        record.new_tokens += 1
        self.last_event_at = now

    def on_finish(self, request_id: int, reason: str) -> None:
        record = self.requests[request_id]
        record.finished_at = self.clock()
        record.finish_reason = reason
        self.last_event_at = record.finished_at

    def on_step(self, queue_depth: int, batch_size: int) -> None:
        self.steps += 1
        self.queue_depth_samples.append(queue_depth)
        self.batch_size_samples.append(batch_size)

    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, object]:
        """Fleet-level summary across all requests seen so far."""
        finished = [r for r in self.requests.values() if r.finished_at is not None]
        completed = [r for r in finished if r.finish_reason != "cancelled"]
        ttfts = [r.ttft_s for r in self.requests.values() if r.ttft_s is not None]
        total_new = sum(r.new_tokens for r in self.requests.values())
        elapsed = None
        if self.started_at is not None and self.last_event_at is not None:
            elapsed = self.last_event_at - self.started_at
        tokens_per_s = (
            total_new / elapsed if elapsed and elapsed > 0 and total_new else None
        )
        return {
            "requests": len(self.requests),
            "completed": len(completed),
            "cancelled": len(finished) - len(completed),
            "steps": self.steps,
            "total_new_tokens": total_new,
            "elapsed_s": elapsed,
            "tokens_per_s": tokens_per_s,
            "mean_ttft_ms": (sum(ttfts) / len(ttfts) * 1e3) if ttfts else None,
            "max_ttft_ms": (max(ttfts) * 1e3) if ttfts else None,
            "max_queue_depth": max(self.queue_depth_samples, default=0),
            "mean_batch_size": (
                sum(self.batch_size_samples) / len(self.batch_size_samples)
                if self.batch_size_samples else 0.0
            ),
        }
