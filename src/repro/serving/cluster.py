"""Supervised multi-worker serving: process fault domains + failover.

:class:`ClusterEngine` promotes the resilience story from "survive a
faulted step" (PR 8's in-process rollback/retry) to "survive a dead
worker": it runs N :class:`~repro.serving.engine.ServingEngine` replicas
in child processes (:mod:`repro.serving.worker`), load-balances sessions
across them, exchanges heartbeats, and — when a worker dies — requeues
that worker's in-flight sessions onto survivors and **replays** them so
recovered outputs are token-bit-identical to a run that never failed.

Why replay is exact
    Every session's token stream is a pure function of (model weights,
    prompt, sampling-RNG seed): batched decode computes each row
    independently, and the cluster pins an explicit per-request seed
    (:func:`derive_request_seed`) before dispatch, so the replica-local
    request id — which differs across workers — never feeds the RNG.  A
    survivor replaying the recorded prompt therefore regenerates the
    dead worker's exact stream; the supervisor consumes the
    already-delivered prefix silently (verifying it token-by-token — a
    mismatch is a determinism bug and raises) and streams only the
    suffix onward.  This is PR 8's chaos-parity oracle extended across
    process death.

Failure detection & recovery
    A worker is declared dead on a missed-heartbeat timeout, a broken
    pipe, a nonzero/early exit (injected ``worker.step``
    :class:`~repro.faults.FatalFault`, real ``SIGKILL``), or a hung boot.
    Its sessions requeue onto survivors immediately; the process itself
    is respawned into the same slot under a restart budget with capped
    exponential backoff (kill-schedule fault rules are stripped from the
    respawn so an injected crash is one-shot per incarnation, not a
    crash loop).

Lifecycle
    ``drain()`` stops admitting, finishes every in-flight session, then
    stops the workers; ``rolling_restart()`` cycles each worker through
    quiesce → migrate-or-drain → stop → fresh spawn without dropping a
    session; ``close()`` is the idempotent hard stop.

Telemetry: per-worker restart counters, failover/requeue counters and a
heartbeat-age gauge live in the cluster-local registry exposed through
``metrics_snapshot()`` (same pattern as the engine's always-on metrics).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Callable, Deque, Dict, Iterator, List, Optional, Set

import numpy as np

from .. import faults
from ..faults import FaultRule, parse_fault_spec
from ..telemetry import render_prometheus
from .api import RequestHandle
from .engine import GenerationResult
from .metrics import ServingMetrics
from .sampling import SamplingParams
from .scheduler import (
    FINISH_CANCELLED,
    FINISH_DEADLINE,
    FINISH_ERROR,
    FINISH_SHED,
)
from .worker import WorkerConfig, child_environment, worker_main

__all__ = [
    "ClusterEngine",
    "derive_request_seed",
]


def derive_request_seed(cluster_seed: int, request_id: int) -> int:
    """Stable per-session sampling seed, independent of worker placement.

    Matches the scheduler's own per-request stream derivation
    (``SeedSequence([seed, request_id])``) but is pinned *before*
    dispatch, so a session replayed on a different worker — where it
    gets a different replica-local id — still draws the same stream.
    """
    seq = np.random.SeedSequence([int(cluster_seed), int(request_id)])
    return int(seq.generate_state(1, dtype=np.uint32)[0])


class _Worker:
    """Supervisor-side handle of one worker slot (survives respawns)."""

    __slots__ = (
        "slot", "proc", "conn", "pid", "booted", "spawned_at", "last_seen",
        "restarts", "incarnation", "conn_broken", "retired", "quiesced",
        "next_spawn_at", "fault_rules", "stats", "stop_acked",
    )

    def __init__(self, slot: int, fault_rules: Optional[List[FaultRule]]):
        self.slot = slot
        self.proc = None
        self.conn = None
        self.pid: Optional[int] = None
        self.booted = False
        self.spawned_at = 0.0
        self.last_seen = 0.0
        self.restarts = 0
        self.incarnation = 0
        self.conn_broken = False
        self.retired = False
        self.quiesced = False
        self.next_spawn_at = 0.0
        self.fault_rules = fault_rules
        self.stats: Dict[str, float] = {}
        self.stop_acked = False

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.exitcode is None

    @property
    def dispatchable(self) -> bool:
        return (
            self.proc is not None
            and self.proc.exitcode is None
            and not self.conn_broken
            and not self.retired
            and not self.quiesced
        )


class ClusterEngine:
    """Run N serving-engine replicas in child processes under supervision.

    The submit/cancel/stream/run surface mirrors
    :class:`~repro.serving.engine.ServingEngine`; behind it the
    supervisor owns session placement, failure detection and failover.
    ``admission`` with a ``shed_reason`` method (``LoadSheddingAdmission``)
    sheds at the cluster door using the *aggregate* queue depth across
    workers; if its ``depth_source`` hook is unset the cluster binds it
    to :meth:`aggregate_queue_depth`.

    ``worker_faults`` maps worker slots to fault specs (spec string or
    rule list) that *replace* the inherited schedule for that worker —
    this is how chaos tests aim a ``worker.step`` kill at one replica.
    By default each worker inherits the supervisor's installed injector
    (spec round-trip, fresh counters: each process fault domain runs its
    own schedule).

    ``start_method`` defaults to ``"spawn"`` — the realistic fault
    domain, nothing shared but the pickled model; ``"fork"`` is faster
    to boot for tests.
    """

    def __init__(
        self,
        model,
        workers: int = 2,
        max_batch_size: int = 8,
        admission=None,
        seed: int = 0,
        quantize: Optional[str] = None,
        backend: Optional[str] = None,
        resilience=None,
        heartbeat_interval_s: float = 0.05,
        heartbeat_timeout_s: float = 5.0,
        boot_timeout_s: float = 120.0,
        max_restarts: int = 3,
        restart_backoff_base_s: float = 0.05,
        restart_backoff_cap_s: float = 2.0,
        poll_interval_s: float = 0.002,
        start_method: str = "spawn",
        worker_faults: Optional[Dict[int, object]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if heartbeat_timeout_s <= heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s"
            )
        self.model = model
        self.n_workers = workers
        self.max_batch_size = max_batch_size
        self.admission = admission
        self.seed = seed
        self.quantize = quantize
        self.backend = backend
        self.resilience = resilience
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.boot_timeout_s = boot_timeout_s
        self.max_restarts = max_restarts
        self.restart_backoff_base_s = restart_backoff_base_s
        self.restart_backoff_cap_s = restart_backoff_cap_s
        self.poll_interval_s = poll_interval_s
        self.clock = clock
        self._ctx = multiprocessing.get_context(start_method)
        self.metrics = ServingMetrics()
        self._results: Dict[int, GenerationResult] = {}
        self._params: Dict[int, SamplingParams] = {}
        self._owner: Dict[int, int] = {}
        self._replay: Dict[int, int] = {}
        self._pending: Deque[int] = deque()
        self._next_id = 0
        self._draining = False
        self._closed = False
        # Serializes supervisor-side mutations (submit/cancel/pump/
        # check_workers/dispatch) so the asyncio HTTP front end can step
        # the cluster from an executor thread while handlers submit from
        # the event loop.  Reentrant: submit -> dispatch nests.
        self._lock = threading.RLock()

        if admission is not None and getattr(
            admission, "depth_source", "absent"
        ) is None:
            admission.depth_source = self.aggregate_queue_depth

        # Workers get an *explicit* fault schedule (empty list uninstalls)
        # so each child deterministically mirrors the supervisor's state
        # even when a stale REPRO_FAULTS lingers in the environment.
        inherited: List[FaultRule] = (
            list(faults.get_injector().rules) if faults.active() else []
        )
        fault_seed = faults.get_injector().seed if faults.active() else 0
        self._fault_seed = fault_seed
        overrides = dict(worker_faults or {})
        self._workers: List[_Worker] = []
        # Pin the BLAS/OMP env *before* the first spawn: a spawned child
        # imports numpy with the inherited environment.
        pinned = child_environment()
        for var, value in pinned.items():
            os.environ.setdefault(var, value)
        for slot in range(workers):
            rules = overrides.get(slot, inherited)
            if isinstance(rules, str):
                rules = parse_fault_spec(rules)
            elif rules is not None:
                rules = list(rules)
            worker = _Worker(slot, rules)
            self._workers.append(worker)
            self._spawn(worker)

    # -- spawning ------------------------------------------------------
    def _worker_config(self, worker: _Worker) -> WorkerConfig:
        return WorkerConfig(
            worker_id=worker.slot,
            max_batch_size=self.max_batch_size,
            seed=self.seed,
            quantize=self.quantize,
            backend=self.backend,
            resilience=self.resilience,
            heartbeat_interval_s=self.heartbeat_interval_s,
            fault_rules=worker.fault_rules,
            fault_seed=self._fault_seed,
            telemetry=None,
        )

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.model, self._worker_config(worker)),
            name=f"repro-worker-{worker.slot}",
            daemon=True,
        )
        proc.start()
        # Drop the parent's handle on the child end so a dead worker
        # reads as EOF instead of a silently idle pipe.
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        worker.pid = proc.pid
        worker.booted = False
        worker.conn_broken = False
        worker.stop_acked = False
        worker.incarnation += 1
        worker.spawned_at = self.clock()
        worker.last_seen = worker.spawned_at
        worker.stats = {}

    # -- submission API ------------------------------------------------
    @property
    def workers_alive(self) -> int:
        return sum(1 for w in self._workers if w.alive)

    def worker_pids(self) -> Dict[int, Optional[int]]:
        """Live pid per worker slot (None for a slot awaiting respawn)."""
        return {
            w.slot: (w.proc.pid if w.alive else None) for w in self._workers
        }

    def kill_worker(self, slot: int, sig: int = signal.SIGKILL) -> bool:
        """Send ``sig`` to a worker process (chaos/test helper)."""
        worker = self._workers[slot]
        if not worker.alive:
            return False
        os.kill(worker.proc.pid, sig)
        return True

    def aggregate_queue_depth(self) -> int:
        """Cluster-wide queued-session count: supervisor backlog plus
        each worker's overflow beyond its decode capacity.

        Computed from supervisor-side assignment state (not heartbeat
        stats), so it is exact at submit time with no reporting lag.
        """
        assigned_overflow = sum(
            max(0, len(self._assigned(w)) - self.max_batch_size)
            for w in self._workers
        )
        return len(self._pending) + assigned_overflow

    def _assigned(self, worker: _Worker) -> Set[int]:
        return {
            gid for gid, slot in self._owner.items()
            if slot == worker.slot and not self._results[gid].finished
        }

    def submit(
        self, prompt: np.ndarray, params: Optional[SamplingParams] = None
    ) -> RequestHandle:
        """Queue a session; returns its request handle.

        Mirrors :meth:`ServingEngine.submit` — validation precedes any
        state change; shedding (aggregate queue depth) registers an
        already-finished ``shed`` result; the returned
        :class:`~repro.serving.api.RequestHandle` doubles as the bare
        cluster-global id (the deprecated ``gid`` spelling).  The
        session's sampling seed is pinned here
        (:func:`derive_request_seed`) so placement and failover never
        affect its token stream.
        """
        with self._lock:
            if self._closed or self._draining:
                raise RuntimeError(
                    "cluster is draining/closed and no longer admits sessions"
                )
            params = params or SamplingParams()
            prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
            if prompt.size == 0:
                raise ValueError("request prompt must be non-empty")
            if params.seed is None:
                params = replace(
                    params, seed=derive_request_seed(self.seed, self._next_id)
                )

            deadline_s = params.deadline_s
            if deadline_s is None and self.resilience is not None:
                deadline_s = self.resilience.default_deadline_s

            shed_reason = getattr(self.admission, "shed_reason", None)
            reason = (
                shed_reason(self.aggregate_queue_depth(), deadline_s)
                if shed_reason is not None else None
            )
            request_id = self._next_id
            self._next_id += 1
            result = GenerationResult(request_id, prompt)
            self._results[request_id] = result
            self._params[request_id] = params
            self.metrics.on_submit(request_id, prompt_tokens=prompt.size)
            if reason is not None:
                result.finish_reason = FINISH_SHED
                self.metrics.on_finish(request_id, FINISH_SHED)
                self.metrics.registry.counter(
                    "cluster_shed_total", reason=reason
                ).inc()
                return RequestHandle(request_id, self)
            self._pending.append(request_id)
            self.dispatch()
            return RequestHandle(request_id, self)

    def cancel(self, request_id: int) -> bool:
        """Cancel a pending or in-flight session; False if unknown/final."""
        with self._lock:
            result = self._results.get(request_id)
            if result is None or result.finished:
                return False
            result.finish_reason = FINISH_CANCELLED
            self.metrics.on_finish(request_id, FINISH_CANCELLED)
            if request_id in self._pending:
                self._pending.remove(request_id)
                return True
            slot = self._owner.pop(request_id, None)
            if slot is not None:
                worker = self._workers[slot]
                if worker.alive and not worker.conn_broken:
                    try:
                        worker.conn.send(("cancel", int(request_id)))
                    except (BrokenPipeError, OSError):
                        worker.conn_broken = True
            return True

    def result(self, request_id: int) -> GenerationResult:
        return self._results[request_id]

    # -- event pump ----------------------------------------------------
    def pump(self) -> None:
        """Drain every worker pipe; update results, stats and liveness."""
        with self._lock:
            for worker in self._workers:
                if worker.conn is None or worker.conn_broken:
                    continue
                try:
                    while worker.conn.poll(0):
                        self._handle(worker, worker.conn.recv())
                except (EOFError, BrokenPipeError, OSError):
                    worker.conn_broken = True

    def _handle(self, worker: _Worker, msg) -> None:
        kind = msg[0]
        worker.last_seen = self.clock()
        if kind == "hello":
            worker.booted = True
            worker.pid = msg[1]
        elif kind == "heartbeat":
            worker.stats = dict(msg[1])
        elif kind == "events":
            for gid, token, finished, reason in msg[1]:
                self._apply_event(worker, gid, token, finished, reason)
        elif kind == "stopped":
            worker.stop_acked = True
            worker.stats.update(msg[1])
        elif kind == "fatal":
            # The worker is about to exit; treat the channel as gone and
            # let check_workers() run the death path.
            worker.conn_broken = True

    def _apply_event(
        self, worker: _Worker, gid: int, token, finished: bool, reason
    ) -> None:
        result = self._results.get(gid)
        if result is None or result.finished:
            return
        if self._owner.get(gid) != worker.slot:
            # Stale sender: the session migrated away (rolling restart,
            # failover) while this worker was still decoding it.  Its
            # events must not touch the replay counter the new owner is
            # advancing.
            return
        if token is not None:
            pos = self._replay.get(gid)
            if pos is not None and pos < len(result.tokens):
                # Replay suffix not reached yet: verify the regenerated
                # prefix against what was already delivered.
                if int(token) != result.tokens[pos]:
                    self.metrics.registry.counter(
                        "cluster_failover_prefix_mismatch_total"
                    ).inc()
                    raise RuntimeError(
                        f"failover replay diverged for session {gid} at "
                        f"token {pos}: got {int(token)}, delivered "
                        f"{result.tokens[pos]} (determinism bug)"
                    )
                self._replay[gid] = pos + 1
                self.metrics.registry.counter(
                    "cluster_replayed_tokens_total"
                ).inc()
                if self._replay[gid] == len(result.tokens):
                    del self._replay[gid]
            else:
                self._replay.pop(gid, None)
                result.tokens.append(int(token))
                self.metrics.on_token(gid)
        if finished:
            pos = self._replay.get(gid)
            if (
                pos is not None and pos < len(result.tokens)
                # Only a *natural* finish short of the delivered prefix
                # indicts determinism; error/deadline/cancelled finishes
                # legitimately truncate a replay.
                and reason not in (
                    FINISH_ERROR, FINISH_DEADLINE, FINISH_CANCELLED
                )
            ):
                self.metrics.registry.counter(
                    "cluster_failover_prefix_mismatch_total"
                ).inc()
                raise RuntimeError(
                    f"failover replay of session {gid} finished after "
                    f"{pos} tokens but {len(result.tokens)} were already "
                    f"delivered (determinism bug)"
                )
            self._replay.pop(gid, None)
            result.finish_reason = reason
            self._owner.pop(gid, None)
            self.metrics.on_finish(gid, reason)

    # -- supervision ---------------------------------------------------
    def check_workers(self) -> None:
        """Detect dead/hung workers, fail their sessions over, respawn."""
        with self._lock:
            now = self.clock()
            for worker in self._workers:
                if worker.proc is None:
                    if not worker.retired and now >= worker.next_spawn_at \
                            and not self._closed:
                        self._spawn(worker)
                    continue
                age = now - worker.last_seen
                self.metrics.registry.gauge(
                    "cluster_heartbeat_age_s", worker=worker.slot
                ).set(age)
                exited = worker.proc.exitcode is not None
                hung = (
                    age > self.heartbeat_timeout_s if worker.booted
                    else age > self.boot_timeout_s
                )
                if not (exited or worker.conn_broken or hung):
                    continue
                if hung and not exited:
                    worker.proc.kill()
                self._on_worker_death(worker, now)
            self.metrics.registry.gauge("cluster_workers_alive").set(
                self.workers_alive
            )

    def _on_worker_death(self, worker: _Worker, now: float) -> None:
        # Capture everything the dying worker managed to send first: the
        # delivered prefix must be exact for replay verification.
        try:
            while worker.conn.poll(0):
                self._handle(worker, worker.conn.recv())
        except (EOFError, BrokenPipeError, OSError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.conn = None
        worker.conn_broken = True
        worker.proc.join(timeout=5.0)
        exitcode = worker.proc.exitcode
        worker.proc = None

        victims = sorted(self._assigned(worker))
        for gid in victims:
            self._owner.pop(gid, None)
            self._replay[gid] = 0
            self.metrics.registry.counter(
                "cluster_requeued_sessions_total"
            ).inc()
        # Requeue at the front, preserving original order: the oldest
        # sessions have the most delivered tokens to re-earn.
        self._pending.extendleft(reversed(victims))
        self.metrics.registry.counter(
            "cluster_worker_deaths_total", worker=worker.slot
        ).inc()
        if victims:
            self.metrics.registry.counter("cluster_failovers_total").inc()

        worker.restarts += 1
        if worker.restarts > self.max_restarts:
            worker.retired = True
            return
        backoff = min(
            self.restart_backoff_cap_s,
            self.restart_backoff_base_s * (2.0 ** (worker.restarts - 1)),
        )
        worker.next_spawn_at = now + backoff
        self.metrics.registry.counter(
            "cluster_worker_restarts_total", worker=worker.slot
        ).inc()
        if worker.fault_rules:
            # An injected worker-kill schedule is one-shot per
            # incarnation: respawning with it intact would be a
            # deterministic crash loop, not a recovery.
            worker.fault_rules = [
                r for r in worker.fault_rules if r.point != "worker.step"
            ]
        del exitcode  # recorded implicitly via the death counter

    def dispatch(self) -> None:
        """Hand pending sessions to the least-loaded dispatchable worker."""
        with self._lock:
            while self._pending:
                candidates = [w for w in self._workers if w.dispatchable]
                if not candidates:
                    return
                worker = min(
                    candidates, key=lambda w: (len(self._assigned(w)), w.slot)
                )
                gid = self._pending.popleft()
                result = self._results[gid]
                if result.finished:
                    continue
                try:
                    worker.conn.send(
                        ("submit", int(gid), result.prompt, self._params[gid])
                    )
                except (BrokenPipeError, OSError):
                    worker.conn_broken = True
                    self._pending.appendleft(gid)
                    continue
                self._owner[gid] = worker.slot
                self.metrics.registry.counter(
                    "cluster_sessions_dispatched_total", worker=worker.slot
                ).inc()

    def step(self) -> List:
        """One supervision cycle (:class:`~repro.serving.api.Engine`
        protocol): pump worker events, run failure detection/respawn,
        dispatch pending sessions.  Non-blocking; the caller paces the
        loop (see :meth:`run` / the HTTP dispatcher)."""
        with self._lock:
            self.pump()
            self.check_workers()
            self.dispatch()
        return []

    def _unfinished(self) -> List[int]:
        return [gid for gid, r in self._results.items() if not r.finished]

    @property
    def has_work(self) -> bool:
        """Whether any session is pending or in flight (protocol
        property; the PR-9 method spelling is gone)."""
        return bool(self._unfinished())

    def run(
        self,
        timeout_s: Optional[float] = None,
        hook: Optional[Callable[["ClusterEngine"], None]] = None,
    ) -> Dict[int, GenerationResult]:
        """Drive supervision until every session is finished.

        ``hook`` runs once per supervision iteration (chaos tests and
        the recovery benchmark use it to kill workers at a chosen moment
        in the decode).  Raises ``TimeoutError`` listing unfinished
        sessions when ``timeout_s`` elapses — a hung session is a test
        failure, not a silent stall — and ``RuntimeError`` when every
        worker is retired (restart budget exhausted) with sessions still
        unfinished.
        """
        deadline = None if timeout_s is None else self.clock() + timeout_s
        while True:
            self.step()
            if hook is not None:
                hook(self)
            unfinished = self._unfinished()
            if not unfinished:
                return dict(self._results)
            if all(w.retired for w in self._workers):
                raise RuntimeError(
                    f"all {self.n_workers} workers exhausted their restart "
                    f"budget with {len(unfinished)} sessions unfinished: "
                    f"{unfinished}"
                )
            if deadline is not None and self.clock() > deadline:
                raise TimeoutError(
                    f"sessions {unfinished} unfinished after {timeout_s}s "
                    f"(hung/lost)"
                )
            time.sleep(self.poll_interval_s)

    def stream(self, request_id: int) -> Iterator[int]:
        """Yield a session's tokens as they arrive (drives supervision)."""
        if request_id not in self._results:
            raise KeyError(f"unknown session id {request_id}")
        emitted = 0
        while True:
            result = self._results[request_id]
            while emitted < len(result.tokens):
                yield result.tokens[emitted]
                emitted += 1
            if result.finished:
                return
            self.step()
            if all(w.retired for w in self._workers):
                # Serialize with close(): it retires workers and flushes
                # sessions to "cancelled" under the lock, so once we hold
                # it an unfinished session really is unrecoverable.
                with self._lock:
                    if self._results[request_id].finished:
                        continue
                    raise RuntimeError(
                        f"all workers exhausted their restart budget with "
                        f"session {request_id} unfinished"
                    )
            time.sleep(self.poll_interval_s)

    # -- lifecycle -----------------------------------------------------
    def _stop_worker(self, worker: _Worker, timeout_s: float = 10.0) -> None:
        """Graceful stop: request, await the ack, reap; escalate if hung."""
        if worker.proc is None:
            return
        if worker.alive and not worker.conn_broken:
            try:
                worker.conn.send(("stop",))
                deadline = self.clock() + timeout_s
                while (
                    not worker.stop_acked
                    and worker.proc.exitcode is None
                    and self.clock() < deadline
                ):
                    try:
                        while worker.conn.poll(self.poll_interval_s):
                            self._handle(worker, worker.conn.recv())
                    except (EOFError, BrokenPipeError, OSError):
                        worker.conn_broken = True
                        break
            except (BrokenPipeError, OSError):
                worker.conn_broken = True
        worker.proc.join(timeout=timeout_s)
        if worker.proc.exitcode is None:
            worker.proc.terminate()
            worker.proc.join(timeout=5.0)
        if worker.proc.exitcode is None:
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        worker.proc = None
        worker.retired = True

    def drain(self, timeout_s: Optional[float] = None) -> Dict[int, GenerationResult]:
        """Graceful shutdown: stop admitting, finish in-flight, stop.

        Idempotent; zero sessions dropped — every already-admitted
        session runs to its natural finish (failover included if a
        worker dies mid-drain) before the workers are stopped.
        """
        self._draining = True
        if self._unfinished():
            self.run(timeout_s=timeout_s)
        self.close()
        return dict(self._results)

    def rolling_restart(self, timeout_s: Optional[float] = None) -> None:
        """Replace every worker process without dropping a session.

        One slot at a time: quiesce (no new dispatches), migrate its
        in-flight sessions to the other workers through the
        deterministic replay path (or, with a single worker, wait for
        them to finish), stop it gracefully, spawn a fresh process into
        the slot.  Restarted slots do not consume the failure restart
        budget.
        """
        deadline = None if timeout_s is None else self.clock() + timeout_s
        for worker in self._workers:
            if worker.proc is None and worker.retired:
                continue
            worker.quiesced = True
            others = [
                w for w in self._workers
                if w is not worker and w.dispatchable
            ]
            assigned = sorted(self._assigned(worker))
            if others and assigned:
                # Voluntary failover: requeue through the replay path.
                for gid in assigned:
                    self._owner.pop(gid, None)
                    self._replay[gid] = 0
                    self.metrics.registry.counter(
                        "cluster_requeued_sessions_total"
                    ).inc()
                self._pending.extendleft(reversed(assigned))
                self.dispatch()
            else:
                while self._assigned(worker):
                    self.pump()
                    self.check_workers()
                    self.dispatch()
                    if worker.proc is None:
                        break  # died mid-drain; failover already ran
                    if deadline is not None and self.clock() > deadline:
                        raise TimeoutError(
                            f"worker {worker.slot} did not drain in time"
                        )
                    time.sleep(self.poll_interval_s)
            self._stop_worker(worker)
            worker.retired = False
            worker.quiesced = False
            worker.stop_acked = False
            self.metrics.registry.counter(
                "cluster_rolling_restarts_total", worker=worker.slot
            ).inc()
            self._spawn(worker)
        # Let the freshly spawned workers pick up anything requeued.
        self.dispatch()

    def close(self) -> Dict[int, GenerationResult]:
        """Hard stop: idempotent; flushes unfinished sessions to
        ``finish_reason="cancelled"`` so no stream is left hanging."""
        with self._lock:
            if self._closed:
                return dict(self._results)
            self._closed = True
            self._draining = True
            for worker in self._workers:
                self._stop_worker(worker)
            for gid in self._unfinished():
                result = self._results[gid]
                result.finish_reason = FINISH_CANCELLED
                self.metrics.on_finish(gid, FINISH_CANCELLED)
            self._pending.clear()
            self._replay.clear()
            return dict(self._results)

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- observability -------------------------------------------------
    def health(self) -> Dict[str, object]:
        """Liveness summary (:class:`~repro.serving.api.Engine`
        protocol): healthy while at least one worker is alive and the
        cluster has not been closed."""
        alive = self.workers_alive
        return {
            "healthy": alive > 0 and not self._closed,
            "workers_alive": alive,
            "workers_total": self.n_workers,
            "workers": {
                w.slot: {
                    "alive": w.alive,
                    "restarts": w.restarts,
                    "retired": w.retired,
                }
                for w in self._workers
            },
        }

    def render_prometheus(self) -> str:
        """Cluster-local metrics in the Prometheus text format
        (:class:`~repro.serving.api.Engine` protocol)."""
        return render_prometheus(self.metrics.registry)

    def metrics_snapshot(self) -> Dict[str, object]:
        """Aggregate summary, cluster instruments and per-worker state."""
        return {
            "aggregate": self.metrics.aggregate(),
            "instruments": self.metrics.registry.snapshot(),
            "workers": {
                w.slot: {
                    "alive": w.alive,
                    "pid": w.pid,
                    "booted": w.booted,
                    "restarts": w.restarts,
                    "incarnation": w.incarnation,
                    "retired": w.retired,
                    "assigned": len(self._assigned(w)),
                    "heartbeat": dict(w.stats),
                }
                for w in self._workers
            },
            "pending": len(self._pending),
            "replaying": len(self._replay),
        }
