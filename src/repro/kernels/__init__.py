"""Unified vectorized butterfly kernel layer.

This package is the single software implementation of the butterfly
stage-apply that the rest of the reproduction builds on — the same
unification the paper achieves in hardware, where one adaptable
Butterfly Engine executes both trainable butterfly linears and FFT
stages.  Consumers:

* :mod:`repro.butterfly` (``ButterflyFactor`` / ``ButterflyMatrix`` /
  ``fft``) delegate their apply and materialize paths here;
* :mod:`repro.nn` registers :func:`butterfly_apply` as a single autograd
  op (one graph node for the whole ``log2 n``-stage ladder);
* :mod:`repro.hardware.functional` keeps its access-accurate banked
  memory loop but verifies bit-parity against these kernels.

Layout documentation (pair-major coefficients and their correspondence
to the paper's S2P banked memory) lives in :mod:`repro.kernels.layout`;
the fused batched-GEMM hot path in :mod:`repro.kernels.grouped`; the
dtype policy (float64 default, float32 opt-in) in
:mod:`repro.kernels.dtype`.

Entry points
------------
:func:`butterfly_apply` / :func:`butterfly_apply_vjp` dispatch between
the fused grouped kernel (large power-of-two ladders, real dtypes) and
the per-stage vectorized kernels (small sizes, complex twiddles,
partial ladders).  Both paths are loop-free over pairs.

The package also hosts the fused streaming-softmax attention kernel
(:mod:`repro.kernels.attention`): :func:`attention_forward` /
:func:`attention_vjp` (blockwise online softmax, one autograd node per
attention call), :func:`attention_decode` (the KV-cache single-token
fast path) and :func:`attention_reference` (the parity oracle shared
with the hardware attention engine's ``verify=True`` mode) — and the
fused training-step kernels (:mod:`repro.kernels.fused`):
:func:`linear_act_forward` / :func:`linear_act_vjp` (GEMM + bias +
activation with a parameter-cached ``W^T``),
:func:`residual_layer_norm_forward` / :func:`residual_layer_norm_vjp`,
:func:`cross_entropy_logits_forward` / :func:`cross_entropy_logits_vjp`
and the segment-sum :func:`embedding_grad`, all toggleable back to the
composite graph via :func:`use_fused`.

Int8 inference lives in :mod:`repro.kernels.quant`: per-channel
symmetric weight quantization (:func:`quantize_per_channel`, optional
MSE calibration), the blocked dequant-on-the-fly GEMM
(:func:`quantized_linear`) and the quantized butterfly ladder apply
(:func:`quantized_butterfly_apply`), sharing one quantizer with the
hardware model's verify mode (:mod:`repro.hardware.quantize`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..faults import fault_point
from ..telemetry import span
from .attention import (
    DEFAULT_BLOCK,
    AttentionContext,
    attention_decode,
    attention_forward,
    attention_reference,
    attention_vjp,
    causal_bias,
    expected_macs,
    padding_bias,
)
from .autotune import (
    autotune_enabled,
    autotune_sweep,
    cache_path as autotune_cache_path,
    get_tuned,
    shape_class,
)
from .backend import (
    KernelBackend,
    SerialBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from .dtype import (
    STORAGE_DTYPES,
    compute_dtype,
    default_dtype,
    get_default_dtype,
    mask_fill_value,
    promote_storage,
    set_default_dtype,
)
from .fft import (
    fft_forward,
    fft_stage_coeffs,
    fft_stage_forward,
    fft_twiddles,
)
from .fused import (
    ACTIVATIONS,
    CrossEntropyContext,
    LinearActContext,
    ResidualLNContext,
    cached_transpose,
    cross_entropy_logits_forward,
    cross_entropy_logits_vjp,
    embedding_grad,
    fused_enabled,
    linear_act_forward,
    linear_act_vjp,
    residual_layer_norm_forward,
    residual_layer_norm_vjp,
    set_fused_enabled,
    use_fused,
)
from .grouped import (
    MAX_GROUP,
    MIN_STAGES,
    MIN_WORK,
    GroupedContext,
    GroupedPlan,
    get_plan,
    grouped_forward,
    grouped_vjp,
)
from .layout import (
    bit_reversal_permutation,
    check_power_of_two,
    check_stage,
    num_stages,
    pair_index_of,
    pair_indices,
    stage_halves,
)
from .quant import (
    CALIBRATION_GRID,
    INT4_GROUP,
    Q4MAX,
    QMAX,
    SCRATCH_TARGET_BYTES,
    absmax_scales,
    calibrate_scales,
    dequantize,
    dequantize_butterfly_stages,
    dequantize_int4_grouped,
    half_butterfly_apply,
    half_butterfly_stages,
    half_linear,
    half_linear_reference,
    int4_butterfly_apply,
    int4_linear,
    int4_linear_reference,
    int4_quantization_rmse,
    quantization_rmse,
    quantize_butterfly_stages,
    quantize_butterfly_stages_int4,
    quantize_int4_grouped,
    quantize_per_channel,
    quantize_to_half,
    quantized_butterfly_apply,
    quantized_linear,
    quantized_linear_reference,
    unpack_int4,
)
from .stage import stage_dense, stage_forward, stage_vjp


def _is_full_ladder(n: int, halves: Sequence[int]) -> bool:
    if n < 2 or (n & (n - 1)) != 0:
        # Non-power-of-two sizes are legal for single stages (divisible
        # blocks); they just can't take the grouped full-ladder path.
        return False
    return list(halves) == stage_halves(n)


def _use_grouped(x: np.ndarray, coeffs: Sequence[np.ndarray], halves) -> bool:
    n = x.shape[-1]
    if n < (1 << MIN_STAGES) or not _is_full_ladder(n, halves):
        return False
    if x.size < MIN_WORK:
        return False
    if np.iscomplexobj(x) or any(np.iscomplexobj(c) for c in coeffs):
        return False
    return True


def butterfly_apply(
    x: np.ndarray,
    coeffs: Sequence[np.ndarray],
    halves: Sequence[int],
    need_ctx: bool = True,
    backend=None,
) -> Tuple[np.ndarray, Optional[tuple]]:
    """Apply a ladder of butterfly stages to the last axis of ``x``.

    ``coeffs[s]`` is the ``(4, n/2)`` pair-major array of stage
    ``halves[s]``; stages are applied in order.  Returns ``(y, ctx)``
    where ``ctx`` (when ``need_ctx``) feeds :func:`butterfly_apply_vjp`.
    Arbitrary leading batch dimensions are supported.  ``backend``
    overrides the active :mod:`kernel backend <repro.kernels.backend>`
    for the grouped fast path (execution only — results are identical).
    """
    x = np.asarray(x)
    coeffs = [np.asarray(c) for c in coeffs]
    if len(coeffs) != len(halves):
        raise ValueError(
            f"got {len(coeffs)} coefficient arrays for {len(halves)} stages"
        )
    fault_point("kernels.butterfly_apply", stages=len(halves))
    n = x.shape[-1]
    lead = x.shape[:-1]
    if _use_grouped(x, coeffs, halves):
        rows = int(np.prod(lead)) if lead else 1
        plan = get_plan(n, len(halves))
        with span("kernels.butterfly_apply", n=n, rows=rows, path="grouped"):
            y, gctx = grouped_forward(x.reshape(rows, n), coeffs, plan,
                                      need_ctx=need_ctx, backend=backend)
        ctx = ("grouped", lead, gctx) if need_ctx else None
        return y.reshape(*lead, n), ctx
    with span("kernels.butterfly_apply", n=n, path="stages"):
        saved = [] if need_ctx else None
        out = x
        for c, half in zip(coeffs, halves):
            if need_ctx:
                saved.append(out)  # each stage's input is all the VJP needs
            out = stage_forward(out, c, half)
    ctx = ("stages", lead, saved, coeffs, list(halves)) if need_ctx else None
    return out, ctx


def butterfly_apply_vjp(
    grad: np.ndarray, ctx: tuple, backend=None
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """VJP of :func:`butterfly_apply`: ``(grad_x, [grad_coeffs per stage])``."""
    kind = ctx[0]
    if kind == "grouped":
        _, lead, gctx = ctx
        n = gctx.plan.n
        rows = gctx.rows
        with span("kernels.butterfly_apply_vjp", n=n, rows=rows,
                  path="grouped"):
            gx, gcoeffs = grouped_vjp(np.asarray(grad).reshape(rows, n), gctx,
                                      backend=backend)
        return gx.reshape(*lead, n), gcoeffs
    _, lead, saved, coeffs, halves = ctx
    with span("kernels.butterfly_apply_vjp", path="stages"):
        g = np.asarray(grad)
        gcoeffs: List[Optional[np.ndarray]] = [None] * len(coeffs)
        for s in range(len(coeffs) - 1, -1, -1):
            g, gcoeffs[s] = stage_vjp(g, saved[s], coeffs[s], halves[s])
    return g, gcoeffs


def butterfly_apply_reference(
    x: np.ndarray, coeffs: Sequence[np.ndarray], halves: Sequence[int]
) -> np.ndarray:
    """Per-stage reference apply (no fusion) — the parity-check oracle.

    Used by the hardware functional model and the golden-parity tests to
    validate both the grouped fast path and the banked-memory engine
    against one shared implementation.
    """
    out = np.asarray(x)
    for c, half in zip(coeffs, halves):
        out = stage_forward(out, np.asarray(c), half)
    return out


__all__ = [
    "ACTIVATIONS",
    "CALIBRATION_GRID",
    "DEFAULT_BLOCK",
    "INT4_GROUP",
    "MAX_GROUP",
    "MIN_STAGES",
    "MIN_WORK",
    "Q4MAX",
    "QMAX",
    "SCRATCH_TARGET_BYTES",
    "STORAGE_DTYPES",
    "AttentionContext",
    "CrossEntropyContext",
    "GroupedContext",
    "GroupedPlan",
    "KernelBackend",
    "LinearActContext",
    "ResidualLNContext",
    "SerialBackend",
    "ThreadedBackend",
    "absmax_scales",
    "autotune_cache_path",
    "autotune_enabled",
    "autotune_sweep",
    "available_backends",
    "attention_decode",
    "attention_forward",
    "attention_reference",
    "attention_vjp",
    "causal_bias",
    "expected_macs",
    "mask_fill_value",
    "padding_bias",
    "bit_reversal_permutation",
    "butterfly_apply",
    "butterfly_apply_reference",
    "butterfly_apply_vjp",
    "cached_transpose",
    "calibrate_scales",
    "check_power_of_two",
    "check_stage",
    "compute_dtype",
    "cross_entropy_logits_forward",
    "cross_entropy_logits_vjp",
    "default_dtype",
    "dequantize",
    "dequantize_butterfly_stages",
    "dequantize_int4_grouped",
    "embedding_grad",
    "fft_forward",
    "fft_stage_coeffs",
    "fft_stage_forward",
    "fft_twiddles",
    "fused_enabled",
    "get_backend",
    "get_default_dtype",
    "get_plan",
    "get_tuned",
    "grouped_forward",
    "grouped_vjp",
    "half_butterfly_apply",
    "half_butterfly_stages",
    "half_linear",
    "half_linear_reference",
    "int4_butterfly_apply",
    "int4_linear",
    "int4_linear_reference",
    "int4_quantization_rmse",
    "linear_act_forward",
    "linear_act_vjp",
    "num_stages",
    "pair_index_of",
    "pair_indices",
    "promote_storage",
    "quantization_rmse",
    "quantize_butterfly_stages",
    "quantize_butterfly_stages_int4",
    "quantize_int4_grouped",
    "quantize_per_channel",
    "quantize_to_half",
    "quantized_butterfly_apply",
    "quantized_linear",
    "quantized_linear_reference",
    "register_backend",
    "residual_layer_norm_forward",
    "residual_layer_norm_vjp",
    "resolve_backend",
    "set_backend",
    "set_default_dtype",
    "set_fused_enabled",
    "shape_class",
    "stage_dense",
    "stage_forward",
    "stage_halves",
    "stage_vjp",
    "unpack_int4",
    "use_backend",
    "use_fused",
]
