"""Fused training-step kernels: projection, residual-norm and loss nodes.

PRs 1 and 3 fused the inference-side hot paths (butterfly ladders,
streaming-softmax attention); this module gives the *training* loop the
same treatment.  Each kernel implements one logical operation of the
encoder/decoder training step as a single forward/VJP pair so the
autograd engine records **one** graph node where the composite path
recorded three to five:

* :func:`linear_act_forward` / :func:`linear_act_vjp` — dense
  ``act(x @ W^T + b)`` (identity / relu / gelu) in one node.  The
  contiguous ``W^T`` is cached *on the parameter object* and
  invalidated by the optimizer's in-place update (via the parameter's
  version counter, see :meth:`repro.nn.module.Parameter.bump_version`)
  or by a ``.data`` rebind; the ``dW`` GEMM writes into a per-parameter
  scratch buffer instead of allocating a fresh ``(out, in)`` array
  every step.  Consequence: ``.grad`` arrays produced by this path are
  recycled once ``zero_grad()`` releases them — copy a gradient if you
  need it to outlive the step (see :func:`_grad_w_into`).
* :func:`residual_layer_norm_forward` / :func:`residual_layer_norm_vjp`
  — the ``norm(x + sub(x))`` pattern that closes every transformer
  sub-layer, fused so the residual sum is never recorded as a separate
  node (one full-activation temporary saved per sub-layer, twice per
  block).
* :func:`cross_entropy_logits_forward` / :func:`cross_entropy_logits_vjp`
  — mean cross-entropy straight from logits via a fused logsumexp.  The
  forward caches the softmax so the backward is a single ``O(B*C)``
  rescale; the composite chain materialized the full log-prob matrix
  just to gather ``B`` entries and scattered back through a fancy-index
  ``np.add.at``.
* :func:`embedding_grad` — sort/segment-sum backward for embedding
  lookups, replacing the ``np.add.at`` scatter that dominated the seed
  char-LM/LRA backward pass (ufunc.at runs one scalar inner loop per
  element; ``argsort`` + ``np.add.reduceat`` is vectorized end to end).

The composite ops remain available and authoritative: every kernel here
is parity-tested against them (``tests/kernels/test_fused_training.py``)
and the :func:`use_fused` toggle routes the ``repro.nn`` wrappers back
to the composite graph, which is both the benchmark baseline and the
oracle for the loss-curve parity tests.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, NamedTuple, Optional, Tuple

import numpy as np

from ..telemetry import span
from .backend import resolve_backend

ACTIVATIONS = ("identity", "relu", "gelu")

_GELU_C = float(np.sqrt(2.0 / np.pi))

_FUSED_ENABLED = True


def fused_enabled() -> bool:
    """Whether the fused training fast path is active (default True)."""
    return _FUSED_ENABLED


def set_fused_enabled(flag: bool) -> bool:
    """Enable/disable the fused fast path; returns the previous setting."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(flag)
    return previous


@contextlib.contextmanager
def use_fused(flag: bool = True) -> Iterator[bool]:
    """Scope the fused-path toggle (``use_fused(False)`` = composite ops).

    The composite path is the pre-fusion op-by-op graph — the parity
    oracle and the benchmark baseline.  The toggle is consulted when an
    op is *recorded*, so a graph built under one setting backpropagates
    consistently even if the setting changes before ``backward()``.
    """
    previous = set_fused_enabled(flag)
    try:
        yield fused_enabled()
    finally:
        set_fused_enabled(previous)


# ----------------------------------------------------------------------
# Parameter-attached caches
# ----------------------------------------------------------------------
def cached_transpose(weight) -> np.ndarray:
    """Contiguous ``W^T`` for a weight, cached on the parameter object.

    ``weight`` is either a raw ndarray (no caching possible) or an
    object exposing ``.data`` — in practice an
    :class:`repro.nn.module.Parameter`, whose ``version`` counter the
    optimizers bump after every in-place update.  The cache entry stores
    ``(version, data, W^T)`` and is invalidated when either the version
    changes (in-place update) or the ``.data`` array is rebound
    (``load_state_dict``, quantization).  Objects that cannot hold
    attributes (plain ``Tensor`` with ``__slots__``) silently fall back
    to recomputing the transpose.
    """
    if isinstance(weight, np.ndarray):
        return np.ascontiguousarray(weight.T)
    data = weight.data
    version = getattr(weight, "version", None)
    cache = getattr(weight, "_wt_cache", None)
    if cache is not None:
        cached_version, cached_data, wt = cache
        if cached_version == version and cached_data is data:
            return wt
    wt = np.ascontiguousarray(data.T)
    try:
        weight._wt_cache = (version, data, wt)
    except AttributeError:
        pass
    return wt


def _pop_grad_scratch(holder) -> Optional[np.ndarray]:
    """Claim the holder's ``dW`` scratch buffer (or None).

    Popping at forward-record time makes concurrent uses of one weight
    within a graph safe: only the first claim gets the buffer, later
    ones allocate their own in the VJP.
    """
    if holder is None:
        return None
    buf = getattr(holder, "_gw_scratch", None)
    if buf is not None:
        try:
            holder._gw_scratch = None
        except AttributeError:
            return None
    return buf


def _grad_w_into(
    scratch: Optional[np.ndarray], holder, g2: np.ndarray, x2: np.ndarray,
    w_shape: Tuple[int, ...], w_dtype, backend=None,
) -> np.ndarray:
    """``dW = g^T @ x`` into the claimed scratch (or a fresh buffer).

    The scratch is rejected when it is currently the parameter's
    ``.grad`` — that covers both gradient accumulation across
    ``backward()`` calls and ``retain_graph`` double-backward, where an
    in-place overwrite would corrupt the accumulated gradient.

    Recycling contract: the array this returns typically *becomes*
    ``param.grad``, and once ``zero_grad()`` drops that binding the
    buffer is fair game for the next step's in-place ``dW`` GEMM.
    Callers that retain gradient arrays across optimizer steps
    (gradient logging, EMAs, divergence dumps) must ``.copy()`` them —
    the same caveat as holding views into any in-place-updated state.
    """
    if (
        scratch is None
        or scratch.shape != w_shape
        or scratch.dtype != w_dtype
        or scratch is getattr(holder, "grad", None)
    ):
        scratch = np.empty(w_shape, dtype=w_dtype)
    resolve_backend(backend).matmul(g2.T, x2, scratch)
    if holder is not None:
        try:
            holder._gw_scratch = scratch
        except AttributeError:
            pass
    return scratch


# ----------------------------------------------------------------------
# Fused linear + bias + activation
# ----------------------------------------------------------------------
class LinearActContext(NamedTuple):
    """Forward residuals for :func:`linear_act_vjp`."""

    x: np.ndarray
    w: np.ndarray
    holder: object  # parameter object (scratch/cache host) or None
    has_bias: bool
    activation: str
    act_out: Optional[np.ndarray]  # relu: post-activation output
    z: Optional[np.ndarray]  # gelu: pre-activation
    t: Optional[np.ndarray]  # gelu: tanh(inner), reused in backward
    scratch: Optional[np.ndarray]  # claimed dW buffer


def linear_act_forward(
    x: np.ndarray,
    weight,
    bias: Optional[np.ndarray] = None,
    activation: str = "identity",
    need_ctx: bool = True,
) -> Tuple[np.ndarray, Optional[LinearActContext]]:
    """Fused ``act(x @ W^T + b)``; ``x`` is ``(..., in)``, ``W`` ``(out, in)``.

    ``weight`` may be a parameter object (see :func:`cached_transpose`)
    or a raw array.  ``bias`` must be a 1-D ``(out,)`` vector when
    present.  Returns ``(y, ctx)``; ``ctx`` is None unless ``need_ctx``.
    """
    if activation not in ACTIVATIONS:
        raise ValueError(
            f"activation must be one of {ACTIVATIONS}, got {activation!r}"
        )
    holder = None if isinstance(weight, np.ndarray) else weight
    w = weight if holder is None else holder.data
    if bias is not None and (bias.ndim != 1 or bias.shape[0] != w.shape[0]):
        raise ValueError(
            f"bias must be 1-D of size {w.shape[0]}, got shape {bias.shape}"
        )
    wt = cached_transpose(weight)
    y = np.empty(x.shape[:-1] + (wt.shape[1],),
                 dtype=np.result_type(x.dtype, wt.dtype))
    with span("kernels.linear_act", out=wt.shape[1], act=activation):
        resolve_backend(None).matmul(x, wt, y)
    if bias is not None:
        y += bias
    act_out = z = t = None
    if activation == "identity":
        data = y
    elif activation == "relu":
        data = np.maximum(y, 0.0, out=y)  # relu(z) > 0  <=>  z > 0
        act_out = data
    else:  # gelu — same tanh approximation as the composite op, computed
        # through two scratch buffers (the cube is spelled z*z*z because
        # np.power's pow() loop is ~40x slower than two multiplies, and
        # the chain runs in place to avoid five full-activation temps)
        z = y
        u = z * z
        u *= z
        u *= 0.044715
        u += z
        u *= _GELU_C
        t = np.tanh(u, out=u)
        data = t + 1.0
        data *= z
        data *= 0.5
    if not need_ctx:
        return data, None
    scratch = _pop_grad_scratch(holder)
    return data, LinearActContext(
        x, w, holder, bias is not None, activation, act_out, z, t, scratch
    )


def linear_act_vjp(grad: np.ndarray, ctx: LinearActContext) -> tuple:
    """Gradients of :func:`linear_act_forward`: ``(gx, gw[, gb])``."""
    x, w, holder, has_bias, activation, act_out, z, t, scratch = ctx
    if activation == "identity":
        ga = grad
    elif activation == "relu":
        ga = grad * (act_out > 0.0)
    else:
        # d/dz gelu(z) = 0.5 * (1 + t + z * (1 - t^2) * dinner), chained
        # in place through two scratch buffers (never touching `grad`).
        dinner = z * z
        dinner *= 3 * 0.044715
        dinner += 1.0
        dinner *= _GELU_C
        dact = t * t
        np.subtract(1.0, dact, out=dact)
        dact *= dinner
        dact *= z
        dact += t
        dact += 1.0
        dact *= 0.5
        ga = dact
        ga *= grad
    backend = resolve_backend(None)
    gx = np.empty(ga.shape[:-1] + (w.shape[1],),
                  dtype=np.result_type(ga.dtype, w.dtype))
    with span("kernels.linear_act_vjp", out=w.shape[0]):
        backend.matmul(ga, w, gx)  # (..., out) @ (out, in)
        out_features = w.shape[0]
        g2 = ga.reshape(-1, out_features)
        x2 = x.reshape(-1, w.shape[1])
        gw = _grad_w_into(scratch, holder, g2, x2, w.shape, w.dtype, backend)
    if not has_bias:
        return gx, gw
    return gx, gw, g2.sum(axis=0)


# ----------------------------------------------------------------------
# Fused residual + LayerNorm
# ----------------------------------------------------------------------
class ResidualLNContext(NamedTuple):
    """Forward residuals for :func:`residual_layer_norm_vjp`."""

    normed: np.ndarray  # (x + sub - mu) * inv
    inv: np.ndarray  # 1 / sqrt(var + eps)
    gamma: np.ndarray


def residual_layer_norm_forward(
    x: np.ndarray,
    sub: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
    need_ctx: bool = True,
) -> Tuple[np.ndarray, Optional[ResidualLNContext]]:
    """Fused ``layer_norm(x + sub)`` over the last axis (affine).

    One graph node for the residual-sum-and-normalize that closes every
    transformer sub-layer; the ``x + sub`` temporary is normalized in
    place instead of being saved as a separate ``add`` node.
    """
    if x.shape != sub.shape:
        raise ValueError(f"residual shapes differ: {x.shape} vs {sub.shape}")
    h = x + sub
    mu = h.mean(axis=-1, keepdims=True)
    h -= mu
    var = np.mean(np.square(h), axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    h *= inv  # h is now the normalized activation
    out = h * gamma
    out += beta
    if not need_ctx:
        return out, None
    return out, ResidualLNContext(h, inv, gamma)


def residual_layer_norm_vjp(
    grad: np.ndarray, ctx: ResidualLNContext
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Gradients ``(dx, dsub, dgamma, dbeta)``; ``dx is dsub`` (shared).

    The engine's accumulation never writes through un-owned buffers, so
    returning one shared array for both residual branches is safe and
    halves the backward's allocation.
    """
    normed, inv, gamma = ctx
    n = normed.shape[-1]
    g2 = grad.reshape(-1, n)
    dgamma = np.einsum("bi,bi->i", g2, normed.reshape(-1, n))
    dbeta = g2.sum(axis=0)
    gn = grad * gamma
    dvar = np.einsum("...i,...i->...", gn, normed)[..., None]
    dmean = gn.sum(axis=-1, keepdims=True)
    # da = inv * (gn - dmean/n - normed * dvar/n), accumulated in place
    # into the gn buffer (it is ours; `grad` is never written).
    dvar /= n
    dmean /= n
    gn -= dmean
    gn -= normed * dvar
    gn *= inv
    return gn, gn, dgamma, dbeta


# ----------------------------------------------------------------------
# Fused cross-entropy from logits
# ----------------------------------------------------------------------
class CrossEntropyContext(NamedTuple):
    """Forward residuals for :func:`cross_entropy_logits_vjp`."""

    softmax: np.ndarray  # (B, C), cached for the O(B*C) backward
    targets: np.ndarray  # (B,) int64
    batch: int


def cross_entropy_logits_forward(
    logits: np.ndarray,
    targets: np.ndarray,
    need_ctx: bool = True,
) -> Tuple[np.ndarray, Optional[CrossEntropyContext]]:
    """Mean cross-entropy from ``(B, C)`` logits via fused logsumexp.

    ``loss = mean(logsumexp(logits) - logits[i, targets[i]])`` computed
    without materializing log-probabilities or gathering through an
    autograd ``getitem``; the softmax (one ``(B, C)`` array, computed in
    place over the shifted exponentials) is cached for the backward.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(
            "cross_entropy_logits expects (batch, classes) logits, "
            f"got {logits.shape}"
        )
    batch = logits.shape[0]
    if targets.shape != (batch,):
        raise ValueError(
            f"targets must be ({batch},), got {targets.shape}"
        )
    shifted = logits - logits.max(axis=-1, keepdims=True)
    picked = shifted[np.arange(batch), targets]
    np.exp(shifted, out=shifted)
    denom = shifted.sum(axis=-1)
    loss = (np.log(denom) - picked).mean()
    if not need_ctx:
        return loss, None
    shifted /= denom[:, None]  # softmax, in place over the exponentials
    return loss, CrossEntropyContext(shifted, targets, batch)


def cross_entropy_logits_vjp(
    grad: np.ndarray, ctx: CrossEntropyContext
) -> Tuple[np.ndarray]:
    """Gradient ``((softmax - onehot) * grad / B,)`` — one O(B*C) pass."""
    softmax, targets, batch = ctx
    scale = np.asarray(grad) / batch
    g = softmax * scale
    g[np.arange(batch), targets] -= scale
    return (g,)


# ----------------------------------------------------------------------
# Segment-sum embedding backward
# ----------------------------------------------------------------------
def embedding_grad(
    indices: np.ndarray, grad: np.ndarray, num_embeddings: int
) -> np.ndarray:
    """Scatter-add ``grad`` rows into a ``(num_embeddings, d)`` table.

    Equivalent to ``np.add.at(out, indices, grad)`` but vectorized:
    token positions are sorted by id (stable ``argsort``), duplicate
    runs are reduced with one ``np.add.reduceat`` sweep, and the unique
    rows are written with plain fancy assignment.  ``indices`` is any
    integer array; ``grad`` has shape ``indices.shape + (d,)``.
    """
    idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    d = grad.shape[-1]
    out = np.zeros((num_embeddings, d), dtype=grad.dtype)
    if idx.size == 0:
        return out
    g = np.ascontiguousarray(grad).reshape(idx.size, d)
    order = np.argsort(idx, kind="stable")
    sidx = idx[order]
    sg = g[order]
    seg_starts = np.concatenate(
        ([0], np.flatnonzero(sidx[1:] != sidx[:-1]) + 1)
    )
    out[sidx[seg_starts]] = np.add.reduceat(sg, seg_starts, axis=0)
    return out
