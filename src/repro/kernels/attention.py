"""Fused streaming-softmax attention kernel (the FlashAttention recipe).

One kernel implements scaled-dot-product attention for all three
consumers of the reproduction — training (:class:`repro.nn.attention.
MultiHeadAttention`), serving decode (:mod:`repro.serving`, via the
``seq == 1`` fast path) and the hardware attention engine's parity mode
(:class:`repro.hardware.functional.attention_engine.AttentionEngine`
with ``verify=True``) — replacing the seed's chain of ~10 generic
autograd ops that materialized full ``(B, H, L, L)`` score tensors and
rebuilt ``-1e9`` bias arrays on every call.

Design
------
* **Blockwise online softmax** over the key axis: keys are consumed in
  blocks of :data:`DEFAULT_BLOCK`, carrying running max/denominator
  statistics, so the peak score footprint is ``O(B*H*Lq*block)``
  instead of ``O(B*H*Lq*Lk)``.
* **Analytic backward**: the forward stores only ``(q, k, v, out,
  logsumexp)``; :func:`attention_vjp` recomputes the probabilities
  block by block from the logsumexp (never storing the full softmax
  matrix) and applies the standard FlashAttention gradient
  ``dS = P * (dP - rowsum(dO * O))``.
* **Cached bias buffers**: the causal additive bias is cached keyed by
  ``(seq, total, dtype)`` (:func:`causal_bias`) instead of a fresh
  ``np.triu(np.full(...))`` per call; the fill value is the dtype-aware
  :func:`repro.kernels.dtype.mask_fill_value`, so masked probabilities
  underflow to exactly 0 in both float64 and float32.
* **Decode fast path**: :func:`attention_decode` handles the KV-cache
  single-token step with no transposes, no reshapes and no bias arrays
  (ragged batches are masked multiplicatively by per-row lengths).

Scratch buffers are reused across key blocks within one call; the first
block skips the rescale pass entirely (its running max is trivially the
block max), so short sequences pay no streaming overhead.
"""

from __future__ import annotations

import threading
from typing import Dict, NamedTuple, Optional, Tuple

import numpy as np

from ..telemetry import span
from .autotune import get_tuned, shape_class
from .backend import _split_ranges, resolve_backend
from .dtype import mask_fill_value

DEFAULT_BLOCK = 128

#: Minimum score elements (B*H*Lq*Lk) before the threaded backend shards
#: an attention call over the batch axis.
MIN_PARALLEL_SCORES = 1 << 16

# Cached additive causal biases keyed by (seq, total, dtype str).  Entries
# are (seq, total) arrays of {0, mask_fill_value}; the cache is tiny (one
# entry per distinct geometry/dtype) but saves an O(L^2) rebuild per call.
# Guarded by a lock: the pop/reinsert recency bookkeeping is not atomic,
# and the threaded backend's workers may resolve biases concurrently.
_BIAS_CACHE: Dict[Tuple[int, int, str], np.ndarray] = {}
_BIAS_CACHE_MAX = 64
_BIAS_CACHE_LOCK = threading.Lock()


def causal_bias(seq: int, total: int, dtype) -> np.ndarray:
    """Additive causal bias for ``seq`` queries over ``total`` keys.

    Query ``i`` sits at absolute position ``total - seq + i`` (the usual
    convention for a suffix of queries over a full key prefix; for
    self-attention ``total == seq`` and this is the standard lower-
    triangular mask).  Entries are 0 where the key is visible and
    :func:`mask_fill_value` where it is not.  The returned array is a
    shared cache entry — treat it as read-only.
    """
    dt = np.dtype(dtype)
    key = (seq, total, dt.str)
    with _BIAS_CACHE_LOCK:
        bias = _BIAS_CACHE.pop(key, None)
        if bias is not None:
            _BIAS_CACHE[key] = bias  # re-insert: dict order is recency order
            return bias
    # Build outside the lock — O(L^2) work should not serialize readers
    # of other keys.  Two threads may race to build the same key; both
    # arrays are identical and the second insert simply wins.
    offset = total - seq
    visible = np.arange(total)[None, :] <= (offset + np.arange(seq))[:, None]
    bias = np.where(visible, dt.type(0), dt.type(mask_fill_value(dt)))
    with _BIAS_CACHE_LOCK:
        if len(_BIAS_CACHE) >= _BIAS_CACHE_MAX and key not in _BIAS_CACHE:
            # Evict the least-recently-used entry — a full clear would
            # also drop the hot training geometry and force an O(L^2)
            # rebuild on the next step.
            _BIAS_CACHE.pop(next(iter(_BIAS_CACHE)))
        _BIAS_CACHE[key] = bias
    return bias


def padding_bias(key_mask: np.ndarray, dtype) -> np.ndarray:
    """Per-row additive key-padding bias ``(B, total)`` from a boolean mask.

    ``key_mask`` is True at valid key positions (the :mod:`repro.nn`
    convention).  Value-dependent, so not cached — but it is ``O(B*L)``,
    never ``O(B*H*L*L)``; broadcasting happens inside the block loop.
    """
    dt = np.dtype(dtype)
    return np.where(np.asarray(key_mask, dtype=bool), dt.type(0),
                    dt.type(mask_fill_value(dt)))


class AttentionContext(NamedTuple):
    """Forward residuals needed by :func:`attention_vjp`."""

    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    out: np.ndarray
    lse: np.ndarray  # (B, H, Lq) logsumexp of masked scaled scores
    scale: float
    block: int
    bias2d: Optional[np.ndarray]  # (Lq, Lk) cached causal bias
    bias3d: Optional[np.ndarray]  # (B, Lq, Lk) ragged-start causal bias
    kbias: Optional[np.ndarray]  # (B, Lk) key padding bias


def _resolve_bias(
    causal: bool,
    q_start: Optional[np.ndarray],
    lq: int,
    lk: int,
    dtype,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Pick the cached 2D causal bias or build the per-row 3D one.

    ``q_start[b]`` is the absolute position of row ``b``'s first query
    (KV-cache continuation).  A uniform ``q_start`` equal to
    ``lk - lq`` is exactly the cached suffix convention, which covers
    fresh prefill (all zeros) and same-length batches; only genuinely
    ragged batches pay the per-call 3D build.
    """
    if not causal:
        return None, None
    if q_start is not None:
        starts = np.asarray(q_start, dtype=np.int64)
        if starts.size and not (starts == starts[0]).all():
            dt = np.dtype(dtype)
            visible = (
                np.arange(lk)[None, None, :]
                <= (starts[:, None] + np.arange(lq)[None, :])[:, :, None]
            )
            return None, np.where(visible, dt.type(0),
                                  dt.type(mask_fill_value(dt)))
        if starts.size and int(starts[0]) != lk - lq:
            raise ValueError(
                f"uniform q_start={int(starts[0])} inconsistent with "
                f"{lk} keys for {lq} queries (expected {lk - lq})"
            )
    return causal_bias(lq, lk, dtype), None


def _batch_shards(backend, b: int, score_elems: int) -> list:
    """Contiguous batch-row shards for one attention call.

    Batch rows are fully independent, so sharding them across workers is
    bit-identical to the serial pass.  One shard (the serial case) when
    the backend is serial, the batch is a single row, or the call is too
    small to amortize the submit/join overhead.
    """
    if backend.workers <= 1 or b < 2 or score_elems < MIN_PARALLEL_SCORES:
        return [range(0, b)]
    return _split_ranges(b, backend.workers)


def attention_forward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    causal: bool = False,
    key_mask: Optional[np.ndarray] = None,
    q_start: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
    block: Optional[int] = None,
    need_ctx: bool = True,
    backend=None,
) -> Tuple[np.ndarray, Optional[AttentionContext]]:
    """Fused ``softmax(Q K^T * scale + bias) V`` with streaming softmax.

    ``q`` is ``(B, H, Lq, D)``; ``k``/``v`` are ``(B, H, Lk, D)``.
    ``key_mask`` is boolean ``(B, Lk)`` (True = valid key).  ``q_start``
    gives per-row absolute query offsets for causal KV-cache
    continuation (see :func:`_resolve_bias`).  Returns ``(out, ctx)``;
    ``ctx`` is None unless ``need_ctx`` and feeds :func:`attention_vjp`.

    ``block`` defaults to the autotuned key-block size for this shape
    class (committed defaults keep it at :data:`DEFAULT_BLOCK`); the
    ``backend`` shards the batch axis — rows are independent, so the
    threaded backend is bit-identical to the serial one.
    """
    q = np.asarray(q)
    k = np.asarray(k)
    v = np.asarray(v)
    if q.ndim != 4 or k.ndim != 4 or v.ndim != 4:
        raise ValueError(
            f"expected (B, H, L, D) operands, got {q.shape}/{k.shape}/{v.shape}"
        )
    if k.shape != v.shape or q.shape[:2] != k.shape[:2] or q.shape[3] != k.shape[3]:
        raise ValueError(
            f"incompatible shapes q={q.shape} k={k.shape} v={v.shape}"
        )
    b, h, lq, d = q.shape
    lk = k.shape[2]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    dtype = q.dtype
    if block is None:
        block = int(get_tuned("attention", shape_class(lk), dtype,
                              {"block": DEFAULT_BLOCK})["block"])
    backend = resolve_backend(backend)
    bias2d, bias3d = _resolve_bias(causal, q_start, lq, lk, dtype)
    kbias = padding_bias(key_mask, dtype) if key_mask is not None else None

    acc = np.empty((b, h, lq, d), dtype=dtype)
    m = np.empty((b, h, lq), dtype=dtype)
    lsum = np.empty((b, h, lq), dtype=dtype)
    # Uniform causal masking follows the suffix convention: query i sits
    # at absolute position offset + i.  Queries strictly above a key
    # block are fully masked there, so the block loop only ever touches
    # the lower triangle (half the GEMM/softmax work), and the additive
    # bias is needed only on the diagonal-crossing rows.
    offset = lk - lq if bias2d is not None else 0

    def run_rows(rows: range) -> None:
        b0, b1 = rows.start, rows.stop
        qs = q[b0:b1]
        kt = k[b0:b1].swapaxes(-1, -2)  # (rows, H, D, Lk) view
        vs = v[b0:b1]
        acc_r, m_r, l_r = acc[b0:b1], m[b0:b1], lsum[b0:b1]
        s_full = np.empty((b1 - b0, h, lq, min(block, lk)), dtype=dtype)
        pv = None  # lazily allocated; single-block calls never need it
        for j0 in range(0, lk, block):
            j1 = min(j0 + block, lk)
            jb = j1 - j0
            i0 = max(0, j0 - offset) if bias2d is not None else 0
            s = s_full[:, :, i0:, :jb]
            np.matmul(qs[:, :, i0:], kt[..., j0:j1], out=s)
            s *= scale
            if bias2d is not None:
                nb = min(lq, j1 - offset) - i0  # rows crossing the diagonal
                if nb > 0:
                    s[:, :, :nb] += bias2d[i0:i0 + nb, j0:j1]
            if bias3d is not None:
                s += bias3d[b0:b1, None, :, j0:j1]
            if kbias is not None:
                s += kbias[b0:b1, None, None, j0:j1]
            if j0 == 0:
                np.max(s, axis=-1, out=m_r)
                s -= m_r[..., None]
                np.exp(s, out=s)
                np.sum(s, axis=-1, out=l_r)
                np.matmul(s, vs[:, :, j0:j1], out=acc_r)
                continue
            m_sub = m_r[:, :, i0:]
            l_sub = l_r[:, :, i0:]
            acc_sub = acc_r[:, :, i0:]
            m_new = np.maximum(m_sub, s.max(axis=-1))
            s -= m_new[..., None]
            np.exp(s, out=s)
            m_sub -= m_new
            alpha = np.exp(m_sub, out=m_sub)  # exp(m_old - m_new), in place
            l_sub *= alpha
            l_sub += s.sum(axis=-1)
            acc_sub *= alpha[..., None]
            if pv is None:
                pv = np.empty((b1 - b0, h, lq, d), dtype=dtype)
            pv_sub = pv[:, :, i0:]
            np.matmul(s, vs[:, :, j0:j1], out=pv_sub)
            acc_sub += pv_sub
            m_sub[...] = m_new

    with span("kernels.attention_forward", lq=lq, lk=lk, block=block):
        backend.map(run_rows, _batch_shards(backend, b, b * h * lq * lk))
    out = acc
    out /= lsum[..., None]
    if not need_ctx:
        return out, None
    lse = m + np.log(lsum)
    return out, AttentionContext(q, k, v, out, lse, float(scale), block,
                                 bias2d, bias3d, kbias)


def attention_vjp(
    grad_out: np.ndarray, ctx: AttentionContext, backend=None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients ``(dq, dk, dv)`` of :func:`attention_forward`.

    Probabilities are recomputed per key block from the stored
    logsumexp — exactly (``p = exp(s + bias - lse)``, no renormalization
    needed) — so the backward is one pass of ``O(B*H*Lq*block)``
    temporaries, mirroring the forward's memory behavior (including the
    batch-axis sharding under the threaded backend).
    """
    q, k, v, out, lse, scale, block, bias2d, bias3d, kbias = ctx
    g = np.asarray(grad_out)
    b, h, lq, d = q.shape
    lk = k.shape[2]
    dtype = q.dtype
    backend = resolve_backend(backend)
    gq = np.zeros((b, h, lq, d), dtype=dtype)
    gk = np.empty_like(k)
    gv = np.empty_like(v)
    offset = lk - lq if bias2d is not None else 0

    def run_rows(rows: range) -> None:
        b0, b1 = rows.start, rows.stop
        qs, ks, vs, gs = q[b0:b1], k[b0:b1], v[b0:b1], g[b0:b1]
        gq_r, gk_r, gv_r = gq[b0:b1], gk[b0:b1], gv[b0:b1]
        lse_r = lse[b0:b1]
        delta = np.einsum("bhld,bhld->bhl", gs, out[b0:b1])  # rowsum(dO*O)
        kt = ks.swapaxes(-1, -2)
        vt = vs.swapaxes(-1, -2)
        p_full = np.empty((b1 - b0, h, lq, min(block, lk)), dtype=dtype)
        gp_full = np.empty_like(p_full)
        gq_blk = np.empty((b1 - b0, h, lq, d), dtype=dtype)
        for j0 in range(0, lk, block):
            j1 = min(j0 + block, lk)
            jb = j1 - j0
            # Same lower-triangle restriction as the forward: queries
            # above the block are fully masked, contribute p == 0, and
            # can be skipped from every GEMM of this block.
            i0 = max(0, j0 - offset) if bias2d is not None else 0
            p = p_full[:, :, i0:, :jb]
            gp = gp_full[:, :, i0:, :jb]
            g_sub = gs[:, :, i0:]
            np.matmul(qs[:, :, i0:], kt[..., j0:j1], out=p)
            p *= scale
            if bias2d is not None:
                nb = min(lq, j1 - offset) - i0
                if nb > 0:
                    p[:, :, :nb] += bias2d[i0:i0 + nb, j0:j1]
            if bias3d is not None:
                p += bias3d[b0:b1, None, :, j0:j1]
            if kbias is not None:
                p += kbias[b0:b1, None, None, j0:j1]
            p -= lse_r[:, :, i0:, None]
            np.exp(p, out=p)
            # dv_blk = P^T dO
            np.matmul(p.swapaxes(-1, -2), g_sub, out=gv_r[:, :, j0:j1])
            # dP = dO V^T ; dS = P * (dP - delta) * scale (scale folded once)
            np.matmul(g_sub, vt[..., j0:j1], out=gp)
            gp -= delta[:, :, i0:, None]
            gp *= p
            gp *= scale
            gq_sub = gq_blk[:, :, i0:]
            np.matmul(gp, ks[:, :, j0:j1], out=gq_sub)
            gq_r[:, :, i0:] += gq_sub
            np.matmul(gp.swapaxes(-1, -2), qs[:, :, i0:], out=gk_r[:, :, j0:j1])

    with span("kernels.attention_vjp", lq=lq, lk=lk, block=block):
        backend.map(run_rows, _batch_shards(backend, b, b * h * lq * lk))
    return gq, gk, gv


def attention_decode(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    lengths: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
    backend=None,
) -> np.ndarray:
    """Single-token KV-cache attention step (the serving decode fast path).

    ``q`` is ``(B, H, D)`` — the one new token per row, already split
    into heads; ``k``/``v`` are the cached ``(B, H, T, D)`` prefixes
    *including* the new token's projections.  ``lengths[b]`` is the
    number of previously cached positions of row ``b`` (the new token
    sits at index ``lengths[b]``), so row ``b`` attends to key indices
    ``0 .. lengths[b]`` inclusive.  Uniform batches skip masking
    entirely; ragged batches have their padded slots overwritten with
    the dtype fill *before* the row max (no bias arrays are built) —
    padded cache slots can hold stale keys from earlier, longer contexts
    that would otherwise skew the softmax max and denominator.  (Cache
    buffers are zeros-born and fully overwritten on merge/compaction, so
    stale slots are always finite — see :class:`repro.serving.kv_cache.
    DecoderKVCache`; NaN-poisoned values there would still propagate
    through the zero-weighted ``p @ v`` product, exactly as in the seed
    composite path.)  No transposes or reshapes are materialized.
    Inference only — no autograd context is produced.
    """
    q = np.asarray(q)
    k = np.asarray(k)
    v = np.asarray(v)
    if q.ndim != 3:
        raise ValueError(f"decode expects q of shape (B, H, D), got {q.shape}")
    t = k.shape[2]
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    backend = resolve_backend(backend)
    with span("kernels.attention_decode", batch=q.shape[0], t=t):
        # s[b, h, t] = k[b, h, t] . q[b, h]
        s = np.empty((*k.shape[:3], 1), dtype=np.result_type(k.dtype, q.dtype))
        backend.matmul(k, q[..., None], s)
        s = s[..., 0]
        s *= scale
        if lengths is not None:
            lengths = np.asarray(lengths, dtype=np.int64)
            uniform = lengths.size == 0 or bool((lengths == lengths[0]).all())
            # A uniform batch only skips masking when the key view is
            # sliced exactly to the visible prefix; an unsliced
            # capacity-sized view still has stale tail slots that must be
            # masked out.
            if lengths.size and (not uniform or t > int(lengths[0]) + 1):
                invalid = np.arange(t)[None, :] > lengths[:, None]
                np.copyto(s, s.dtype.type(mask_fill_value(s.dtype)),
                          where=invalid[:, None, :])
        m = s.max(axis=-1, keepdims=True)
        s -= m
        p = np.exp(s, out=s)  # masked slots underflow to exactly 0
        denom = p.sum(axis=-1)
        ctx = np.empty((*q.shape[:2], 1, v.shape[-1]),
                       dtype=np.result_type(p.dtype, v.dtype))
        backend.matmul(p[:, :, None, :], v, ctx)
        ctx = ctx[:, :, 0, :]
        ctx /= denom[..., None]
    return ctx


def attention_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    causal: bool = False,
    key_mask: Optional[np.ndarray] = None,
    q_start: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
) -> np.ndarray:
    """One-shot composite attention — the parity oracle.

    Materializes the full score matrix and softmax (the seed
    computation, minus autograd), for the golden-parity tests and the
    hardware engine's ``verify=True`` mode.  Accepts ``(..., L, D)``
    operands with any leading dimensions; masking arguments require the
    4D ``(B, H, L, D)`` layout.
    """
    q = np.asarray(q)
    k = np.asarray(k)
    v = np.asarray(v)
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    s = np.matmul(q, k.swapaxes(-1, -2)) * scale
    lq, lk = q.shape[-2], k.shape[-2]
    if causal:
        bias2d, bias3d = _resolve_bias(True, q_start, lq, lk, s.dtype)
        if bias3d is not None:
            s = s + bias3d[:, None]
        else:
            s = s + bias2d
    if key_mask is not None:
        s = s + padding_bias(key_mask, s.dtype)[:, None, None, :]
    s -= s.max(axis=-1, keepdims=True)
    e = np.exp(s)
    return np.matmul(e / e.sum(axis=-1, keepdims=True), v)


def expected_macs(lq: int, lk: int, d: int) -> Dict[str, int]:
    """Closed-form per-head operation counts of one attention execution.

    The contract shared by the software kernel and the hardware
    attention engine's ``verify=True`` op-count parity check: QK and SV
    each perform ``lq * lk * d`` multiply-accumulates and the softmax
    touches every one of the ``lq * lk`` scores, regardless of key
    blocking.
    """
    return {
        "qk_macs": lq * lk * d,
        "sv_macs": lq * lk * d,
        "softmax_elems": lq * lk,
    }
