"""Single-stage butterfly kernels: vectorized forward, VJP, materialize.

One butterfly stage with pair stride ``half`` applies, to every pair
``(x_top, x_bot)`` (see :mod:`repro.kernels.layout`), the trainable 2x2
block stored pair-major in a ``(4, n/2)`` coefficient array::

    [ y_top ]   [ a  b ] [ x_top ]
    [ y_bot ] = [ c  d ] [ x_bot ]

This is exactly the pair-operation the paper's adaptable Butterfly Unit
executes with its four physical multipliers (Fig. 7b), and the FFT
twiddle stage is the special case ``(a, b, c, d) = (1, w, 1, -w)``
(:mod:`repro.kernels.fft`).

All kernels here are *stride-vectorized*: the ``(..., n)`` input is
viewed as ``(..., nblocks, 2, half)`` so the whole stage is a handful of
broadcast numpy operations — no Python loop over pairs.  These kernels
are the shared reference implementation used by
:class:`repro.butterfly.factor.ButterflyFactor`,
:func:`repro.nn.tensor.butterfly_stage`, and the hardware functional
model's parity checks; the multi-stage hot path additionally fuses
stages into batched matmuls in :mod:`repro.kernels.grouped`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .layout import check_stage, check_stage_divisible, pair_indices


def _stage_views(x: np.ndarray, coeffs: np.ndarray, half: int):
    n = x.shape[-1]
    check_stage_divisible(n, half)
    if coeffs.shape != (4, n // 2):
        raise ValueError(
            f"coeffs must have shape (4, {n // 2}), got {coeffs.shape}"
        )
    nblocks = n // (2 * half)
    lead = x.shape[:-1]
    xr = x.reshape(*lead, nblocks, 2, half)
    abcd = coeffs.reshape(4, nblocks, half)
    return lead, nblocks, xr, abcd


def stage_forward(x: np.ndarray, coeffs: np.ndarray, half: int) -> np.ndarray:
    """Apply one stage to the last axis of ``x``; real or complex coeffs."""
    x = np.asarray(x)
    coeffs = np.asarray(coeffs)
    lead, nblocks, xr, (a, b, c, d) = _stage_views(x, coeffs, half)
    x0 = xr[..., 0, :]
    x1 = xr[..., 1, :]
    out_dtype = np.result_type(x.dtype, coeffs.dtype)
    out = np.empty((*lead, nblocks, 2, half), dtype=out_dtype)
    np.multiply(a, x0, out=out[..., 0, :])
    out[..., 0, :] += b * x1
    np.multiply(c, x0, out=out[..., 1, :])
    out[..., 1, :] += d * x1
    return out.reshape(*lead, x.shape[-1])


def stage_vjp(
    grad: np.ndarray, x: np.ndarray, coeffs: np.ndarray, half: int
) -> Tuple[np.ndarray, np.ndarray]:
    """VJP of :func:`stage_forward` for real coefficients.

    Returns ``(grad_x, grad_coeffs)`` where ``grad_coeffs`` has the same
    ``(4, n/2)`` pair-major layout as ``coeffs``.  The input gradient is
    the transposed stage (swap ``b``/``c``); the coefficient gradient is
    a batch-reduced outer product per pair.
    """
    grad = np.asarray(grad)
    x = np.asarray(x)
    coeffs = np.asarray(coeffs)
    lead, nblocks, xr, (a, b, c, d) = _stage_views(x, coeffs, half)
    n = x.shape[-1]
    x0 = xr[..., 0, :]
    x1 = xr[..., 1, :]
    gr = grad.reshape(*lead, nblocks, 2, half)
    g0 = gr[..., 0, :]
    g1 = gr[..., 1, :]
    gx = np.empty_like(gr)
    np.multiply(a, g0, out=gx[..., 0, :])
    gx[..., 0, :] += c * g1
    np.multiply(b, g0, out=gx[..., 1, :])
    gx[..., 1, :] += d * g1
    batch_axes = tuple(range(len(lead)))
    gcoeffs = np.empty_like(coeffs)
    gcoeffs[0] = (g0 * x0).sum(axis=batch_axes).reshape(-1)
    gcoeffs[1] = (g0 * x1).sum(axis=batch_axes).reshape(-1)
    gcoeffs[2] = (g1 * x0).sum(axis=batch_axes).reshape(-1)
    gcoeffs[3] = (g1 * x1).sum(axis=batch_axes).reshape(-1)
    return gx.reshape(*lead, n), gcoeffs


def stage_dense(coeffs: np.ndarray, n: int, half: int) -> np.ndarray:
    """Materialize one stage as a dense ``n x n`` matrix (vectorized scatter)."""
    coeffs = np.asarray(coeffs)
    check_stage(n, half)
    if coeffs.shape != (4, n // 2):
        raise ValueError(
            f"coeffs must have shape (4, {n // 2}), got {coeffs.shape}"
        )
    pairs = pair_indices(n, half)
    top, bot = pairs[:, 0], pairs[:, 1]
    mat = np.zeros((n, n), dtype=coeffs.dtype)
    mat[top, top] = coeffs[0]
    mat[top, bot] = coeffs[1]
    mat[bot, top] = coeffs[2]
    mat[bot, bot] = coeffs[3]
    return mat
