"""Fused multi-stage butterfly kernel: radix-``2^g`` grouped matmuls.

The per-stage kernels in :mod:`repro.kernels.stage` are already
vectorized, but applying ``log2 n`` of them in sequence is memory-bound:
every stage streams the whole ``(batch, n)`` activation through numpy
elementwise ops with small strided slices.  This module instead *fuses*
runs of ``g`` consecutive stages into one batched matrix multiply, the
software analogue of the paper's Butterfly Engine processing ``2 * pbu``
operands per cycle from the S2P-banked memory (the engine hides the pair
stride in its bank mapping; we hide it in a block-diagonal regrouping).

Why fusing is legal: stages ``s0 .. s0+g-1`` (pair strides ``2^s0 ..
2^(s0+g-1)``) only couple elements whose indices differ in bit positions
``s0 .. s0+g-1``.  Writing a global index as ``i = (o * T + t) * h0 + j``
with ``T = 2^g`` and ``h0 = 2^s0``, the product of those ``g`` sparse
factors is block-diagonal with one dense ``T x T`` matrix per ``(o, j)``
— ``n / T`` small matrices per chunk, independent of batch size.  Each
chunk therefore becomes::

    y[o, j, b, :] = M[o, j] @ x[o, j, b, :]        # batched GEMM

The dense chunk matrices are built from the pair-major coefficient
arrays by a logarithmic "doubling" recursion (2x2 blocks -> 4x4 -> ...),
and the exact VJP reverses that recursion, yielding per-stage coefficient
gradients in the same ``(4, n/2)`` layout the optimizer expects.

Two overhead-control tricks matter as much as the GEMMs themselves:

* **Level stacking.**  At doubling height ``m`` every chunk merges
  exactly ``n / 2m`` block pairs, independent of the chunk's position in
  the ladder, so all chunks share *one* einsum per level (the chunk axis
  is just a leading batch axis).  This amortizes numpy's per-call
  iterator setup, which otherwise dominates at small ``m``.
* **Plan caching.**  All index geometry — the per-level coefficient
  gather (which doubles as the VJP scatter: each level's indices are a
  bijection onto the stage's ``n/2`` pairs) — is precomputed once per
  ``(n, stages, radix)`` and cached FFTW-style.

At ``n = 1024`` this path makes ``ButterflyLinear`` forward+backward
several times faster than the per-stage chain while staying exactly
equivalent up to matmul reassociation of the 2x2 accumulations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import counter_inc
from .backend import resolve_backend
from .layout import check_power_of_two, num_stages

#: Largest number of stages fused into one chunk.  Radix 32 balances the
#: batched-GEMM efficiency against the O(n * 2^g) chunk-matrix build cost.
MAX_GROUP = 5

#: Use the grouped path only when the stage ladder is at least this deep;
#: below it the per-stage kernels win (chunk build cost is batch-independent).
MIN_STAGES = 6

#: Minimum total elements (rows * n) for the grouped path to pay off.
MIN_WORK = 16384


@dataclass
class _ChunkPlan:
    """One fused run of ``gc`` stages starting at global stage ``s0``."""

    s0: int
    gc: int
    T: int   # 2**gc, the dense block size
    h0: int  # 2**s0, elements per low-bit position
    o: int   # n // (T * h0), outer blocks


@dataclass
class _StackLevel:
    """One doubling height, stacked across all chunks still growing."""

    m: int             # block size being merged (pairs of m x m -> 2m x 2m)
    N: int             # merged pairs per chunk: n // (2 m)
    K: int             # chunks active at this height
    active: tuple      # chunk indices (stack order), len K
    idx: np.ndarray    # (K, 4, N, m) flat indices into an (S, 4, n/2) buffer;
                       # used both to gather coefficients and scatter gradients


class GroupedPlan:
    """Cached index geometry for one ``(n, num_stages, radix)`` problem.

    Also owns a small pool of *transient* scratch buffers (see
    :meth:`scratch`): large numpy temporaries are returned to the OS on
    free, so reusing them across kernel invocations avoids repeated page
    faulting on the hot path.  Only arrays that never escape a single
    kernel call may use the pool — anything saved in a context or
    returned to the caller is allocated normally.
    """

    def __init__(self, n: int, stages: int, g: int = MAX_GROUP) -> None:
        check_power_of_two(n)
        if stages != num_stages(n):
            raise ValueError(
                f"grouped kernel needs the full ladder of {num_stages(n)} "
                f"stages for n={n}, got {stages}"
            )
        self.n = n
        self.stages = stages
        # Balance chunk sizes (e.g. 10 stages, g=5 -> [5, 5]; 9 -> [5, 4]).
        nchunks = -(-stages // g)
        base, rem = divmod(stages, nchunks)
        sizes = [base + (1 if k < rem else 0) for k in range(nchunks)]
        self.chunks: List[_ChunkPlan] = []
        s0 = 0
        for gc in sizes:
            T, h0 = 1 << gc, 1 << s0
            self.chunks.append(
                _ChunkPlan(s0=s0, gc=gc, T=T, h0=h0, o=n // (T * h0))
            )
            s0 += gc
        # Stack order: deepest chunks first, so that at every height the
        # active chunks are a prefix and finished chunks peel off the tail.
        order = sorted(range(len(self.chunks)),
                       key=lambda i: -self.chunks[i].gc)
        max_gc = self.chunks[order[0]].gc
        self.levels: List[_StackLevel] = []
        for sl in range(max_gc):
            active = tuple(i for i in order if self.chunks[i].gc > sl)
            K = len(active)
            m = 1 << sl
            N = n // (2 * m)
            idx = np.empty((K, 4, N, m), dtype=np.int64)
            for kpos, ci in enumerate(active):
                ch = self.chunks[ci]
                nb = ch.T // (2 * m)
                # Pair index of stage s0+sl at chunk coordinates (o, j, tb, r):
                # p = (o * nb + tb) * m * h0 + r * h0 + j, flattened to (N, m).
                oi = (np.arange(ch.o, dtype=np.int64)[:, None, None, None]
                      * (nb * m * ch.h0))
                ji = np.arange(ch.h0, dtype=np.int64)[None, :, None, None]
                tb = (np.arange(nb, dtype=np.int64)[None, None, :, None]
                      * (m * ch.h0))
                ri = np.arange(m, dtype=np.int64)[None, None, None, :] * ch.h0
                p = (oi + ji + tb + ri).reshape(N, m)
                stage = ch.s0 + sl
                for row in range(4):
                    idx[kpos, row] = (stage * 4 + row) * (n // 2) + p
            self.levels.append(
                _StackLevel(m=m, N=N, K=K, active=active, idx=idx)
            )
        # Scratch pools are *thread-local*: plans are shared through the
        # process-global cache, and the threaded backend runs kernel
        # shards on pool workers — a shared pool would hand two workers
        # the same buffer.  Each thread gets its own pool dict keyed by
        # (tag, dtype), with its own byte budget.
        self._tls = threading.local()

    #: Pool budget per plan *per thread*.  Plans live in a process-global
    #: cache, so without a cap the pool would pin buffers sized to the
    #: largest batch ever seen for the process lifetime.  Oversized
    #: requests are served with ordinary (garbage-collected) allocations
    #: instead.
    SCRATCH_MAX_BYTES = 64 << 20

    def scratch(self, tag: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable uninitialized buffer for call-local temporaries.

        Buffers are pooled per calling thread (see ``_tls`` above), so
        concurrent kernel invocations sharing one cached plan never
        alias each other's scratch.
        """
        pool = getattr(self._tls, "pool", None)
        if pool is None:
            pool = self._tls.pool = {}
            self._tls.bytes = 0
        key = (tag, np.dtype(dtype))
        buf = pool.get(key)
        size = int(np.prod(shape))
        counter_inc("kernels_scratch_hits_total" if buf is not None
                    and buf.size == size else "kernels_scratch_misses_total")
        if buf is None or buf.size != size:
            # A cached buffer of the wrong size is useless for this tag
            # now — evict it up front so it can't stay pinned if the new
            # request ends up over budget.
            old = pool.pop(key, None)
            if old is not None:
                self._tls.bytes -= old.nbytes
            nbytes = size * np.dtype(dtype).itemsize
            if self._tls.bytes + nbytes > self.SCRATCH_MAX_BYTES:
                return np.empty(shape, dtype=dtype)
            buf = np.empty(size, dtype=dtype)
            pool[key] = buf
            self._tls.bytes += buf.nbytes
        return buf.reshape(shape)


_PLAN_CACHE: dict = {}
_PLAN_CACHE_MAX = 32
_PLAN_CACHE_LOCK = threading.Lock()
# Always-on plain ints (not telemetry counters) so benchmarks can report
# plan-cache hit rates without the global telemetry opt-in; mirrored into
# the telemetry registry when that is enabled.
_PLAN_CACHE_HITS = 0
_PLAN_CACHE_MISSES = 0


def plan_cache_stats() -> dict:
    """Lifetime plan-cache ``{"hits", "misses", "size", "hit_rate"}``."""
    with _PLAN_CACHE_LOCK:
        hits, misses = _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
        size = len(_PLAN_CACHE)
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "size": size,
        "hit_rate": (hits / total) if total else None,
    }


def reset_plan_cache_stats() -> None:
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE_HITS = 0
        _PLAN_CACHE_MISSES = 0


def get_plan(n: int, stages: int, g: int = MAX_GROUP) -> GroupedPlan:
    """Fetch (or build and cache) the plan for an ``(n, stages, g)`` problem.

    Thread-safe: concurrent callers for the same key get one shared plan
    (the build runs under the cache lock — it is index-geometry only, a
    few hundred microseconds — so no duplicate plans are ever created).
    """
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
    key = (n, stages, g)
    with _PLAN_CACHE_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is None:
            _PLAN_CACHE_MISSES += 1
            if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
                _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
            plan = GroupedPlan(n, stages, g)
            _PLAN_CACHE[key] = plan
            hit = False
        else:
            _PLAN_CACHE_HITS += 1
            hit = True
    counter_inc("kernels_plan_cache_hits_total" if hit
                else "kernels_plan_cache_misses_total")
    return plan


# ----------------------------------------------------------------------
# Chunk matrix build (stacked doubling recursion) and its VJP
# ----------------------------------------------------------------------
def _build_matrices(
    plan: GroupedPlan, coeffs: Sequence[np.ndarray], dtype
) -> Tuple[List[np.ndarray], list]:
    """Densify every chunk into ``M[o, h0, T, T]``; one einsum per level.

    Returns per-chunk matrices plus the per-level ``(V, C)`` intermediates
    needed by :func:`_build_matrices_vjp`.
    """
    n = plan.n
    cf = plan.scratch("coeffs", (plan.stages, 4, n // 2), dtype)
    for s, c in enumerate(coeffs):
        cf[s] = c
    cff = cf.reshape(-1)
    Ms: List[Optional[np.ndarray]] = [None] * len(plan.chunks)
    saved = []
    L: Optional[np.ndarray] = None
    prev_active: tuple = ()
    for lev in plan.levels:
        if L is not None and len(prev_active) > lev.K:
            # Chunks whose ladder ends at this height: their blocks are done.
            for kpos in range(lev.K, len(prev_active)):
                Ms[prev_active[kpos]] = L[kpos]
            L = L[: lev.K]
        m, N = lev.m, lev.N
        A = cff[lev.idx]  # (K, 4, N, m)
        if L is None:
            V = C = None
            L = np.ascontiguousarray(
                A[..., 0].transpose(0, 2, 1)
            ).reshape(lev.K, N, 2, 2)
        else:
            V = L.reshape(lev.K, N, 2, m, m)
            C = A.reshape(lev.K, 2, 2, N, m)
            L = np.einsum("ktqnr,knqrc->kntrqc", C, V).reshape(
                lev.K, N, 2 * m, 2 * m
            )
        saved.append((V, C))
        prev_active = lev.active
    for kpos, ci in enumerate(prev_active):
        Ms[ci] = L[kpos]
    out = []
    for ci, chunk in enumerate(plan.chunks):
        out.append(Ms[ci].reshape(chunk.o, chunk.h0, chunk.T, chunk.T))
    return out, saved


def _build_matrices_vjp(
    dMs: Sequence[np.ndarray], saved: list, plan: GroupedPlan, dtype
) -> np.ndarray:
    """Reverse the stacked doubling: scatter chunk-matrix gradients into
    per-stage coefficient gradients of shape ``(stages, 4, n/2)``.

    Each level's gather indices are a bijection onto the stage's pair
    axis, so the scatter is a plain fancy-index assignment.
    """
    n = plan.n
    G = np.empty((plan.stages, 4, n // 2), dtype=dtype)
    Gf = G.reshape(-1)
    dL: Optional[np.ndarray] = None
    active: tuple = ()
    for sl in range(len(plan.levels) - 1, -1, -1):
        lev = plan.levels[sl]
        m, N = lev.m, lev.N
        if lev.K > len(active):
            # Chunks whose ladder ends just above this height join the stack.
            joining = [
                dMs[ci].reshape(1, N, 2 * m, 2 * m)
                for ci in lev.active[len(active):]
            ]
            parts = ([dL] if dL is not None else []) + joining
            if len(parts) > 1:
                stacked = plan.scratch(
                    f"dL{sl}", (lev.K, N, 2 * m, 2 * m), dtype
                )
                np.concatenate(parts, out=stacked)
                dL = stacked
            else:
                dL = parts[0]
        active = lev.active
        V, C = saved[sl]
        if sl == 0:
            dC = plan.scratch("dC0", (lev.K, 4, N), dtype)
            np.copyto(dC, dL.reshape(lev.K, N, 4).transpose(0, 2, 1))
            Gf[lev.idx] = dC.reshape(lev.K, 4, N, 1)
            break
        D = dL.reshape(lev.K, N, 2, m, 2, m)
        dC = plan.scratch(f"dC{sl}", (lev.K, 2, 2, N, m), dtype)
        np.einsum("kntrqc,knqrc->ktqnr", D, V, out=dC)
        Gf[lev.idx] = dC.reshape(lev.K, 4, N, m)
        dV = plan.scratch(f"dV{sl}", (lev.K, N, 2, m, m), dtype)
        np.einsum("ktqnr,kntrqc->knqrc", C, D, out=dV)
        dL = dV.reshape(lev.K, 2 * N, m, m)
    return G


# ----------------------------------------------------------------------
# Forward / VJP over the full stage ladder
# ----------------------------------------------------------------------
class GroupedContext:
    """Saved state from :func:`grouped_forward` needed by :func:`grouped_vjp`."""

    __slots__ = ("plan", "dtype", "rows", "MTs", "build_saved", "xs")

    def __init__(self, plan: GroupedPlan, dtype, rows: int) -> None:
        self.plan = plan
        self.dtype = dtype
        self.rows = rows
        self.MTs: list = []  # transposed chunk matrices (o, h0, q, t)
        self.build_saved: list = []
        self.xs: list = []   # chunk inputs, arranged (o, h0, rows, T)


def _arrange_first(x: np.ndarray, chunk: _ChunkPlan, rows: int) -> np.ndarray:
    # (B, n) -> (o, h0, B, T)
    return (x.reshape(rows, chunk.o, chunk.T, chunk.h0)
            .transpose(1, 3, 0, 2))


def _rearrange_between(
    y: np.ndarray, prev: _ChunkPlan, nxt: _ChunkPlan, rows: int
) -> np.ndarray:
    # chunk output (o, h0, B, T) -> next chunk input (o', h0', B, T'),
    # composing "undo previous grouping" and "apply next grouping" into a
    # single 5-axis transpose (one copy instead of two).
    o2, T2 = nxt.o, nxt.T
    return (y.reshape(o2, T2, prev.h0, rows, prev.T)
            .transpose(0, 4, 2, 3, 1)
            .reshape(o2, nxt.h0, rows, T2))


def _arrange_last_inv(
    y: np.ndarray, chunk: _ChunkPlan, rows: int, n: int
) -> np.ndarray:
    # (o, h0, B, T) -> (B, n).  Always an owned copy: ``y`` may live in
    # pooled scratch, and the result escapes to the caller.
    out = np.empty((rows, n), dtype=y.dtype)
    np.copyto(out.reshape(rows, chunk.o, chunk.T, chunk.h0),
              y.transpose(2, 0, 3, 1))
    return out


def grouped_forward(
    x: np.ndarray,
    coeffs: Sequence[np.ndarray],
    plan: GroupedPlan,
    need_ctx: bool = True,
    backend=None,
) -> Tuple[np.ndarray, Optional[GroupedContext]]:
    """Apply the full stage ladder to ``x`` of shape ``(rows, n)``."""
    backend = resolve_backend(backend)
    rows, n = x.shape
    dtype = np.result_type(x.dtype, *[c.dtype for c in coeffs])
    Ms, build_saved = _build_matrices(plan, coeffs, dtype)
    ctx = GroupedContext(plan, dtype, rows) if need_ctx else None
    if ctx is not None:
        ctx.build_saved = build_saved
    out = None
    for k, chunk in enumerate(plan.chunks):
        if k == 0:
            xr = np.ascontiguousarray(_arrange_first(x, chunk, rows),
                                      dtype=dtype)
        else:
            xr = _rearrange_between(out, plan.chunks[k - 1], chunk, rows)
        if ctx is not None:
            # MT is reused by the backward pass, and the next chunk's
            # rearrangement of ``out`` may alias it (a transpose over
            # singleton axes can be a view) and gets saved in the context
            # — so both must own their memory here.
            MT = np.ascontiguousarray(Ms[k].swapaxes(-1, -2))
            out = np.empty(xr.shape, dtype=dtype)
            backend.matmul(xr, MT, out)
            ctx.MTs.append(MT)
            ctx.xs.append(xr)
        else:
            MT = plan.scratch(f"MT{k}", Ms[k].shape, dtype)
            np.copyto(MT, Ms[k].swapaxes(-1, -2))
            out = plan.scratch(f"y{k}", xr.shape, dtype)
            backend.matmul(xr, MT, out)
    return _arrange_last_inv(out, plan.chunks[-1], rows, n), ctx


def grouped_vjp(
    grad: np.ndarray, ctx: GroupedContext, backend=None
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """VJP of :func:`grouped_forward`: returns ``(grad_x, [grad_coeffs])``."""
    backend = resolve_backend(backend)
    plan = ctx.plan
    rows, n = ctx.rows, plan.n
    dMs: List[Optional[np.ndarray]] = [None] * len(plan.chunks)
    # The gradient is carried batch-last, as gT[o, h0, T, rows]: then both
    # backward GEMMs consume it directly (dM = gT @ x, gxT = MT @ gT) and
    # each chunk needs only one rearrangement copy.
    gT = None
    for k in range(len(plan.chunks) - 1, -1, -1):
        chunk = plan.chunks[k]
        shape = (chunk.o, chunk.h0, chunk.T, rows)
        grT = plan.scratch(f"grT{k}", shape, ctx.dtype)
        if k == len(plan.chunks) - 1:
            # natural (B, n) -> (o, h0, T, B)
            np.copyto(
                grT,
                grad.reshape(rows, chunk.o, chunk.T, chunk.h0)
                .transpose(1, 3, 2, 0),
            )
        else:
            # (o', h0', T', B) -> (o, h0, T, B) with o = o' T', h0' = h0 T
            nxt = plan.chunks[k + 1]
            np.copyto(
                grT.reshape(nxt.o, nxt.T, chunk.h0, chunk.T, rows),
                gT.reshape(nxt.o, chunk.T, chunk.h0, nxt.T, rows)
                .transpose(0, 3, 2, 1, 4),
            )
        dM = plan.scratch(f"dM{k}", ctx.MTs[k].shape, ctx.dtype)
        backend.matmul(grT, ctx.xs[k], dM)
        dMs[k] = dM
        gT = plan.scratch(f"gT{k}", shape, ctx.dtype)
        backend.matmul(ctx.MTs[k], grT, gT)
    chunk0 = plan.chunks[0]
    gx = np.empty((rows, n), dtype=ctx.dtype)
    np.copyto(gx.reshape(rows, chunk0.o, chunk0.T, chunk0.h0),
              gT.transpose(3, 0, 2, 1))
    G = _build_matrices_vjp(dMs, ctx.build_saved, plan, ctx.dtype)
    return gx, list(G)
