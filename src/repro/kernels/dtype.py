"""Floating-point dtype policy for the kernel layer.

The reproduction computes in ``float64`` by default (so golden-parity
tests against dense materialization and ``numpy.fft`` hold to tight
tolerances), but every kernel also runs in ``float32``, which roughly
halves memory traffic and more than doubles BLAS throughput on the
grouped matmul path.  The paper's accelerator itself uses even narrower
arithmetic, so ``float32`` software execution remains a strict precision
superset of the hardware.

The policy is a process-global default consumed by
:func:`repro.nn.tensor._as_array` (every :class:`~repro.nn.tensor.Tensor`
creation) and by kernel entry points that must invent a dtype.  Opt in
with::

    from repro.kernels import set_default_dtype, default_dtype

    set_default_dtype("float32")          # global
    with default_dtype("float32"):        # scoped
        ...
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

import numpy as np

DtypeLike = Union[str, type, np.dtype]

_ALLOWED = (np.float32, np.float64)

#: Dtypes a weight/activation may be *stored* in.  float16 is a storage
#: tier only (the paper's 16-bit buffers): NumPy has no BLAS half
#: kernels, so fp16 operands are streamed through fp32 compute blocks
#: (see :func:`compute_dtype` and :func:`repro.kernels.quant.half_linear`).
STORAGE_DTYPES = (np.float16, np.float32, np.float64)

_default_dtype: np.dtype = np.dtype(np.float64)


def _resolve(dtype: DtypeLike) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in [np.dtype(a) for a in _ALLOWED]:
        raise ValueError(
            f"default dtype must be float32 or float64, got {dt}"
        )
    return dt


def get_default_dtype() -> np.dtype:
    """The current global floating-point dtype (float64 unless opted in)."""
    return _default_dtype


def set_default_dtype(dtype: DtypeLike) -> np.dtype:
    """Set the global dtype policy; returns the previous dtype."""
    global _default_dtype
    previous = _default_dtype
    _default_dtype = _resolve(dtype)
    return previous


@contextlib.contextmanager
def default_dtype(dtype: DtypeLike) -> Iterator[np.dtype]:
    """Context manager scoping :func:`set_default_dtype`."""
    previous = set_default_dtype(dtype)
    try:
        yield get_default_dtype()
    finally:
        set_default_dtype(previous)


def compute_dtype(storage: DtypeLike) -> np.dtype:
    """The arithmetic dtype for operands *stored* in ``storage``.

    Promotion rules of the storage tiers: ``float16`` promotes to
    ``float32`` (no BLAS half kernels — fp16 is a memory format, the
    compute runs one tier wider, exactly like the accelerator's wide
    accumulators over narrow buffers); ``float32``/``float64`` compute
    in themselves.  Anything else is rejected.
    """
    dt = np.dtype(storage)
    if dt == np.dtype(np.float16):
        return np.dtype(np.float32)
    if dt in [np.dtype(a) for a in _ALLOWED]:
        return dt
    raise ValueError(
        f"storage dtype must be one of {[np.dtype(d).name for d in STORAGE_DTYPES]}, "
        f"got {dt}"
    )


def promote_storage(a: DtypeLike, b: DtypeLike) -> np.dtype:
    """Joint compute dtype of two stored operands (widest compute wins)."""
    return np.result_type(compute_dtype(a), compute_dtype(b))


def mask_fill_value(dtype: DtypeLike) -> float:
    """Additive-bias fill for masked attention scores, dtype-aware.

    Half the dtype's most negative finite value: large enough that
    ``exp(fill - rowmax)`` underflows to exactly 0 for any realistic
    score (a hard-coded ``-1e9`` leaves masked keys with tiny nonzero
    probability once ``exp`` precision is exhausted), yet far enough
    from the overflow edge that adding a finite score — or stacking the
    causal and padding biases — stays finite in both dtypes.
    """
    return float(np.finfo(np.dtype(dtype)).min / 2)
