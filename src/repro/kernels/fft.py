"""FFT twiddle kernels — the butterfly stage special case.

The radix-2 decimation-in-time FFT is the butterfly product whose 2x2
pair blocks are ``[[1, w], [1, -w]]`` with twiddle ``w = exp(-2 pi i j /
(2 half))`` for pair position ``j`` — the reason the paper's adaptable
Butterfly Unit can execute either workload on the same four multipliers
(Fig. 7c).  This module provides the vectorized twiddle construction
(used by :mod:`repro.butterfly.fft` to build coefficient arrays for the
hardware model) and a specialized stage apply that exploits the
``(1, w, 1, -w)`` structure: one complex multiply and two complex adds
per pair instead of the four general multiplies, applied across all
pairs with broadcasting — no Python loop over pairs or blocks.
"""

from __future__ import annotations

import numpy as np

from .layout import bit_reversal_permutation, check_stage, stage_halves


def fft_twiddles(half: int) -> np.ndarray:
    """Per-pair twiddles ``w_j = exp(-2 pi i j / (2 half))``, shape ``(half,)``.

    Every size-``2*half`` block of a stage uses the same ``half`` twiddles,
    so this is all the state an FFT stage needs.
    """
    j = np.arange(half)
    return np.exp(-2j * np.pi * j / (2 * half))


def fft_stage_coeffs(n: int, half: int) -> np.ndarray:
    """FFT stage as a pair-major ``(4, n/2)`` coefficient array.

    Rows are ``(a, b, c, d) = (1, w, 1, -w)`` with the twiddle vector
    tiled across the ``n / (2 half)`` blocks — the layout consumed by the
    general butterfly kernels and the hardware Butterfly Engine.
    """
    check_stage(n, half)
    nblocks = n // (2 * half)
    w = np.tile(fft_twiddles(half), nblocks)
    coeffs = np.empty((4, n // 2), dtype=np.complex128)
    coeffs[0] = 1.0
    coeffs[1] = w
    coeffs[2] = 1.0
    coeffs[3] = -w
    return coeffs


def fft_stage_forward(x: np.ndarray, half: int) -> np.ndarray:
    """Apply one FFT twiddle stage to the last axis of ``x``.

    Specialization of :func:`repro.kernels.stage.stage_forward` for
    ``(1, w, 1, -w)`` blocks: ``y_top = x_top + w * x_bot`` and
    ``y_bot = x_top - w * x_bot``.
    """
    x = np.asarray(x)
    n = x.shape[-1]
    check_stage(n, half)
    nblocks = n // (2 * half)
    lead = x.shape[:-1]
    xr = x.reshape(*lead, nblocks, 2, half)
    t = fft_twiddles(half) * xr[..., 1, :]
    out = np.empty((*lead, nblocks, 2, half), dtype=t.dtype)
    np.add(xr[..., 0, :], t, out=out[..., 0, :])
    np.subtract(xr[..., 0, :], t, out=out[..., 1, :])
    return out.reshape(*lead, n)


def fft_forward(x: np.ndarray) -> np.ndarray:
    """Radix-2 FFT along the last axis via the butterfly factorization.

    Bit-reverses the input, then applies the ``log2 n`` twiddle stages
    with :func:`fft_stage_forward`.  Matches ``numpy.fft.fft`` up to
    floating-point rounding while keeping an operation count the
    hardware model can account for exactly.
    """
    x = np.asarray(x)
    n = x.shape[-1]
    if n == 1:
        return x.astype(np.result_type(x.dtype, np.complex128))
    out = x[..., bit_reversal_permutation(n)]
    for half in stage_halves(n):
        out = fft_stage_forward(out, half)
    return out
