"""Index geometry of butterfly stages (the paper's S2P memory layout).

A butterfly stage with *pair stride* ``half`` partitions the ``n``
elements of a vector into ``n/2`` pairs ``(i, i + half)`` inside
block-diagonal blocks of size ``2 * half``; pair ``p = block * half + j``
couples positions ``block * 2 * half + j`` and ``block * 2 * half + half
+ j``.  The coefficient arrays used throughout the repo are stored in
exactly this *pair-major* order: entry ``p`` of a ``(4, n/2)`` array is
the 2x2 block of pair ``p``.

This is also the access pattern the paper's Serial-to-Parallel (S2P)
butterfly memory layout is built around: the accelerator stripes element
``i`` across ``2 * pbu`` banks so that the two operands of every pair
land in different banks for *every* stage stride, letting ``pbu``
Butterfly Units read ``2 * pbu`` operands per cycle without conflicts
(see :mod:`repro.hardware.functional.memory` and
:mod:`repro.hardware.functional.engine`, which consume
:func:`pair_indices` to schedule those accesses).  The software kernels
in this package exploit the same regularity: because the pair geometry is
an affine function of ``(block, j)``, every gather/scatter below is a
closed-form numpy indexing expression — there is no Python loop over
pairs anywhere in the kernel layer.
"""

from __future__ import annotations

import numpy as np


def check_power_of_two(n: int) -> None:
    """Raise unless ``n`` is a power of two >= 2."""
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"butterfly size must be a power of two >= 2, got {n}")


def stage_halves(n: int) -> list:
    """Pair strides of each stage in application order: ``[1, 2, ..., n/2]``.

    The rightmost factor in the matrix product (block size 2, ``half=1``)
    is applied first.
    """
    check_power_of_two(n)
    return [1 << s for s in range(n.bit_length() - 1)]


def num_stages(n: int) -> int:
    """Number of butterfly factors for size ``n`` (``log2 n``)."""
    check_power_of_two(n)
    return n.bit_length() - 1


def check_stage(n: int, half: int) -> None:
    """Validate that ``half`` is a legal pair stride for size ``n``."""
    check_power_of_two(n)
    if half < 1 or half >= n or n % (2 * half) != 0:
        raise ValueError(f"invalid stage half={half} for size {n}")


def check_stage_divisible(n: int, half: int) -> None:
    """Weaker stage check: only ``2 * half`` must tile ``n``.

    A single stage apply is well defined for any ``n`` divisible into
    size-``2*half`` blocks (the seed implementation accepted e.g.
    ``n=12, half=2``); only full butterfly ladders and the pair-index
    geometry require power-of-two sizes.
    """
    if half < 1 or n % (2 * half) != 0:
        raise ValueError(f"stage half={half} does not divide dimension {n}")


def pair_indices(n: int, half: int) -> np.ndarray:
    """The ``(n/2, 2)`` array of element index pairs touched by a stage.

    Row ``p = block * half + j`` is ``(block * 2 * half + j,
    block * 2 * half + half + j)`` — computed in closed form, no loop.
    """
    check_stage(n, half)
    nblocks = n // (2 * half)
    top = (np.arange(nblocks, dtype=np.int64)[:, None] * (2 * half)
           + np.arange(half, dtype=np.int64)[None, :]).reshape(-1)
    return np.stack([top, top + half], axis=1)


def pair_index_of(i: np.ndarray, half: int) -> np.ndarray:
    """Coefficient index ``p`` of the pair containing element index ``i``.

    Works elementwise on arrays: ``p = (i >> log2(2*half)) * half +
    (i & (half - 1))``.  Inverse of :func:`pair_indices` up to top/bottom.
    """
    i = np.asarray(i)
    return (i // (2 * half)) * half + (i % half)


def bit_reversal_permutation(n: int) -> np.ndarray:
    """Indices that reorder ``x`` into bit-reversed order (vectorized).

    Builds the permutation with ``log2 n`` shift/mask passes over a
    single index vector rather than a per-element Python loop.  ``n = 1``
    is allowed (the empty permutation of a single element).
    """
    if n != 1:
        check_power_of_two(n)
    bits = n.bit_length() - 1
    v = np.arange(n, dtype=np.int64)
    perm = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        perm = (perm << 1) | (v & 1)
        v >>= 1
    return perm
