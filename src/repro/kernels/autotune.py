"""Machine-local autotuning of kernel block sizes and worker counts.

The kernel layer's tunables — the attention key-block size, the
dequant-GEMM block rows, the threaded backend's worker count — were
hand-picked constants.  Optimal values differ per machine (cache sizes,
core count, BLAS build), so this module tunes them *per (op,
shape-class, dtype)* and persists the result machine-locally:

* **Committed defaults** (``autotune_defaults.json`` next to this file)
  are the fallback: CI and fresh checkouts get deterministic,
  hand-validated values without ever timing anything.
* **Machine-local cache** (``~/.cache/repro/autotune.json``, overridable
  with ``REPRO_AUTOTUNE_CACHE``) holds swept results and always takes
  precedence over the committed defaults.  It is never committed (see
  ``.gitignore``).
* **Sweeping** is opt-in: with ``REPRO_AUTOTUNE=1`` in the environment,
  the first use of an un-cached ``(op, shape-class, dtype)`` triple
  times a small candidate grid on a synthetic workload of that shape
  class and writes the winner to the cache file.  Without the env var
  the lookup is read-only — no timing runs ever happen behind a test's
  or benchmark's back.

Shape classes are coarse power-of-two buckets (``le256``, ``le1024``,
…): tuning per exact shape would thrash the cache and overfit to noise;
per bucket, one sweep covers every shape the bucket admits.

Entry points: :func:`get_tuned` (the kernel-side lookup),
:func:`autotune_sweep` (force a sweep programmatically, used by the
``backends`` benchmark with ``persist=False``), :func:`cache_path`, and
:func:`clear_memo` (tests).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from ..telemetry import counter_inc

_DEFAULTS_FILE = Path(__file__).with_name("autotune_defaults.json")

_memo: Dict[str, dict] = {}
_memo_lock = threading.Lock()
_file_cache: Optional[dict] = None
_defaults_cache: Optional[dict] = None


def cache_path() -> Path:
    """The machine-local autotune cache file (env-overridable)."""
    override = os.environ.get("REPRO_AUTOTUNE_CACHE")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro" / "autotune.json"


def autotune_enabled() -> bool:
    """Whether first-use sweeps are allowed (``REPRO_AUTOTUNE=1``)."""
    return os.environ.get("REPRO_AUTOTUNE", "0") == "1"


def shape_class(value: int, floor: int = 256, ceil: int = 16384) -> str:
    """Coarse power-of-two bucket for a size: ``le256`` .. ``gt16384``."""
    bound = floor
    while bound < ceil:
        if value <= bound:
            return f"le{bound}"
        bound *= 2
    return f"le{ceil}" if value <= ceil else f"gt{ceil}"


def _key(op: str, shape_cls: str, dtype) -> str:
    return f"{op}/{shape_cls}/{np.dtype(dtype).name}"


def _load_json(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
        return data if isinstance(data, dict) else {}
    except (OSError, ValueError):
        return {}


def _file_entries() -> dict:
    global _file_cache
    if _file_cache is None:
        _file_cache = _load_json(cache_path())
    return _file_cache


def _default_entries() -> dict:
    global _defaults_cache
    if _defaults_cache is None:
        _defaults_cache = _load_json(_DEFAULTS_FILE)
    return _defaults_cache


def clear_memo() -> None:
    """Drop every in-memory lookup (tests re-point the cache file)."""
    global _file_cache, _defaults_cache
    with _memo_lock:
        _memo.clear()
        _file_cache = None
        _defaults_cache = None


def _persist(key: str, params: dict) -> None:
    """Merge one swept entry into the machine-local cache file atomically."""
    path = cache_path()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        data = _load_json(path)
        data[key] = params
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except OSError:
        return  # read-only home dirs must not break kernels
    global _file_cache
    with _memo_lock:
        _file_cache = None


def get_tuned(op: str, shape_cls: str, dtype, default: dict) -> dict:
    """Tuned parameters for ``(op, shape-class, dtype)``.

    Precedence: in-memory memo -> machine-local cache file -> (sweep, if
    ``REPRO_AUTOTUNE=1`` and a sweep is registered for ``op``) ->
    committed defaults -> ``default``.  The result always contains every
    key of ``default`` (missing keys are filled in), so kernels can
    index unconditionally.
    """
    key = _key(op, shape_cls, dtype)
    with _memo_lock:
        hit = _memo.get(key)
    if hit is not None:
        counter_inc("kernels_autotune_lookups_total", source="memo")
        return hit
    params = _file_entries().get(key)
    source = "file" if params is not None else None
    if params is None and autotune_enabled() and op in _SWEEPS:
        params = autotune_sweep(op, shape_cls, dtype)
        source = "sweep"
    if params is None:
        params = _default_entries().get(key)
        source = "defaults" if params is not None else "fallback"
    counter_inc("kernels_autotune_lookups_total", source=source)
    merged = dict(default)
    if isinstance(params, dict):
        merged.update(params)
    with _memo_lock:
        _memo[key] = merged
    return merged


# ----------------------------------------------------------------------
# Sweeps: one synthetic workload per op, timed over a candidate grid
# ----------------------------------------------------------------------
def _best_candidate(run: Callable[[dict], None], candidates) -> dict:
    best, best_t = None, float("inf")
    for params in candidates:
        run(params)  # warm up allocators / plan caches
        t0 = time.perf_counter()
        run(params)
        run(params)
        elapsed = time.perf_counter() - t0
        if elapsed < best_t:
            best, best_t = params, elapsed
    return dict(best)


def _class_size(shape_cls: str, fallback: int = 1024) -> int:
    try:
        return int(shape_cls[2:])
    except (ValueError, IndexError):
        return fallback


def _sweep_attention(shape_cls: str, dtype) -> dict:
    from .attention import attention_forward

    lk = min(_class_size(shape_cls), 2048)
    rng = np.random.default_rng(0)
    q = rng.standard_normal((2, 2, lk, 32)).astype(dtype)
    k = rng.standard_normal((2, 2, lk, 32)).astype(dtype)
    v = rng.standard_normal((2, 2, lk, 32)).astype(dtype)

    def run(params: dict) -> None:
        attention_forward(q, k, v, causal=True, block=params["block"],
                          need_ctx=False)

    grid = [{"block": b} for b in (64, 128, 256, 512) if b <= max(64, lk)]
    return _best_candidate(run, grid)


def _sweep_quantized_linear(shape_cls: str, dtype) -> dict:
    from .quant import _block_rows, quantized_linear

    in_features = min(_class_size(shape_cls), 4096)
    out_features = in_features
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, in_features)).astype(dtype)
    q = rng.integers(-127, 128, size=(out_features, in_features)).astype(np.int8)
    scales = np.full(out_features, 0.01, dtype=np.float32)
    base = _block_rows(in_features, np.dtype(dtype).itemsize)

    def run(params: dict) -> None:
        quantized_linear(x, q, scales, block_rows=params["block_rows"])

    grid = [{"block_rows": max(8, int(base * f))} for f in (0.5, 1.0, 2.0, 4.0)]
    return _best_candidate(run, grid)


def _sweep_workers(shape_cls: str, dtype) -> dict:
    from .backend import ThreadedBackend

    n = min(_class_size(shape_cls), 2048)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((max(64, n // 8), n)).astype(dtype)
    b = rng.standard_normal((n, n)).astype(dtype)
    out = np.empty((a.shape[0], n), dtype=dtype)

    def run(params: dict) -> None:
        ThreadedBackend(workers=params["workers"]).matmul(a, b, out)

    cpus = os.cpu_count() or 1
    grid, w = [], 1
    while w <= cpus:
        grid.append({"workers": w})
        w *= 2
    if grid[-1]["workers"] != cpus:
        grid.append({"workers": cpus})
    return _best_candidate(run, grid)


_SWEEPS: Dict[str, Callable[[str, object], dict]] = {
    "attention": _sweep_attention,
    "quantized_linear": _sweep_quantized_linear,
    "workers": _sweep_workers,
}


def autotune_sweep(op: str, shape_cls: str, dtype, persist: bool = True) -> dict:
    """Run the registered sweep for ``op`` and (optionally) persist it.

    Called automatically on cache miss when ``REPRO_AUTOTUNE=1``;
    callable directly (e.g. from the backends benchmark) regardless of
    the env flag.
    """
    if op not in _SWEEPS:
        raise ValueError(f"no sweep registered for op {op!r}; "
                         f"known: {sorted(_SWEEPS)}")
    params = _SWEEPS[op](shape_cls, np.dtype(dtype))
    if persist:
        _persist(_key(op, shape_cls, dtype), params)
    return params
