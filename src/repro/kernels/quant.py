"""Int8 weight quantization kernels: the software decode datapath.

The paper's accelerator executes butterfly and attention workloads in
reduced precision; :mod:`repro.hardware.quantize` models what that does
to accuracy.  This module is the *runnable* counterpart: per-channel
symmetric int8 weight quantization plus dequant-on-the-fly kernels, so
the quantized numbers the simulator reports have an executable software
path (the codesign loop closed in both directions).

Scheme — per-channel symmetric int8, scales in fp32:

* each output channel ``o`` of a ``(out, in)`` weight gets one scale
  ``s_o``; codes are ``q = clip(rint(w / s_o), -127, 127)`` (round half
  to even, the IEEE default shared with the hardware quantizer model,
  which asserts bit-level agreement in its verify mode);
* ``s_o = absmax_o / 127`` by default, or an MSE-calibrated shrink of it
  (:func:`calibrate_scales` grid-searches a per-channel shrink factor —
  the cheap weight-distribution calibration pass used by
  ``quantize_for_inference``);
* dequantization is exact multiplication: ``w_hat = q * s_o``.

Execution — :func:`quantized_linear` never materializes the full
dequantized matrix.  It streams the int8 weight through a small fp
scratch block (sized to stay cache-resident, see
:data:`SCRATCH_TARGET_BYTES`) and runs one BLAS GEMM per block, scaling
the accumulated outputs per channel afterwards.  A batch-8 decode GEMM
is memory-bound on weight traffic, so reading int8 instead of fp32
is what the speedup in ``BENCH_quant.json`` comes from — the same
bandwidth argument the paper makes for its reduced-precision buffers.
Scratch blocks are cached per ``(in_features, dtype)`` FFTW-style, like
the grouped butterfly plans; butterfly-stage quantization reuses the
existing plan cache by dequantizing the (tiny) stage coefficients and
dispatching to :func:`repro.kernels.butterfly_apply`.

The activation dtype follows the inputs (float32/float64 under the
:mod:`repro.kernels.dtype` policy); only weights are int8.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import counter_inc, span
from .autotune import get_tuned, shape_class
from .backend import resolve_backend
from .dtype import promote_storage

#: Quantized code range: symmetric int8 without -128, so negation is
#: closed and the hardware's sign-magnitude multipliers need no special
#: case (the convention of the int8 accelerator literature).
QMAX = 127

#: Int4 code range: symmetric without -8, same closure argument as int8.
Q4MAX = 7

#: Input-dim group size for int4 quantization.  Int4's 15-level grid is
#: too coarse for one scale per channel, so scales are per contiguous
#: group of this many weights along the input dimension (the standard
#: grouped scheme of the 4-bit LLM inference literature).
INT4_GROUP = 32

#: Dequant scratch sizing: one block of rows is dequantized at a time
#: into a buffer of at most this many bytes, so the fp copy BLAS reads
#: stays cache-resident while the int8 stream is the only DRAM traffic.
SCRATCH_TARGET_BYTES = 96 * 1024

#: Per-channel shrink factors tried by the MSE calibration grid search.
CALIBRATION_GRID = (1.0, 0.95, 0.9, 0.85, 0.8)

#: Dequant scratch blocks are pooled *per thread* (see :func:`_scratch`):
#: the threaded backend runs column-span shards on pool workers, and a
#: process-global pool would hand two workers the same buffer.
_SCRATCH_TLS = threading.local()
_SCRATCH_CACHE_MAX = 16


def absmax_scales(w: np.ndarray, qmax: int = QMAX) -> np.ndarray:
    """Per-channel (per-row) symmetric scales ``absmax / qmax`` as fp32.

    ``w`` is ``(channels, elements)``; all-zero channels get scale 1.0
    so their codes (all zero) still dequantize exactly.
    """
    absmax = np.abs(w).max(axis=-1)
    return np.where(absmax > 0.0, absmax / qmax, 1.0).astype(np.float32)


def calibrate_scales(
    w: np.ndarray, grid: Sequence[float] = CALIBRATION_GRID, qmax: int = QMAX
) -> np.ndarray:
    """MSE-calibrated per-channel scales: grid-search a shrink of absmax.

    Clipping a heavy-tailed channel slightly (shrinking its scale below
    ``absmax/qmax``) trades a few saturated outliers for a finer grid on
    the bulk of the weights; this pass picks, per channel, the shrink in
    ``grid`` minimizing the round-trip MSE.  Pure weight-distribution
    calibration — no activation data needed.
    """
    w = np.asarray(w, dtype=np.float64)
    base = absmax_scales(w, qmax=qmax).astype(np.float64)
    best_scales = base.copy()
    best_err = np.full(w.shape[0], np.inf)
    for shrink in grid:
        scales = base * shrink
        q = np.clip(np.rint(w / scales[:, None]), -qmax, qmax)
        err = np.square(q * scales[:, None] - w).mean(axis=-1)
        better = err < best_err
        best_err[better] = err[better]
        best_scales[better] = scales[better]
    return best_scales.astype(np.float32)


def _symmetric_scales(w: np.ndarray, calibration: str, qmax: int) -> np.ndarray:
    if calibration == "absmax":
        return absmax_scales(w, qmax=qmax)
    if calibration == "mse":
        return calibrate_scales(w, qmax=qmax)
    raise ValueError(
        f"calibration must be 'absmax' or 'mse', got {calibration!r}"
    )


def quantize_per_channel(
    w: np.ndarray, calibration: str = "absmax"
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize ``(channels, elements)`` weights to ``(int8 codes, fp32 scales)``.

    ``calibration`` is ``"absmax"`` (exact range cover) or ``"mse"``
    (per-channel clipped grid search, :func:`calibrate_scales`).  Codes
    use round-half-to-even and saturate at ±127.
    """
    w = np.asarray(w)
    if w.ndim != 2:
        raise ValueError(f"expected 2-D (channels, elements) weights, got {w.shape}")
    scales = _symmetric_scales(w, calibration, QMAX)
    q = np.clip(np.rint(w / scales[:, None]), -QMAX, QMAX).astype(np.int8)
    return q, scales


def dequantize(q: np.ndarray, scales: np.ndarray, dtype=None) -> np.ndarray:
    """Exact dequantization ``q * scales`` (per-channel rows) in ``dtype``."""
    dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float32)
    return q.astype(dtype) * scales.astype(dtype)[:, None]


# ----------------------------------------------------------------------
# Dequant-on-the-fly GEMM
# ----------------------------------------------------------------------
def _block_rows(in_features: int, itemsize: int) -> int:
    """Rows per dequant block so the scratch stays within the target."""
    rows = SCRATCH_TARGET_BYTES // max(1, in_features * itemsize)
    return int(np.clip(rows, 8, 256))


def _scratch(rows: int, in_features: int, dtype: np.dtype) -> np.ndarray:
    """Thread-local cached dequant scratch block for ``(in_features, dtype)``.

    Per-thread pooling (not a shared dict) so the threaded backend's
    workers never alias one buffer while dequantizing different spans.
    """
    cache = getattr(_SCRATCH_TLS, "cache", None)
    if cache is None:
        cache = _SCRATCH_TLS.cache = {}
    key = (in_features, dtype.str)
    buf = cache.get(key)
    if buf is None or buf.shape[0] < rows:
        counter_inc("kernels_quant_scratch_misses_total")
        if len(cache) >= _SCRATCH_CACHE_MAX and key not in cache:
            cache.pop(next(iter(cache)))
        buf = np.empty((rows, in_features), dtype=dtype)
        cache[key] = buf
    else:
        counter_inc("kernels_quant_scratch_hits_total")
    return buf


def _resolve_block_rows(
    block_rows: Optional[int], in_features: int, dtype: np.dtype
) -> int:
    """Block size: explicit arg > autotuned (machine cache / committed
    defaults, see :mod:`repro.kernels.autotune`) > on-the-fly heuristic.

    The block size is execution-only — output column blocks are
    independent GEMMs over the full contraction axis, so any block size
    produces bit-identical results.
    """
    if block_rows is not None:
        return max(1, int(block_rows))
    default = _block_rows(in_features, dtype.itemsize)
    tuned = get_tuned(
        "quantized_linear", shape_class(in_features), dtype,
        {"block_rows": default},
    )
    return max(1, int(tuned["block_rows"]))


def quantized_linear(
    x: np.ndarray,
    q_weight: np.ndarray,
    scales: np.ndarray,
    bias: Optional[np.ndarray] = None,
    *,
    block_rows: Optional[int] = None,
    backend=None,
) -> np.ndarray:
    """``x @ dequant(q_weight)^T + bias`` without materializing the weight.

    ``x`` is ``(..., in)`` float32/float64, ``q_weight`` is ``(out, in)``
    int8 with per-output-channel ``scales``.  The weight is streamed
    through a cache-resident scratch block (one ``int8 -> fp`` copy and
    one GEMM per block); the per-channel scale is applied once to the
    ``(..., out)`` accumulator, which is tiny next to the weight.

    ``block_rows`` overrides the autotuned block size; ``backend``
    selects the execution backend (blocks are independent output-column
    GEMMs, so the threaded backend shards them bit-identically).
    """
    x = np.asarray(x)
    if q_weight.dtype != np.int8:
        raise TypeError(f"q_weight must be int8, got {q_weight.dtype}")
    out_features, in_features = q_weight.shape
    if x.shape[-1] != in_features:
        raise ValueError(
            f"input dim {x.shape[-1]} does not match weight in dim {in_features}"
        )
    backend = resolve_backend(backend)
    lead = x.shape[:-1]
    x2 = x.reshape(-1, in_features)
    out = np.empty((x2.shape[0], out_features), dtype=x.dtype)
    rows = _resolve_block_rows(block_rows, in_features, x.dtype)

    def run_block(o0: int) -> None:
        o1 = min(o0 + rows, out_features)
        buf = _scratch(min(rows, out_features), in_features, x.dtype)
        block = buf[: o1 - o0]
        np.copyto(block, q_weight[o0:o1])  # int8 -> fp dequant (unscaled)
        np.matmul(x2, block.T, out=out[:, o0:o1])

    with span("kernels.quantized_linear", rows=x2.shape[0], out=out_features):
        backend.map(run_block, range(0, out_features, rows))
        out *= scales
        if bias is not None:
            out += bias
    return out.reshape(*lead, out_features)


def quantized_linear_reference(
    x: np.ndarray,
    q_weight: np.ndarray,
    scales: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unblocked oracle for :func:`quantized_linear` (parity tests)."""
    out = np.matmul(x, q_weight.T.astype(x.dtype))
    out *= scales
    if bias is not None:
        out += bias
    return out


# ----------------------------------------------------------------------
# fp16 storage tier: half-precision weights, one-tier-wider compute
# ----------------------------------------------------------------------
def quantize_to_half(w: np.ndarray) -> np.ndarray:
    """Round weights to the fp16 storage tier (half the bytes of fp32)."""
    return np.asarray(w).astype(np.float16)


def half_linear(
    x: np.ndarray,
    w_half: np.ndarray,
    bias: Optional[np.ndarray] = None,
    *,
    block_rows: Optional[int] = None,
    backend=None,
) -> np.ndarray:
    """``x @ w_half^T + bias`` with ``(out, in)`` weights *stored* in fp16.

    NumPy has no BLAS half kernels, so the weight is streamed block-wise
    through a :func:`compute_dtype <repro.kernels.dtype.compute_dtype>`
    scratch (fp16 promotes to fp32) and the GEMM runs one tier wider —
    the software analogue of wide accumulators over the paper's 16-bit
    buffers.  The result is cast back to ``x``'s dtype, so an fp16
    activation stream stays fp16 end to end.
    """
    x = np.asarray(x)
    w_half = np.asarray(w_half)
    if w_half.dtype != np.float16:
        raise TypeError(f"w_half must be float16, got {w_half.dtype}")
    out_features, in_features = w_half.shape
    if x.shape[-1] != in_features:
        raise ValueError(
            f"input dim {x.shape[-1]} does not match weight in dim {in_features}"
        )
    backend = resolve_backend(backend)
    cdt = promote_storage(x.dtype, np.float16)
    lead = x.shape[:-1]
    x2 = np.ascontiguousarray(x.reshape(-1, in_features), dtype=cdt)
    out = np.empty((x2.shape[0], out_features), dtype=cdt)
    rows = _resolve_block_rows(block_rows, in_features, cdt)

    def run_block(o0: int) -> None:
        o1 = min(o0 + rows, out_features)
        buf = _scratch(min(rows, out_features), in_features, cdt)
        block = buf[: o1 - o0]
        np.copyto(block, w_half[o0:o1])  # fp16 -> compute-tier promote
        np.matmul(x2, block.T, out=out[:, o0:o1])

    with span("kernels.half_linear", rows=x2.shape[0], out=out_features):
        backend.map(run_block, range(0, out_features, rows))
        if bias is not None:
            out += np.asarray(bias, dtype=cdt)
    return out.reshape(*lead, out_features).astype(x.dtype, copy=False)


def half_linear_reference(
    x: np.ndarray,
    w_half: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unblocked oracle for :func:`half_linear` (parity tests)."""
    cdt = promote_storage(x.dtype, np.float16)
    out = np.matmul(x.astype(cdt), w_half.T.astype(cdt))
    if bias is not None:
        out += np.asarray(bias, dtype=cdt)
    return out.astype(np.asarray(x).dtype, copy=False)


# ----------------------------------------------------------------------
# int4 storage tier: grouped symmetric codes, two nibbles per byte
# ----------------------------------------------------------------------
def quantize_int4_grouped(
    w: np.ndarray,
    group_size: int = INT4_GROUP,
    calibration: str = "absmax",
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize ``(out, in)`` weights to packed int4 with per-group scales.

    Each contiguous run of ``group_size`` weights along the input dim
    shares one fp32 scale; codes are ``clip(rint(w / s), -7, 7)`` (round
    half to even, matching the int8 path and the hardware quantizer).
    Two codes pack into each byte, biased by +8 into unsigned nibbles:
    even input index in the low nibble, odd in the high nibble.  Returns
    ``(packed uint8 (out, in/2), scales fp32 (out, in/group_size))``.
    """
    w = np.asarray(w)
    if w.ndim != 2:
        raise ValueError(f"expected 2-D (out, in) weights, got {w.shape}")
    out_features, in_features = w.shape
    if group_size < 2 or group_size % 2:
        raise ValueError(f"group_size must be an even int >= 2, got {group_size}")
    if in_features % group_size:
        raise ValueError(
            f"in dim {in_features} is not a multiple of group_size {group_size}"
        )
    grouped = w.reshape(-1, group_size)
    scales = _symmetric_scales(grouped, calibration, Q4MAX)
    q = np.clip(np.rint(grouped / scales[:, None]), -Q4MAX, Q4MAX)
    codes = q.astype(np.int8).reshape(out_features, in_features)
    biased = (codes + 8).astype(np.uint8)
    packed = biased[:, 0::2] | (biased[:, 1::2] << 4)
    return packed, scales.reshape(out_features, in_features // group_size)


def unpack_int4(packed: np.ndarray) -> np.ndarray:
    """Unpack nibble-packed codes back to int8 in ``[-7, 7]``."""
    if packed.dtype != np.uint8:
        raise TypeError(f"packed int4 weights must be uint8, got {packed.dtype}")
    codes = np.empty((packed.shape[0], packed.shape[1] * 2), dtype=np.int8)
    codes[:, 0::2] = (packed & 0x0F).astype(np.int8) - 8
    codes[:, 1::2] = (packed >> 4).astype(np.int8) - 8
    return codes


def dequantize_int4_grouped(
    packed: np.ndarray, scales: np.ndarray, dtype=None
) -> np.ndarray:
    """Exact dequantization of grouped int4 codes in ``dtype``."""
    dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float32)
    out_features = packed.shape[0]
    in_features = packed.shape[1] * 2
    n_groups = scales.shape[1]
    w = unpack_int4(packed).astype(dtype).reshape(out_features, n_groups, -1)
    w *= np.asarray(scales, dtype=dtype)[:, :, None]
    return w.reshape(out_features, in_features)


def int4_linear(
    x: np.ndarray,
    q4_weight: np.ndarray,
    scales: np.ndarray,
    bias: Optional[np.ndarray] = None,
    *,
    block_rows: Optional[int] = None,
    backend=None,
) -> np.ndarray:
    """``x @ dequant(q4_weight)^T + bias`` from nibble-packed int4 weights.

    Same streaming recipe as :func:`quantized_linear` — one unpack +
    per-group dequant + GEMM per output-row block, never materializing
    the full weight — but the DRAM stream is a quarter of fp32 (plus the
    per-group scales).  Blocks are independent, so the threaded backend
    shards them bit-identically.
    """
    x = np.asarray(x)
    if q4_weight.dtype != np.uint8:
        raise TypeError(f"q4_weight must be uint8 (packed), got {q4_weight.dtype}")
    out_features = q4_weight.shape[0]
    in_features = q4_weight.shape[1] * 2
    if x.shape[-1] != in_features:
        raise ValueError(
            f"input dim {x.shape[-1]} does not match weight in dim {in_features}"
        )
    n_groups = scales.shape[1]
    backend = resolve_backend(backend)
    lead = x.shape[:-1]
    x2 = x.reshape(-1, in_features)
    out = np.empty((x2.shape[0], out_features), dtype=x.dtype)
    rows = _resolve_block_rows(block_rows, in_features, x.dtype)

    def run_block(o0: int) -> None:
        o1 = min(o0 + rows, out_features)
        buf = _scratch(min(rows, out_features), in_features, x.dtype)
        block = buf[: o1 - o0]
        pk = q4_weight[o0:o1].astype(np.int16)
        block[:, 0::2] = (pk & 0x0F) - 8
        block[:, 1::2] = (pk >> 4) - 8
        bg = block.reshape(o1 - o0, n_groups, -1)
        bg *= scales[o0:o1, :, None]
        np.matmul(x2, block.T, out=out[:, o0:o1])

    with span("kernels.int4_linear", rows=x2.shape[0], out=out_features):
        backend.map(run_block, range(0, out_features, rows))
        if bias is not None:
            out += bias
    return out.reshape(*lead, out_features)


def int4_linear_reference(
    x: np.ndarray,
    q4_weight: np.ndarray,
    scales: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unblocked oracle for :func:`int4_linear` (parity tests)."""
    w = dequantize_int4_grouped(q4_weight, scales, dtype=np.asarray(x).dtype)
    out = np.matmul(x, w.T)
    if bias is not None:
        out += bias
    return out


# ----------------------------------------------------------------------
# Quantized butterfly ladders
# ----------------------------------------------------------------------
def quantize_butterfly_stages(
    coeffs: Sequence[np.ndarray], calibration: str = "absmax"
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Quantize a ladder's ``(4, n/2)`` stage tensors to int8.

    Each of the four coefficient roles (the ``a, b, c, d`` entries of
    the 2x2 pair blocks — the four multiplier operands of the hardware
    Butterfly Unit) is one quantization channel, so a stage carries four
    fp32 scales.  Returns ``(codes per stage, scales per stage)``.
    """
    qs: List[np.ndarray] = []
    scales: List[np.ndarray] = []
    for c in coeffs:
        c = np.asarray(c)
        if c.ndim != 2 or c.shape[0] != 4:
            raise ValueError(f"stage coeffs must be (4, n/2), got {c.shape}")
        q, s = quantize_per_channel(c, calibration=calibration)
        qs.append(q)
        scales.append(s)
    return qs, scales


def dequantize_butterfly_stages(
    q_stages: Sequence[np.ndarray],
    stage_scales: Sequence[np.ndarray],
    dtype=None,
) -> List[np.ndarray]:
    """Exact fp stage tensors from int8 codes (shared with the hardware model)."""
    return [
        dequantize(q, s, dtype=dtype) for q, s in zip(q_stages, stage_scales)
    ]


def quantized_butterfly_apply(
    x: np.ndarray,
    q_stages: Sequence[np.ndarray],
    stage_scales: Sequence[np.ndarray],
    halves: Sequence[int],
) -> np.ndarray:
    """Apply an int8-quantized butterfly ladder to the last axis of ``x``.

    Stage coefficients are ``O(n)`` while activations are ``O(batch *
    n)``, so dequantizing the stages on the fly is cheap; the apply then
    rides the existing fused grouped kernel and its plan/scratch caches
    (:func:`repro.kernels.butterfly_apply` with ``need_ctx=False`` —
    inference only, no VJP context).
    """
    from . import butterfly_apply  # local import: package init imports us

    coeffs = dequantize_butterfly_stages(q_stages, stage_scales, dtype=x.dtype)
    y, _ = butterfly_apply(x, coeffs, halves, need_ctx=False)
    return y


def half_butterfly_stages(coeffs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Round a ladder's ``(4, n/2)`` stage tensors to fp16 storage."""
    return [np.asarray(c).astype(np.float16) for c in coeffs]


def half_butterfly_apply(
    x: np.ndarray, h_stages: Sequence[np.ndarray], halves: Sequence[int]
) -> np.ndarray:
    """Apply an fp16-stored butterfly ladder (compute one tier wider)."""
    from . import butterfly_apply  # local import: package init imports us

    cdt = promote_storage(x.dtype, np.float16)
    coeffs = [c.astype(cdt) for c in h_stages]
    xc = np.ascontiguousarray(x, dtype=cdt)
    y, _ = butterfly_apply(xc, coeffs, halves, need_ctx=False)
    return y.astype(np.asarray(x).dtype, copy=False)


def quantize_butterfly_stages_int4(
    coeffs: Sequence[np.ndarray],
    group_size: int = INT4_GROUP,
    calibration: str = "absmax",
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Quantize a ladder's ``(4, n/2)`` stage tensors to grouped int4.

    Groups run along the pair axis within each of the four coefficient
    roles, clamped to the stage width for small ladders.  Returns
    ``(packed codes per stage, per-group scales per stage)``.
    """
    packed: List[np.ndarray] = []
    scales: List[np.ndarray] = []
    for c in coeffs:
        c = np.asarray(c)
        if c.ndim != 2 or c.shape[0] != 4:
            raise ValueError(f"stage coeffs must be (4, n/2), got {c.shape}")
        gs = min(group_size, c.shape[1])
        p, s = quantize_int4_grouped(c, group_size=gs, calibration=calibration)
        packed.append(p)
        scales.append(s)
    return packed, scales


def int4_butterfly_apply(
    x: np.ndarray,
    packed_stages: Sequence[np.ndarray],
    stage_scales: Sequence[np.ndarray],
    halves: Sequence[int],
) -> np.ndarray:
    """Apply a grouped-int4 butterfly ladder to the last axis of ``x``."""
    from . import butterfly_apply  # local import: package init imports us

    coeffs = [
        dequantize_int4_grouped(p, s, dtype=x.dtype)
        for p, s in zip(packed_stages, stage_scales)
    ]
    y, _ = butterfly_apply(x, coeffs, halves, need_ctx=False)
    return y


# ----------------------------------------------------------------------
# Error accounting shared by tests and the nn transform
# ----------------------------------------------------------------------
def quantization_rmse(w: np.ndarray, q: np.ndarray, scales: np.ndarray) -> float:
    """Root-mean-square round-trip error of a quantized weight."""
    w_hat = dequantize(q, scales, dtype=np.float64)
    return float(np.sqrt(np.square(w_hat - np.asarray(w, dtype=np.float64)).mean()))


def int4_quantization_rmse(
    w: np.ndarray, packed: np.ndarray, scales: np.ndarray
) -> float:
    """Root-mean-square round-trip error of a grouped-int4 weight."""
    w_hat = dequantize_int4_grouped(packed, scales, dtype=np.float64)
    return float(np.sqrt(np.square(w_hat - np.asarray(w, dtype=np.float64)).mean()))
