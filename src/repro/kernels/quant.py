"""Int8 weight quantization kernels: the software decode datapath.

The paper's accelerator executes butterfly and attention workloads in
reduced precision; :mod:`repro.hardware.quantize` models what that does
to accuracy.  This module is the *runnable* counterpart: per-channel
symmetric int8 weight quantization plus dequant-on-the-fly kernels, so
the quantized numbers the simulator reports have an executable software
path (the codesign loop closed in both directions).

Scheme — per-channel symmetric int8, scales in fp32:

* each output channel ``o`` of a ``(out, in)`` weight gets one scale
  ``s_o``; codes are ``q = clip(rint(w / s_o), -127, 127)`` (round half
  to even, the IEEE default shared with the hardware quantizer model,
  which asserts bit-level agreement in its verify mode);
* ``s_o = absmax_o / 127`` by default, or an MSE-calibrated shrink of it
  (:func:`calibrate_scales` grid-searches a per-channel shrink factor —
  the cheap weight-distribution calibration pass used by
  ``quantize_for_inference``);
* dequantization is exact multiplication: ``w_hat = q * s_o``.

Execution — :func:`quantized_linear` never materializes the full
dequantized matrix.  It streams the int8 weight through a small fp
scratch block (sized to stay cache-resident, see
:data:`SCRATCH_TARGET_BYTES`) and runs one BLAS GEMM per block, scaling
the accumulated outputs per channel afterwards.  A batch-8 decode GEMM
is memory-bound on weight traffic, so reading int8 instead of fp32
is what the speedup in ``BENCH_quant.json`` comes from — the same
bandwidth argument the paper makes for its reduced-precision buffers.
Scratch blocks are cached per ``(in_features, dtype)`` FFTW-style, like
the grouped butterfly plans; butterfly-stage quantization reuses the
existing plan cache by dequantizing the (tiny) stage coefficients and
dispatching to :func:`repro.kernels.butterfly_apply`.

The activation dtype follows the inputs (float32/float64 under the
:mod:`repro.kernels.dtype` policy); only weights are int8.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Quantized code range: symmetric int8 without -128, so negation is
#: closed and the hardware's sign-magnitude multipliers need no special
#: case (the convention of the int8 accelerator literature).
QMAX = 127

#: Dequant scratch sizing: one block of rows is dequantized at a time
#: into a buffer of at most this many bytes, so the fp copy BLAS reads
#: stays cache-resident while the int8 stream is the only DRAM traffic.
SCRATCH_TARGET_BYTES = 96 * 1024

#: Per-channel shrink factors tried by the MSE calibration grid search.
CALIBRATION_GRID = (1.0, 0.95, 0.9, 0.85, 0.8)

_SCRATCH_CACHE: dict = {}
_SCRATCH_CACHE_MAX = 16


def absmax_scales(w: np.ndarray) -> np.ndarray:
    """Per-channel (per-row) symmetric scales ``absmax / 127`` as fp32.

    ``w`` is ``(channels, elements)``; all-zero channels get scale 1.0
    so their codes (all zero) still dequantize exactly.
    """
    absmax = np.abs(w).max(axis=-1)
    return np.where(absmax > 0.0, absmax / QMAX, 1.0).astype(np.float32)


def calibrate_scales(
    w: np.ndarray, grid: Sequence[float] = CALIBRATION_GRID
) -> np.ndarray:
    """MSE-calibrated per-channel scales: grid-search a shrink of absmax.

    Clipping a heavy-tailed channel slightly (shrinking its scale below
    ``absmax/127``) trades a few saturated outliers for a finer grid on
    the bulk of the weights; this pass picks, per channel, the shrink in
    ``grid`` minimizing the round-trip MSE.  Pure weight-distribution
    calibration — no activation data needed.
    """
    w = np.asarray(w, dtype=np.float64)
    base = absmax_scales(w).astype(np.float64)
    best_scales = base.copy()
    best_err = np.full(w.shape[0], np.inf)
    for shrink in grid:
        scales = base * shrink
        q = np.clip(np.rint(w / scales[:, None]), -QMAX, QMAX)
        err = np.square(q * scales[:, None] - w).mean(axis=-1)
        better = err < best_err
        best_err[better] = err[better]
        best_scales[better] = scales[better]
    return best_scales.astype(np.float32)


def quantize_per_channel(
    w: np.ndarray, calibration: str = "absmax"
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize ``(channels, elements)`` weights to ``(int8 codes, fp32 scales)``.

    ``calibration`` is ``"absmax"`` (exact range cover) or ``"mse"``
    (per-channel clipped grid search, :func:`calibrate_scales`).  Codes
    use round-half-to-even and saturate at ±127.
    """
    w = np.asarray(w)
    if w.ndim != 2:
        raise ValueError(f"expected 2-D (channels, elements) weights, got {w.shape}")
    if calibration == "absmax":
        scales = absmax_scales(w)
    elif calibration == "mse":
        scales = calibrate_scales(w)
    else:
        raise ValueError(
            f"calibration must be 'absmax' or 'mse', got {calibration!r}"
        )
    q = np.clip(np.rint(w / scales[:, None]), -QMAX, QMAX).astype(np.int8)
    return q, scales


def dequantize(q: np.ndarray, scales: np.ndarray, dtype=None) -> np.ndarray:
    """Exact dequantization ``q * scales`` (per-channel rows) in ``dtype``."""
    dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float32)
    return q.astype(dtype) * scales.astype(dtype)[:, None]


# ----------------------------------------------------------------------
# Dequant-on-the-fly GEMM
# ----------------------------------------------------------------------
def _block_rows(in_features: int, itemsize: int) -> int:
    """Rows per dequant block so the scratch stays within the target."""
    rows = SCRATCH_TARGET_BYTES // max(1, in_features * itemsize)
    return int(np.clip(rows, 8, 256))


def _scratch(rows: int, in_features: int, dtype: np.dtype) -> np.ndarray:
    """Cached dequant scratch block for ``(in_features, dtype)``."""
    key = (in_features, dtype.str)
    buf = _SCRATCH_CACHE.get(key)
    if buf is None or buf.shape[0] < rows:
        if len(_SCRATCH_CACHE) >= _SCRATCH_CACHE_MAX and key not in _SCRATCH_CACHE:
            _SCRATCH_CACHE.pop(next(iter(_SCRATCH_CACHE)))
        buf = np.empty((rows, in_features), dtype=dtype)
        _SCRATCH_CACHE[key] = buf
    return buf


def quantized_linear(
    x: np.ndarray,
    q_weight: np.ndarray,
    scales: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``x @ dequant(q_weight)^T + bias`` without materializing the weight.

    ``x`` is ``(..., in)`` float32/float64, ``q_weight`` is ``(out, in)``
    int8 with per-output-channel ``scales``.  The weight is streamed
    through a cache-resident scratch block (one ``int8 -> fp`` copy and
    one GEMM per block); the per-channel scale is applied once to the
    ``(..., out)`` accumulator, which is tiny next to the weight.
    """
    x = np.asarray(x)
    if q_weight.dtype != np.int8:
        raise TypeError(f"q_weight must be int8, got {q_weight.dtype}")
    out_features, in_features = q_weight.shape
    if x.shape[-1] != in_features:
        raise ValueError(
            f"input dim {x.shape[-1]} does not match weight in dim {in_features}"
        )
    lead = x.shape[:-1]
    x2 = x.reshape(-1, in_features)
    out = np.empty((x2.shape[0], out_features), dtype=x.dtype)
    rows = _block_rows(in_features, x.dtype.itemsize)
    buf = _scratch(min(rows, out_features), in_features, x.dtype)
    for o0 in range(0, out_features, rows):
        o1 = min(o0 + rows, out_features)
        block = buf[: o1 - o0]
        np.copyto(block, q_weight[o0:o1])  # int8 -> fp dequant (unscaled)
        np.matmul(x2, block.T, out=out[:, o0:o1])
    out *= scales
    if bias is not None:
        out += bias
    return out.reshape(*lead, out_features)


def quantized_linear_reference(
    x: np.ndarray,
    q_weight: np.ndarray,
    scales: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unblocked oracle for :func:`quantized_linear` (parity tests)."""
    out = np.matmul(x, q_weight.T.astype(x.dtype))
    out *= scales
    if bias is not None:
        out += bias
    return out


# ----------------------------------------------------------------------
# Quantized butterfly ladders
# ----------------------------------------------------------------------
def quantize_butterfly_stages(
    coeffs: Sequence[np.ndarray], calibration: str = "absmax"
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Quantize a ladder's ``(4, n/2)`` stage tensors to int8.

    Each of the four coefficient roles (the ``a, b, c, d`` entries of
    the 2x2 pair blocks — the four multiplier operands of the hardware
    Butterfly Unit) is one quantization channel, so a stage carries four
    fp32 scales.  Returns ``(codes per stage, scales per stage)``.
    """
    qs: List[np.ndarray] = []
    scales: List[np.ndarray] = []
    for c in coeffs:
        c = np.asarray(c)
        if c.ndim != 2 or c.shape[0] != 4:
            raise ValueError(f"stage coeffs must be (4, n/2), got {c.shape}")
        q, s = quantize_per_channel(c, calibration=calibration)
        qs.append(q)
        scales.append(s)
    return qs, scales


def dequantize_butterfly_stages(
    q_stages: Sequence[np.ndarray],
    stage_scales: Sequence[np.ndarray],
    dtype=None,
) -> List[np.ndarray]:
    """Exact fp stage tensors from int8 codes (shared with the hardware model)."""
    return [
        dequantize(q, s, dtype=dtype) for q, s in zip(q_stages, stage_scales)
    ]


def quantized_butterfly_apply(
    x: np.ndarray,
    q_stages: Sequence[np.ndarray],
    stage_scales: Sequence[np.ndarray],
    halves: Sequence[int],
) -> np.ndarray:
    """Apply an int8-quantized butterfly ladder to the last axis of ``x``.

    Stage coefficients are ``O(n)`` while activations are ``O(batch *
    n)``, so dequantizing the stages on the fly is cheap; the apply then
    rides the existing fused grouped kernel and its plan/scratch caches
    (:func:`repro.kernels.butterfly_apply` with ``need_ctx=False`` —
    inference only, no VJP context).
    """
    from . import butterfly_apply  # local import: package init imports us

    coeffs = dequantize_butterfly_stages(q_stages, stage_scales, dtype=x.dtype)
    y, _ = butterfly_apply(x, coeffs, halves, need_ctx=False)
    return y


# ----------------------------------------------------------------------
# Error accounting shared by tests and the nn transform
# ----------------------------------------------------------------------
def quantization_rmse(w: np.ndarray, q: np.ndarray, scales: np.ndarray) -> float:
    """Root-mean-square round-trip error of a quantized weight."""
    w_hat = dequantize(q, scales, dtype=np.float64)
    return float(np.sqrt(np.square(w_hat - np.asarray(w, dtype=np.float64)).mean()))
