"""Pluggable kernel execution backends: serial and multi-threaded.

Every hot path in the kernel layer — the fused grouped butterfly GEMMs
(:mod:`repro.kernels.grouped`), the blocked dequant GEMM
(:mod:`repro.kernels.quant`), streaming-softmax attention
(:mod:`repro.kernels.attention`) and the fused training projections
(:mod:`repro.kernels.fused`) — used to run single-threaded.  This module
extracts the *execution strategy* out of those kernels into an explicit
:class:`KernelBackend` object with two primitives:

* :meth:`KernelBackend.matmul` — a batched/blocked GEMM that a backend
  may partition across workers (disjoint row blocks of the output, so
  results are bit-identical to one serial ``np.matmul`` call: each
  row-block GEMM performs exactly the accumulation the serial call
  performs for those rows);
* :meth:`KernelBackend.map` — a parallel map over independent work items
  (row shards of an attention batch, output-channel spans of a
  quantized GEMM).  Items never share mutable scratch: per-thread
  scratch pools in the kernel layer keep workers race-free.

Two implementations are registered:

``serial``
    The default.  Executes inline; byte-for-byte the pre-backend
    behavior, and the bit-parity oracle for everything else.

``threaded``
    Partitions work across a shared :class:`concurrent.futures.
    ThreadPoolExecutor`.  NumPy releases the GIL inside BLAS, so
    row-block sharding of GEMM-bound kernels is a real multi-core win;
    worker count defaults to the machine's CPU count (overridable with
    ``REPRO_KERNEL_WORKERS`` or per instance).  On a single-core
    machine the backend degrades to inline execution.

Selection is a process-global (thread-local-aware callers should scope
with :func:`use_backend`)::

    from repro.kernels import use_backend, set_backend

    set_backend("threaded")              # global
    with use_backend("threaded"):        # scoped
        model(tokens)

Backends are *execution* strategies only — they never change numerics.
The fp16/int4 storage tiers (:mod:`repro.kernels.quant`) are orthogonal
and compose with either backend.
"""

from __future__ import annotations

import contextlib
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..faults import fault_point
from ..telemetry import counter_inc, gauge_set

#: Minimum elements in the GEMM output before the threaded backend
#: bothers sharding a matmul; below this the submit/join overhead wins.
MIN_PARALLEL_ELEMS = 1 << 14

#: Minimum items-per-worker granularity for :meth:`KernelBackend.map`.
MIN_PARALLEL_ITEMS = 2


def _env_workers() -> Optional[int]:
    raw = os.environ.get("REPRO_KERNEL_WORKERS")
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


#: Canonical (shape-class, dtype) key for the ``workers`` sweep.  The
#: backend has one worker count for every op, so both the sweep and the
#: constructor lookup pin the same representative GEMM class (the
#: n=1024 fp32 headline benchmark shape) instead of tuning per call.
WORKERS_TUNE_CLASS = "le1024"


def _tuned_workers() -> Optional[int]:
    """Machine-local autotuned worker count, or None when never swept.

    Consulted between the ``REPRO_KERNEL_WORKERS`` override and the
    CPU-count fallback, so a persisted ``workers`` sweep (autotune cache
    or committed defaults) actually steers the backend.  With
    ``REPRO_AUTOTUNE=1`` a cache miss triggers the sweep on first
    construction; the sweep itself builds backends with explicit worker
    counts, which bypass this lookup.
    """
    from .autotune import get_tuned

    params = get_tuned(
        "workers", WORKERS_TUNE_CLASS, np.float32, {"workers": 0}
    )
    try:
        tuned = int(params.get("workers", 0))
    except (TypeError, ValueError):
        return None
    return tuned if tuned >= 1 else None


class KernelBackend:
    """Execution strategy consumed by the kernel layer.

    The base class *is* the serial backend: both primitives execute
    inline.  Subclasses override :meth:`matmul` / :meth:`map` but must
    preserve numerics exactly (disjoint output partitions only — any
    re-association of accumulations would break the hardware parity
    oracle).
    """

    name = "serial"

    @property
    def workers(self) -> int:
        return 1

    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``np.matmul(a, b, out=out)``, possibly partitioned by rows."""
        fault_point("kernels.matmul", elems=out.size)
        np.matmul(a, b, out=out)
        return out

    def map(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every item; items must be independent."""
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} workers={self.workers}>"


class SerialBackend(KernelBackend):
    """The default single-threaded backend (bit-identical baseline)."""


# One executor per worker count, shared by every ThreadedBackend
# instance — thread churn per kernel call would swamp the GEMMs.
_EXECUTORS: Dict[int, ThreadPoolExecutor] = {}
_EXECUTOR_LOCK = threading.Lock()


def _shared_executor(workers: int) -> ThreadPoolExecutor:
    with _EXECUTOR_LOCK:
        pool = _EXECUTORS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-kernel"
            )
            _EXECUTORS[workers] = pool
        return pool


def _split_ranges(n: int, parts: int) -> List[range]:
    """Split ``range(n)`` into at most ``parts`` contiguous chunks."""
    parts = max(1, min(parts, n))
    base, rem = divmod(n, parts)
    ranges = []
    start = 0
    for k in range(parts):
        size = base + (1 if k < rem else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


class ThreadedBackend(KernelBackend):
    """Partition GEMM rows / work items across a shared thread pool.

    ``workers`` defaults to ``REPRO_KERNEL_WORKERS`` or the CPU count.
    Nested parallelism is refused: a task already running on a kernel
    worker thread executes inline (otherwise a sharded attention call
    whose shards hit sharded GEMMs would deadlock-prone oversubscribe).
    """

    name = "threaded"

    def __init__(self, workers: Optional[int] = None) -> None:
        self._workers = (
            workers or _env_workers() or _tuned_workers()
            or os.cpu_count() or 1
        )
        self._in_worker = threading.local()

    @property
    def workers(self) -> int:
        return self._workers

    # ------------------------------------------------------------------
    def _run_tasks(self, tasks: Sequence[Callable]) -> List:
        if len(tasks) == 1 or getattr(self._in_worker, "active", False):
            counter_inc("kernels_threaded_inline_total")
            return [task() for task in tasks]
        counter_inc("kernels_threaded_dispatch_total")
        counter_inc("kernels_threaded_tasks_total", amount=len(tasks))
        gauge_set("kernels_threaded_occupancy",
                  len(tasks) / self._workers)
        pool = _shared_executor(self._workers)

        def guarded(task: Callable):
            self._in_worker.active = True
            try:
                return task()
            finally:
                self._in_worker.active = False

        futures = [pool.submit(guarded, task) for task in tasks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def _split_axis(self, out: np.ndarray) -> Optional[int]:
        """Pick the axis to shard: the largest of out's batch/row axes."""
        if out.ndim < 2 or out.size < MIN_PARALLEL_ELEMS:
            return None
        # Candidate axes: every leading (batch) axis plus the row axis.
        # Operands are sliced along the matching axis when they have it.
        axes = list(range(out.ndim - 1))
        best = max(axes, key=lambda ax: out.shape[ax])
        if out.shape[best] < 2:
            return None
        return best

    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        # Checked on the caller's thread, before any work is sharded, so
        # an injected fault never strands half-submitted worker tasks.
        fault_point("kernels.matmul", elems=out.size)
        axis = self._split_axis(out)
        if axis is None or self._workers == 1 or a.ndim < 2 or b.ndim < 2:
            np.matmul(a, b, out=out)
            return out
        parts = _split_ranges(out.shape[axis], self._workers)
        if len(parts) < 2:
            np.matmul(a, b, out=out)
            return out
        counter_inc("kernels_threaded_shards_total", amount=len(parts))
        row_axis = out.ndim - 2

        def index(arr: np.ndarray, rng: range, rows_in_core: bool):
            # Map out's shard axis onto this operand.  Only two kinds of
            # axes are ever sliced: true batch axes (skipping size-1
            # broadcast axes — never by shape coincidence) and, when the
            # shard axis is out's row axis, the matching row axis of
            # ``a``/``out``.  ``b`` never carries the row axis — its
            # second-to-last dim is the contraction dim, and cutting it
            # (or any operand's last dim) would change the GEMM.
            offset = arr.ndim - out.ndim
            ax = axis + offset
            if ax < 0:
                return arr
            if ax >= arr.ndim - 2:
                if not (
                    axis == row_axis and rows_in_core and ax == arr.ndim - 2
                ):
                    return arr
            elif arr.shape[ax] == 1:
                return arr  # batch dim broadcast across the shard axis
            key = [slice(None)] * arr.ndim
            key[ax] = slice(rng.start, rng.stop)
            return arr[tuple(key)]

        def task(rng: range) -> Callable:
            def run():
                np.matmul(
                    index(a, rng, True),
                    index(b, rng, False),
                    out=index(out, rng, True),
                )
            return run

        self._run_tasks([task(rng) for rng in parts])
        return out

    def map(self, fn: Callable, items: Sequence) -> List:
        if len(items) < MIN_PARALLEL_ITEMS or self._workers == 1:
            return [fn(item) for item in items]
        return self._run_tasks([
            (lambda item=item: fn(item)) for item in items
        ])


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], KernelBackend]] = {}
_REGISTRY_LOCK = threading.Lock()
_INSTANCES: Dict[str, KernelBackend] = {}

_active = threading.local()
_default_backend_name = "serial"


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name`` (idempotent override)."""
    with _REGISTRY_LOCK:
        _REGISTRY[name] = factory
        _INSTANCES.pop(name, None)


def available_backends() -> List[str]:
    """Registered backend names (sorted)."""
    with _REGISTRY_LOCK:
        return sorted(_REGISTRY)


def _instance(name: str) -> KernelBackend:
    with _REGISTRY_LOCK:
        if name not in _REGISTRY:
            raise ValueError(
                f"unknown kernel backend {name!r}; "
                f"registered: {sorted(_REGISTRY)}"
            )
        backend = _INSTANCES.get(name)
        if backend is None:
            backend = _REGISTRY[name]()
            _INSTANCES[name] = backend
        return backend


BackendLike = Union[str, KernelBackend, None]


def resolve_backend(backend: BackendLike) -> KernelBackend:
    """Coerce a name / instance / None (= active) to a backend object."""
    if backend is None:
        return get_backend()
    if isinstance(backend, KernelBackend):
        return backend
    return _instance(backend)


def get_backend() -> KernelBackend:
    """The active backend: thread-scoped override, else the global default."""
    backend = getattr(_active, "backend", None)
    if backend is not None:
        return backend
    return _instance(_default_backend_name)


def set_backend(backend: BackendLike) -> str:
    """Set the process-global default backend; returns the previous name."""
    global _default_backend_name
    previous = _default_backend_name
    if isinstance(backend, KernelBackend):
        register_backend(backend.name, lambda b=backend: b)
        _default_backend_name = backend.name
    else:
        _instance(backend)  # validate eagerly
        _default_backend_name = backend
    return previous


@contextlib.contextmanager
def use_backend(backend: BackendLike) -> Iterator[KernelBackend]:
    """Scope the active backend for the current thread.

    Thread-local on purpose: two serving engines on different threads
    can run different backends without racing on the global default.
    The scope holds the *instance*, so a caller-supplied backend (e.g.
    ``ThreadedBackend(workers=2)``) keeps its per-instance configuration
    without touching the registry singleton for that name.
    """
    resolved = resolve_backend(backend)
    previous = getattr(_active, "backend", None)
    _active.backend = resolved
    try:
        yield resolved
    finally:
        _active.backend = previous


register_backend("serial", SerialBackend)
register_backend("threaded", ThreadedBackend)
