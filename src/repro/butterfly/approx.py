"""Approximating dense matrices with butterfly factorizations.

Section II-B of the paper motivates butterfly matrices as "universal
representations of structured matrices" with strong expressiveness even
on unstructured data.  This module makes that measurable:

* :func:`fit_butterfly` — gradient-fit a butterfly factorization to an
  arbitrary dense matrix using the library's own autograd.
* :func:`approximation_error` — relative Frobenius error of the fit.
* :func:`representable_exactly` — structured matrices (identity, scaled
  permutation-free DFT-like products of butterfly factors) recover to
  numerical precision, witnessing the universality claim on its home turf.

This is also the practical migration path for users: take a trained dense
layer, fit a butterfly, and fine-tune — the compression recipe the paper
applies to BERT-class models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from .matrix import ButterflyMatrix

if TYPE_CHECKING:  # pragma: no cover
    from ..nn.butterfly_layer import ButterflyLinear

# NOTE: repro.nn depends on repro.butterfly (the layer wraps the factor
# math), so this module imports repro.nn lazily inside functions to keep
# the package import graph acyclic.


@dataclass
class FitResult:
    """Outcome of a butterfly fit."""

    layer: "ButterflyLinear"
    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("inf")


def approximation_error(layer: "ButterflyLinear", target: np.ndarray) -> float:
    """Relative Frobenius error ||B - T||_F / ||T||_F of the current fit."""
    approx = layer.dense_weight()
    denom = np.linalg.norm(target)
    if denom == 0:
        return float(np.linalg.norm(approx))
    return float(np.linalg.norm(approx - target) / denom)


def fit_butterfly(
    target: np.ndarray,
    steps: int = 300,
    lr: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> FitResult:
    """Fit a butterfly factorization to a dense ``out x in`` matrix.

    Minimizes ``||B x - T x||^2`` over random probe batches with Adam —
    equivalent in expectation to the Frobenius objective but exercising
    the same training path a user would fine-tune with.
    """
    target = np.asarray(target, dtype=np.float64)
    if target.ndim != 2:
        raise ValueError(f"target must be a matrix, got shape {target.shape}")
    out_features, in_features = target.shape
    from ..nn import tensor as F
    from ..nn.butterfly_layer import ButterflyLinear
    from ..nn.optim import Adam
    from ..nn.tensor import Tensor

    rng = rng or np.random.default_rng(0)
    layer = ButterflyLinear(in_features, out_features, bias=False, rng=rng)
    optimizer = Adam(layer.parameters(), lr=lr)
    result = FitResult(layer=layer)
    batch = max(16, 2 * in_features)
    for _ in range(steps):
        x = rng.normal(size=(batch, in_features))
        pred = layer(Tensor(x))
        want = Tensor(x @ target.T)
        loss = F.mean((pred - want) ** 2)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        result.losses.append(loss.item())
    return result


def representable_exactly(matrix: ButterflyMatrix, atol: float = 1e-8) -> bool:
    """Check a ButterflyMatrix's dense form round-trips through its factors.

    Trivially true by construction; used as the executable statement of
    "butterfly products are closed under the factorization" in tests.
    """
    dense = matrix.dense()
    rebuilt = np.eye(matrix.n, dtype=dense.dtype)
    for factor in matrix.factors:
        rebuilt = factor.dense() @ rebuilt
    return bool(np.allclose(dense, rebuilt, atol=atol))


def compare_with_truncated_svd(
    target: np.ndarray, fit: FitResult, rank: Optional[int] = None
) -> dict:
    """Compare the butterfly fit against a parameter-matched low-rank one.

    The low-rank baseline keeps the top-``rank`` singular triplets, where
    ``rank`` defaults to the value whose parameter count matches the
    butterfly's (the fair comparison behind Table II's low-rank rows).
    """
    target = np.asarray(target, dtype=np.float64)
    out_features, in_features = target.shape
    if rank is None:
        budget = sum(p.size for p in fit.layer.stage_parameters())
        rank = max(1, budget // (in_features + out_features))
    u, s, vt = np.linalg.svd(target, full_matrices=False)
    lowrank = (u[:, :rank] * s[:rank]) @ vt[:rank]
    denom = np.linalg.norm(target)
    return {
        "rank": rank,
        "butterfly_error": approximation_error(fit.layer, target),
        "lowrank_error": float(np.linalg.norm(lowrank - target) / denom),
    }
