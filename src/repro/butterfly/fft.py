"""FFT as a special case of the butterfly matrix (paper Section II-B).

The radix-2 decimation-in-time Cooley-Tukey FFT factorizes the DFT matrix
``F_N`` into a bit-reversal permutation followed by ``log2 N`` butterfly
factors whose 2x2 pair blocks are ``[[1, w], [1, -w]]`` with twiddle
``w = exp(-2 pi i j / (2 h))``.  This module builds those factors in the
:class:`~repro.butterfly.factor.ButterflyFactor` representation, which is
the unification the paper's adaptable Butterfly Engine exploits: the same
pair-update datapath executes either trainable real coefficients or FFT
twiddles.

Everything here is implemented from scratch (no ``numpy.fft`` in the
forward path) so the hardware functional simulator has a ground truth
whose operation count we control; tests cross-check against ``numpy.fft``.
The twiddle construction and the stage applies are the vectorized kernels
of :mod:`repro.kernels.fft` — no Python loop over pairs or blocks.
"""

from __future__ import annotations

import numpy as np

from ..kernels import bit_reversal_permutation  # noqa: F401  (re-exported API)
from ..kernels import fft_forward, fft_stage_coeffs
from ..kernels.layout import stage_halves
from .factor import ButterflyFactor
from .matrix import ButterflyMatrix


def fft_stage_factor(n: int, half: int) -> ButterflyFactor:
    """Build the FFT twiddle factor for the stage with pair stride ``half``.

    Within each block of size ``2 * half``, pair ``j`` uses twiddle
    ``w_j = exp(-2 pi i j / (2 half))`` and block ``[[1, w_j], [1, -w_j]]``.
    """
    return ButterflyFactor(n, half, fft_stage_coeffs(n, half))


def fft_butterfly(n: int) -> ButterflyMatrix:
    """The DFT-without-permutation as a butterfly matrix.

    ``fft(x) == fft_butterfly(n).apply(x[bit_reversal_permutation(n)])``.
    """
    return ButterflyMatrix([fft_stage_factor(n, h) for h in stage_halves(n)])


def fft(x: np.ndarray) -> np.ndarray:
    """Radix-2 FFT along the last axis via the butterfly factorization.

    Uses the specialized twiddle kernel (one complex multiply per pair
    instead of the general four) — see
    :func:`repro.kernels.fft_forward`.
    """
    return fft_forward(x)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse FFT along the last axis (conjugate trick)."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    return np.conj(fft(np.conj(x))) / n


def fft2(x: np.ndarray) -> np.ndarray:
    """2D FFT over the last two axes using the 1D butterfly FFT twice.

    This is the computation of the paper's Fourier (FBfly) block: a 1D FFT
    along the hidden dimension followed by a 1D FFT along the sequence
    dimension (the order does not change the result).
    """
    x = np.asarray(x)
    step1 = fft(x)
    step2 = fft(np.swapaxes(step1, -1, -2))
    return np.swapaxes(step2, -1, -2)


def fourier_mix(x: np.ndarray) -> np.ndarray:
    """FNet token mixing: the real part of the 2D FFT of a real input."""
    return fft2(x).real


def fft_flops(n: int, rows: int = 1) -> int:
    """Real FLOPs of one length-``n`` FFT on ``rows`` vectors.

    Each of the ``n/2 log2 n`` complex butterflies costs one complex
    multiply (4 real mults + 2 adds) and two complex adds (4 real adds),
    i.e. 10 real FLOPs.
    """
    stages = int(np.log2(n))
    return rows * stages * (n // 2) * 10


def fft2_flops(rows: int, cols: int) -> int:
    """Real FLOPs of a 2D FFT on a ``rows x cols`` tile."""
    return fft_flops(cols, rows) + fft_flops(rows, cols)
