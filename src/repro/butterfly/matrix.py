"""Full butterfly matrices as products of butterfly factors."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .factor import ButterflyFactor, num_stages, stage_halves


class ButterflyMatrix:
    """A size-``n`` butterfly matrix, the product of ``log2 n`` factors.

    ``factors`` are stored in *application order*: ``factors[0]`` is the
    block-size-2 factor (rightmost in the matrix product) and
    ``factors[-1]`` the full-size factor.  ``apply`` runs in
    ``O(n log n)`` per vector instead of the dense ``O(n^2)``.
    """

    def __init__(self, factors: List[ButterflyFactor]) -> None:
        if not factors:
            raise ValueError("butterfly matrix needs at least one factor")
        n = factors[0].n
        expected = stage_halves(n)
        got = [f.half for f in factors]
        if got != expected:
            raise ValueError(
                f"factors must cover stages {expected} in application order, got {got}"
            )
        if any(f.n != n for f in factors):
            raise ValueError("all factors must share the same size")
        self.n = n
        self.factors = factors

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "ButterflyMatrix":
        return cls([ButterflyFactor.identity(n, h) for h in stage_halves(n)])

    @classmethod
    def random(cls, n: int, rng: Optional[np.random.Generator] = None) -> "ButterflyMatrix":
        rng = rng or np.random.default_rng()
        return cls([ButterflyFactor.random(n, h, rng) for h in stage_halves(n)])

    # ------------------------------------------------------------------
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Multiply ``x`` (last axis of size n) by the butterfly matrix."""
        out = np.asarray(x)
        for factor in self.factors:
            out = factor.apply(out)
        return out

    def dense(self) -> np.ndarray:
        """Expand to a dense matrix: ``B_n @ ... @ B_2``."""
        mat = self.factors[0].dense()
        for factor in self.factors[1:]:
            mat = factor.dense() @ mat
        return mat

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Trainable scalars: ``2 n log2 n`` (vs ``n^2`` dense)."""
        return sum(f.coeffs.size for f in self.factors)

    def num_multiplies(self, rows: int = 1) -> int:
        """Real multiplications for applying to ``rows`` vectors."""
        return sum(f.num_multiplies(rows) for f in self.factors)

    @property
    def depth(self) -> int:
        return len(self.factors)


def butterfly_flops(n: int, rows: int = 1) -> int:
    """FLOPs (mults + adds) of a fast butterfly apply on ``rows`` vectors.

    Each of the ``log2 n`` stages performs ``n/2`` 2x2 pair updates, each
    costing 4 multiplications and 2 additions.
    """
    return rows * num_stages(n) * (n // 2) * 6


def dense_flops(n_in: int, n_out: int, rows: int = 1) -> int:
    """FLOPs of an equivalent dense matrix multiply (mults + adds)."""
    return rows * n_out * (2 * n_in - 1)
