"""Full butterfly matrices as products of butterfly factors.

Application delegates to the shared kernel layer: for complete real
ladders the fused grouped kernel (:mod:`repro.kernels.grouped`) applies
batches several times faster than a per-stage sweep, and dense
materialization reuses the same kernels by applying the matrix to an
identity batch instead of multiplying ``log2 n`` sparse factors.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import kernels as _kernels
from .factor import ButterflyFactor, num_stages, stage_halves


class ButterflyMatrix:
    """A size-``n`` butterfly matrix, the product of ``log2 n`` factors.

    ``factors`` are stored in *application order*: ``factors[0]`` is the
    block-size-2 factor (rightmost in the matrix product) and
    ``factors[-1]`` the full-size factor.  ``apply`` runs in
    ``O(n log n)`` per vector instead of the dense ``O(n^2)``.
    """

    def __init__(self, factors: List[ButterflyFactor]) -> None:
        if not factors:
            raise ValueError("butterfly matrix needs at least one factor")
        n = factors[0].n
        expected = stage_halves(n)
        got = [f.half for f in factors]
        if got != expected:
            raise ValueError(
                f"factors must cover stages {expected} in application order, got {got}"
            )
        if any(f.n != n for f in factors):
            raise ValueError("all factors must share the same size")
        self.n = n
        self.factors = factors

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "ButterflyMatrix":
        return cls([ButterflyFactor.identity(n, h) for h in stage_halves(n)])

    @classmethod
    def random(cls, n: int, rng: Optional[np.random.Generator] = None) -> "ButterflyMatrix":
        rng = rng or np.random.default_rng()
        return cls([ButterflyFactor.random(n, h, rng) for h in stage_halves(n)])

    # ------------------------------------------------------------------
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Multiply ``x`` (last axis of size n) by the butterfly matrix.

        Dispatches to the unified kernel layer, which fuses stage runs
        into batched matmuls for large real inputs and otherwise applies
        the vectorized per-stage kernel.
        """
        out, _ = _kernels.butterfly_apply(
            np.asarray(x),
            [f.coeffs for f in self.factors],
            [f.half for f in self.factors],
            need_ctx=False,
        )
        return out

    def dense(self) -> np.ndarray:
        """Expand to a dense matrix: ``B_n @ ... @ B_2``.

        Computed as the butterfly apply of an identity batch — ``O(n^2
        log n)`` work via the fast kernels instead of ``O(n^3)`` sparse
        factor multiplies.  The result keeps the factors' dtype (e.g.
        float32 under the reduced-precision policy, complex for FFT
        twiddle matrices).
        """
        dtype = np.result_type(*[f.coeffs.dtype for f in self.factors])
        return np.ascontiguousarray(self.apply(np.eye(self.n, dtype=dtype)).T)

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Trainable scalars: ``2 n log2 n`` (vs ``n^2`` dense)."""
        return sum(f.coeffs.size for f in self.factors)

    def num_multiplies(self, rows: int = 1) -> int:
        """Real multiplications for applying to ``rows`` vectors."""
        return sum(f.num_multiplies(rows) for f in self.factors)

    @property
    def depth(self) -> int:
        return len(self.factors)


def butterfly_flops(n: int, rows: int = 1) -> int:
    """FLOPs (mults + adds) of a fast butterfly apply on ``rows`` vectors.

    Each of the ``log2 n`` stages performs ``n/2`` 2x2 pair updates, each
    costing 4 multiplications and 2 additions.
    """
    return rows * num_stages(n) * (n // 2) * 6


def dense_flops(n_in: int, n_out: int, rows: int = 1) -> int:
    """FLOPs of an equivalent dense matrix multiply (mults + adds)."""
    return rows * n_out * (2 * n_in - 1)
