"""Butterfly factor matrices (Section II-B of the paper).

A butterfly matrix ``W`` of size ``N = 2^k`` is a product of ``k`` sparse
*butterfly factor* matrices::

    W = B_N @ diag(B_{N/2}, B_{N/2}) @ ... @ diag(B_2, ..., B_2)

Each factor at *block size* ``2h`` is block-diagonal with ``N / 2h`` blocks;
every block is a 2x2 matrix of diagonal matrices of size ``h``::

    [ D1  D2 ]
    [ D3  D4 ]

so within each block, element ``j`` of the top half pairs with element ``j``
of the bottom half and they are mixed by a trainable 2x2 matrix
``[[a_j, b_j], [c_j, d_j]]``.  Across the whole factor there are ``N/2``
such pairs; we store their coefficients as an array of shape ``(4, N/2)``
ordered ``(a, b, c, d)``, pair index ``p = block * h + j``.

The FFT's twiddle stages are the special case ``a = 1, b = w, c = 1,
d = -w`` (see :mod:`repro.butterfly.fft`), which is exactly why the paper's
accelerator can run both with one engine.

All index geometry and the apply/materialize computations delegate to the
shared kernel layer (:mod:`repro.kernels`), the single implementation also
used by :mod:`repro.nn` and verified against the hardware functional model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import kernels as _kernels
from ..kernels import num_stages, pair_indices, stage_halves  # noqa: F401  (re-exported API)


@dataclass
class ButterflyFactor:
    """One butterfly factor matrix, stored as per-pair 2x2 coefficients.

    Attributes:
        n: overall matrix size (power of two).
        half: pair stride; the factor's diagonal blocks have size ``2*half``.
        coeffs: array ``(4, n//2)`` of pair coefficients ``(a, b, c, d)``.
            dtype may be real (trainable butterfly) or complex (FFT twiddles).
    """

    n: int
    half: int
    coeffs: np.ndarray

    def __post_init__(self) -> None:
        _kernels.check_stage(self.n, self.half)
        self.coeffs = np.asarray(self.coeffs)
        if self.coeffs.shape != (4, self.n // 2):
            raise ValueError(
                f"coeffs must have shape (4, {self.n // 2}), got {self.coeffs.shape}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int, half: int) -> "ButterflyFactor":
        """Factor that acts as the identity matrix."""
        coeffs = np.zeros((4, n // 2))
        coeffs[0] = 1.0  # a
        coeffs[3] = 1.0  # d
        return cls(n, half, coeffs)

    @classmethod
    def random(
        cls, n: int, half: int, rng: np.random.Generator, scale: float | None = None
    ) -> "ButterflyFactor":
        """Random factor; default scale keeps the product's variance near 1.

        Each output of a stage is ``a x0 + b x1`` with two terms, so drawing
        entries from ``N(0, 1/2)`` keeps per-stage output variance at the
        input variance, and hence the full ``log2 n``-stage product stable.
        """
        if scale is None:
            scale = 1.0 / np.sqrt(2.0)
        coeffs = rng.normal(0.0, scale, size=(4, n // 2))
        return cls(n, half, coeffs)

    # ------------------------------------------------------------------
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply the factor to the last axis of ``x`` (vectorized kernel)."""
        x = np.asarray(x)
        if x.shape[-1] != self.n:
            raise ValueError(f"expected last dim {self.n}, got {x.shape[-1]}")
        return _kernels.stage_forward(x, self.coeffs, self.half)

    def dense(self) -> np.ndarray:
        """Expand the factor to a dense ``n x n`` matrix."""
        return _kernels.stage_dense(self.coeffs, self.n, self.half)

    def num_multiplies(self, rows: int = 1) -> int:
        """Real multiplications to apply this factor to ``rows`` vectors."""
        per_pair = 4
        return rows * (self.n // 2) * per_pair
