"""Butterfly factor matrices (Section II-B of the paper).

A butterfly matrix ``W`` of size ``N = 2^k`` is a product of ``k`` sparse
*butterfly factor* matrices::

    W = B_N @ diag(B_{N/2}, B_{N/2}) @ ... @ diag(B_2, ..., B_2)

Each factor at *block size* ``2h`` is block-diagonal with ``N / 2h`` blocks;
every block is a 2x2 matrix of diagonal matrices of size ``h``::

    [ D1  D2 ]
    [ D3  D4 ]

so within each block, element ``j`` of the top half pairs with element ``j``
of the bottom half and they are mixed by a trainable 2x2 matrix
``[[a_j, b_j], [c_j, d_j]]``.  Across the whole factor there are ``N/2``
such pairs; we store their coefficients as an array of shape ``(4, N/2)``
ordered ``(a, b, c, d)``, pair index ``p = block * h + j``.

The FFT's twiddle stages are the special case ``a = 1, b = w, c = 1,
d = -w`` (see :mod:`repro.butterfly.fft`), which is exactly why the paper's
accelerator can run both with one engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _check_power_of_two(n: int) -> None:
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"butterfly size must be a power of two >= 2, got {n}")


def stage_halves(n: int) -> list[int]:
    """Return the pair strides of each stage in application order.

    The rightmost factor in the matrix product (block size 2, ``half=1``)
    is applied first, so the returned list is ``[1, 2, 4, ..., n // 2]``.
    """
    _check_power_of_two(n)
    halves = []
    half = 1
    while half < n:
        halves.append(half)
        half *= 2
    return halves


def num_stages(n: int) -> int:
    """Number of butterfly factors for size ``n`` (``log2 n``)."""
    _check_power_of_two(n)
    return int(np.log2(n))


def pair_indices(n: int, half: int) -> np.ndarray:
    """Return the ``(N/2, 2)`` array of element index pairs touched by a stage.

    Pair ``p = block * half + j`` couples positions
    ``(block * 2 * half + j, block * 2 * half + half + j)``.
    """
    _check_power_of_two(n)
    if half < 1 or half >= n or n % (2 * half) != 0:
        raise ValueError(f"invalid stage half={half} for size {n}")
    nblocks = n // (2 * half)
    pairs = np.empty((n // 2, 2), dtype=np.int64)
    for block in range(nblocks):
        base = block * 2 * half
        for j in range(half):
            p = block * half + j
            pairs[p, 0] = base + j
            pairs[p, 1] = base + half + j
    return pairs


@dataclass
class ButterflyFactor:
    """One butterfly factor matrix, stored as per-pair 2x2 coefficients.

    Attributes:
        n: overall matrix size (power of two).
        half: pair stride; the factor's diagonal blocks have size ``2*half``.
        coeffs: array ``(4, n//2)`` of pair coefficients ``(a, b, c, d)``.
            dtype may be real (trainable butterfly) or complex (FFT twiddles).
    """

    n: int
    half: int
    coeffs: np.ndarray

    def __post_init__(self) -> None:
        _check_power_of_two(self.n)
        if self.n % (2 * self.half) != 0:
            raise ValueError(f"half={self.half} does not tile size {self.n}")
        self.coeffs = np.asarray(self.coeffs)
        if self.coeffs.shape != (4, self.n // 2):
            raise ValueError(
                f"coeffs must have shape (4, {self.n // 2}), got {self.coeffs.shape}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int, half: int) -> "ButterflyFactor":
        """Factor that acts as the identity matrix."""
        coeffs = np.zeros((4, n // 2))
        coeffs[0] = 1.0  # a
        coeffs[3] = 1.0  # d
        return cls(n, half, coeffs)

    @classmethod
    def random(
        cls, n: int, half: int, rng: np.random.Generator, scale: float | None = None
    ) -> "ButterflyFactor":
        """Random factor; default scale keeps the product's variance near 1.

        Each output of a stage is ``a x0 + b x1`` with two terms, so drawing
        entries from ``N(0, 1/2)`` keeps per-stage output variance at the
        input variance, and hence the full ``log2 n``-stage product stable.
        """
        if scale is None:
            scale = 1.0 / np.sqrt(2.0)
        coeffs = rng.normal(0.0, scale, size=(4, n // 2))
        return cls(n, half, coeffs)

    # ------------------------------------------------------------------
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply the factor to the last axis of ``x`` (vectorized)."""
        n, half = self.n, self.half
        if x.shape[-1] != n:
            raise ValueError(f"expected last dim {n}, got {x.shape[-1]}")
        nblocks = n // (2 * half)
        lead = x.shape[:-1]
        xr = x.reshape(*lead, nblocks, 2, half)
        x0, x1 = xr[..., 0, :], xr[..., 1, :]
        a, b, c, d = (self.coeffs[k].reshape(nblocks, half) for k in range(4))
        y0 = a * x0 + b * x1
        y1 = c * x0 + d * x1
        out_dtype = np.result_type(x.dtype, self.coeffs.dtype)
        out = np.empty((*lead, nblocks, 2, half), dtype=out_dtype)
        out[..., 0, :] = y0
        out[..., 1, :] = y1
        return out.reshape(*lead, n)

    def dense(self) -> np.ndarray:
        """Expand the factor to a dense ``n x n`` matrix."""
        n = self.n
        mat = np.zeros((n, n), dtype=self.coeffs.dtype)
        pairs = pair_indices(n, self.half)
        a, b, c, d = self.coeffs
        for p, (i, j) in enumerate(pairs):
            mat[i, i] = a[p]
            mat[i, j] = b[p]
            mat[j, i] = c[p]
            mat[j, j] = d[p]
        return mat

    def num_multiplies(self, rows: int = 1) -> int:
        """Real multiplications to apply this factor to ``rows`` vectors."""
        per_pair = 4
        return rows * (self.n // 2) * per_pair
