"""Butterfly matrices, factors, and the FFT-as-butterfly unification."""

from .approx import (
    FitResult,
    approximation_error,
    compare_with_truncated_svd,
    fit_butterfly,
    representable_exactly,
)
from .factor import ButterflyFactor, num_stages, pair_indices, stage_halves
from .fft import (
    bit_reversal_permutation,
    fft,
    fft2,
    fft2_flops,
    fft_butterfly,
    fft_flops,
    fft_stage_factor,
    fourier_mix,
    ifft,
)
from .matrix import ButterflyMatrix, butterfly_flops, dense_flops

__all__ = [
    "ButterflyFactor",
    "ButterflyMatrix",
    "FitResult",
    "approximation_error",
    "compare_with_truncated_svd",
    "fit_butterfly",
    "representable_exactly",
    "bit_reversal_permutation",
    "butterfly_flops",
    "dense_flops",
    "fft",
    "fft2",
    "fft2_flops",
    "fft_butterfly",
    "fft_flops",
    "fft_stage_factor",
    "fourier_mix",
    "ifft",
    "num_stages",
    "pair_indices",
    "stage_halves",
]
