"""Command-line interface for the reproduction library.

Subcommands:

* ``train``    — train a model on a synthetic LRA task and optionally
                 save a checkpoint.
* ``simulate`` — run a checkpoint on the functional accelerator and
                 cross-validate against the software forward pass.
* ``estimate`` — analytical latency/resource/power estimate for a
                 workload on an accelerator configuration.
* ``codesign`` — run the joint design-space search and print the Pareto
                 front and the selected configuration.

Example::

    python -m repro.cli train --task text --model fabnet --epochs 3 \
        --save /tmp/fabnet.npz
    python -m repro.cli simulate --checkpoint /tmp/fabnet.npz --task text
    python -m repro.cli estimate --seq-len 1024 --d-hidden 768 --pbe 64
    python -m repro.cli codesign --task text --max-accuracy-loss 0.015
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_train_parser(subparsers) -> None:
    p = subparsers.add_parser("train", help="train a model on a synthetic LRA task")
    p.add_argument("--task", default="text",
                   choices=["listops", "text", "retrieval", "image", "pathfinder"])
    p.add_argument("--model", default="fabnet",
                   choices=["transformer", "fnet", "fabnet"])
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--d-hidden", type=int, default=32)
    p.add_argument("--n-total", type=int, default=2)
    p.add_argument("--n-abfly", type=int, default=0)
    p.add_argument("--seq-len", type=int, default=64)
    p.add_argument("--n-samples", type=int, default=320)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", default=None, help="checkpoint path (.npz)")


def _add_simulate_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "simulate", help="run a checkpoint on the functional accelerator"
    )
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--task", default="text",
                   choices=["listops", "text", "retrieval", "image", "pathfinder"])
    p.add_argument("--n-samples", type=int, default=8)
    p.add_argument("--pbu", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)


def _add_estimate_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "estimate", help="analytical latency/resource/power estimate"
    )
    p.add_argument("--seq-len", type=int, default=1024)
    p.add_argument("--d-hidden", type=int, default=768)
    p.add_argument("--r-ffn", type=int, default=4)
    p.add_argument("--n-total", type=int, default=12)
    p.add_argument("--n-abfly", type=int, default=0)
    p.add_argument("--n-heads", type=int, default=12)
    p.add_argument("--pbe", type=int, default=64)
    p.add_argument("--pbu", type=int, default=4)
    p.add_argument("--pqk", type=int, default=0)
    p.add_argument("--psv", type=int, default=0)
    p.add_argument("--pae", type=int, default=8)
    p.add_argument("--bandwidth-gbs", type=float, default=450.0)


def _add_codesign_parser(subparsers) -> None:
    p = subparsers.add_parser("codesign", help="joint design-space search")
    p.add_argument("--task", default="text",
                   choices=["listops", "text", "retrieval", "image", "pathfinder"])
    p.add_argument("--seq-len", type=int, default=4096)
    p.add_argument("--max-accuracy-loss", type=float, default=0.015)
    p.add_argument("--device", default="vcu128", choices=["vcu128", "zynq7045"])


def _add_report_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "report", help="markdown report of the analytical experiments"
    )
    p.add_argument("--output", default=None, help="write to a file instead of stdout")


def cmd_train(args) -> int:
    from .data import load_task
    from .io import save_model
    from .models import ModelConfig, build_model
    from .training import train_model_on_task

    kwargs = {"n_samples": args.n_samples, "seed": args.seed}
    if args.task in ("image", "pathfinder"):
        kwargs["grid"] = int(round(args.seq_len ** 0.5))
    else:
        kwargs["seq_len"] = args.seq_len
    dataset = load_task(args.task, **kwargs)
    if dataset.paired:
        print("error: the CLI trainer supports single-sequence tasks only",
              file=sys.stderr)
        return 2
    config = ModelConfig(
        vocab_size=dataset.vocab_size, n_classes=dataset.n_classes,
        max_len=dataset.seq_len, d_hidden=args.d_hidden, n_heads=4,
        r_ffn=2, n_total=args.n_total, n_abfly=args.n_abfly, seed=args.seed,
    )
    model = build_model(args.model, config)
    print(f"training {args.model} on {args.task} "
          f"({model.num_parameters():,} parameters)")
    result = train_model_on_task(
        model, dataset, epochs=args.epochs, lr=args.lr, seed=args.seed,
        log=print,
    )
    print(f"best test accuracy: {result.best_test_accuracy:.3f}")
    if args.save:
        path = save_model(model, args.save, builder=args.model)
        print(f"saved checkpoint to {path}")
    return 0


def cmd_simulate(args) -> int:
    from .data import load_task
    from .hardware.config import AcceleratorConfig
    from .hardware.functional import ButterflyAccelerator
    from .io import load_model

    model = load_model(args.checkpoint)
    model.eval()
    cfg = model.config
    kwargs = {"n_samples": max(32, args.n_samples * 4), "seed": args.seed}
    if args.task in ("image", "pathfinder"):
        kwargs["grid"] = int(round(cfg.max_len ** 0.5))
    else:
        kwargs["seq_len"] = cfg.max_len
    dataset = load_task(args.task, **kwargs)
    tokens = dataset.x_test[: args.n_samples]
    accel = ButterflyAccelerator(AcceleratorConfig(pbe=1, pbu=args.pbu))
    hw = accel.run_encoder(model, tokens)
    sw = model(tokens).data
    err = float(np.abs(hw - sw).max())
    agree = int((hw.argmax(-1) == sw.argmax(-1)).sum())
    print(f"simulated {len(tokens)} samples: max |logit error| = {err:.3e}")
    print(f"prediction agreement: {agree}/{len(tokens)}")
    print(f"bank conflicts: {accel.trace.bank_conflicts}")
    return 0 if err < 1e-6 else 1


def cmd_estimate(args) -> int:
    from .hardware import (
        AcceleratorConfig,
        ButterflyPerformanceModel,
        WorkloadSpec,
        estimate_power,
        estimate_resources,
    )

    spec = WorkloadSpec(
        seq_len=args.seq_len, d_hidden=args.d_hidden, r_ffn=args.r_ffn,
        n_total=args.n_total, n_abfly=args.n_abfly, n_heads=args.n_heads,
    )
    config = AcceleratorConfig(
        pbe=args.pbe, pbu=args.pbu, pae=args.pae, pqk=args.pqk, psv=args.psv,
        bandwidth_gbs=args.bandwidth_gbs,
    )
    report = ButterflyPerformanceModel(config).model_latency(spec)
    resources = estimate_resources(config)
    power = estimate_power(config, resources)
    print(f"latency: {report.latency_ms:.3f} ms "
          f"({report.total_cycles:,.0f} cycles @ {config.clock_mhz:.0f} MHz)")
    print(f"resources: {resources.dsps} DSPs, {resources.brams} BRAMs, "
          f"{resources.luts:,} LUTs, {resources.registers:,} registers")
    print(f"power: {power.total:.2f} W (dynamic {power.dynamic:.2f} W)")
    for kind, cycles in sorted(report.cycles_by_kind().items()):
        print(f"  {kind:>6s}: {cycles:,.0f} cycles "
              f"({100 * cycles / report.total_cycles:.1f}%)")
    return 0


def cmd_codesign(args) -> int:
    from .codesign import SurrogateAccuracyOracle, run_codesign
    from .hardware.config import DEVICES

    oracle = SurrogateAccuracyOracle(task=args.task)
    result = run_codesign(
        oracle, seq_len=args.seq_len, device=DEVICES[args.device],
        max_accuracy_loss=args.max_accuracy_loss,
    )
    print(f"evaluated {len(result.points)} design points; Pareto front:")
    for p in result.pareto:
        print(f"  Dhid={p.spec.d_hidden:<5d} Rffn={p.spec.r_ffn} "
              f"Ntotal={p.spec.n_total} NABfly={p.spec.n_abfly} "
              f"Pbe={p.config.pbe:<4d} acc={p.accuracy:.3f} "
              f"lat={p.latency_ms:.3f}ms")
    if result.selected is None:
        print("no design satisfies the accuracy constraint")
        return 1
    sel = result.selected
    print(f"selected: Dhid={sel.spec.d_hidden} Rffn={sel.spec.r_ffn} "
          f"Ntotal={sel.spec.n_total} NABfly={sel.spec.n_abfly} "
          f"Pbe={sel.config.pbe} Pbu={sel.config.pbu} "
          f"Pqk={sel.config.pqk} Psv={sel.config.psv} "
          f"acc={sel.accuracy:.3f} lat={sel.latency_ms:.3f}ms")
    return 0


def cmd_report(args) -> int:
    from .analysis.reports import generate_report

    report = generate_report()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote report to {args.output}")
    else:
        print(report)
    return 0


_COMMANDS = {
    "train": cmd_train,
    "simulate": cmd_simulate,
    "estimate": cmd_estimate,
    "codesign": cmd_codesign,
    "report": cmd_report,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Butterfly accelerator reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_train_parser(subparsers)
    _add_simulate_parser(subparsers)
    _add_estimate_parser(subparsers)
    _add_codesign_parser(subparsers)
    _add_report_parser(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
