"""Command-line interface for the reproduction library.

Subcommands:

* ``train``    — train a model on a synthetic LRA task and optionally
                 save a checkpoint.
* ``simulate`` — run a checkpoint on the functional accelerator and
                 cross-validate against the software forward pass.
* ``estimate`` — analytical latency/resource/power estimate for a
                 workload on an accelerator configuration.
* ``codesign`` — run the joint design-space search and print the Pareto
                 front and the selected configuration.
* ``generate`` — decode a prompt from a decoder checkpoint (optionally
                 through the serving engine).
* ``serve``    — run a concurrent request workload through the serving
                 engine and report TTFT / throughput metrics
                 (``--metrics-json`` dumps the full metrics snapshot).
                 ``--workers N`` selects the engine behind the unified
                 ``Engine`` protocol — in-process ``ServingEngine`` for
                 1, supervised multi-process ``ClusterEngine`` for
                 N >= 2 — through one engine-agnostic code path.
                 ``--http PORT`` skips the synthetic workload and serves
                 the asyncio HTTP control plane (``/v1/generate``,
                 ``/v1/cancel``, ``/healthz``, ``/metrics``) until
                 SIGTERM, which drains in-flight requests;
                 ``--http-self-test`` starts the same server on an
                 ephemeral port and drives the workload through it over
                 real sockets.
* ``profile``  — run a short instrumented workload with telemetry
                 enabled and print the span tree and per-op totals
                 (``--trace-out`` writes a Chrome trace).
* ``chaos``    — run the same serving workload twice, fault-free and
                 under a seeded fault-injection schedule, and assert the
                 recovered run is token-bit-identical (the resilience
                 parity oracle).  With ``--workers N --kill-worker
                 {fault,sigkill}`` the oracle runs against the
                 multi-process cluster instead: a worker is killed
                 mid-decode (injected ``worker.step`` fatal fault or a
                 real ``SIGKILL``) and every failed-over session must
                 finish bit-identically to the fault-free cluster run.

Example::

    python -m repro.cli train --task text --model fabnet --epochs 3 \
        --save /tmp/fabnet.npz
    python -m repro.cli simulate --checkpoint /tmp/fabnet.npz --task text
    python -m repro.cli estimate --seq-len 1024 --d-hidden 768 --pbe 64
    python -m repro.cli codesign --task text --max-accuracy-loss 0.015
    python -m repro.cli generate --checkpoint /tmp/lm.npz --prompt "cat "
    python -m repro.cli serve --requests 8 --max-batch-size 4
    python -m repro.cli serve --requests 8 --quantize int8
    python -m repro.cli serve --requests 8 --backend threaded --quantize fp16
    python -m repro.cli serve --requests 8 --metrics-json metrics.json
    python -m repro.cli serve --requests 16 --workers 2
    python -m repro.cli serve --http 8080 --max-queue-depth 32
    python -m repro.cli serve --http-self-test --requests 8 --workers 2
    python -m repro.cli profile --workload serve --trace-out trace.json
    python -m repro.cli chaos --requests 8 --min-faults 20
    python -m repro.cli chaos --workers 2 --kill-worker sigkill
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_train_parser(subparsers) -> None:
    p = subparsers.add_parser("train", help="train a model on a synthetic LRA task")
    p.add_argument("--task", default="text",
                   choices=["listops", "text", "retrieval", "image", "pathfinder"])
    p.add_argument("--model", default="fabnet",
                   choices=["transformer", "fnet", "fabnet"])
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--d-hidden", type=int, default=32)
    p.add_argument("--n-total", type=int, default=2)
    p.add_argument("--n-abfly", type=int, default=0)
    p.add_argument("--seq-len", type=int, default=64)
    p.add_argument("--n-samples", type=int, default=320)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", default=None, help="checkpoint path (.npz)")


def _add_simulate_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "simulate", help="run a checkpoint on the functional accelerator"
    )
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--task", default="text",
                   choices=["listops", "text", "retrieval", "image", "pathfinder"])
    p.add_argument("--n-samples", type=int, default=8)
    p.add_argument("--pbu", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)


def _add_estimate_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "estimate", help="analytical latency/resource/power estimate"
    )
    p.add_argument("--seq-len", type=int, default=1024)
    p.add_argument("--d-hidden", type=int, default=768)
    p.add_argument("--r-ffn", type=int, default=4)
    p.add_argument("--n-total", type=int, default=12)
    p.add_argument("--n-abfly", type=int, default=0)
    p.add_argument("--n-heads", type=int, default=12)
    p.add_argument("--pbe", type=int, default=64)
    p.add_argument("--pbu", type=int, default=4)
    p.add_argument("--pqk", type=int, default=0)
    p.add_argument("--psv", type=int, default=0)
    p.add_argument("--pae", type=int, default=8)
    p.add_argument("--bandwidth-gbs", type=float, default=450.0)


def _add_codesign_parser(subparsers) -> None:
    p = subparsers.add_parser("codesign", help="joint design-space search")
    p.add_argument("--task", default="text",
                   choices=["listops", "text", "retrieval", "image", "pathfinder"])
    p.add_argument("--seq-len", type=int, default=4096)
    p.add_argument("--max-accuracy-loss", type=float, default=0.015)
    p.add_argument("--device", default="vcu128", choices=["vcu128", "zynq7045"])


def _add_generate_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "generate", help="decode a prompt from a decoder checkpoint"
    )
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--prompt", default=None,
                   help="text prompt (character-LM vocabulary: a-z and space)")
    p.add_argument("--prompt-tokens", default=None,
                   help="comma-separated token ids (alternative to --prompt)")
    p.add_argument("--max-new-tokens", type=int, default=32)
    p.add_argument("--temperature", type=float, default=0.0)
    p.add_argument("--top-k", type=int, default=0)
    p.add_argument("--top-p", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-cache", action="store_true",
                   help="full-window recompute instead of KV-cache decoding")
    p.add_argument("--engine", action="store_true",
                   help="route the request through the ServingEngine")
    p.add_argument("--quantize", default=None, choices=["int8", "fp16", "int4"],
                   help="decode through a reduced-storage replica of the model")
    p.add_argument("--backend", default="serial",
                   choices=["serial", "threaded"],
                   help="kernel execution backend (execution only, "
                        "never changes numerics)")


def _add_serve_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "serve", help="run a concurrent workload through the serving engine"
    )
    p.add_argument("--checkpoint", default=None,
                   help="decoder checkpoint; omit for a randomly initialized "
                        "tiny decoder (smoke/benchmark mode)")
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--max-batch-size", type=int, default=4)
    p.add_argument("--prompt-len", type=int, default=8)
    p.add_argument("--max-new-tokens", type=int, default=16)
    p.add_argument("--temperature", type=float, default=0.8)
    p.add_argument("--top-k", type=int, default=0)
    p.add_argument("--top-p", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--step-budget-ms", type=float, default=None,
                   help="enable cost-model admission with this modeled "
                        "per-step latency budget")
    p.add_argument("--quantize", default=None, choices=["int8", "fp16", "int4"],
                   help="serve a reduced-storage replica (int8 per-channel / "
                        "fp16 half / int4 grouped weights, dequant-on-the-fly "
                        "kernels)")
    p.add_argument("--backend", default="serial",
                   choices=["serial", "threaded"],
                   help="kernel execution backend (execution only, "
                        "never changes numerics)")
    # untrained-model shape knobs (ignored when --checkpoint is given)
    p.add_argument("--d-hidden", type=int, default=32)
    p.add_argument("--n-total", type=int, default=2)
    p.add_argument("--max-len", type=int, default=64)
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="write the engine metrics snapshot (aggregate + "
                        "per-instrument state) as JSON")
    p.add_argument("--workers", type=int, default=1,
                   help="number of serving worker processes; >= 2 routes "
                        "the workload through the supervised ClusterEngine")
    p.add_argument("--start-method", default="spawn",
                   choices=["spawn", "fork"],
                   help="multiprocessing start method for cluster workers")
    p.add_argument("--http", type=int, default=None, metavar="PORT",
                   help="serve the asyncio HTTP control plane on this port "
                        "(0 = ephemeral) instead of running the synthetic "
                        "workload; SIGTERM drains in-flight requests")
    p.add_argument("--http-host", default="127.0.0.1",
                   help="bind address for --http / --http-self-test")
    p.add_argument("--http-self-test", action="store_true",
                   help="start the HTTP server on an ephemeral port and "
                        "run the request workload through it over real "
                        "sockets (blocking + streaming), then exit")
    p.add_argument("--max-queue-depth", type=int, default=None,
                   help="enable queue-depth load shedding at this depth "
                        "(HTTP requests shed at the door get 429)")


#: Default chaos schedule: transient faults across all three serving
#: points, spaced so the engine recovers every one by retry (schedule
#: slots are consumed across rollbacks, so a retried step replays clean
#: unless the schedule says otherwise).
DEFAULT_CHAOS_SPEC = (
    "serving.prefill:transient:every=6,times=4;"
    "serving.decode_step:transient:every=3,times=12;"
    "serving.sample:transient:every=13,times=6"
)


def _add_chaos_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "chaos",
        help="assert a fault-injected serving run is token-identical to "
             "a fault-free run",
    )
    p.add_argument("--spec", default=DEFAULT_CHAOS_SPEC,
                   help="fault schedule (repro.faults spec string)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for probabilistic fault rules")
    p.add_argument("--min-faults", type=int, default=20,
                   help="fail unless at least this many faults were injected")
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--max-batch-size", type=int, default=4)
    p.add_argument("--prompt-len", type=int, default=6)
    p.add_argument("--max-new-tokens", type=int, default=12)
    p.add_argument("--temperature", type=float, default=0.8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-retries", type=int, default=3)
    # untrained-model shape knobs (same tiny decoder as `serve`)
    p.add_argument("--d-hidden", type=int, default=32)
    p.add_argument("--n-total", type=int, default=2)
    p.add_argument("--max-len", type=int, default=64)
    # cluster chaos: kill a worker mid-decode, assert bit-identical failover
    p.add_argument("--workers", type=int, default=1,
                   help="run the oracle against a multi-process cluster "
                        "of this many workers (>= 2 enables --kill-worker)")
    p.add_argument("--kill-worker", default=None,
                   choices=["fault", "sigkill"],
                   help="kill one worker mid-decode: 'fault' injects a "
                        "worker.step fatal fault, 'sigkill' sends a real "
                        "SIGKILL; failed-over sessions must finish "
                        "bit-identically to the fault-free cluster run")
    p.add_argument("--kill-after", type=int, default=6,
                   help="fault mode: worker steps before the injected kill; "
                        "sigkill mode: delivered tokens before the signal")
    p.add_argument("--start-method", default="spawn",
                   choices=["spawn", "fork"],
                   help="multiprocessing start method for cluster workers")


def _add_profile_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "profile",
        help="run an instrumented workload and print the span tree",
    )
    p.add_argument("--workload", default="serve",
                   choices=["serve", "train"],
                   help="what to profile: a serving burst or a short "
                        "training fit")
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--max-new-tokens", type=int, default=16)
    p.add_argument("--max-batch-size", type=int, default=4)
    p.add_argument("--epochs", type=int, default=1)
    p.add_argument("--d-hidden", type=int, default=32)
    p.add_argument("--n-total", type=int, default=2)
    p.add_argument("--seq-len", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", default="serial",
                   choices=["serial", "threaded"])
    p.add_argument("--top", type=int, default=10,
                   help="number of per-op rows in the top-ops table")
    p.add_argument("--min-share", type=float, default=0.005,
                   help="hide span-tree rows below this share of wall time")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a Chrome trace_event JSON "
                        "(chrome://tracing / Perfetto)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the global registry snapshot as "
                        "Prometheus text")


def _add_report_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "report", help="markdown report of the analytical experiments"
    )
    p.add_argument("--output", default=None, help="write to a file instead of stdout")


def cmd_train(args) -> int:
    from .data import load_task
    from .io import save_model
    from .models import ModelConfig, build_model
    from .training import train_model_on_task

    kwargs = {"n_samples": args.n_samples, "seed": args.seed}
    if args.task in ("image", "pathfinder"):
        kwargs["grid"] = int(round(args.seq_len ** 0.5))
    else:
        kwargs["seq_len"] = args.seq_len
    dataset = load_task(args.task, **kwargs)
    if dataset.paired:
        print("error: the CLI trainer supports single-sequence tasks only",
              file=sys.stderr)
        return 2
    config = ModelConfig(
        vocab_size=dataset.vocab_size, n_classes=dataset.n_classes,
        max_len=dataset.seq_len, d_hidden=args.d_hidden, n_heads=4,
        r_ffn=2, n_total=args.n_total, n_abfly=args.n_abfly, seed=args.seed,
    )
    model = build_model(args.model, config)
    print(f"training {args.model} on {args.task} "
          f"({model.num_parameters():,} parameters)")
    result = train_model_on_task(
        model, dataset, epochs=args.epochs, lr=args.lr, seed=args.seed,
        log=print,
    )
    print(f"best test accuracy: {result.best_test_accuracy:.3f}")
    if args.save:
        path = save_model(model, args.save, builder=args.model)
        print(f"saved checkpoint to {path}")
    return 0


def cmd_simulate(args) -> int:
    from .data import load_task
    from .hardware.config import AcceleratorConfig
    from .hardware.functional import ButterflyAccelerator
    from .io import load_model

    model = load_model(args.checkpoint)
    model.eval()
    cfg = model.config
    kwargs = {"n_samples": max(32, args.n_samples * 4), "seed": args.seed}
    if args.task in ("image", "pathfinder"):
        kwargs["grid"] = int(round(cfg.max_len ** 0.5))
    else:
        kwargs["seq_len"] = cfg.max_len
    dataset = load_task(args.task, **kwargs)
    tokens = dataset.x_test[: args.n_samples]
    accel = ButterflyAccelerator(AcceleratorConfig(pbe=1, pbu=args.pbu))
    hw = accel.run_encoder(model, tokens)
    sw = model(tokens).data
    err = float(np.abs(hw - sw).max())
    agree = int((hw.argmax(-1) == sw.argmax(-1)).sum())
    print(f"simulated {len(tokens)} samples: max |logit error| = {err:.3e}")
    print(f"prediction agreement: {agree}/{len(tokens)}")
    print(f"bank conflicts: {accel.trace.bank_conflicts}")
    return 0 if err < 1e-6 else 1


def cmd_estimate(args) -> int:
    from .hardware import (
        AcceleratorConfig,
        ButterflyPerformanceModel,
        WorkloadSpec,
        estimate_power,
        estimate_resources,
    )

    spec = WorkloadSpec(
        seq_len=args.seq_len, d_hidden=args.d_hidden, r_ffn=args.r_ffn,
        n_total=args.n_total, n_abfly=args.n_abfly, n_heads=args.n_heads,
    )
    config = AcceleratorConfig(
        pbe=args.pbe, pbu=args.pbu, pae=args.pae, pqk=args.pqk, psv=args.psv,
        bandwidth_gbs=args.bandwidth_gbs,
    )
    report = ButterflyPerformanceModel(config).model_latency(spec)
    resources = estimate_resources(config)
    power = estimate_power(config, resources)
    print(f"latency: {report.latency_ms:.3f} ms "
          f"({report.total_cycles:,.0f} cycles @ {config.clock_mhz:.0f} MHz)")
    print(f"resources: {resources.dsps} DSPs, {resources.brams} BRAMs, "
          f"{resources.luts:,} LUTs, {resources.registers:,} registers")
    print(f"power: {power.total:.2f} W (dynamic {power.dynamic:.2f} W)")
    for kind, cycles in sorted(report.cycles_by_kind().items()):
        print(f"  {kind:>6s}: {cycles:,.0f} cycles "
              f"({100 * cycles / report.total_cycles:.1f}%)")
    return 0


def cmd_codesign(args) -> int:
    from .codesign import SurrogateAccuracyOracle, run_codesign
    from .hardware.config import DEVICES

    oracle = SurrogateAccuracyOracle(task=args.task)
    result = run_codesign(
        oracle, seq_len=args.seq_len, device=DEVICES[args.device],
        max_accuracy_loss=args.max_accuracy_loss,
    )
    print(f"evaluated {len(result.points)} design points; Pareto front:")
    for p in result.pareto:
        print(f"  Dhid={p.spec.d_hidden:<5d} Rffn={p.spec.r_ffn} "
              f"Ntotal={p.spec.n_total} NABfly={p.spec.n_abfly} "
              f"Pbe={p.config.pbe:<4d} acc={p.accuracy:.3f} "
              f"lat={p.latency_ms:.3f}ms")
    if result.selected is None:
        print("no design satisfies the accuracy constraint")
        return 1
    sel = result.selected
    print(f"selected: Dhid={sel.spec.d_hidden} Rffn={sel.spec.r_ffn} "
          f"Ntotal={sel.spec.n_total} NABfly={sel.spec.n_abfly} "
          f"Pbe={sel.config.pbe} Pbu={sel.config.pbu} "
          f"Pqk={sel.config.pqk} Psv={sel.config.psv} "
          f"acc={sel.accuracy:.3f} lat={sel.latency_ms:.3f}ms")
    return 0


def _fmt(value, spec: str, fallback: str = "n/a") -> str:
    """Format a possibly-None metric (None when no tokens were produced)."""
    return format(value, spec) if value is not None else fallback


def _load_decoder(checkpoint: str):
    from .io import load_model

    model = load_model(checkpoint)
    if not hasattr(model, "decode_step"):
        print("error: checkpoint is not a decoder language model", file=sys.stderr)
        return None
    return model.eval()


def _render_tokens(tokens, vocab_size: int) -> str:
    from .data.charlm import VOCAB_SIZE, decode_tokens

    ids = " ".join(str(int(t)) for t in np.asarray(tokens).reshape(-1))
    if vocab_size == VOCAB_SIZE:
        return f"{decode_tokens(tokens)!r}  (ids: {ids})"
    return ids


def cmd_generate(args) -> int:
    from .data.charlm import encode_text
    from .serving import SamplingParams, ServingEngine

    model = _load_decoder(args.checkpoint)
    if model is None:
        return 2
    if (args.prompt is None) == (args.prompt_tokens is None):
        print("error: provide exactly one of --prompt / --prompt-tokens",
              file=sys.stderr)
        return 2
    if args.prompt_tokens is not None:
        prompt = np.array([int(t) for t in args.prompt_tokens.split(",")],
                          dtype=np.int64)
    else:
        prompt = encode_text(args.prompt)
    if (prompt.size == 0 or prompt.min() < 0
            or prompt.max() >= model.config.vocab_size):
        print("error: prompt is empty or out of the model's vocabulary",
              file=sys.stderr)
        return 2
    if args.quantize and not args.engine:
        from .nn import quantize_for_inference

        model = quantize_for_inference(model, mode=args.quantize)
    if args.engine:
        engine = ServingEngine(
            model, max_batch_size=1, seed=args.seed, quantize=args.quantize,
            backend=args.backend,
        )
        rid = engine.submit(prompt, SamplingParams(
            max_new_tokens=args.max_new_tokens,
            temperature=args.temperature, top_k=args.top_k, top_p=args.top_p,
            seed=args.seed,
        ))
        result = engine.run()[rid]
        sequence = result.full_sequence()
        summary = engine.metrics.requests[rid].summary()
        print(f"[engine] ttft {summary['ttft_ms']:.1f} ms, "
              f"{result.finish_reason} after {len(result.tokens)} tokens")
    else:
        from .kernels import use_backend

        with use_backend(args.backend):
            sequence = model.generate(
                prompt[None, :], args.max_new_tokens,
                temperature=args.temperature, top_k=args.top_k, top_p=args.top_p,
                rng=np.random.default_rng(args.seed),
                use_cache=not args.no_cache,
            )[0]
    print(_render_tokens(sequence, model.config.vocab_size))
    return 0


def _build_engine(args, model, worker_faults=None, resilience=None):
    """One engine-agnostic construction path (the ``Engine`` protocol).

    ``--workers 1`` builds the in-process :class:`ServingEngine`,
    ``--workers N`` the supervised :class:`ClusterEngine`; every
    consumer downstream (the workload loop, the HTTP server, the chaos
    oracle) talks to the returned engine through the protocol only.
    """
    from .serving import (
        CostModelAdmission,
        LoadSheddingAdmission,
        ServingEngine,
    )

    admission = None
    if getattr(args, "max_queue_depth", None) is not None:
        admission = LoadSheddingAdmission(max_queue_depth=args.max_queue_depth)
    elif getattr(args, "step_budget_ms", None) is not None:
        if args.workers >= 2:
            print("note: --step-budget-ms admission is single-engine only; "
                  "ignored in cluster mode", file=sys.stderr)
        else:
            admission = CostModelAdmission(
                model.config, step_budget_ms=args.step_budget_ms
            )
    if args.workers >= 2:
        from .serving.cluster import ClusterEngine

        return ClusterEngine(
            model, workers=args.workers, max_batch_size=args.max_batch_size,
            admission=admission, seed=args.seed,
            quantize=getattr(args, "quantize", None),
            backend=getattr(args, "backend", None),
            resilience=resilience, start_method=args.start_method,
            worker_faults=worker_faults,
        )
    return ServingEngine(
        model, max_batch_size=args.max_batch_size, admission=admission,
        seed=args.seed, quantize=getattr(args, "quantize", None),
        backend=getattr(args, "backend", None), resilience=resilience,
    )


def _submit_workload(args, engine, vocab: int, max_len: int):
    """Submit the synthetic request mix; returns the request handles."""
    from .serving import SamplingParams

    rng = np.random.default_rng(args.seed)
    handles = []
    for i in range(args.requests):
        prompt_len = max(1, min(args.prompt_len + (i % 3), max_len))
        prompt = rng.integers(1, vocab, size=prompt_len)
        handles.append(engine.submit(prompt, SamplingParams(
            max_new_tokens=args.max_new_tokens,
            temperature=args.temperature,
            top_k=getattr(args, "top_k", 0), top_p=getattr(args, "top_p", 1.0),
            seed=args.seed + i,
        )))
    return handles


def cmd_serve(args) -> int:
    from .models import ModelConfig, build_butterfly_decoder

    if args.checkpoint:
        model = _load_decoder(args.checkpoint)
        if model is None:
            return 2
    else:
        config = ModelConfig(
            vocab_size=28, n_classes=2, max_len=args.max_len,
            d_hidden=args.d_hidden, n_heads=4, r_ffn=2,
            n_total=args.n_total, seed=args.seed,
        )
        model = build_butterfly_decoder(config).eval()
    engine = _build_engine(args, model)
    if args.http is not None:
        from .serving.server import run_http_server

        run_http_server(engine, host=args.http_host, port=args.http)
        return 0
    if args.http_self_test:
        return _serve_http_self_test(args, engine, model)
    if args.backend != "serial" and hasattr(engine, "backend") \
            and isinstance(engine.backend, str):
        print(f"kernel backend: {engine.backend}")
    if args.quantize and hasattr(engine.model, "quantization_report"):
        report = engine.model.quantization_report
        print(f"serving {report.mode} replica: {report.layers_quantized} dense + "
              f"{report.butterfly_layers_quantized} butterfly layers quantized, "
              f"weight memory x{report.memory_ratio:.2f}")
    _submit_workload(args, engine, model.config.vocab_size,
                     model.config.max_len)
    results = engine.drain(timeout_s=600.0)
    for rid in sorted(results):
        summary = engine.metrics.requests[rid].summary()
        print(f"request {rid}: {summary['new_tokens']} tokens, "
              f"ttft {_fmt(summary['ttft_ms'], '.1f')} ms, "
              f"{results[rid].finish_reason}")
    snap = engine.metrics_snapshot()
    agg = snap["aggregate"]
    print(f"served {agg['completed']}/{agg['requests']} requests on "
          f"{args.workers} worker(s) in {agg['steps']} steps: "
          f"{_fmt(agg['tokens_per_s'], '.0f')} tokens/s, "
          f"mean ttft {_fmt(agg['mean_ttft_ms'], '.1f')} ms, "
          f"max queue depth {agg['max_queue_depth']}, "
          f"mean batch {_fmt(agg['mean_batch_size'], '.2f')}")
    if args.step_budget_ms is not None and args.workers == 1:
        admission = engine.scheduler.admission
        print(f"admission: modeled step budget {args.step_budget_ms:.3f} ms "
              f"-> max batch {admission.max_batch_within_budget(args.max_batch_size)}")
    for slot, info in sorted(snap.get("workers", {}).items()):
        hb = info["heartbeat"]
        print(f"worker {slot}: pid {info['pid']}, "
              f"{int(hb.get('steps', 0))} steps, "
              f"{info['restarts']} restarts")
    if args.metrics_json:
        import json

        with open(args.metrics_json, "w") as handle:
            json.dump(snap, handle, indent=2, sort_keys=True)
        print(f"wrote metrics snapshot to {args.metrics_json}")
    return 0 if agg["completed"] == agg["requests"] else 1


def _serve_http_self_test(args, engine, model) -> int:
    """Drive the request workload through the HTTP server over real
    sockets: concurrent blocking and SSE-streaming requests, health and
    metrics probes, then a drain-stop.  Engine-agnostic (same path for
    ``--workers 1`` and ``--workers N``)."""
    import http.client
    import json
    import threading

    from .serving.server import start_http_server

    server = start_http_server(engine, host=args.http_host)
    failures: List[str] = []
    statuses: List[int] = []

    def _request(method, path, body=None):
        conn = http.client.HTTPConnection(
            args.http_host, server.port, timeout=120
        )
        try:
            conn.request(
                method, path,
                body=None if body is None else json.dumps(body),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _one(i: int) -> None:
        rng = np.random.default_rng(args.seed + i)
        prompt_len = max(1, min(args.prompt_len + (i % 3),
                                model.config.max_len))
        prompt = [int(t) for t in
                  rng.integers(1, model.config.vocab_size, size=prompt_len)]
        body = {
            "prompt": prompt, "max_new_tokens": args.max_new_tokens,
            "temperature": args.temperature, "seed": args.seed + i,
            "stream": i % 2 == 1,
        }
        status, payload = _request("POST", "/v1/generate", body)
        statuses.append(status)
        if status != 200:
            failures.append(f"request {i}: HTTP {status}: {payload[:120]!r}")
        elif body["stream"] and b"event: end" not in payload:
            failures.append(f"request {i}: stream missing terminal event")

    try:
        status, payload = _request("GET", "/healthz")
        if status != 200:
            failures.append(f"healthz: HTTP {status}: {payload[:120]!r}")
        threads = [
            threading.Thread(target=_one, args=(i,))
            for i in range(args.requests)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        status, payload = _request("GET", "/metrics")
        if status != 200 or b"http_requests_total" not in payload:
            failures.append("metrics: missing per-endpoint HTTP counters")
    finally:
        server.stop()
        engine.close()
    agg = engine.metrics.aggregate()
    print(f"http self-test: {len(statuses)} requests over "
          f"http://{args.http_host}:{server.port} on {args.workers} "
          f"worker(s), {agg['completed']} completed, "
          f"mean ttft {_fmt(agg['mean_ttft_ms'], '.1f')} ms")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("http self-test OK")
    return 0


def _chaos_parity(baseline_ids, baseline, ids, results, skip_errors: bool):
    """Compare a chaos run to its fault-free baseline token-by-token.

    Returns ``(recovered, failures)``.  ``skip_errors`` exempts requests
    deliberately failed by single-request fault isolation (the
    in-process injection mode); process-kill failover must recover every
    session, so cluster mode never skips.
    """
    failures = []
    recovered = 0
    for base_id, request_id in zip(baseline_ids, ids):
        want = baseline[base_id]
        got = results[request_id]
        if not got.finished:
            failures.append(
                f"request {request_id} never finished (hung/lost)"
            )
        elif skip_errors and got.finish_reason == "error":
            continue  # deliberately failed by fault isolation
        elif got.tokens != want.tokens \
                or got.finish_reason != want.finish_reason:
            failures.append(
                f"request {request_id} diverged: {got.finish_reason} "
                f"{got.tokens} != {want.finish_reason} {want.tokens}"
            )
        else:
            recovered += 1
    return recovered, failures


def cmd_chaos(args) -> int:
    """Chaos parity oracle: recovered runs must match fault-free runs.

    The workload runs through :func:`_build_engine`, so single- and
    multi-worker chaos share one engine-agnostic path; only the fault
    *scenario* differs (in-process injection spec vs. worker kills).
    """
    from . import faults
    from .models import ModelConfig, build_butterfly_decoder
    from .serving import ResilienceConfig

    config = ModelConfig(
        vocab_size=28, n_classes=2, max_len=args.max_len,
        d_hidden=args.d_hidden, n_heads=4, r_ffn=2,
        n_total=args.n_total, seed=args.seed,
    )
    model = build_butterfly_decoder(config).eval()
    if args.kill_worker is not None and args.workers < 2:
        print("error: --kill-worker needs --workers >= 2 (failover "
              "requires a survivor)", file=sys.stderr)
        return 2
    if faults.active():
        print("error: a fault injector is already installed "
              "(unset REPRO_FAULTS)", file=sys.stderr)
        return 2
    cluster_mode = args.workers >= 2
    resilience = None if cluster_mode else ResilienceConfig(
        max_retries=args.max_retries, sleep=lambda _s: None,
    )

    def run_workload(worker_faults=None, hook=None):
        engine = _build_engine(
            args, model, worker_faults=worker_faults, resilience=resilience,
        )
        try:
            handles = _submit_workload(args, engine, vocab=28,
                                       max_len=args.max_len)
            if hook is not None:
                results = engine.run(timeout_s=600.0, hook=hook)
            else:
                results = engine.drain(timeout_s=600.0)
            snapshot = engine.metrics_snapshot()
        finally:
            engine.close()
        return handles, results, snapshot

    if cluster_mode:
        baseline_ids, baseline, _ = run_workload()
        victim = args.workers - 1  # load balancing guarantees it has work
        worker_faults = None
        hook = None
        if args.kill_worker == "fault":
            worker_faults = {
                victim: f"worker.step:fatal:after={args.kill_after}"
            }
        elif args.kill_worker == "sigkill":
            state = {"killed": False}

            def hook(cluster):
                if state["killed"]:
                    return
                delivered = cluster.metrics.aggregate()["total_new_tokens"]
                if delivered >= args.kill_after:
                    state["killed"] = cluster.kill_worker(victim)

        ids, results, snapshot = run_workload(worker_faults, hook)
        recovered, failures = _chaos_parity(
            baseline_ids, baseline, ids, results, skip_errors=False,
        )
        inst = snapshot["instruments"]

        def _count(name):
            return int(inst.get(name, {}).get("value", 0))

        deaths = sum(
            _count(f"cluster_worker_deaths_total{{worker={s}}}")
            for s in range(args.workers)
        )
        if args.kill_worker is not None and deaths == 0:
            failures.append(
                "no worker death observed; the kill never landed "
                "(raise --kill-after ceiling or request more tokens)"
            )
        print(f"worker deaths: {deaths}, sessions requeued: "
              f"{_count('cluster_requeued_sessions_total')}, "
              f"failovers: {_count('cluster_failovers_total')}, "
              f"replayed tokens: {_count('cluster_replayed_tokens_total')}")
        print(f"{recovered}/{args.requests} sessions finished "
              f"bit-identically to the fault-free cluster run")
    else:
        baseline_ids, baseline, _ = run_workload()
        with faults.use_faults(args.spec, seed=args.fault_seed) as injector:
            ids, results, snapshot = run_workload()
            injected = injector.snapshot()
        recovered, failures = _chaos_parity(
            baseline_ids, baseline, ids, results, skip_errors=True,
        )
        if injected["injected_total"] < args.min_faults:
            failures.append(
                f"only {injected['injected_total']} faults injected "
                f"(need >= {args.min_faults}); widen --spec"
            )
        for point_kind, count in sorted(injected["injected"].items()):
            print(f"injected {count:>3d} x {point_kind}")
        inst = snapshot["instruments"]
        for name in ("serving_fault_retries_total",
                     "serving_fault_rollbacks_total",
                     "serving_request_errors_total"):
            print(f"{name}: {int(inst.get(name, {}).get('value', 0))}")
        errored = sum(
            1 for r in results.values() if r.finish_reason == "error"
        )
        print(f"{recovered}/{args.requests} requests recovered "
              f"bit-identically, {errored} isolated as errors")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("cluster chaos parity OK" if cluster_mode else "chaos parity OK")
    return 0


def cmd_profile(args) -> int:
    import time

    from . import telemetry

    was_on = telemetry.enabled()
    telemetry.enable()
    telemetry.clear_all()
    try:
        return _profile_instrumented(args, telemetry)
    finally:
        telemetry.STATE.on = was_on


def _profile_instrumented(args, telemetry) -> int:
    import time

    t0 = time.perf_counter()
    with telemetry.span("profile.workload", workload=args.workload):
        if args.workload == "serve":
            from .models import ModelConfig, build_butterfly_decoder
            from .serving import SamplingParams, ServingEngine

            config = ModelConfig(
                vocab_size=28, n_classes=2, max_len=args.seq_len,
                d_hidden=args.d_hidden, n_heads=4, r_ffn=2,
                n_total=args.n_total, seed=args.seed,
            )
            model = build_butterfly_decoder(config).eval()
            engine = ServingEngine(
                model, max_batch_size=args.max_batch_size, seed=args.seed,
                backend=args.backend,
            )
            rng = np.random.default_rng(args.seed)
            for i in range(args.requests):
                prompt = rng.integers(1, 28, size=8)
                engine.submit(prompt, SamplingParams(
                    max_new_tokens=args.max_new_tokens, temperature=0.8,
                    seed=args.seed + i,
                ))
            engine.run()
        else:
            from .data import load_task
            from .models import ModelConfig, build_model
            from .training import train_model_on_task

            dataset = load_task("text", seq_len=args.seq_len, n_samples=96,
                                seed=args.seed)
            config = ModelConfig(
                vocab_size=dataset.vocab_size, n_classes=dataset.n_classes,
                max_len=dataset.seq_len, d_hidden=args.d_hidden, n_heads=4,
                r_ffn=2, n_total=args.n_total, seed=args.seed,
            )
            model = build_model("fabnet", config)
            train_model_on_task(model, dataset, epochs=args.epochs,
                                seed=args.seed)
    wall_s = time.perf_counter() - t0

    print(telemetry.render_span_tree(min_share=args.min_share))
    print()
    print(f"{'op':<40} {'count':>8} {'total ms':>10}")
    for op in telemetry.top_ops(args.top):
        print(f"{op['name']:<40} {op['count']:>8d} "
              f"{op['total_s'] * 1e3:>10.2f}")
    roots = [n for p, n in telemetry.span_tree().items() if len(p) == 1]
    covered = sum(n["total_s"] for n in roots)
    print(f"\nspan coverage: {covered * 1e3:.1f} ms of {wall_s * 1e3:.1f} ms "
          f"wall time ({100 * covered / wall_s:.0f}%)")
    dropped = telemetry.get_collector().dropped
    if dropped:
        print(f"warning: {dropped} spans dropped (collector full)")
    if args.trace_out:
        telemetry.write_chrome_trace(args.trace_out)
        print(f"wrote Chrome trace to {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(telemetry.render_prometheus())
        print(f"wrote Prometheus text to {args.metrics_out}")
    return 0


def cmd_report(args) -> int:
    from .analysis.reports import generate_report

    report = generate_report()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote report to {args.output}")
    else:
        print(report)
    return 0


_COMMANDS = {
    "train": cmd_train,
    "simulate": cmd_simulate,
    "estimate": cmd_estimate,
    "codesign": cmd_codesign,
    "generate": cmd_generate,
    "serve": cmd_serve,
    "chaos": cmd_chaos,
    "profile": cmd_profile,
    "report": cmd_report,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Butterfly accelerator reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_train_parser(subparsers)
    _add_simulate_parser(subparsers)
    _add_estimate_parser(subparsers)
    _add_codesign_parser(subparsers)
    _add_generate_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_chaos_parser(subparsers)
    _add_profile_parser(subparsers)
    _add_report_parser(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
