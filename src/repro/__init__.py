"""Reproduction of "Adaptable Butterfly Accelerator for Attention-based
NNs via Hardware and Algorithm Co-design" (Fan et al., MICRO 2022).

Subpackages:

* :mod:`repro.nn` — numpy autograd + NN layers (the PyTorch substitute).
* :mod:`repro.kernels` — the unified vectorized butterfly kernel layer
  (stage apply forward/VJP, fused grouped matmuls, FFT twiddles, dtype
  policy) shared by ``nn``, ``butterfly`` and the hardware model.
* :mod:`repro.butterfly` — butterfly matrices and the FFT unification.
* :mod:`repro.models` — Transformer / FNet / FABNet model zoo.
* :mod:`repro.data` — synthetic Long-Range-Arena task generators.
* :mod:`repro.training` — training harness.
* :mod:`repro.hardware` — functional simulator + performance/resource/
  power models of the adaptable butterfly accelerator and its baselines.
* :mod:`repro.codesign` — joint algorithm/hardware design-space search.
* :mod:`repro.analysis` — FLOPs/parameter accounting.
* :mod:`repro.serving` — batched inference runtime: KV-cache incremental
  decoding, continuous batching, the ``ServingEngine`` API and serving
  metrics.
* :mod:`repro.telemetry` — opt-in counters/gauges/histograms and tracing
  spans shared by every layer, with Prometheus-text and Chrome-trace
  export (``REPRO_TELEMETRY=1`` or ``telemetry.enable()``).
* :mod:`repro.faults` — opt-in deterministic fault injection at named
  points across kernels, serving and io (``REPRO_FAULTS`` spec strings
  or ``faults.use_faults``), driving the serving resilience layer.
"""

__version__ = "1.0.0"

from . import (
    analysis,
    butterfly,
    codesign,
    data,
    faults,
    hardware,
    kernels,
    models,
    nn,
    serving,
    telemetry,
    training,
)

__all__ = [
    "analysis",
    "butterfly",
    "codesign",
    "data",
    "faults",
    "hardware",
    "kernels",
    "models",
    "nn",
    "serving",
    "telemetry",
    "training",
    "__version__",
]
