"""Hardware models: functional simulator, performance, resources, power.

Subpackages/modules:

* :mod:`repro.hardware.functional` — value-accurate simulator of the
  adaptable butterfly accelerator (BUs, BEs, memory system, AP, PostP).
* :mod:`repro.hardware.perf` — cycle-level latency model.
* :mod:`repro.hardware.resources` / :mod:`repro.hardware.power` — the
  paper's analytical DSP/BRAM model and the Table VI power model.
* :mod:`repro.hardware.baseline` — dense MAC-array baseline accelerator.
* :mod:`repro.hardware.platforms` — roofline CPU/GPU models.
* :mod:`repro.hardware.sota` — Table V normalization against published
  accelerators.
"""

from .baseline import BaselineAccelerator, BaselineConfig, bert_spec, fabnet_spec
from .energy import EnergyMetrics, efficiency_ratio, energy_metrics, workload_gops
from .isa import (
    Instruction,
    InstructionExecutor,
    Opcode,
    Program,
    compile_model,
    validate_program,
)
from .quantize import (
    Fp16ButterflyEngine,
    Int8ButterflyEngine,
    QuantizationErrorReport,
    accuracy_under_fp16,
    accuracy_under_int8,
    int8_quantization_error_report,
    quantization_error_report,
    quantize_fp16,
    quantize_int4,
    quantize_int8,
    storage_tier_drift_report,
    verify_backend_parity,
    verify_int4_quantizer,
    verify_int8_quantizer,
)
from .schedule import (
    ExecutionTrace,
    ScheduleEntry,
    build_trace,
    processor_balance,
)
from .config import (
    BE40_CONFIG,
    BE120_CONFIG,
    DEVICES,
    PAPER_CODESIGN_CONFIG,
    VCU128,
    ZYNQ7045,
    AcceleratorConfig,
    FpgaDevice,
)
from .perf import (
    ButterflyPerformanceModel,
    LatencyReport,
    LayerLatency,
    WorkloadSpec,
    latency_vs_bandwidth,
)
from .platforms import (
    JETSON_NANO,
    PLATFORMS,
    RASPBERRY_PI4,
    TITAN_XP,
    V100,
    XEON_6154,
    ComponentBreakdown,
    Platform,
    device_memory_bytes,
    fabnet_time_s,
    transformer_breakdown,
)
from .power import PowerBreakdown, estimate_power
from .resources import ResourceUsage, bram_usage, dsp_usage, estimate_resources
from .sota import (
    LRA_IMAGE_SPEC,
    NORMALIZED_CONFIG,
    PAPER_OUR_WORK,
    SOTA_ACCELERATORS,
    AcceleratorRecord,
    our_work_record,
    scale_power,
    scale_throughput,
    speedup_over_sota,
    table5,
)

__all__ = [
    "AcceleratorConfig",
    "AcceleratorRecord",
    "BE120_CONFIG",
    "BE40_CONFIG",
    "BaselineAccelerator",
    "BaselineConfig",
    "ButterflyPerformanceModel",
    "ComponentBreakdown",
    "DEVICES",
    "FpgaDevice",
    "JETSON_NANO",
    "LRA_IMAGE_SPEC",
    "LatencyReport",
    "LayerLatency",
    "NORMALIZED_CONFIG",
    "PAPER_CODESIGN_CONFIG",
    "PAPER_OUR_WORK",
    "PLATFORMS",
    "Platform",
    "PowerBreakdown",
    "RASPBERRY_PI4",
    "ResourceUsage",
    "SOTA_ACCELERATORS",
    "TITAN_XP",
    "V100",
    "VCU128",
    "WorkloadSpec",
    "XEON_6154",
    "ZYNQ7045",
    "EnergyMetrics",
    "ExecutionTrace",
    "Fp16ButterflyEngine",
    "Instruction",
    "Int8ButterflyEngine",
    "InstructionExecutor",
    "Opcode",
    "Program",
    "QuantizationErrorReport",
    "ScheduleEntry",
    "compile_model",
    "validate_program",
    "accuracy_under_fp16",
    "accuracy_under_int8",
    "bert_spec",
    "bram_usage",
    "build_trace",
    "device_memory_bytes",
    "dsp_usage",
    "efficiency_ratio",
    "energy_metrics",
    "estimate_power",
    "estimate_resources",
    "fabnet_spec",
    "fabnet_time_s",
    "int8_quantization_error_report",
    "latency_vs_bandwidth",
    "processor_balance",
    "quantization_error_report",
    "quantize_fp16",
    "quantize_int4",
    "quantize_int8",
    "storage_tier_drift_report",
    "verify_backend_parity",
    "verify_int4_quantizer",
    "verify_int8_quantizer",
    "workload_gops",
    "our_work_record",
    "scale_power",
    "scale_throughput",
    "speedup_over_sota",
    "table5",
    "transformer_breakdown",
]
