"""Comparison with state-of-the-art attention accelerators (Table V).

The paper compares published accelerators by normalizing every design to
the same computational budget — 128 multipliers at 1 GHz (128 GOPS peak)
— linearly scaling reported throughput and systolic-array power, exactly
as SpAtten and Sanger do.  This module encodes the published numbers of
Table V and implements the same normalization arithmetic, plus the
end-to-end latency of *our* design produced by the performance model with
640 multipliers at 200 MHz (the same 128 GOPS peak).

Workload: one-layer vanilla Transformer on LRA-Image (seq 1024), per the
experimental setting of DOTA that the paper follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .config import AcceleratorConfig
from .perf import ButterflyPerformanceModel, WorkloadSpec
from .power import estimate_power
from .resources import estimate_resources


@dataclass(frozen=True)
class AcceleratorRecord:
    """One row of Table V."""

    name: str
    venue: str
    technology: str
    latency_ms: float
    power_w: float

    @property
    def throughput_pred_s(self) -> float:
        """Predictions per second at the normalized budget."""
        return 1000.0 / self.latency_ms

    @property
    def energy_eff_pred_j(self) -> float:
        """Predictions per joule."""
        return self.throughput_pred_s / self.power_w


# Published, already-normalized rows from Table V (128 multipliers @ 1 GHz
# for the ASICs; FTRANS is an FPGA design with 6531 multipliers).
SOTA_ACCELERATORS: List[AcceleratorRecord] = [
    AcceleratorRecord("A3", "HPCA'20", "ASIC (40nm)", 56.0, 1.217),
    AcceleratorRecord("SpAtten", "HPCA'21", "ASIC (40nm)", 48.8, 1.060),
    AcceleratorRecord("Sanger", "MICRO'21", "ASIC (55nm)", 45.2, 0.801),
    AcceleratorRecord("Energon", "TCAD'21", "ASIC (45nm)", 44.2, 2.633),
    AcceleratorRecord("ELSA", "ISCA'21", "ASIC (40nm)", 34.7, 0.976),
    AcceleratorRecord("DOTA", "ASPLOS'22", "ASIC (22nm)", 34.1, 0.858),
    AcceleratorRecord("FTRANS", "ISLPED'20", "FPGA (16nm)", 61.6, 25.130),
]

PAPER_OUR_WORK = AcceleratorRecord(
    "Our work (paper)", "MICRO'22", "FPGA (16nm)", 2.4, 11.355
)

# LRA-Image one-layer workload: seq 1024, BERT-Base-width hidden size
# (the SOTA rows run a one-layer vanilla Transformer; our design runs the
# FABNet block of the same width, which is the paper's methodology of
# comparing co-designed algorithm + hardware against attention-only
# accelerators).
LRA_IMAGE_SPEC = WorkloadSpec(
    seq_len=1024, d_hidden=768, r_ffn=4, n_total=1, n_abfly=0, n_heads=12
)

# 640 multipliers at 200 MHz = the ASIC budget of 128 mults at 1 GHz.
NORMALIZED_CONFIG = AcceleratorConfig(
    pbe=40, pbu=4, pae=0, pqk=0, psv=0, clock_mhz=200.0, bandwidth_gbs=450.0
)


def scale_throughput(speedup: float, multipliers: int, budget: int = 128) -> float:
    """Linear throughput normalization used by SpAtten/Sanger/the paper.

    E.g. DOTA reports 11.4x over a V100 with 12,000 multipliers; scaled to
    the 128-multiplier budget it becomes ``11.4 / (12000/128) = 0.122x``.
    """
    if multipliers <= 0 or budget <= 0:
        raise ValueError("multiplier counts must be positive")
    return speedup / (multipliers / budget)


def scale_power(power_w: float, multipliers: int, budget: int = 128) -> float:
    """Linear power normalization for the compute array."""
    if multipliers <= 0 or budget <= 0:
        raise ValueError("multiplier counts must be positive")
    return power_w / (multipliers / budget)


def our_work_record(
    spec: WorkloadSpec = LRA_IMAGE_SPEC,
    config: AcceleratorConfig = NORMALIZED_CONFIG,
) -> AcceleratorRecord:
    """Our accelerator's Table V row, from the perf and power models."""
    perf = ButterflyPerformanceModel(config)
    latency_ms = perf.model_latency(spec).latency_ms
    power = estimate_power(config, estimate_resources(config)).total
    return AcceleratorRecord(
        "Our work (measured)", "MICRO'22", "FPGA (16nm)", latency_ms, power
    )


def table5(
    spec: WorkloadSpec = LRA_IMAGE_SPEC,
    config: AcceleratorConfig = NORMALIZED_CONFIG,
) -> List[AcceleratorRecord]:
    """All Table V rows: published SOTA + our modeled design."""
    return [*SOTA_ACCELERATORS, our_work_record(spec, config)]


def speedup_over_sota(record: AcceleratorRecord) -> Dict[str, float]:
    """Our latency speedup over each SOTA accelerator."""
    return {
        sota.name: sota.latency_ms / record.latency_ms for sota in SOTA_ACCELERATORS
    }
