"""Roofline models of the CPU/GPU platforms the paper compares against.

The paper measures PyTorch implementations on an Nvidia V100, TITAN Xp,
Jetson Nano, a Raspberry Pi 4 and an Intel Xeon Gold 6154 (Table IV).  We
have none of that hardware, so each device is modeled as a roofline:
``time(op) = max(flops / (peak_flops * efficiency), bytes / bandwidth)``
plus a fixed per-kernel launch overhead.  The ``efficiency`` factors are
calibrated constants reflecting that framework GEMMs reach a fraction of
peak while elementwise/softmax kernels are bandwidth-bound; they are the
documented substitution for the paper's measured numbers (DESIGN.md).

These models drive Fig. 3 (latency breakdown) and Fig. 20 (speedup and
energy comparisons), where only *ratios and shapes* matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .perf import WorkloadSpec, _next_power_of_two


@dataclass(frozen=True)
class Platform:
    """Roofline description of a CPU or GPU device.

    Efficiency factors (fractions of peak actually achieved):

    * ``gemm_efficiency`` — large dense matmuls (cuBLAS/MKL).
    * ``attention_efficiency`` — the batched small-``d_head`` score and
      context matmuls of attention, which run well below GEMM peak.
    * ``butterfly_efficiency`` — FFT/butterfly kernels (cuFFT and the
      Kaleidoscope CUDA kernels), which have little data reuse.
    * ``elementwise_bandwidth`` — fraction of peak bandwidth achieved by
      elementwise/norm/transpose kernels.
    """

    name: str
    peak_gflops: float  # usable peak (fp32/fp16 as the paper used)
    bandwidth_gbs: float
    power_w: float
    gemm_efficiency: float = 0.45
    attention_efficiency: float = 0.15
    butterfly_efficiency: float = 0.20
    elementwise_bandwidth: float = 0.30
    kernel_overhead_us: float = 5.0

    def op_time_s(
        self,
        flops: float,
        num_bytes: float,
        gemm: bool = True,
        efficiency: Optional[float] = None,
    ) -> float:
        """Roofline time of one operator invocation."""
        if efficiency is None:
            efficiency = self.gemm_efficiency if gemm else self.gemm_efficiency
        bw = self.bandwidth_gbs * (1.0 if gemm else self.elementwise_bandwidth)
        compute = flops / (self.peak_gflops * 1e9 * efficiency)
        memory = num_bytes / (bw * 1e9)
        return max(compute, memory) + self.kernel_overhead_us * 1e-6


# Server GPUs: batch-1 LRA inference in eager PyTorch is dominated by
# per-kernel dispatch/synchronization (~80 us effective per op) and the
# published butterfly CUDA kernels reach only a few percent of peak
# (little data reuse); both constants are calibrated so the Fig. 20
# speedup-vs-sequence-length curve matches the paper's measured shape.
V100 = Platform(
    "V100", peak_gflops=15_700, bandwidth_gbs=900, power_w=300,
    butterfly_efficiency=0.05, attention_efficiency=0.12,
    kernel_overhead_us=80.0,
)
TITAN_XP = Platform(
    "TITAN Xp", peak_gflops=12_100, bandwidth_gbs=548, power_w=250,
    butterfly_efficiency=0.05, attention_efficiency=0.12,
    kernel_overhead_us=80.0,
)
JETSON_NANO = Platform(
    "Jetson Nano", peak_gflops=472, bandwidth_gbs=25.6, power_w=10,
    gemm_efficiency=0.35, butterfly_efficiency=0.10, kernel_overhead_us=20.0,
)
RASPBERRY_PI4 = Platform(
    "Raspberry Pi 4", peak_gflops=24, bandwidth_gbs=4.0, power_w=6,
    gemm_efficiency=0.30, butterfly_efficiency=0.12, kernel_overhead_us=2.0,
)
XEON_6154 = Platform(
    "Xeon Gold 6154", peak_gflops=1_700, bandwidth_gbs=120, power_w=200,
    gemm_efficiency=0.40, butterfly_efficiency=0.25, kernel_overhead_us=2.0,
)

PLATFORMS: Dict[str, Platform] = {
    "v100": V100,
    "titan_xp": TITAN_XP,
    "jetson_nano": JETSON_NANO,
    "raspberry_pi4": RASPBERRY_PI4,
    "xeon_6154": XEON_6154,
}

BYTES = 4  # PyTorch fp32 activations/weights


@dataclass
class ComponentBreakdown:
    """Per-component execution time of one encoder workload (Fig. 3)."""

    attention_s: float
    linear_s: float
    other_s: float

    @property
    def total_s(self) -> float:
        return self.attention_s + self.linear_s + self.other_s

    def percentages(self) -> Dict[str, float]:
        total = self.total_s
        return {
            "attention": 100.0 * self.attention_s / total,
            "linear": 100.0 * self.linear_s / total,
            "other": 100.0 * self.other_s / total,
        }


def transformer_breakdown(
    platform: Platform, spec: WorkloadSpec, batch: int = 1
) -> ComponentBreakdown:
    """Model the attention/linear/other latency split of a dense encoder."""
    r, d = spec.seq_len, spec.d_hidden
    rows = batch * r
    attention = 0.0
    linear = 0.0
    other = 0.0
    for _ in range(spec.n_total):
        # Q/K/V/O projections + FFN are "linear".
        for d_in, d_out in ((d, d),) * 4 + ((d, spec.d_ffn), (spec.d_ffn, d)):
            flops = 2.0 * rows * d_in * d_out
            num_bytes = (rows * d_in + d_in * d_out + rows * d_out) * BYTES
            linear += platform.op_time_s(flops, num_bytes, gemm=True)
        # Score + context matmuls and softmax are "attention"; the batched
        # small-d_head matmuls run far below GEMM peak.
        attn_flops = 2 * 2.0 * batch * spec.n_heads * r * r * (d // spec.n_heads)
        attn_bytes = (2 * batch * spec.n_heads * r * r + 4 * rows * d) * BYTES
        attention += platform.op_time_s(
            attn_flops, attn_bytes, gemm=True,
            efficiency=platform.attention_efficiency,
        )
        softmax_bytes = 2 * batch * spec.n_heads * r * r * BYTES
        attention += platform.op_time_s(
            5.0 * batch * spec.n_heads * r * r, softmax_bytes, gemm=False
        )
        # LayerNorm, residuals, transposes and IO are "other".
        for _pass in range(4):
            other += platform.op_time_s(
                5.0 * rows * d, 2 * rows * d * BYTES, gemm=False
            )
    return ComponentBreakdown(attention, linear, other)


def fabnet_time_s(platform: Platform, spec: WorkloadSpec, batch: int = 1) -> float:
    """FABNet inference time on a CPU/GPU with fast FFT + butterfly kernels.

    The paper uses cuFFT (``rfft2``) and the Kaleidoscope CUDA butterfly
    kernels; both are modeled at the platform's GEMM efficiency since the
    published kernels are tuned, with FFT/butterfly FLOP counts.
    """
    import math

    r, d = spec.seq_len, spec.d_hidden
    rows = batch * r
    n_ffn = _next_power_of_two(spec.d_ffn)
    total = 0.0
    log2 = math.log2
    for i in range(spec.n_total):
        fourier = i < spec.n_fbfly
        if fourier:
            flops = 5.0 * rows * d * log2(d) + 5.0 * batch * d * r * log2(r)
            num_bytes = 4 * rows * d * BYTES
            total += platform.op_time_s(
                flops, num_bytes, efficiency=platform.butterfly_efficiency
            )
        else:
            for _ in range(4):  # butterfly Q/K/V/O
                flops = 6.0 * rows * (d / 2) * log2(d)
                num_bytes = (2 * rows * d + 2 * d * log2(d)) * BYTES
                total += platform.op_time_s(
                    flops, num_bytes, efficiency=platform.butterfly_efficiency
                )
            attn_flops = 2 * 2.0 * batch * spec.n_heads * r * r * (d // spec.n_heads)
            total += platform.op_time_s(
                attn_flops, 4 * rows * d * BYTES,
                efficiency=platform.attention_efficiency,
            )
        # Butterfly FFN (two layers padded to n_ffn).
        for _ in range(2):
            flops = 6.0 * rows * (n_ffn / 2) * log2(n_ffn)
            num_bytes = (2 * rows * n_ffn + 2 * n_ffn * log2(n_ffn)) * BYTES
            total += platform.op_time_s(
                flops, num_bytes, efficiency=platform.butterfly_efficiency
            )
        for _pass in range(4):  # norms/residuals
            total += platform.op_time_s(5.0 * rows * d, 2 * rows * d * BYTES, gemm=False)
    return total


def device_memory_bytes(spec: WorkloadSpec, batch: int = 1) -> float:
    """Rough activation+weight footprint, used for the Pi-4 OOM check."""
    r, d = spec.seq_len, spec.d_hidden
    act = batch * r * d * 12 * BYTES
    attn = batch * spec.n_heads * r * r * BYTES * max(1, spec.n_abfly)
    weights = spec.n_total * (12 * d * d if not spec.butterfly else 16 * d * 12) * BYTES
    return act + attn + weights
