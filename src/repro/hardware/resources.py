"""Analytical FPGA resource model (paper Section V-C and Table VII).

DSP and BRAM follow the paper's closed-form equations::

    DSP  = Pbe * Pbu * 4  +  Phead * (Pqk + Psv)
    BRAM = (BRAM_bfly + BRAM_weight) * Pbe + BRAM_key + BRAM_sc + BRAM_query

LUT and register counts are not given in closed form in the paper, so we
use linear-in-Pbe fits through the two implemented design points of
Table VII (BE-40 and BE-120 on the VCU128), which the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MULTIPLIERS_PER_BU, AcceleratorConfig, FpgaDevice

# BRAM blocks per buffer, for the paper's depth-1024, 16-bit buffers.
BRAM_BFLY_PER_BE = 4  # double-buffered butterfly buffers A + B
BRAM_WEIGHT_PER_BE = 4  # per-stage twiddle/weight coefficients
BRAM_KEY = 6
BRAM_QUERY = 6
BRAM_SHORTCUT = 6

# Linear LUT/FF fits through Table VII's BE-40 / BE-120 points.
# (The register fit has a negative intercept because the BE-120 design's
# attention processor contributes registers the BE-40 design lacks; the
# estimate is floored at a small-control-logic minimum.)
LUTS_PER_BE = 8_450.0125
LUTS_BASE = 358_609 - 40 * LUTS_PER_BE
REGS_PER_BE = 13_898.5625
REGS_BASE = 536_810 - 40 * REGS_PER_BE
REGS_FLOOR = 20_000


@dataclass(frozen=True)
class ResourceUsage:
    """Estimated FPGA resource consumption of one accelerator config."""

    luts: int
    registers: int
    dsps: int
    brams: int
    hbms: int = 1

    def fits(self, device: FpgaDevice) -> bool:
        """Whether the design fits the device's resource envelope."""
        return (
            self.luts <= device.luts
            and self.registers <= device.registers
            and self.dsps <= device.dsps
            and self.brams <= device.brams
        )

    def utilization(self, device: FpgaDevice) -> dict:
        """Fractional utilization per resource class."""
        return {
            "luts": self.luts / device.luts,
            "registers": self.registers / device.registers,
            "dsps": self.dsps / device.dsps,
            "brams": self.brams / device.brams,
        }


def dsp_usage(config: AcceleratorConfig) -> int:
    """Paper's DSP equation: BP multipliers + AP multipliers."""
    return (
        config.pbe * config.pbu * MULTIPLIERS_PER_BU
        + config.pae * (config.pqk + config.psv)
    )


def bram_usage(config: AcceleratorConfig) -> int:
    """Paper's BRAM equation with calibrated per-buffer block counts."""
    per_be = BRAM_BFLY_PER_BE + BRAM_WEIGHT_PER_BE
    return per_be * config.pbe + BRAM_KEY + BRAM_QUERY + BRAM_SHORTCUT


def estimate_resources(config: AcceleratorConfig) -> ResourceUsage:
    """Full resource estimate for a configuration."""
    return ResourceUsage(
        luts=int(round(LUTS_BASE + LUTS_PER_BE * config.pbe)),
        registers=max(REGS_FLOOR, int(round(REGS_BASE + REGS_PER_BE * config.pbe))),
        dsps=dsp_usage(config),
        brams=bram_usage(config),
    )
