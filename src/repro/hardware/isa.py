"""Instruction stream and runtime control of the accelerator.

The paper's engines are "configured at runtime via dedicated hardware
control": before each layer, control registers select FFT vs butterfly
mode, buffer address mappings and engine parallelism.  This module makes
that control path explicit:

* an **instruction set** (`Opcode`, `Instruction`) covering everything the
  accelerator does: configure engines, load/store tiles, execute
  butterfly/FFT/attention, post-process;
* a **compiler** (`compile_model`) from a FABNet
  :class:`~repro.models.encoder.EncoderClassifier` to a linear
  instruction stream;
* an **executor** (`InstructionExecutor`) that replays a stream on the
  functional engines, producing outputs identical to the software model
  — the programmable-control analogue of the Appendix C validation.

The instruction stream is also what a real driver would ship to the
device, so tests assert structural invariants a hardware sequencer
relies on (every EXEC preceded by a CONFIG of the right mode, loads
before executes, balanced load/store per layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from ..models.blocks import EncoderBlock
from ..models.encoder import EncoderClassifier
from ..nn.attention import MultiHeadAttention
from ..nn.butterfly_layer import ButterflyLinear
from .config import AcceleratorConfig
from .functional.accelerator import ButterflyAccelerator


class Opcode(Enum):
    """Operations the control sequencer can issue."""

    CONFIG_BFLY = "config_bfly"  # set BE muxes to butterfly-linear mode
    CONFIG_FFT = "config_fft"  # set BE muxes to FFT mode
    LOAD = "load"  # off-chip -> butterfly/attention buffers
    EXEC_BFLY = "exec_bfly"  # run butterfly linear transform on BP
    EXEC_FFT2 = "exec_fft2"  # run 2D FFT mixing on BP
    EXEC_ATTN = "exec_attn"  # run QK/softmax/SV on AP
    GELU = "gelu"  # activation unit
    ADD_NORM = "add_norm"  # PostP shortcut + LayerNorm
    STORE = "store"  # buffers -> off-chip


@dataclass(frozen=True)
class Instruction:
    """One control-sequencer instruction."""

    opcode: Opcode
    operand: str = ""  # tensor tag or layer path
    block: int = -1  # encoder block index, -1 for global

    def __str__(self) -> str:
        where = f"b{self.block}" if self.block >= 0 else "--"
        return f"{self.opcode.value:<12s} {where:<4s} {self.operand}"


@dataclass
class Program:
    """A compiled instruction stream plus metadata."""

    instructions: List[Instruction] = field(default_factory=list)
    n_blocks: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def count(self, opcode: Opcode) -> int:
        return sum(1 for i in self.instructions if i.opcode == opcode)

    def listing(self) -> str:
        return "\n".join(
            f"{idx:04d}: {inst}" for idx, inst in enumerate(self.instructions)
        )


def _compile_butterfly_linear(block_idx: int, tag: str) -> List[Instruction]:
    return [
        Instruction(Opcode.CONFIG_BFLY, tag, block_idx),
        Instruction(Opcode.LOAD, tag, block_idx),
        Instruction(Opcode.EXEC_BFLY, tag, block_idx),
        Instruction(Opcode.STORE, tag, block_idx),
    ]


def compile_block(block: EncoderBlock, block_idx: int) -> List[Instruction]:
    """Compile one FBfly/ABfly block into the control stream."""
    out: List[Instruction] = []
    if block.mixing_kind == "fourier":
        out.append(Instruction(Opcode.CONFIG_FFT, "mix", block_idx))
        out.append(Instruction(Opcode.LOAD, "mix", block_idx))
        out.append(Instruction(Opcode.EXEC_FFT2, "mix", block_idx))
        out.append(Instruction(Opcode.STORE, "mix", block_idx))
    elif block.mixing_kind == "butterfly_attention":
        # Paper's reordered schedule (Fig. 14): K and V before Q.
        for proj in ("k_proj", "v_proj", "q_proj"):
            out.extend(_compile_butterfly_linear(block_idx, proj))
        out.append(Instruction(Opcode.EXEC_ATTN, "attn", block_idx))
        out.extend(_compile_butterfly_linear(block_idx, "out_proj"))
    else:
        raise ValueError(
            f"block mixing {block.mixing_kind!r} is not compilable to the "
            "butterfly accelerator"
        )
    out.append(Instruction(Opcode.ADD_NORM, "mix", block_idx))
    out.extend(_compile_butterfly_linear(block_idx, "ffn1"))
    out.append(Instruction(Opcode.GELU, "ffn", block_idx))
    out.extend(_compile_butterfly_linear(block_idx, "ffn2"))
    out.append(Instruction(Opcode.ADD_NORM, "ffn", block_idx))
    return out


def compile_model(model: EncoderClassifier) -> Program:
    """Compile the encoder stack of a FABNet model."""
    program = Program(n_blocks=len(model.blocks))
    for idx, block in enumerate(model.blocks):
        program.instructions.extend(compile_block(block, idx))
    return program


class InstructionExecutor:
    """Replay a compiled program on the functional engines.

    Holds the activation state between instructions exactly as the
    accelerator's buffers do; raises on malformed streams (executing
    without a prior CONFIG, mismatched modes), which is the software
    analogue of a sequencer lock-up.
    """

    def __init__(self, model: EncoderClassifier,
                 config: Optional[AcceleratorConfig] = None) -> None:
        self.model = model
        self.accelerator = ButterflyAccelerator(
            config or AcceleratorConfig(pbe=1, pbu=4, pae=2, pqk=4, psv=4)
        )
        self._mode: Optional[Opcode] = None

    # ------------------------------------------------------------------
    def _layer_of(self, block: EncoderBlock, tag: str) -> ButterflyLinear:
        if tag in ("k_proj", "v_proj", "q_proj", "out_proj"):
            return getattr(block.mixer, tag)
        if tag == "ffn1":
            return block.ffn.fc1
        if tag == "ffn2":
            return block.ffn.fc2
        raise KeyError(f"unknown layer tag {tag!r}")

    def run(self, program: Program, tokens: np.ndarray) -> np.ndarray:
        """Execute the program per sample; returns the model logits."""
        tokens = np.asarray(tokens, dtype=np.int64)
        seq = tokens.shape[1]
        x = self.model.token_emb.weight.data[tokens] + self.model.pos_emb.data[:seq]
        outputs = []
        for sample in x:
            outputs.append(self._run_sample(program, sample))
        h = np.stack(outputs)
        postp = self.accelerator.postp
        h = postp.layer_norm(h, self.model.head_norm.gamma.data,
                             self.model.head_norm.beta.data)
        pooled = h[:, 0] if self.model.config.pooling == "cls" else h.mean(axis=1)
        return pooled @ self.model.head.weight.data.T + self.model.head.bias.data

    # ------------------------------------------------------------------
    def _run_sample(self, program: Program, x: np.ndarray) -> np.ndarray:
        state: Dict[str, np.ndarray] = {"act": x, "shortcut": x}
        attn_parts: Dict[str, np.ndarray] = {}
        self._mode = None
        for inst in program.instructions:
            state, attn_parts = self._step(inst, state, attn_parts)
        return state["act"]

    def _step(self, inst: Instruction, state, attn_parts):
        accel = self.accelerator
        block = self.model.blocks[inst.block] if inst.block >= 0 else None
        op = inst.opcode
        if op in (Opcode.CONFIG_BFLY, Opcode.CONFIG_FFT):
            self._mode = op
        elif op in (Opcode.LOAD, Opcode.STORE):
            pass  # data movement is implicit in the functional state dict
        elif op == Opcode.EXEC_FFT2:
            if self._mode is not Opcode.CONFIG_FFT:
                raise RuntimeError("EXEC_FFT2 without CONFIG_FFT")
            state["shortcut"] = state["act"]
            state["act"] = accel._run_fourier_mixing(state["act"])
        elif op == Opcode.EXEC_BFLY:
            if self._mode is not Opcode.CONFIG_BFLY:
                raise RuntimeError("EXEC_BFLY without CONFIG_BFLY")
            layer = self._layer_of(block, inst.operand)
            if inst.operand in ("k_proj", "v_proj", "q_proj"):
                attn_parts[inst.operand] = accel._run_butterfly_linear(
                    layer, state["act"]
                )
            elif inst.operand == "out_proj":
                state["act"] = accel._run_butterfly_linear(layer, state["act"])
            elif inst.operand == "ffn1":
                state["shortcut"] = state["act"]
                state["act"] = accel._run_butterfly_linear(layer, state["act"])
            else:  # ffn2
                state["act"] = accel._run_butterfly_linear(layer, state["act"])
        elif op == Opcode.EXEC_ATTN:
            mixer: MultiHeadAttention = block.mixer
            seq = state["act"].shape[0]
            heads, d_head = mixer.n_heads, mixer.d_head

            def split(m):
                return m.reshape(seq, heads, d_head).transpose(1, 0, 2)

            context = accel.attention.attend_heads(
                split(attn_parts["q_proj"]),
                split(attn_parts["k_proj"]),
                split(attn_parts["v_proj"]),
            )
            state["shortcut"] = state["act"]
            state["act"] = context.transpose(1, 0, 2).reshape(seq, mixer.d_model)
            attn_parts.clear()
        elif op == Opcode.GELU:
            state["act"] = accel.postp.gelu(state["act"])
        elif op == Opcode.ADD_NORM:
            norm = block.norm1 if inst.operand == "mix" else block.norm2
            state["act"] = accel.postp.layer_norm(
                accel.postp.shortcut_add(state["act"], state["shortcut"]),
                norm.gamma.data, norm.beta.data,
            )
            state["shortcut"] = state["act"]
        else:  # pragma: no cover - exhaustive over Opcode
            raise ValueError(f"unhandled opcode {op}")
        return state, attn_parts


def validate_program(program: Program) -> List[str]:
    """Static checks a hardware sequencer would enforce.

    Returns a list of violations (empty = valid):
    * every EXEC_BFLY is preceded (since the last CONFIG_*) by CONFIG_BFLY;
    * every EXEC_FFT2 by CONFIG_FFT;
    * LOAD count equals STORE count (buffers drain);
    * block indices are non-decreasing (layer-by-layer schedule).
    """
    violations: List[str] = []
    mode: Optional[Opcode] = None
    last_block = -1
    for idx, inst in enumerate(program.instructions):
        if inst.opcode in (Opcode.CONFIG_BFLY, Opcode.CONFIG_FFT):
            mode = inst.opcode
        if inst.opcode == Opcode.EXEC_BFLY and mode is not Opcode.CONFIG_BFLY:
            violations.append(f"{idx}: EXEC_BFLY without CONFIG_BFLY")
        if inst.opcode == Opcode.EXEC_FFT2 and mode is not Opcode.CONFIG_FFT:
            violations.append(f"{idx}: EXEC_FFT2 without CONFIG_FFT")
        if inst.block >= 0:
            if inst.block < last_block:
                violations.append(f"{idx}: block index went backwards")
            last_block = max(last_block, inst.block)
    if program.count(Opcode.LOAD) != program.count(Opcode.STORE):
        violations.append("unbalanced LOAD/STORE")
    return violations
