"""Accelerator and FPGA device configuration (paper Sections IV-V).

``AcceleratorConfig`` carries the four hardware parallelism parameters of
the co-design space — ``pbe`` (Butterfly Engines), ``pbu`` (Butterfly
Units per BE), ``pqk``/``psv`` (MAC lanes in each Attention Engine's QK
and SV units) — plus clocking and memory-system attributes.

``FpgaDevice`` describes the two boards used in the paper: the VCU128
(cloud, HBM) and the Zynq 7045 (edge, DDR4).
"""

from __future__ import annotations

from dataclasses import dataclass

MULTIPLIERS_PER_BU = 4  # Fig. 7a: four real multipliers per adaptable BU
BYTES_PER_VALUE = 2  # 16-bit half-precision datapath


@dataclass(frozen=True)
class FpgaDevice:
    """Resource and memory envelope of a target FPGA board."""

    name: str
    luts: int
    registers: int
    dsps: int
    brams: int
    bandwidth_gbs: float  # external memory bandwidth (HBM or DDR)
    technology_nm: int

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9


# Xilinx VCU128: Virtex UltraScale+ with 2 HBM stacks (Table VII gives the
# available resources; the paper uses a single HBM at 450 GB/s).
VCU128 = FpgaDevice(
    name="VCU128",
    luts=1_303_680,
    registers=2_607_360,
    dsps=9_024,
    brams=2_016,
    bandwidth_gbs=450.0,
    technology_nm=16,
)

# Xilinx Zynq 7045 with DDR4 (edge scenario).
ZYNQ7045 = FpgaDevice(
    name="Zynq7045",
    luts=218_600,
    registers=437_200,
    dsps=900,
    brams=545,
    bandwidth_gbs=19.2,
    technology_nm=28,
)

DEVICES = {"vcu128": VCU128, "zynq7045": ZYNQ7045}


@dataclass(frozen=True)
class AcceleratorConfig:
    """Parallelism and clocking of the adaptable butterfly accelerator.

    Attributes mirror the co-design space of Section V-C:
        pbe: number of Butterfly Engines in the Butterfly Processor.
        pbu: number of adaptable Butterfly Units per BE.
        pae: number of Attention Engines (``P_head``); attention heads are
            distributed across them.
        pqk / psv: multipliers in each AE's QK and SV units (0 disables
            the Attention Processor entirely, as in the paper's final
            all-FBfly configurations).
        clock_mhz: design clock (the paper closes timing at 200 MHz).
        bandwidth_gbs: off-chip bandwidth available to the accelerator.
        buffer_depth: depth of the butterfly/query/key buffers (1024 in
            the paper, bounding the supported hidden size).
    """

    pbe: int = 64
    pbu: int = 4
    pae: int = 8
    pqk: int = 0
    psv: int = 0
    clock_mhz: float = 200.0
    bandwidth_gbs: float = 450.0
    buffer_depth: int = 1024

    def __post_init__(self) -> None:
        if self.pbe < 1 or self.pbu < 1:
            raise ValueError("pbe and pbu must be >= 1")
        if self.pqk < 0 or self.psv < 0 or self.pae < 0:
            raise ValueError("attention parallelism cannot be negative")
        if self.clock_mhz <= 0 or self.bandwidth_gbs <= 0:
            raise ValueError("clock and bandwidth must be positive")

    @property
    def butterfly_multipliers(self) -> int:
        """Multipliers in the Butterfly Processor."""
        return self.pbe * self.pbu * MULTIPLIERS_PER_BU

    @property
    def attention_multipliers(self) -> int:
        """Multipliers in the Attention Processor."""
        return self.pae * (self.pqk + self.psv)

    @property
    def total_multipliers(self) -> int:
        return self.butterfly_multipliers + self.attention_multipliers

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / (self.clock_mhz * 1e6)

    @property
    def bandwidth_bytes_per_cycle(self) -> float:
        return self.bandwidth_gbs * 1e9 * self.cycle_time_s

    def with_(self, **changes) -> "AcceleratorConfig":
        from dataclasses import replace

        return replace(self, **changes)


# The configuration selected by the paper's co-design run (Section VI-C):
# <Pbe, Pbu, Pqk, Psv> = <64, 4, 0, 0>.
PAPER_CODESIGN_CONFIG = AcceleratorConfig(pbe=64, pbu=4, pae=0, pqk=0, psv=0)

# The two implemented designs of Tables VI/VII.
BE40_CONFIG = AcceleratorConfig(pbe=40, pbu=4, pae=8, pqk=0, psv=0)
BE120_CONFIG = AcceleratorConfig(pbe=120, pbu=4, pae=8, pqk=60, psv=60)
