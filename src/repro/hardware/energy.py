"""Energy-efficiency metrics: GOPS/W (Fig. 20) and predictions/J (Table V).

The paper represents energy efficiency as effective Giga-operations per
second per watt, where the operation count is the *executed workload's*
FLOPs — so a device that finishes the same FABNet inference faster at
the same power scores proportionally higher.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.flops import fabnet_flops, transformer_flops
from .perf import WorkloadSpec


@dataclass(frozen=True)
class EnergyMetrics:
    """Efficiency of one device running one workload."""

    device: str
    workload_gops: float
    latency_s: float
    power_w: float

    @property
    def throughput_gops(self) -> float:
        """Effective Giga-operations per second."""
        return self.workload_gops / self.latency_s

    @property
    def gops_per_watt(self) -> float:
        return self.throughput_gops / self.power_w

    @property
    def energy_per_inference_j(self) -> float:
        return self.latency_s * self.power_w

    @property
    def predictions_per_joule(self) -> float:
        return 1.0 / self.energy_per_inference_j


def workload_gops(spec: WorkloadSpec) -> float:
    """Total Giga-FLOPs of one forward pass of the workload."""
    flops = fabnet_flops(spec) if spec.butterfly else transformer_flops(spec)
    return flops.total / 1e9


def energy_metrics(
    device: str, spec: WorkloadSpec, latency_s: float, power_w: float
) -> EnergyMetrics:
    """Build the metrics record for a (device, workload, time, power) run."""
    if latency_s <= 0 or power_w <= 0:
        raise ValueError("latency and power must be positive")
    return EnergyMetrics(
        device=device,
        workload_gops=workload_gops(spec),
        latency_s=latency_s,
        power_w=power_w,
    )


def efficiency_ratio(ours: EnergyMetrics, theirs: EnergyMetrics) -> float:
    """GOPS/W advantage of ``ours`` over ``theirs`` on the same workload.

    Both sides must have executed the same workload — the paper's
    GOPS/W comparisons are only meaningful at matched operation counts.
    """
    if abs(ours.workload_gops - theirs.workload_gops) > 1e-9:
        raise ValueError(
            "energy comparison requires the same workload on both devices "
            f"({ours.workload_gops} vs {theirs.workload_gops} GOP)"
        )
    return ours.gops_per_watt / theirs.gops_per_watt
