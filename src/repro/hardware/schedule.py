"""Execution schedule and utilization analysis of the accelerator.

Builds a per-layer timeline (which processor — BP, AP or PostP — is busy
during which cycle interval) from the performance model, and derives the
occupancy statistics that explain the paper's efficiency claims: the BP
stays busy in all-FBfly workloads, while an attention-only accelerator
would idle through every FFN.

The trace renders as a textual Gantt chart for examples and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .config import AcceleratorConfig
from .perf import ButterflyPerformanceModel, WorkloadSpec

_PROCESSOR_OF_KIND = {
    "bfly": "BP",
    "fft": "BP",
    "dense": "BP",
    "attn": "AP",
    "postp": "PostP",
    "dft": "BP",
}

PROCESSORS = ("BP", "AP", "PostP")


@dataclass(frozen=True)
class ScheduleEntry:
    """One scheduled layer execution."""

    name: str
    processor: str
    start_cycle: float
    end_cycle: float

    @property
    def duration(self) -> float:
        return self.end_cycle - self.start_cycle


@dataclass
class ExecutionTrace:
    """Ordered schedule plus clocking info."""

    entries: List[ScheduleEntry] = field(default_factory=list)
    clock_mhz: float = 200.0

    @property
    def total_cycles(self) -> float:
        return max((e.end_cycle for e in self.entries), default=0.0)

    @property
    def latency_ms(self) -> float:
        return self.total_cycles / (self.clock_mhz * 1e6) * 1e3

    def busy_cycles(self) -> Dict[str, float]:
        """Cycles each processor spends busy."""
        busy = {p: 0.0 for p in PROCESSORS}
        for entry in self.entries:
            busy[entry.processor] += entry.duration
        return busy

    def utilization(self) -> Dict[str, float]:
        """Busy fraction of the end-to-end window per processor."""
        total = self.total_cycles
        if total == 0:
            return {p: 0.0 for p in PROCESSORS}
        return {p: c / total for p, c in self.busy_cycles().items()}

    def render(self, width: int = 60) -> str:
        """Textual Gantt chart: one row per processor."""
        total = self.total_cycles
        if total == 0:
            return "(empty trace)"
        lines = []
        for processor in PROCESSORS:
            row = [" "] * width
            for entry in self.entries:
                if entry.processor != processor:
                    continue
                lo = int(entry.start_cycle / total * (width - 1))
                hi = max(lo + 1, int(entry.end_cycle / total * width))
                for i in range(lo, min(hi, width)):
                    row[i] = "#"
            lines.append(f"{processor:>5s} |{''.join(row)}|")
        lines.append(f"{'':>5s}  0{' ' * (width - len(str(int(total))) - 1)}"
                     f"{int(total)} cycles")
        return "\n".join(lines)


def build_trace(
    spec: WorkloadSpec,
    config: AcceleratorConfig,
    fine_grained_pipeline: bool = True,
) -> ExecutionTrace:
    """Schedule a workload sequentially per the performance model.

    Layers execute in model order; with fine-grained pipelining the
    attention core's charged cycles are already the non-overlapped
    remainder (see :mod:`repro.hardware.perf`), so the sequential
    placement reproduces the model's end-to-end latency exactly.
    """
    model = ButterflyPerformanceModel(
        config, fine_grained_pipeline=fine_grained_pipeline
    )
    report = model.model_latency(spec)
    trace = ExecutionTrace(clock_mhz=config.clock_mhz)
    cursor = 0.0
    for layer in report.layers:
        kind = layer.name.split(":")[0]
        processor = _PROCESSOR_OF_KIND.get(kind)
        if processor is None:
            raise KeyError(f"no processor mapping for layer kind {kind!r}")
        trace.entries.append(
            ScheduleEntry(
                name=layer.name,
                processor=processor,
                start_cycle=cursor,
                end_cycle=cursor + layer.total_cycles,
            )
        )
        cursor += layer.total_cycles
    return trace


def processor_balance(trace: ExecutionTrace) -> Dict[str, float]:
    """Share of total busy time per processor (sums to 1)."""
    busy = trace.busy_cycles()
    total = sum(busy.values())
    if total == 0:
        return {p: 0.0 for p in PROCESSORS}
    return {p: c / total for p, c in busy.items()}
