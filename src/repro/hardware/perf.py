"""Cycle-level performance model of the butterfly accelerator.

The paper evaluates all latency numbers with a custom cycle-accurate
performance model cross-validated against RTL simulation (Section VI-A);
this module is our equivalent, cross-validated against the functional
simulator's operation counts in ``tests/hardware/test_perf.py``.

Modeled effects:

* BP compute throughput — ``pbe * pbu`` butterfly pair-ops per cycle.
* AP compute throughput — ``pae`` engines with ``pqk`` / ``psv`` MAC lanes.
* off-chip traffic for activations and butterfly weights (16-bit values;
  FFT intermediates are complex and twice as wide), with the paper's
  store-intermediates-off-chip policy (Section IV-A).
* the two double-buffering overlap strategies of Fig. 13 plus a naive
  mode (for the ablation bench), selected per layer kind.
* fine-grained BP<->AP pipelining of Fig. 14 (toggleable).

A ``WorkloadSpec`` describes the model analytically (no trained weights
needed) so the same equations cover FABNet, FNet and BERT-style models at
any size, including the paper's non-power-of-two ``D_hid = 768`` (padded
to the next power of two inside butterfly layers, as the hardware does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Literal

from .config import BYTES_PER_VALUE, AcceleratorConfig

OverlapStrategy = Literal["naive", "butterfly", "fft"]


def _next_power_of_two(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def _log2i(n: int) -> int:
    return int(round(math.log2(n)))


@dataclass(frozen=True)
class WorkloadSpec:
    """Analytical description of an encoder workload.

    ``n_abfly`` of the ``n_total`` blocks are ABfly (attention) blocks;
    the rest are FBfly (Fourier) blocks.  Setting ``fourier=False`` and
    ``n_abfly == n_total`` with ``butterfly=False`` describes a vanilla
    BERT-style encoder (used by the baseline comparisons).
    """

    seq_len: int
    d_hidden: int
    r_ffn: int = 4
    n_total: int = 12
    n_abfly: int = 0
    n_heads: int = 8
    butterfly: bool = True  # butterfly (True) vs dense (False) linear layers

    def __post_init__(self) -> None:
        if self.seq_len < 1 or self.d_hidden < 2:
            raise ValueError("seq_len and d_hidden must be positive")
        if not 0 <= self.n_abfly <= self.n_total:
            raise ValueError("n_abfly must lie in [0, n_total]")

    @property
    def d_ffn(self) -> int:
        return self.d_hidden * self.r_ffn

    @property
    def n_fbfly(self) -> int:
        return self.n_total - self.n_abfly


@dataclass
class LayerLatency:
    """Latency contribution of one layer invocation."""

    name: str
    compute_cycles: float
    memory_cycles: float
    total_cycles: float

    @property
    def bound(self) -> str:
        return "compute" if self.compute_cycles >= self.memory_cycles else "memory"


@dataclass
class LatencyReport:
    """End-to-end latency and per-layer breakdown."""

    layers: List[LayerLatency] = field(default_factory=list)
    clock_mhz: float = 200.0

    @property
    def total_cycles(self) -> float:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def latency_s(self) -> float:
        return self.total_cycles / (self.clock_mhz * 1e6)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    def cycles_by_kind(self) -> Dict[str, float]:
        """Aggregate cycles by layer-name prefix (e.g. 'fft', 'bfly')."""
        out: Dict[str, float] = {}
        for layer in self.layers:
            kind = layer.name.split(":")[0]
            out[kind] = out.get(kind, 0.0) + layer.total_cycles
        return out


class ButterflyPerformanceModel:
    """Latency estimator for the adaptable butterfly accelerator."""

    def __init__(
        self,
        config: AcceleratorConfig,
        fine_grained_pipeline: bool = True,
        overlap: bool = True,
    ) -> None:
        self.config = config
        self.fine_grained_pipeline = fine_grained_pipeline
        self.overlap = overlap

    # ------------------------------------------------------------------
    # Primitive timing helpers
    # ------------------------------------------------------------------
    def _mem_cycles(self, num_bytes: float) -> float:
        return num_bytes / self.config.bandwidth_bytes_per_cycle

    def _combine(
        self, compute: float, bytes_in: float, bytes_out: float, strategy: OverlapStrategy
    ) -> float:
        """Combine compute and transfer time per Fig. 13.

        * ``naive`` — no overlap: load + compute + store.
        * ``butterfly`` (Fig. 13a) — ping-pong input banks let loads and
          stores fully overlap compute: the layer is bound by the slower
          of the compute stream and the memory stream.
        * ``fft`` (Fig. 13b) — the complex datapath consumes both buffer
          ports, so compute overlaps neither transfer; only the store
          overlaps the next tile's load.
        """
        t_in = self._mem_cycles(bytes_in)
        t_out = self._mem_cycles(bytes_out)
        if not self.overlap or strategy == "naive":
            return compute + t_in + t_out
        if strategy == "butterfly":
            return max(compute, t_in + t_out)
        if strategy == "fft":
            return compute + max(t_in, t_out)
        raise ValueError(f"unknown overlap strategy {strategy!r}")

    # ------------------------------------------------------------------
    def butterfly_linear(
        self, rows: int, in_features: int, out_features: int, name: str = "bfly"
    ) -> LayerLatency:
        """Butterfly linear transform of ``rows`` vectors on the BP."""
        n = _next_power_of_two(max(in_features, out_features))
        pair_ops = rows * _log2i(n) * (n // 2)
        compute = pair_ops / (self.config.pbe * self.config.pbu)
        bytes_in = rows * in_features * BYTES_PER_VALUE
        bytes_in += 4 * (n // 2) * _log2i(n) * BYTES_PER_VALUE  # stage weights
        bytes_out = rows * out_features * BYTES_PER_VALUE
        total = self._combine(compute, bytes_in, bytes_out, "butterfly")
        mem = self._mem_cycles(bytes_in + bytes_out)
        return LayerLatency(name, compute, mem, total)

    def dense_linear_equivalent(
        self, rows: int, in_features: int, out_features: int, name: str = "dense"
    ) -> LayerLatency:
        """Dense matmul executed on the BP's multipliers (for comparisons)."""
        macs = rows * in_features * out_features
        compute = macs / self.config.butterfly_multipliers
        bytes_in = rows * in_features * BYTES_PER_VALUE
        bytes_in += in_features * out_features * BYTES_PER_VALUE
        bytes_out = rows * out_features * BYTES_PER_VALUE
        total = self._combine(compute, bytes_in, bytes_out, "butterfly")
        return LayerLatency(name, compute, self._mem_cycles(bytes_in + bytes_out), total)

    def fft2(self, rows: int, cols: int, name: str = "fft") -> LayerLatency:
        """2D FFT over a (rows, cols) activation tile on the BP.

        One complex pair-op per BU per cycle; intermediates are complex,
        doubling the off-chip width for the inter-pass spill.
        """
        pair_ops = rows * _log2i(cols) * (cols // 2) + cols * _log2i(rows) * (rows // 2)
        compute = pair_ops / (self.config.pbe * self.config.pbu)
        real_tile = rows * cols * BYTES_PER_VALUE
        complex_tile = 2 * real_tile
        # load real input + spill/reload complex intermediate + store real output
        bytes_in = real_tile + complex_tile
        bytes_out = complex_tile + real_tile
        total = self._combine(compute, bytes_in, bytes_out, "fft")
        return LayerLatency(name, compute, self._mem_cycles(bytes_in + bytes_out), total)

    def postprocess(self, rows: int, cols: int, name: str = "postp") -> LayerLatency:
        """Shortcut add + LayerNorm on PostP (two passes per element)."""
        width = max(1, 2 * self.config.pbe)
        compute = 2.0 * rows * cols / width
        num_bytes = 2 * rows * cols * BYTES_PER_VALUE
        mem = self._mem_cycles(num_bytes)
        total = max(compute, mem) if self.overlap else compute + mem
        return LayerLatency(name, compute, mem, total)

    # ------------------------------------------------------------------
    def attention_core(
        self, seq: int, d_hidden: int, n_heads: int, name: str = "attn"
    ) -> LayerLatency:
        """Score (QK^T), softmax and context (SV) on the AP."""
        if self.config.pae < 1 or (self.config.pqk + self.config.psv) == 0:
            raise ValueError(
                "workload contains attention but the configuration has no AP "
                "(pae/pqk/psv are zero)"
            )
        d_head = d_hidden // n_heads
        qk_macs = n_heads * seq * seq * d_head
        sv_macs = n_heads * seq * seq * d_head
        t_qk = qk_macs / (self.config.pae * max(1, self.config.pqk))
        t_sv = sv_macs / (self.config.pae * max(1, self.config.psv))
        softmax = n_heads * seq * seq / max(1, self.config.pae)
        compute = t_qk + t_sv + softmax
        if self.fine_grained_pipeline:
            # Fig. 14: QK starts when the first Q rows arrive; SV consumes
            # score rows as they stream out of the QK unit.
            reduction = (seq - 1) / seq * min(t_qk, t_sv + softmax)
            compute -= reduction
        # Q, K, V tiles in; context tile out (scores stay on chip).
        bytes_in = 3 * seq * d_hidden * BYTES_PER_VALUE
        bytes_out = seq * d_hidden * BYTES_PER_VALUE
        total = self._combine(compute, bytes_in, bytes_out, "butterfly")
        return LayerLatency(name, compute, self._mem_cycles(bytes_in + bytes_out), total)

    # ------------------------------------------------------------------
    # Block- and model-level latency
    # ------------------------------------------------------------------
    def fbfly_block(self, spec: WorkloadSpec, index: int = 0) -> List[LayerLatency]:
        """FBfly block: 2D FFT mixing + butterfly FFN + two PostP passes."""
        r, d = spec.seq_len, spec.d_hidden
        layers = [
            self.fft2(r, _next_power_of_two(d), name=f"fft:block{index}"),
            self.postprocess(r, d, name=f"postp:block{index}.mix"),
            self.butterfly_linear(r, d, spec.d_ffn, name=f"bfly:block{index}.ffn1"),
            self.butterfly_linear(r, spec.d_ffn, d, name=f"bfly:block{index}.ffn2"),
            self.postprocess(r, d, name=f"postp:block{index}.ffn"),
        ]
        return layers

    def abfly_block(self, spec: WorkloadSpec, index: int = 0) -> List[LayerLatency]:
        """ABfly block: butterfly Q/K/V/O + attention + butterfly FFN.

        With fine-grained pipelining, the Q projection on the BP overlaps
        the QK unit's consumption (Fig. 14), modeled by charging only the
        non-overlapped remainder of the attention core.
        """
        r, d = spec.seq_len, spec.d_hidden
        layers: List[LayerLatency] = []
        for proj in ("k", "v", "q"):
            layers.append(
                self.butterfly_linear(r, d, d, name=f"bfly:block{index}.{proj}_proj")
            )
        attn = self.attention_core(r, d, spec.n_heads, name=f"attn:block{index}")
        if self.fine_grained_pipeline:
            # The AP starts as soon as the first Q rows leave the BP
            # (Fig. 14), so the Q projection's cycles are hidden under the
            # attention core; charge only the non-overlapped remainder.
            q_cycles = layers[-1].total_cycles
            remainder = max(0.0, attn.total_cycles - q_cycles)
            attn = LayerLatency(
                attn.name, attn.compute_cycles, attn.memory_cycles, remainder
            )
        layers.append(attn)
        layers.append(self.butterfly_linear(r, d, d, name=f"bfly:block{index}.out_proj"))
        layers.append(self.postprocess(r, d, name=f"postp:block{index}.mix"))
        layers.append(self.butterfly_linear(r, d, spec.d_ffn, name=f"bfly:block{index}.ffn1"))
        layers.append(self.butterfly_linear(r, spec.d_ffn, d, name=f"bfly:block{index}.ffn2"))
        layers.append(self.postprocess(r, d, name=f"postp:block{index}.ffn"))
        return layers

    def model_latency(self, spec: WorkloadSpec) -> LatencyReport:
        """End-to-end encoder latency for a FABNet workload."""
        report = LatencyReport(clock_mhz=self.config.clock_mhz)
        for i in range(spec.n_fbfly):
            report.layers.extend(self.fbfly_block(spec, i))
        for i in range(spec.n_fbfly, spec.n_total):
            report.layers.extend(self.abfly_block(spec, i))
        return report


def latency_vs_bandwidth(
    spec: WorkloadSpec,
    n_bes: int,
    bandwidths_gbs: List[float],
    pbu: int = 4,
    clock_mhz: float = 200.0,
) -> List[float]:
    """Latency (ms) across off-chip bandwidths — the Fig. 21 sweep."""
    out = []
    for bw in bandwidths_gbs:
        cfg = AcceleratorConfig(
            pbe=n_bes, pbu=pbu, pae=0, pqk=0, psv=0,
            clock_mhz=clock_mhz, bandwidth_gbs=bw,
        )
        model = ButterflyPerformanceModel(cfg)
        out.append(model.model_latency(spec).latency_ms)
    return out
