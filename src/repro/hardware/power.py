"""Power model calibrated to the paper's Table VI (Vivado XPE reports).

The paper reports power for two implemented designs (BE-40 and BE-120 on
the VCU128) broken into clocking, logic & signal, DSP, memory
(BRAM + HBM) and static components.  We model each component as a linear
function of the resource estimate driving it:

* clocking and logic & signal scale with LUT/FF count,
* DSP power scales with active DSP count (~0.5 mW/DSP at 200 MHz, which
  both Table VI points agree on),
* memory power scales with BRAM count on top of a constant HBM/DDR floor,
* static power grows slowly with occupied area.

The two calibration points are recovered exactly (see
``tests/hardware/test_power.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import AcceleratorConfig
from .resources import ResourceUsage, estimate_resources

# Per-unit coefficients fitted exactly through Table VI's two rows
# (BE-40: 358,609 LUTs / 536,810 FFs / 640 DSPs / 338 BRAMs;
#  BE-120: 1,034,610 LUTs / 1,648,695 FFs / 2,880 DSPs / 978 BRAMs).
_LUT_40, _LUT_120 = 358_609, 1_034_610
_CELL_40 = 358_609 + 536_810
_CELL_120 = 1_034_610 + 1_648_695
CLOCKING_PER_LUT = (6.882 - 2.668) / (_LUT_120 - _LUT_40)
CLOCKING_BASE = 2.668 - CLOCKING_PER_LUT * _LUT_40
LOGIC_PER_CELL = (7.732 - 2.381) / (_CELL_120 - _CELL_40)
LOGIC_BASE = 2.381 - LOGIC_PER_CELL * _CELL_40
DSP_WATT_PER_DSP = (1.437 - 0.338) / (2_880 - 640)
DSP_BASE = 0.338 - DSP_WATT_PER_DSP * 640
MEMORY_PER_BRAM = (6.142 - 5.325) / (978 - 338)
MEMORY_HBM_BASE = 5.325 - MEMORY_PER_BRAM * 338
MEMORY_DDR_BASE = 1.2  # edge boards use DDR4 instead of HBM
STATIC_PER_LUT = (3.665 - 3.368) / (_LUT_120 - _LUT_40)
STATIC_BASE = 3.368 - STATIC_PER_LUT * _LUT_40
STATIC_EDGE_BASE = 0.25  # smaller 28 nm device floor


@dataclass(frozen=True)
class PowerBreakdown:
    """Power components in watts (Table VI structure)."""

    clocking: float
    logic_signal: float
    dsp: float
    memory: float
    static: float

    @property
    def dynamic(self) -> float:
        return self.clocking + self.logic_signal + self.dsp + self.memory

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def as_dict(self) -> dict:
        return {
            "clocking": self.clocking,
            "logic_signal": self.logic_signal,
            "dsp": self.dsp,
            "memory": self.memory,
            "static": self.static,
            "total": self.total,
        }


def estimate_power(
    config: AcceleratorConfig,
    resources: ResourceUsage | None = None,
    hbm: bool = True,
) -> PowerBreakdown:
    """Estimate the power breakdown of an accelerator configuration.

    ``hbm=False`` models an edge (Zynq/DDR) deployment: the HBM floor is
    replaced by a DDR controller floor and the static floor shrinks with
    the smaller device.
    """
    res = resources or estimate_resources(config)
    cells = res.luts + res.registers
    clocking = CLOCKING_BASE + CLOCKING_PER_LUT * res.luts
    logic = LOGIC_BASE + LOGIC_PER_CELL * cells
    dsp = max(0.0, DSP_BASE + DSP_WATT_PER_DSP * res.dsps)
    mem_base = MEMORY_HBM_BASE if hbm else MEMORY_DDR_BASE
    memory = mem_base + MEMORY_PER_BRAM * res.brams
    static_base = STATIC_BASE if hbm else STATIC_EDGE_BASE
    static = static_base + STATIC_PER_LUT * res.luts
    return PowerBreakdown(
        clocking=max(0.0, clocking),
        logic_signal=max(0.0, logic),
        dsp=dsp,
        memory=memory,
        static=static,
    )
