"""Half-precision (fp16) datapath modeling.

The paper's accelerator computes in 16-bit half-precision floating point
(Section VI-A).  Our functional simulator runs in float64 for exact
cross-validation; this module quantifies what the real datapath does:

* ``quantize_fp16`` — round values to fp16 and back (IEEE 754 binary16,
  numpy's native behaviour, including overflow to inf).
* ``Fp16ButterflyEngine`` — a butterfly engine whose every pair-operation
  result is rounded to fp16, modeling the precision of the RTL datapath.
* ``quantization_error_report`` — per-layer-size error statistics of the
  fp16 butterfly against the float64 reference.
* ``accuracy_under_fp16`` — run a trained model with fp16-rounded
  activations through the encoder and report the accuracy delta, which
  the paper implicitly claims is negligible by evaluating fp16 hardware
  against fp32-trained models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..butterfly.matrix import ButterflyMatrix
from ..models.encoder import EncoderClassifier
from .functional.engine import ButterflyEngine


def quantize_fp16(values: np.ndarray) -> np.ndarray:
    """Round to IEEE binary16 and back to float64."""
    arr = np.asarray(values)
    with np.errstate(over="ignore"):  # values beyond fp16 range become inf
        if np.iscomplexobj(arr):
            return (
                arr.real.astype(np.float16).astype(np.float64)
                + 1j * arr.imag.astype(np.float16).astype(np.float64)
            )
        return arr.astype(np.float16).astype(np.float64)


class Fp16ButterflyEngine(ButterflyEngine):
    """Butterfly engine that rounds every stage output to fp16.

    Inherits the banked-memory access behaviour; only arithmetic
    precision changes, mirroring a 16-bit RTL datapath with fp16
    registers between stages.
    """

    def _run_stages(self, x, factors, mode):
        x = quantize_fp16(x)
        quantized_factors = []
        for factor in factors:
            coeffs = quantize_fp16(factor.coeffs)
            quantized_factors.append(type(factor)(factor.n, factor.half, coeffs))
        out = x
        stats = None
        for factor in quantized_factors:
            out, stats = super()._run_stages(out, [factor], mode)
            out = quantize_fp16(out)
        return out, stats


@dataclass
class QuantizationErrorReport:
    """Relative error statistics of the fp16 datapath vs float64."""

    n: int
    max_rel_error: float
    mean_rel_error: float

    def acceptable(self, threshold: float = 0.05) -> bool:
        """fp16 butterfly error stays in the few-percent range."""
        return self.max_rel_error < threshold


def quantization_error_report(
    n: int, rng: Optional[np.random.Generator] = None, rows: int = 16
) -> QuantizationErrorReport:
    """Measure fp16 butterfly error against the float64 reference."""
    rng = rng or np.random.default_rng(0)
    matrix = ButterflyMatrix.random(n, rng)
    x = rng.normal(size=(rows, n))
    exact = matrix.apply(x)
    engine = Fp16ButterflyEngine(pbu=4)
    approx = np.stack([engine.run_butterfly(row, matrix) for row in x])
    scale = np.abs(exact).max()
    rel = np.abs(approx - exact) / max(scale, 1e-30)
    return QuantizationErrorReport(
        n=n,
        max_rel_error=float(rel.max()),
        mean_rel_error=float(rel.mean()),
    )


def accuracy_under_fp16(
    model, tokens: np.ndarray, labels: np.ndarray
) -> Dict[str, float]:
    """Compare model accuracy with float64 vs fp16-rounded parameters.

    Rounds every parameter to fp16 (weights are what the accelerator
    stores in its 16-bit buffers), evaluates, and restores the weights.
    Works for classifiers (labels of shape (batch,)) and language models
    (labels of shape (batch, seq) matching the per-position argmax).
    """
    from .. import nn

    tokens = np.asarray(tokens, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    model.eval()
    with nn.no_grad():
        exact = model(tokens).data
    saved = model.state_dict()
    try:
        for param in model.parameters():
            param.data = quantize_fp16(param.data)
        with nn.no_grad():
            quantized = model(tokens).data
    finally:
        model.load_state_dict(saved)
    exact_acc = float((exact.argmax(-1) == labels).mean())
    quant_acc = float((quantized.argmax(-1) == labels).mean())
    return {
        "accuracy_fp64": exact_acc,
        "accuracy_fp16": quant_acc,
        "accuracy_delta": quant_acc - exact_acc,
        "max_logit_error": float(np.abs(quantized - exact).max()),
    }
