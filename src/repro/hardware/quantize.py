"""Reduced-precision datapath modeling: fp16 arithmetic and int8 weights.

The paper's accelerator computes in 16-bit half-precision floating point
(Section VI-A) and stores operands in narrow buffers.  Our functional
simulator runs in float64 for exact cross-validation; this module
quantifies what the real datapath does:

* ``quantize_fp16`` — round values to fp16 and back (IEEE 754 binary16,
  numpy's native behaviour, including overflow to inf).
* ``Fp16ButterflyEngine`` — a butterfly engine whose every pair-operation
  result is rounded to fp16, modeling the precision of the RTL datapath.
* ``quantization_error_report`` — per-layer-size error statistics of the
  fp16 butterfly against the float64 reference.
* ``accuracy_under_fp16`` — run a trained model with fp16-rounded
  activations through the encoder and report the accuracy delta, which
  the paper implicitly claims is negligible by evaluating fp16 hardware
  against fp32-trained models.

Int8 weight storage (the narrowest buffer configuration) has a runnable
software counterpart in :mod:`repro.kernels.quant`; the hardware model
here implements the *same* per-channel symmetric scheme independently
and a **verify mode** asserts bit-level agreement of the two quantizers
— codes, scales and dequantized values — so the simulator's quantized
accuracy/resource numbers and the serving engine's ``quantize="int8"``
path are guaranteed to describe one datapath:

* ``quantize_int8`` — the hardware quantizer model (per-channel
  symmetric, round-half-to-even, saturate at ±127, fp32 scales).
* ``verify_int8_quantizer`` — the bit-level cross-check against
  :func:`repro.kernels.quantize_per_channel`.
* ``Int8ButterflyEngine`` — a banked-memory engine running on int8
  stage weights (dequantized operands; activations stay wide, matching
  the software weight-only scheme), with codes verified against
  :func:`repro.kernels.quantize_butterfly_stages`.
* ``int8_quantization_error_report`` / ``accuracy_under_int8`` — error
  and accuracy deltas of the int8 weight path (the latter evaluates the
  actual :func:`repro.nn.quantize_for_inference` replica, closing the
  hardware/software loop).

The int4 storage tier (the narrowest weight buffers, two codes per
byte) gets the same treatment: ``quantize_int4`` is the independent
hardware quantizer model (per-group symmetric, round-half-to-even,
saturate at ±7, biased nibble packing) and ``verify_int4_quantizer``
asserts bit-level agreement — packed bytes, scales and dequantized
values — with :func:`repro.kernels.quantize_int4_grouped`.

Kernel *backends* get a parity oracle too: ``verify_backend_parity``
runs the butterfly ladder, streaming attention, decode and the
quantized GEMMs under two backends (default serial vs threaded) and
asserts byte-identical outputs — backends shard only disjoint output
blocks, so any divergence is a bug, not noise.  The fp16/int4 storage
tiers are lossy by design; ``storage_tier_drift_report`` bounds their
drift against the wide reference instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..butterfly.factor import ButterflyFactor
from ..butterfly.matrix import ButterflyMatrix
from ..kernels import quant as _QK
from .functional.engine import ButterflyEngine


def quantize_fp16(values: np.ndarray) -> np.ndarray:
    """Round to IEEE binary16 and back to float64."""
    arr = np.asarray(values)
    with np.errstate(over="ignore"):  # values beyond fp16 range become inf
        if np.iscomplexobj(arr):
            return (
                arr.real.astype(np.float16).astype(np.float64)
                + 1j * arr.imag.astype(np.float16).astype(np.float64)
            )
        return arr.astype(np.float16).astype(np.float64)


class Fp16ButterflyEngine(ButterflyEngine):
    """Butterfly engine that rounds every stage output to fp16.

    Inherits the banked-memory access behaviour; only arithmetic
    precision changes, mirroring a 16-bit RTL datapath with fp16
    registers between stages.
    """

    def _run_stages(self, x, factors, mode):
        x = quantize_fp16(x)
        quantized_factors = []
        for factor in factors:
            coeffs = quantize_fp16(factor.coeffs)
            quantized_factors.append(type(factor)(factor.n, factor.half, coeffs))
        out = x
        stats = None
        for factor in quantized_factors:
            out, stats = super()._run_stages(out, [factor], mode)
            out = quantize_fp16(out)
        return out, stats


@dataclass
class QuantizationErrorReport:
    """Relative error statistics of the fp16 datapath vs float64."""

    n: int
    max_rel_error: float
    mean_rel_error: float

    def acceptable(self, threshold: float = 0.05) -> bool:
        """fp16 butterfly error stays in the few-percent range."""
        return self.max_rel_error < threshold


def quantization_error_report(
    n: int, rng: Optional[np.random.Generator] = None, rows: int = 16
) -> QuantizationErrorReport:
    """Measure fp16 butterfly error against the float64 reference."""
    rng = rng or np.random.default_rng(0)
    matrix = ButterflyMatrix.random(n, rng)
    x = rng.normal(size=(rows, n))
    exact = matrix.apply(x)
    engine = Fp16ButterflyEngine(pbu=4)
    approx = np.stack([engine.run_butterfly(row, matrix) for row in x])
    scale = np.abs(exact).max()
    rel = np.abs(approx - exact) / max(scale, 1e-30)
    return QuantizationErrorReport(
        n=n,
        max_rel_error=float(rel.max()),
        mean_rel_error=float(rel.mean()),
    )


def accuracy_under_fp16(
    model, tokens: np.ndarray, labels: np.ndarray
) -> Dict[str, float]:
    """Compare model accuracy with float64 vs fp16-rounded parameters.

    Rounds every parameter to fp16 (weights are what the accelerator
    stores in its 16-bit buffers), evaluates, and restores the weights.
    Works for classifiers (labels of shape (batch,)) and language models
    (labels of shape (batch, seq) matching the per-position argmax).
    """
    from .. import nn

    tokens = np.asarray(tokens, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    model.eval()
    with nn.no_grad():
        exact = model(tokens).data
    saved = model.state_dict()
    try:
        for param in model.parameters():
            param.data = quantize_fp16(param.data)
        with nn.no_grad():
            quantized = model(tokens).data
    finally:
        model.load_state_dict(saved)
    exact_acc = float((exact.argmax(-1) == labels).mean())
    quant_acc = float((quantized.argmax(-1) == labels).mean())
    return {
        "accuracy_fp64": exact_acc,
        "accuracy_fp16": quant_acc,
        "accuracy_delta": quant_acc - exact_acc,
        "max_logit_error": float(np.abs(quantized - exact).max()),
    }


# ======================================================================
# Int8 weight datapath
# ======================================================================
def quantize_int8(
    values: np.ndarray, calibration: str = "absmax"
) -> "tuple[np.ndarray, np.ndarray]":
    """The hardware quantizer model: per-channel symmetric int8 codes.

    Spelled out independently of :mod:`repro.kernels.quant` on purpose —
    this is the arithmetic the RTL weight loader performs (one fp32
    scale register per output channel, round-half-to-even as in the
    IEEE-compliant datapath, saturation at ±127 so negation stays
    closed) and :func:`verify_int8_quantizer` asserts bit-level
    agreement between the two implementations.
    """
    w = np.asarray(values)
    if w.ndim != 2:
        raise ValueError(f"expected (channels, elements) weights, got {w.shape}")
    if np.iscomplexobj(w):
        raise ValueError("int8 weight quantization models the real datapath")
    if calibration == "absmax":
        peak = np.abs(w).max(axis=1)
        scales = np.where(peak > 0.0, peak / 127.0, 1.0).astype(np.float32)
    elif calibration == "mse":
        scales = _QK.calibrate_scales(w)
    else:
        raise ValueError(
            f"calibration must be 'absmax' or 'mse', got {calibration!r}"
        )
    codes = np.rint(w / scales[:, None])
    codes = np.minimum(np.maximum(codes, -127.0), 127.0).astype(np.int8)
    return codes, scales


def verify_int8_quantizer(
    weights: np.ndarray, calibration: str = "absmax"
) -> Dict[str, float]:
    """Assert bit-level agreement of the hardware and kernel quantizers.

    Both sides quantize ``weights``; codes must be identical integers,
    scales identical fp32 bit patterns, and the dequantized weights
    identical fp64 values.  Raises ``RuntimeError`` on any divergence;
    returns summary statistics (code range use, round-trip RMSE) so
    callers can log what the shared quantizer produced.
    """
    hw_codes, hw_scales = quantize_int8(weights, calibration=calibration)
    sw_codes, sw_scales = _QK.quantize_per_channel(weights, calibration=calibration)
    if not np.array_equal(hw_codes, sw_codes):
        raise RuntimeError(
            "int8 code mismatch between hardware model and kernels: "
            f"{int((hw_codes != sw_codes).sum())} codes differ"
        )
    if hw_scales.dtype != sw_scales.dtype or not np.array_equal(
        hw_scales.view(np.uint32), sw_scales.view(np.uint32)
    ):
        raise RuntimeError(
            "int8 scale mismatch between hardware model and kernels"
        )
    hw_deq = hw_codes.astype(np.float64) * hw_scales.astype(np.float64)[:, None]
    sw_deq = _QK.dequantize(sw_codes, sw_scales, dtype=np.float64)
    if not np.array_equal(hw_deq, sw_deq):
        raise RuntimeError(
            "int8 dequantization mismatch between hardware model and kernels"
        )
    return {
        "channels": float(weights.shape[0]),
        "code_peak": float(np.abs(hw_codes).max(initial=0)),
        "rmse": _QK.quantization_rmse(weights, hw_codes, hw_scales),
    }


class Int8ButterflyEngine(ButterflyEngine):
    """Butterfly engine running on int8-quantized stage weights.

    Weight-only quantization, mirroring the software scheme: stage
    coefficients are stored as int8 codes with per-coefficient-role
    scales (the four multiplier operands of the Butterfly Unit) and
    dequantized as they are loaded; operand values between stages stay
    in the wide datapath.  The quantizer itself is cross-checked
    bit-level against :func:`repro.kernels.quantize_butterfly_stages`
    on every run, and the inherited ``verify=True`` mode additionally
    asserts the banked-memory stage loop matches the software kernels
    on the dequantized factors.

    FFT mode is unsupported: twiddles live in the fp16 buffers
    (:class:`Fp16ButterflyEngine`); int8 storage is for trainable
    butterfly weights.
    """

    def _run_stages(self, x, factors, mode):
        coeffs = [factor.coeffs for factor in factors]
        if any(np.iscomplexobj(c) for c in coeffs):
            raise ValueError(
                "Int8ButterflyEngine models the trainable-weight datapath; "
                "FFT twiddles are not int8-quantized (use Fp16ButterflyEngine)"
            )
        sw_codes, sw_scales = _QK.quantize_butterfly_stages(coeffs)
        quantized_factors = []
        for factor, sw_q, sw_s in zip(factors, sw_codes, sw_scales):
            hw_q, hw_s = quantize_int8(factor.coeffs)
            if not (np.array_equal(hw_q, sw_q) and np.array_equal(hw_s, sw_s)):
                raise RuntimeError(
                    "int8 stage quantizer diverged between the hardware "
                    "model and repro.kernels.quant"
                )
            dequant = hw_q.astype(np.float64) * hw_s.astype(np.float64)[:, None]
            quantized_factors.append(
                ButterflyFactor(factor.n, factor.half, dequant)
            )
        return super()._run_stages(x, quantized_factors, mode)


def int8_quantization_error_report(
    n: int, rng: Optional[np.random.Generator] = None, rows: int = 16
) -> QuantizationErrorReport:
    """Measure int8-weight butterfly error against the float64 reference."""
    rng = rng or np.random.default_rng(0)
    matrix = ButterflyMatrix.random(n, rng)
    x = rng.normal(size=(rows, n))
    exact = matrix.apply(x)
    engine = Int8ButterflyEngine(pbu=4)
    approx = np.stack([engine.run_butterfly(row, matrix) for row in x])
    scale = np.abs(exact).max()
    rel = np.abs(approx - exact) / max(scale, 1e-30)
    return QuantizationErrorReport(
        n=n,
        max_rel_error=float(rel.max()),
        mean_rel_error=float(rel.mean()),
    )


def accuracy_under_int8(
    model, tokens: np.ndarray, labels: np.ndarray
) -> Dict[str, float]:
    """Accuracy delta of the *runnable* int8 path vs the fp model.

    Unlike :func:`accuracy_under_fp16` (which rounds parameters in
    place), this evaluates the actual serving artifact — the
    :func:`repro.nn.quantize_for_inference` replica with its
    dequant-on-the-fly kernels — so the number reported next to the
    simulator's resource/power tables is the one the python serving
    path achieves.
    """
    from ..nn.quantized import quantize_for_inference

    tokens = np.asarray(tokens, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    from .. import nn

    model.eval()
    with nn.no_grad():
        exact = model(tokens).data
    replica = quantize_for_inference(model)
    with nn.no_grad():
        quantized = replica(tokens).data
    exact_acc = float((exact.argmax(-1) == labels).mean())
    quant_acc = float((quantized.argmax(-1) == labels).mean())
    return {
        "accuracy_fp": exact_acc,
        "accuracy_int8": quant_acc,
        "accuracy_delta": quant_acc - exact_acc,
        "max_logit_error": float(np.abs(quantized - exact).max()),
        "weight_memory_ratio": replica.quantization_report.memory_ratio,
    }


# ======================================================================
# Int4 weight datapath (grouped, nibble-packed)
# ======================================================================
def quantize_int4(
    values: np.ndarray,
    group_size: int = _QK.INT4_GROUP,
    calibration: str = "absmax",
) -> "tuple[np.ndarray, np.ndarray]":
    """The hardware int4 quantizer model: grouped symmetric nibbles.

    Like :func:`quantize_int8`, this spells out the RTL weight-loader
    arithmetic independently of :mod:`repro.kernels.quant`: one fp32
    scale register per ``group_size`` run of input weights, round half
    to even, saturation at ±7 (so negation stays closed in 4 bits), and
    two biased codes (+8, unsigned nibbles) packed per byte — even
    input index in the low nibble, odd in the high.  Returns
    ``(packed uint8 (out, in/2), scales fp32 (out, in/group_size))``;
    :func:`verify_int4_quantizer` asserts bit-level agreement with the
    kernel quantizer.
    """
    w = np.asarray(values)
    if w.ndim != 2:
        raise ValueError(f"expected (out, in) weights, got {w.shape}")
    if np.iscomplexobj(w):
        raise ValueError("int4 weight quantization models the real datapath")
    out_features, in_features = w.shape
    if group_size < 2 or group_size % 2:
        raise ValueError(f"group_size must be an even int >= 2, got {group_size}")
    if in_features % group_size:
        raise ValueError(
            f"in dim {in_features} is not a multiple of group_size {group_size}"
        )
    grouped = w.reshape(-1, group_size)
    if calibration == "absmax":
        peak = np.abs(grouped).max(axis=1)
        scales = np.where(peak > 0.0, peak / 7.0, 1.0).astype(np.float32)
    elif calibration == "mse":
        scales = _QK.calibrate_scales(grouped, qmax=7)
    else:
        raise ValueError(
            f"calibration must be 'absmax' or 'mse', got {calibration!r}"
        )
    codes = np.rint(grouped / scales[:, None])
    codes = np.minimum(np.maximum(codes, -7.0), 7.0).astype(np.int8)
    codes = codes.reshape(out_features, in_features)
    nibbles = (codes + 8).astype(np.uint8)
    packed = nibbles[:, 0::2] | (nibbles[:, 1::2] << 4)
    return packed, scales.reshape(out_features, in_features // group_size)


def verify_int4_quantizer(
    weights: np.ndarray,
    group_size: int = _QK.INT4_GROUP,
    calibration: str = "absmax",
) -> Dict[str, float]:
    """Assert bit-level agreement of the hardware and kernel int4 quantizers.

    Mirrors :func:`verify_int8_quantizer`: packed bytes must be
    identical, scales identical fp32 bit patterns, and the dequantized
    weights identical fp64 values.  Raises ``RuntimeError`` on any
    divergence; returns summary statistics.
    """
    hw_packed, hw_scales = quantize_int4(
        weights, group_size=group_size, calibration=calibration
    )
    sw_packed, sw_scales = _QK.quantize_int4_grouped(
        weights, group_size=group_size, calibration=calibration
    )
    if not np.array_equal(hw_packed, sw_packed):
        raise RuntimeError(
            "int4 packed-code mismatch between hardware model and kernels: "
            f"{int((hw_packed != sw_packed).sum())} bytes differ"
        )
    if hw_scales.dtype != sw_scales.dtype or not np.array_equal(
        hw_scales.view(np.uint32), sw_scales.view(np.uint32)
    ):
        raise RuntimeError(
            "int4 scale mismatch between hardware model and kernels"
        )
    hw_deq = _QK.dequantize_int4_grouped(hw_packed, hw_scales, dtype=np.float64)
    sw_deq = _QK.dequantize_int4_grouped(sw_packed, sw_scales, dtype=np.float64)
    if not np.array_equal(hw_deq, sw_deq):
        raise RuntimeError(
            "int4 dequantization mismatch between hardware model and kernels"
        )
    codes = _QK.unpack_int4(hw_packed)
    return {
        "groups": float(hw_scales.size),
        "code_peak": float(np.abs(codes).max(initial=0)),
        "rmse": _QK.int4_quantization_rmse(weights, hw_packed, hw_scales),
    }


# ======================================================================
# Kernel-backend parity and storage-tier drift oracles
# ======================================================================
def verify_backend_parity(
    n: int = 256,
    rows: int = 256,
    seq_len: int = 192,
    reference: str = "serial",
    candidate: str = "threaded",
    min_workers: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, float]:
    """Assert byte-identical kernel outputs under two backends.

    Backends partition only disjoint output blocks — each worker
    performs exactly the accumulation the serial call performs for its
    rows — so the butterfly ladder (forward and VJP), streaming-softmax
    attention (forward, VJP and decode), the fused training linear
    (forward and VJP) and the quantized GEMMs must agree *bit-for-bit*
    between ``reference`` and ``candidate``.  Any divergence raises
    ``RuntimeError``: it means a backend re-associated an accumulation,
    which would silently void every hardware parity number reported by
    the simulator.  Returns the op count checked.

    The default shapes deliberately sit *above* the threaded backend's
    parallel thresholds (``MIN_PARALLEL_ELEMS`` for GEMM sharding,
    ``MIN_PARALLEL_SCORES`` for attention batch sharding) so the oracle
    exercises the sharded code paths, not their serial fallbacks, and
    they pin the operand-slicing heuristic's coincidence traps: the
    GEMMs are square (``rows == n == in_features``, so the sharded
    output-row length equals the contraction length) and the fused
    linear runs a 3-D ``(B, T, in)`` activation with ``T == in``.
    Likewise, a threaded candidate whose worker count is below
    ``min_workers`` (e.g. the registry singleton on a small CI runner,
    where it defaults to the core count) is replaced by a
    ``ThreadedBackend(workers=min_workers)`` instance — oversubscribing
    one core is fine for a correctness oracle, silently verifying the
    inline fallback is not.
    """
    from ..butterfly.matrix import ButterflyMatrix
    from ..kernels import (
        attention_decode,
        attention_forward,
        attention_vjp,
        butterfly_apply,
        butterfly_apply_vjp,
        linear_act_forward,
        linear_act_vjp,
        resolve_backend,
        use_backend,
    )
    from ..kernels.backend import ThreadedBackend

    cand = resolve_backend(candidate)
    if type(cand) is ThreadedBackend and cand.workers < min_workers:
        cand = ThreadedBackend(workers=min_workers)
    rng = rng or np.random.default_rng(0)
    matrix = ButterflyMatrix.random(n, rng)
    coeffs = [f.coeffs for f in matrix.factors]
    halves = [f.half for f in matrix.factors]
    x = rng.normal(size=(rows, n))
    grad = rng.normal(size=(rows, n))
    heads, d_head = 2, 16
    q = rng.normal(size=(2, heads, seq_len, d_head)).astype(np.float32)
    k = rng.normal(size=(2, heads, seq_len, d_head)).astype(np.float32)
    v = rng.normal(size=(2, heads, seq_len, d_head)).astype(np.float32)
    ga = rng.normal(size=q.shape).astype(np.float32)
    w = rng.normal(size=(n, n))
    q8, s8 = _QK.quantize_per_channel(w)
    q4, s4 = _QK.quantize_int4_grouped(w)
    xf = x.astype(np.float32)
    x3 = rng.normal(size=(2, n, n)).astype(np.float32)  # seq dim == in dim
    g3 = rng.normal(size=(2, n, n)).astype(np.float32)
    wf = w.astype(np.float32)
    bias = rng.normal(size=n).astype(np.float32)

    def run(backend):
        with use_backend(backend):
            y, ctx = butterfly_apply(x, coeffs, halves)
            gx, gcoeffs = butterfly_apply_vjp(grad, ctx)
            att, actx = attention_forward(q, k, v, causal=True)
            agq, agk, agv = attention_vjp(ga, actx)
            dec = attention_decode(q[:, :, -1, :], k, v)
            fy, fctx = linear_act_forward(x3, wf, bias, activation="gelu")
            fgx, fgw, fgb = linear_act_vjp(g3, fctx)
            lin8 = _QK.quantized_linear(xf, q8, s8)
            lin4 = _QK.int4_linear(xf, q4, s4)
            lin16 = _QK.half_linear(xf, _QK.quantize_to_half(w))
        return [y, gx, *gcoeffs, att, agq, agk, agv, dec,
                fy, fgx, fgw, fgb, lin8, lin4, lin16]

    ref = run(reference)
    got = run(cand)
    mismatched = [
        i for i, (a, b) in enumerate(zip(ref, got)) if not np.array_equal(a, b)
    ]
    if mismatched:
        raise RuntimeError(
            f"backend {candidate!r} diverged from {reference!r} on "
            f"{len(mismatched)}/{len(ref)} outputs (indices {mismatched}): "
            "backends must partition disjoint output blocks only"
        )
    return {"ops_checked": float(len(ref)), "mismatches": 0.0}


def storage_tier_drift_report(
    n: int = 256,
    rows: int = 16,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, float]:
    """Bounded-drift report for the lossy fp16/int4 storage tiers.

    Unlike backends (bit-exact by construction), the storage tiers
    trade precision for memory; this measures their relative drift
    against the float64 butterfly reference so BENCH gates can hold the
    line: fp16 stays in the sub-percent range, int4 in the
    few-tens-of-percent range on random (worst-case) weights.
    """
    rng = rng or np.random.default_rng(0)
    matrix = ButterflyMatrix.random(n, rng)
    coeffs = [f.coeffs for f in matrix.factors]
    halves = [f.half for f in matrix.factors]
    x = rng.normal(size=(rows, n))
    exact = matrix.apply(x)
    scale = max(float(np.abs(exact).max()), 1e-30)

    half_out = _QK.half_butterfly_apply(
        x, _QK.half_butterfly_stages(coeffs), halves
    )
    q4_stages, q4_scales = _QK.quantize_butterfly_stages_int4(coeffs)
    int4_out = _QK.int4_butterfly_apply(x, q4_stages, q4_scales, halves)
    return {
        "n": float(n),
        "fp16_max_rel_drift": float(np.abs(half_out - exact).max() / scale),
        "int4_max_rel_drift": float(np.abs(int4_out - exact).max() / scale),
    }
