"""Baseline MAC-array accelerator (paper Section VI-D).

The paper's baseline is a conventional design: multiply-accumulate units
(multiplier array + adder tree) with fine-grained intra-/inter-layer
pipelining, load-balanced across layers, implemented on the same VCU128
with the same 2048 multipliers and clock.  It executes dense linear
layers and attention matrix products directly; it has no FFT or butterfly
datapath, so

* Fourier mixing runs as dense DFT matrix multiplies (as the paper did),
* butterfly linear layers run as their dense ``n x n`` equivalents.

That inability to exploit butterfly structure is exactly what Fig. 19's
hardware-speedup column measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .config import BYTES_PER_VALUE
from .perf import LatencyReport, LayerLatency, WorkloadSpec, _next_power_of_two


@dataclass(frozen=True)
class BaselineConfig:
    """MAC-array baseline: ``n_multipliers`` at ``clock_mhz``."""

    n_multipliers: int = 2048
    clock_mhz: float = 200.0
    bandwidth_gbs: float = 450.0

    @property
    def bandwidth_bytes_per_cycle(self) -> float:
        return self.bandwidth_gbs * 1e9 / (self.clock_mhz * 1e6)


class BaselineAccelerator:
    """Latency model of the dense MAC-array baseline."""

    def __init__(self, config: BaselineConfig | None = None) -> None:
        self.config = config or BaselineConfig()

    # ------------------------------------------------------------------
    def _mem_cycles(self, num_bytes: float) -> float:
        return num_bytes / self.config.bandwidth_bytes_per_cycle

    def _layer(self, name: str, macs: float, bytes_total: float) -> LayerLatency:
        compute = macs / self.config.n_multipliers
        mem = self._mem_cycles(bytes_total)
        # Double-buffered pipeline: bound by the slower stream.
        return LayerLatency(name, compute, mem, max(compute, mem))

    def dense_linear(
        self, rows: int, in_features: int, out_features: int, name: str = "dense"
    ) -> LayerLatency:
        macs = rows * in_features * out_features
        num_bytes = (
            rows * in_features + in_features * out_features + rows * out_features
        ) * BYTES_PER_VALUE
        return self._layer(name, macs, num_bytes)

    def attention_core(
        self, seq: int, d_hidden: int, n_heads: int, name: str = "attn"
    ) -> LayerLatency:
        d_head = d_hidden // n_heads
        macs = 2 * n_heads * seq * seq * d_head  # QK^T and SV
        softmax = n_heads * seq * seq  # one extra pass
        num_bytes = 4 * seq * d_hidden * BYTES_PER_VALUE
        return self._layer(name, macs + softmax, num_bytes)

    def dft_mixing(self, seq: int, d_hidden: int, name: str = "dft") -> LayerLatency:
        """Fourier layer executed as dense DFT matmuls (no FFT support).

        Sequence-direction DFT is a (seq x seq) matrix applied per hidden
        column; hidden-direction DFT is (d x d) per row.  Because the
        input is real and only the real output component is kept, the
        conjugate-symmetric half of each DFT can be skipped (rfft), so
        each product costs half its dense MAC count.
        """
        macs = (seq * seq * d_hidden + d_hidden * d_hidden * seq) // 2
        num_bytes = (
            seq * seq + d_hidden * d_hidden + 2 * seq * d_hidden
        ) * BYTES_PER_VALUE
        return self._layer(name, macs, num_bytes)

    # ------------------------------------------------------------------
    def encoder_block(self, spec: WorkloadSpec, fourier: bool, index: int) -> List[LayerLatency]:
        """One encoder block, dense-executed (attention or DFT mixing)."""
        r, d = spec.seq_len, spec.d_hidden
        layers: List[LayerLatency] = []
        if fourier:
            layers.append(self.dft_mixing(r, _next_power_of_two(d), name=f"dft:block{index}"))
        else:
            for proj in ("q", "k", "v"):
                layers.append(self.dense_linear(r, d, d, name=f"dense:block{index}.{proj}"))
            layers.append(self.attention_core(r, d, spec.n_heads, name=f"attn:block{index}"))
            layers.append(self.dense_linear(r, d, d, name=f"dense:block{index}.out"))
        ffn1_out = spec.d_ffn
        layers.append(self.dense_linear(r, d, ffn1_out, name=f"dense:block{index}.ffn1"))
        layers.append(self.dense_linear(r, ffn1_out, d, name=f"dense:block{index}.ffn2"))
        return layers

    def model_latency(self, spec: WorkloadSpec) -> LatencyReport:
        """End-to-end latency of a workload on the baseline.

        FBfly blocks map to DFT mixing + dense FFN; ABfly and vanilla
        attention blocks both map to dense attention blocks (the baseline
        cannot exploit butterfly weights, so their dense equivalents are
        executed — the paper's Fig. 19 methodology).
        """
        report = LatencyReport(clock_mhz=self.config.clock_mhz)
        for i in range(spec.n_fbfly):
            report.layers.extend(self.encoder_block(spec, fourier=True, index=i))
        for i in range(spec.n_fbfly, spec.n_total):
            report.layers.extend(self.encoder_block(spec, fourier=False, index=i))
        return report


def bert_spec(seq_len: int, large: bool = False) -> WorkloadSpec:
    """BERT-Base/Large workload description for the Fig. 19 comparison."""
    if large:
        return WorkloadSpec(
            seq_len=seq_len, d_hidden=1024, r_ffn=4, n_total=24,
            n_abfly=24, n_heads=16, butterfly=False,
        )
    return WorkloadSpec(
        seq_len=seq_len, d_hidden=768, r_ffn=4, n_total=12,
        n_abfly=12, n_heads=12, butterfly=False,
    )


def fabnet_spec(seq_len: int, large: bool = False) -> WorkloadSpec:
    """FABNet-Base/Large (all-FBfly defaults of Section VI-A)."""
    if large:
        return WorkloadSpec(
            seq_len=seq_len, d_hidden=1024, r_ffn=4, n_total=24,
            n_abfly=0, n_heads=16, butterfly=True,
        )
    return WorkloadSpec(
        seq_len=seq_len, d_hidden=768, r_ffn=4, n_total=12,
        n_abfly=0, n_heads=12, butterfly=True,
    )
