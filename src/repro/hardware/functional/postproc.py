"""Post-processing Processor (PostP): shortcut addition + layer norm.

Paper Figure 6(a): PostP executes residual (shortcut) addition and layer
normalization between engine invocations, reading the shortcut operand
from the dedicated shortcut buffer.  We also model the activation unit
used inside the FFN (GELU), which in RTL is a piecewise/LUT evaluator.
"""

from __future__ import annotations

import numpy as np

_GELU_C = np.sqrt(2.0 / np.pi)


class PostProcessor:
    """Value-accurate PostP with operation counting."""

    def __init__(self) -> None:
        self.shortcut_adds = 0
        self.layernorm_rows = 0
        self.activation_elems = 0

    def shortcut_add(self, x: np.ndarray, shortcut: np.ndarray) -> np.ndarray:
        if x.shape != shortcut.shape:
            raise ValueError(f"shape mismatch {x.shape} vs {shortcut.shape}")
        self.shortcut_adds += x.size
        return x + shortcut

    def layer_norm(
        self, x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
    ) -> np.ndarray:
        """Normalize the last axis; one pass per row as in the RTL."""
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        self.layernorm_rows += int(np.prod(x.shape[:-1]))
        return (x - mu) / np.sqrt(var + eps) * gamma + beta

    def gelu(self, x: np.ndarray) -> np.ndarray:
        """GELU (tanh form), matching :func:`repro.nn.tensor.gelu`."""
        self.activation_elems += x.size
        inner = _GELU_C * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))
