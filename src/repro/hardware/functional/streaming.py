"""Tile-streaming execution with double-buffered overlap (paper Fig. 13).

The analytical model in :mod:`repro.hardware.perf` charges overlapped
transfer times per layer; this module simulates the *mechanism*: row
tiles stream through ping-pong buffers, and per-tile load, compute and
store phases are placed on a timeline honoring the structural hazards of
each strategy:

* ``butterfly`` (Fig. 13a) — buffer A computes while buffer B loads and
  the previous tile's results store: load/store fully overlap compute.
* ``fft`` (Fig. 13b) — the complex datapath owns both buffer ports
  during compute, so only a tile's store overlaps the next tile's load.
* ``naive`` — strictly serial phases.

The simulator returns both the total cycles and the functional result
(computed through the real :class:`ButterflyEngine`), so tests can
cross-validate the overlap *ordering* claimed by the analytical model
while confirming values are untouched by the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional

import numpy as np

from ...butterfly.matrix import ButterflyMatrix
from .engine import ButterflyEngine

Strategy = Literal["naive", "butterfly", "fft"]


@dataclass
class TilePhase:
    """Timing of one tile's load/compute/store phases (cycles)."""

    load: float
    compute: float
    store: float


@dataclass
class StreamingResult:
    """Outcome of streaming a full activation through one layer."""

    output: np.ndarray
    total_cycles: float
    tile_phases: List[TilePhase]

    @property
    def n_tiles(self) -> int:
        return len(self.tile_phases)


class StreamingExecutor:
    """Stream row tiles through a ButterflyEngine with overlap modeling."""

    def __init__(
        self,
        engine: Optional[ButterflyEngine] = None,
        tile_rows: int = 4,
        bytes_per_cycle: float = 64.0,
        bytes_per_value: int = 2,
    ) -> None:
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.engine = engine or ButterflyEngine(pbu=4)
        self.tile_rows = tile_rows
        self.bytes_per_cycle = bytes_per_cycle
        self.bytes_per_value = bytes_per_value

    # ------------------------------------------------------------------
    def _phases(self, rows: int, n: int, complex_data: bool) -> TilePhase:
        width = self.bytes_per_value * (2 if complex_data else 1)
        transfer = rows * n * width / self.bytes_per_cycle
        stages = int(np.log2(n))
        compute = rows * stages * (n // 2) / (self.engine.pbu)
        return TilePhase(load=transfer, compute=compute, store=transfer)

    def _timeline(self, phases: List[TilePhase], strategy: Strategy) -> float:
        """Place tile phases on a timeline under the strategy's hazards."""
        if strategy == "naive":
            return sum(p.load + p.compute + p.store for p in phases)
        if strategy == "butterfly":
            # Ping-pong input banks: tile k's load runs under tile k-1's
            # compute; stores use the second port. Steady state is bound
            # by the slower of compute and (load+store) streams, plus the
            # first load and last store.
            if not phases:
                return 0.0
            body = sum(
                max(p.compute, p.load + p.store) for p in phases
            )
            return phases[0].load + body + phases[-1].store
        if strategy == "fft":
            # Compute owns the buffer ports; store(k) overlaps load(k+1).
            if not phases:
                return 0.0
            total = phases[0].load
            for i, p in enumerate(phases):
                total += p.compute
                next_load = phases[i + 1].load if i + 1 < len(phases) else 0.0
                total += max(p.store, next_load)
            return total
        raise ValueError(f"unknown strategy {strategy!r}")

    # ------------------------------------------------------------------
    def run_butterfly(
        self, x: np.ndarray, matrix: ButterflyMatrix, strategy: Strategy = "butterfly"
    ) -> StreamingResult:
        """Stream a (rows, n) activation through a butterfly layer."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != matrix.n:
            raise ValueError(f"expected width {matrix.n}, got {x.shape[1]}")
        outputs = []
        phases = []
        for start in range(0, x.shape[0], self.tile_rows):
            tile = x[start : start + self.tile_rows]
            outputs.append(self.engine.run_butterfly_rows(tile, matrix))
            phases.append(self._phases(tile.shape[0], matrix.n, complex_data=False))
        total = self._timeline(phases, strategy)
        return StreamingResult(np.concatenate(outputs), total, phases)

    def run_fft(
        self, x: np.ndarray, strategy: Strategy = "fft"
    ) -> StreamingResult:
        """Stream a (rows, n) complex activation through the FFT."""
        x = np.atleast_2d(np.asarray(x, dtype=np.complex128))
        outputs = []
        phases = []
        for start in range(0, x.shape[0], self.tile_rows):
            tile = x[start : start + self.tile_rows]
            outputs.append(self.engine.run_fft_rows(tile))
            phases.append(self._phases(tile.shape[0], x.shape[1], complex_data=True))
        total = self._timeline(phases, strategy)
        return StreamingResult(np.concatenate(outputs), total, phases)

    def compare_strategies(
        self, x: np.ndarray, matrix: ButterflyMatrix
    ) -> dict:
        """Cycles under each strategy for the same butterfly workload."""
        return {
            strategy: self.run_butterfly(x, matrix, strategy).total_cycles
            for strategy in ("naive", "fft", "butterfly")
        }
