"""Butterfly memory system: banked buffers, data layouts and S2P.

Reproduces Section IV-B2 of the paper.  The butterfly access pattern reads
index pairs ``(i, i + half)`` whose stride changes every stage; with a
naive row- or column-major placement across memory banks this causes bank
conflicts (paper Fig. 8).  The paper's S2P module instead stores column
``i`` of the data matrix rotated down by a *starting position* derived
from a bit-count of the column index (Fig. 9), which makes every stage's
paired access conflict-free (Fig. 10).

Layouts implemented:

* ``column_major`` — element ``e`` lives in bank ``e % nbanks`` (Fig. 8b).
* ``row_major`` — element ``e`` lives in bank ``e // (n / nbanks)``
  (Fig. 8c).
* ``butterfly`` — the paper's permuted layout: element at (column ``i``,
  row ``r``) is stored in bank ``(r + popcount(i)) % nbanks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

LAYOUTS = ("column_major", "row_major", "butterfly")


def popcount(value: int) -> int:
    """Number of set bits (the Fig. 9 'bit-count' block)."""
    return bin(value).count("1")


def starting_positions(n_columns: int) -> np.ndarray:
    """Per-column shift-down amounts of the S2P layout (Fig. 9a).

    Defined recursively in the paper as ``P_0 = 0`` and
    ``P_{2^{n-1}..2^n-1} = P_{0..2^{n-1}-1} - 1``; the closed form is
    ``P_i = -popcount(i)``, i.e. column ``i`` is rotated by ``popcount(i)``
    positions.
    """
    return np.array([-popcount(i) for i in range(n_columns)], dtype=np.int64)


def bank_of(element: int, n: int, nbanks: int, layout: str) -> int:
    """Bank index holding ``element`` under the given layout."""
    if layout == "column_major":
        return element % nbanks
    if layout == "row_major":
        return element // (n // nbanks)
    if layout == "butterfly":
        column, row = divmod(element, nbanks)
        return (row + popcount(column)) % nbanks
    raise ValueError(f"unknown layout {layout!r}; choose from {LAYOUTS}")


@dataclass
class BankAccessStats:
    """Aggregate statistics from a sequence of banked reads."""

    cycles: int = 0
    conflicts: int = 0
    reads: int = 0


class BankedBuffer:
    """A buffer of ``nbanks`` single-port banks holding ``n`` elements.

    Values are stored according to ``layout``; ``read_elements`` models one
    read cycle and reports whether the requested elements collide in a
    bank.  Complex values are allowed (FFT mode concatenates the two
    ping-pong banks into a double-width port, paper Fig. 12 — functionally
    the element granularity is unchanged).
    """

    def __init__(self, n: int, nbanks: int, layout: str = "butterfly") -> None:
        if n % nbanks != 0:
            raise ValueError(f"n={n} must be a multiple of nbanks={nbanks}")
        if layout not in LAYOUTS:
            raise ValueError(f"unknown layout {layout!r}; choose from {LAYOUTS}")
        self.n = n
        self.nbanks = nbanks
        self.layout = layout
        self.stats = BankAccessStats()
        self._values = np.zeros(n, dtype=np.complex128)

    # ------------------------------------------------------------------
    def store(self, values: Sequence[complex]) -> None:
        """Load a full vector through S2P (a single streaming pass)."""
        values = np.asarray(values)
        if values.shape != (self.n,):
            raise ValueError(f"expected {self.n} values, got shape {values.shape}")
        self._values = values.astype(np.complex128)

    def bank_of(self, element: int) -> int:
        return bank_of(element, self.n, self.nbanks, self.layout)

    def read_elements(self, elements: Sequence[int]) -> Tuple[np.ndarray, bool]:
        """Read a group of elements in one cycle.

        Returns the values and a conflict flag.  A conflict (two elements
        mapping to the same bank) is counted and modeled as an extra
        serialization cycle per colliding access, matching how a real
        single-port bank would stall.
        """
        elements = list(elements)
        if len(elements) > self.nbanks:
            raise ValueError(
                f"cannot read {len(elements)} elements from {self.nbanks} banks in one cycle"
            )
        banks = [self.bank_of(e) for e in elements]
        n_conflicts = len(banks) - len(set(banks))
        self.stats.reads += len(elements)
        self.stats.cycles += 1 + n_conflicts
        self.stats.conflicts += n_conflicts
        return self._values[elements], n_conflicts > 0

    def write_elements(self, elements: Sequence[int], values: Sequence[complex]) -> None:
        """Write results back (the Recover module restores original order)."""
        self._values[list(elements)] = np.asarray(values)

    def snapshot(self) -> np.ndarray:
        """Current contents in original element order."""
        return self._values.copy()


def bank_matrix(n: int, nbanks: int, layout: str) -> List[List[int]]:
    """Element ids per (bank, column) — reproduces Fig. 8b/c and Fig. 10a."""
    grid: List[List[int]] = [[-1] * (n // nbanks) for _ in range(nbanks)]
    for element in range(n):
        if layout == "row_major":
            column = element % (n // nbanks)
        else:
            column = element // nbanks
        bank = bank_of(element, n, nbanks, layout)
        grid[bank][column] = element
    return grid
