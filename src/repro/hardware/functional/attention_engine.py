"""Attention Engine — functional model of paper Figure 6(c).

Each AE contains a QK unit (MAC lanes + accumulator + softmax) and an SV
unit (MAC lanes).  The QK unit streams rows of Q against the whole K
matrix, emits one softmaxed score row at a time, and the SV unit consumes
score rows as they appear (this row-by-row handoff is what enables the
fine-grained BP/AP pipelining of Fig. 14).

The model is value-accurate and counts MAC operations; cycle-level timing
lives in :mod:`repro.hardware.perf`.

Construct an engine (or processor) with ``verify=True`` to check every
``attend`` invocation against the shared software kernel layer
(:func:`repro.kernels.attention_reference`), mirroring how the Butterfly
Engine verifies against :func:`repro.kernels.butterfly_apply_reference`:
value parity at float64 precision *and* operation-count parity against
the closed form :func:`repro.kernels.expected_macs` — the contract that
the row-streaming hardware loop and the blockwise-streaming software
kernel compute the same function with the same amount of MAC work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import kernels as _kernels
from ...telemetry import counter_inc


@dataclass
class AttentionStats:
    """Operation counts from one attention execution."""

    qk_macs: int = 0
    sv_macs: int = 0
    softmax_elems: int = 0
    score_rows_emitted: int = 0


class QKUnit:
    """Computes softmax(q_row @ K^T / sqrt(d)) one query row at a time."""

    def __init__(self, pqk: int = 8) -> None:
        if pqk < 1:
            raise ValueError(f"pqk must be >= 1, got {pqk}")
        self.pqk = pqk
        self.stats = AttentionStats()

    def score_row(self, q_row: np.ndarray, keys: np.ndarray, scale: float) -> np.ndarray:
        """One softmaxed score row; counts one MAC per multiply-accumulate."""
        if q_row.ndim != 1 or keys.ndim != 2 or keys.shape[1] != q_row.shape[0]:
            raise ValueError(
                f"shape mismatch: q_row {q_row.shape} vs keys {keys.shape}"
            )
        raw = keys @ q_row * scale
        self.stats.qk_macs += keys.shape[0] * keys.shape[1]
        shifted = raw - raw.max()
        e = np.exp(shifted)
        self.stats.softmax_elems += e.shape[0]
        self.stats.score_rows_emitted += 1
        return e / e.sum()


class SVUnit:
    """Multiplies incoming score rows with the V matrix."""

    def __init__(self, psv: int = 8) -> None:
        if psv < 1:
            raise ValueError(f"psv must be >= 1, got {psv}")
        self.psv = psv
        self.stats = AttentionStats()

    def context_row(self, score_row: np.ndarray, values: np.ndarray) -> np.ndarray:
        if score_row.shape[0] != values.shape[0]:
            raise ValueError(
                f"scores ({score_row.shape}) do not match values ({values.shape})"
            )
        self.stats.sv_macs += values.shape[0] * values.shape[1]
        return score_row @ values


class AttentionEngine:
    """One AE = QK unit + SV unit, processing one head at a time.

    ``verify=True`` checks every :meth:`attend` against the software
    attention kernel: bit-level value parity (float64 ``allclose`` at
    twelve decimals vs :func:`repro.kernels.attention_reference`) and
    op-count parity of the per-call MAC/softmax deltas vs
    :func:`repro.kernels.expected_macs`.
    """

    def __init__(self, pqk: int = 8, psv: int = 8, verify: bool = False) -> None:
        self.qk = QKUnit(pqk)
        self.sv = SVUnit(psv)
        self.verify = verify

    def attend(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Full single-head attention: softmax(QK^T / sqrt(d)) V.

        Streams row by row exactly as the hardware does, so tests can
        check value equivalence with the one-shot matrix formula.
        """
        if q.shape[1] != k.shape[1] or k.shape[0] != v.shape[0]:
            raise ValueError(f"incompatible shapes q={q.shape} k={k.shape} v={v.shape}")
        scale = 1.0 / np.sqrt(q.shape[1])
        before = (self.qk.stats.qk_macs, self.sv.stats.sv_macs,
                  self.qk.stats.softmax_elems)
        rows = []
        for q_row in q:
            scores = self.qk.score_row(q_row, k, scale)
            rows.append(self.sv.context_row(scores, v))
        out = np.stack(rows)
        counter_inc("hardware_ae_qk_macs_total",
                    amount=self.qk.stats.qk_macs - before[0])
        counter_inc("hardware_ae_sv_macs_total",
                    amount=self.sv.stats.sv_macs - before[1])
        counter_inc("hardware_ae_softmax_elems_total",
                    amount=self.qk.stats.softmax_elems - before[2])
        if self.verify:
            self._verify(q, k, v, out, before)
        return out

    def _verify(self, q, k, v, out, counts_before) -> None:
        reference = _kernels.attention_reference(q, k, v)
        if not np.allclose(out, reference, rtol=1e-12, atol=1e-12):
            raise RuntimeError(
                "attention engine diverged from the kernel reference "
                f"(max |err| = {np.abs(out - reference).max():.3e})"
            )
        expected = _kernels.expected_macs(q.shape[0], k.shape[0], q.shape[1])
        observed = {
            "qk_macs": self.qk.stats.qk_macs - counts_before[0],
            "sv_macs": self.sv.stats.sv_macs - counts_before[1],
            "softmax_elems": self.qk.stats.softmax_elems - counts_before[2],
        }
        if observed != expected:
            raise RuntimeError(
                "attention engine op counts diverged from the kernel "
                f"contract: observed {observed}, expected {expected}"
            )

    @property
    def stats(self) -> AttentionStats:
        merged = AttentionStats(
            qk_macs=self.qk.stats.qk_macs,
            sv_macs=self.sv.stats.sv_macs,
            softmax_elems=self.qk.stats.softmax_elems,
            score_rows_emitted=self.qk.stats.score_rows_emitted,
        )
        return merged


class AttentionProcessor:
    """``pae`` attention engines; heads are distributed round-robin."""

    def __init__(
        self, pae: int = 2, pqk: int = 8, psv: int = 8, verify: bool = False
    ) -> None:
        if pae < 1:
            raise ValueError(f"pae must be >= 1, got {pae}")
        self.engines = [AttentionEngine(pqk, psv, verify=verify) for _ in range(pae)]

    def attend_heads(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Multi-head attention over (heads, seq, d_head) operands."""
        if not (q.shape == k.shape == v.shape) or q.ndim != 3:
            raise ValueError(
                f"expected matching (heads, seq, d_head), got {q.shape}/{k.shape}/{v.shape}"
            )
        outputs = []
        for h in range(q.shape[0]):
            engine = self.engines[h % len(self.engines)]
            outputs.append(engine.attend(q[h], k[h], v[h]))
        return np.stack(outputs)
