"""Index coalescing and stage scheduling (paper Figs. 10-11).

``schedule_stage`` packs the ``n/2`` index pairs of one butterfly stage
into read cycles of ``lanes`` pairs (``2 * lanes`` elements, one per
bank).  It uses first-fit packing over the bank mapping, which attains the
optimal ``n / (2 * lanes)`` cycles under the paper's permuted layout and
exposes the extra serialization cycles a row-/column-major layout incurs —
the quantitative content of Fig. 8.

``coalesce_pairs`` models the Index Coalescing crossbar of Fig. 11: data
arrives from the banks in arbitrary bank order, and the crossbar reorders
it into (top, bottom) operand pairs for the butterfly units using the
element indices (bit-count + shift in RTL; here, a direct reordering whose
output order is asserted by tests).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ...butterfly.factor import pair_indices
from .memory import bank_of

Pair = Tuple[int, int]


def schedule_stage(
    n: int, half: int, nbanks: int, layout: str = "butterfly"
) -> List[List[Pair]]:
    """Group a stage's pairs into conflict-free read cycles.

    Each returned group holds at most ``nbanks // 2`` pairs whose
    ``2 * len(group)`` elements map to distinct banks under ``layout``.
    First-fit packing: a pair joins the earliest group it does not
    conflict with.
    """
    if nbanks < 2 or nbanks % 2 != 0:
        raise ValueError(f"nbanks must be an even number >= 2, got {nbanks}")
    lanes = nbanks // 2
    pairs = [(int(a), int(b)) for a, b in pair_indices(n, half)]
    groups: List[List[Pair]] = []
    group_banks: List[set] = []
    for pair in pairs:
        banks = {bank_of(pair[0], n, nbanks, layout), bank_of(pair[1], n, nbanks, layout)}
        if len(banks) < 2:
            banks = set()  # self-conflicting pair: needs its own serialized group
        placed = False
        if banks:
            for group, used in zip(groups, group_banks):
                if len(group) < lanes and not (banks & used):
                    group.append(pair)
                    used |= banks
                    placed = True
                    break
        if not placed:
            groups.append([pair])
            groups_banks = {
                bank_of(pair[0], n, nbanks, layout),
                bank_of(pair[1], n, nbanks, layout),
            }
            group_banks.append(groups_banks if len(groups_banks) == 2 else {-1})
    return groups


def stage_read_cycles(n: int, half: int, nbanks: int, layout: str = "butterfly") -> int:
    """Number of read cycles for one stage under a layout.

    A group whose two operands share a bank still needs two accesses, so a
    self-conflicting pair counts as two cycles.
    """
    cycles = 0
    for group in schedule_stage(n, half, nbanks, layout):
        banks = set()
        accesses = 0
        for a, b in group:
            banks.add(bank_of(a, n, nbanks, layout))
            banks.add(bank_of(b, n, nbanks, layout))
            accesses += 2
        # One cycle per full set of distinct banks; serialized extra
        # accesses for any collisions within the group.
        cycles += 1 + (accesses - len(banks) if len(banks) < accesses else 0)
    return cycles


def min_stage_cycles(n: int, nbanks: int) -> int:
    """Lower bound: all banks busy every cycle."""
    return n // nbanks if nbanks <= n else 1


def coalesce_pairs(
    elements: Sequence[int], values: Sequence[complex], pairs: Sequence[Pair]
) -> List[Tuple[complex, complex]]:
    """Reorder bank outputs into (top, bottom) operand tuples per pair.

    Args:
        elements: element indices in the order the banks delivered them.
        values: the corresponding data values.
        pairs: the (top, bottom) index pairs scheduled for this cycle.

    Raises if any requested index was not delivered — i.e. if the
    scheduler and the crossbar disagree, which tests treat as a wiring bug.
    """
    lookup = {int(e): v for e, v in zip(elements, values)}
    out: List[Tuple[complex, complex]] = []
    for top, bottom in pairs:
        try:
            out.append((lookup[top], lookup[bottom]))
        except KeyError as missing:
            raise KeyError(f"crossbar did not receive element {missing} for pair "
                           f"({top}, {bottom})") from None
    return out
