"""Adaptable Butterfly Unit — functional model of paper Figure 7.

The BU contains exactly four real multipliers, two real adders/subtractors
and two complex adders.  Programmable multiplexers route either

* butterfly-linear operands (four real inputs/weights, Fig. 7b), or
* FFT operands (two complex inputs + one complex twiddle, Fig. 7c)

through the *same* multipliers.  This module reproduces that datapath at
value level and counts multiplier activations, so tests can assert that
both modes consume the same silicon (4 multiplies per pair-operation) —
the core claim behind the unified engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple


class BUMode(Enum):
    """Runtime configuration of the unit's muxes/demuxes."""

    BUTTERFLY = "butterfly"
    FFT = "fft"


@dataclass
class AdaptableButterflyUnit:
    """Value-level model of one adaptable BU.

    The unit is configured per layer (``configure``), then driven one
    pair-operation per cycle.  ``mult_ops`` / ``add_ops`` count real
    arithmetic operations so resource sharing can be asserted.
    """

    mode: BUMode = BUMode.BUTTERFLY
    mult_ops: int = 0
    add_ops: int = 0
    cycles: int = 0

    def configure(self, mode: BUMode) -> None:
        """Set the mux/demux control signals before running a layer."""
        self.mode = mode

    def reset_counters(self) -> None:
        self.mult_ops = 0
        self.add_ops = 0
        self.cycles = 0

    # ------------------------------------------------------------------
    def _mult(self, a: float, b: float) -> float:
        self.mult_ops += 1
        return a * b

    def _add(self, a: float, b: float) -> float:
        self.add_ops += 1
        return a + b

    def _sub(self, a: float, b: float) -> float:
        self.add_ops += 1
        return a - b

    # ------------------------------------------------------------------
    def butterfly_op(
        self, in1: float, in2: float, w1: float, w2: float, w3: float, w4: float
    ) -> Tuple[float, float]:
        """Butterfly linear transform pair-op (Fig. 7b)::

            out1 = in1 * w1 + in2 * w3
            out2 = in1 * w2 + in2 * w4

        Uses the unit's four real multipliers and the two real adders;
        the de-multiplexers bypass the complex adders.
        """
        if self.mode is not BUMode.BUTTERFLY:
            raise RuntimeError("BU is configured for FFT; call configure() first")
        self.cycles += 1
        p1 = self._mult(in1, w1)
        p2 = self._mult(in2, w3)
        p3 = self._mult(in1, w2)
        p4 = self._mult(in2, w4)
        return self._add(p1, p2), self._add(p3, p4)

    def fft_op(self, in1: complex, in2: complex, w: complex) -> Tuple[complex, complex]:
        """FFT pair-op (Fig. 7c)::

            t    = in2 * w      (one complex multiply on the 4 multipliers)
            out1 = in1 + t
            out2 = in1 - t

        The real adders compute the complex product's combines and the two
        complex adders produce the final sums, exactly as the demux routes.
        """
        if self.mode is not BUMode.FFT:
            raise RuntimeError("BU is configured for butterfly; call configure() first")
        self.cycles += 1
        # Complex multiply in2 * w reusing the four real multipliers.
        rr = self._mult(in2.real, w.real)
        ii = self._mult(in2.imag, w.imag)
        ri = self._mult(in2.real, w.imag)
        ir = self._mult(in2.imag, w.real)
        t_real = self._sub(rr, ii)
        t_imag = self._add(ri, ir)
        t = complex(t_real, t_imag)
        # Two complex adders.
        self.add_ops += 4  # each complex add/sub is two real additions
        return in1 + t, in1 - t

    # ------------------------------------------------------------------
    @property
    def multipliers(self) -> int:
        """Physical multipliers in the unit (constant: 4)."""
        return 4
