"""Functional (value-accurate) simulator of the butterfly accelerator."""

from .accelerator import AcceleratorTrace, ButterflyAccelerator
from .attention_engine import (
    AttentionEngine,
    AttentionProcessor,
    AttentionStats,
    QKUnit,
    SVUnit,
)
from .butterfly_unit import AdaptableButterflyUnit, BUMode
from .coalesce import (
    coalesce_pairs,
    min_stage_cycles,
    schedule_stage,
    stage_read_cycles,
)
from .engine import ButterflyEngine, ButterflyLinearExecutor, EngineRunStats
from .memory import (
    BankAccessStats,
    BankedBuffer,
    bank_matrix,
    bank_of,
    popcount,
    starting_positions,
)
from .postproc import PostProcessor
from .streaming import StreamingExecutor, StreamingResult, TilePhase

__all__ = [
    "AcceleratorTrace",
    "AdaptableButterflyUnit",
    "AttentionEngine",
    "AttentionProcessor",
    "AttentionStats",
    "BUMode",
    "BankAccessStats",
    "BankedBuffer",
    "ButterflyAccelerator",
    "ButterflyEngine",
    "ButterflyLinearExecutor",
    "EngineRunStats",
    "PostProcessor",
    "QKUnit",
    "SVUnit",
    "StreamingExecutor",
    "StreamingResult",
    "TilePhase",
    "bank_matrix",
    "bank_of",
    "coalesce_pairs",
    "min_stage_cycles",
    "popcount",
    "schedule_stage",
    "stage_read_cycles",
    "starting_positions",
]
