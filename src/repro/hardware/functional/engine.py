"""Butterfly Engine — functional model of paper Figure 6(b).

A BE couples ``pbu`` adaptable Butterfly Units to a banked butterfly
memory system (S2P layout + index coalescing).  The same engine executes
either a trainable butterfly linear transform or an FFT, selected at
runtime — the paper's central hardware-efficiency claim.

The model is *value-accurate* and *access-accurate*: every operand read
goes through the banked buffer (so bank conflicts would surface), every
pair-operation goes through a BU (so multiplier usage is counted), and the
result is bit-identical (up to float64 rounding) to the numpy reference.

The per-pair loop below is the *hardware* model and is intentionally kept
— it is what makes the simulation access-accurate.  The software hot path
lives in :mod:`repro.kernels`, which implements the same pair geometry
(see :mod:`repro.kernels.layout` for the pair-major order that mirrors
the S2P bank striping consumed here via ``schedule_stage``).  Construct
the engine with ``verify=True`` to assert bit-parity of every run against
that shared kernel reference
(:func:`repro.kernels.butterfly_apply_reference`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ... import kernels as _kernels
from ...telemetry import counter_inc
from ...butterfly.factor import ButterflyFactor
from ...butterfly.fft import bit_reversal_permutation, fft_stage_factor
from ...butterfly.matrix import ButterflyMatrix
from .butterfly_unit import AdaptableButterflyUnit, BUMode
from .coalesce import coalesce_pairs, schedule_stage
from .memory import BankedBuffer


@dataclass
class EngineRunStats:
    """Cycle/operation counts from one engine invocation."""

    read_cycles: int = 0
    bank_conflicts: int = 0
    pair_ops: int = 0
    mult_ops: int = 0


class ButterflyEngine:
    """One BE: ``pbu`` butterfly units over a ``2 * pbu``-bank buffer.

    Args:
        pbu: number of adaptable Butterfly Units (the paper's parallelism
            knob); the banked buffer gets ``2 * pbu`` banks.
        layout: bank-mapping strategy of the butterfly memory.
        verify: when True, every ``_run_stages`` invocation is checked
            for bit-parity (float64 ``allclose`` at twelve decimals)
            against the shared software kernels in :mod:`repro.kernels`.
            This is the contract that the access-accurate hardware loop
            and the vectorized software path compute the same function.
    """

    def __init__(
        self, pbu: int = 4, layout: str = "butterfly", verify: bool = False
    ) -> None:
        if pbu < 1:
            raise ValueError(f"pbu must be >= 1, got {pbu}")
        self.pbu = pbu
        self.nbanks = 2 * pbu
        self.layout = layout
        self.verify = verify
        self.units = [AdaptableButterflyUnit() for _ in range(pbu)]
        self.last_stats: Optional[EngineRunStats] = None

    # ------------------------------------------------------------------
    def _pair_index(self, top: int, half: int) -> int:
        """Recover the coefficient index of the pair starting at ``top``.

        Same closed form as :func:`repro.kernels.pair_index_of`, inlined
        with integer arithmetic because this sits in the simulator's
        innermost per-pair loop (a numpy round-trip per scalar is ~16x
        slower); drift is caught by the ``verify=True`` parity check.
        """
        return (top // (2 * half)) * half + top % half

    def _run_stages(
        self,
        x: np.ndarray,
        factors: List[ButterflyFactor],
        mode: BUMode,
    ) -> Tuple[np.ndarray, EngineRunStats]:
        n = x.shape[0]
        # Vectors smaller than the bank array only occupy the first banks.
        nbanks = min(self.nbanks, n)
        buffer = BankedBuffer(n, nbanks, layout=self.layout)
        buffer.store(x)
        for unit in self.units:
            unit.configure(mode)
            unit.reset_counters()
        pair_ops = 0
        for factor in factors:
            half = factor.half
            for group in schedule_stage(n, half, nbanks, self.layout):
                elements = [e for pair in group for e in pair]
                values, _conflict = buffer.read_elements(elements)
                operand_pairs = coalesce_pairs(elements, values, group)
                results: List[complex] = []
                for lane, (pair, (top_val, bot_val)) in enumerate(
                    zip(group, operand_pairs)
                ):
                    unit = self.units[lane % self.pbu]
                    p = self._pair_index(pair[0], half)
                    a, b, c, d = factor.coeffs[:, p]
                    if mode is BUMode.FFT:
                        out_top, out_bot = unit.fft_op(top_val, bot_val, b)
                    else:
                        out_top, out_bot = unit.butterfly_op(
                            top_val.real, bot_val.real, a, c, b, d
                        )
                    results.extend((out_top, out_bot))
                    pair_ops += 1
                buffer.write_elements(elements, results)
        stats = EngineRunStats(
            read_cycles=buffer.stats.cycles,
            bank_conflicts=buffer.stats.conflicts,
            pair_ops=pair_ops,
            mult_ops=sum(u.mult_ops for u in self.units),
        )
        self.last_stats = stats
        counter_inc("hardware_be_read_cycles_total", amount=stats.read_cycles)
        counter_inc("hardware_be_bank_conflicts_total",
                    amount=stats.bank_conflicts)
        counter_inc("hardware_be_pair_ops_total", amount=stats.pair_ops)
        counter_inc("hardware_be_mult_ops_total", amount=stats.mult_ops)
        out = buffer.snapshot()
        if self.verify:
            reference = _kernels.butterfly_apply_reference(
                x, [f.coeffs for f in factors], [f.half for f in factors]
            )
            if not np.allclose(out, reference, rtol=1e-12, atol=1e-12):
                raise RuntimeError(
                    "butterfly engine diverged from the kernel reference "
                    f"(max |err| = {np.abs(out - reference).max():.3e})"
                )
        return out, stats

    # ------------------------------------------------------------------
    def run_butterfly(self, x: np.ndarray, matrix: ButterflyMatrix) -> np.ndarray:
        """Apply a trainable butterfly matrix to a real vector of size n."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (matrix.n,):
            raise ValueError(f"expected vector of size {matrix.n}, got {x.shape}")
        out, _ = self._run_stages(x.astype(np.complex128), matrix.factors, BUMode.BUTTERFLY)
        return out.real

    def run_fft(self, x: np.ndarray) -> np.ndarray:
        """Compute the FFT of a vector of power-of-two size n."""
        x = np.asarray(x, dtype=np.complex128)
        n = x.shape[0]
        perm = bit_reversal_permutation(n)
        factors = [fft_stage_factor(n, f.half) for f in ButterflyMatrix.identity(n).factors]
        out, _ = self._run_stages(x[perm], factors, BUMode.FFT)
        return out

    # ------------------------------------------------------------------
    def run_butterfly_rows(self, x: np.ndarray, matrix: ButterflyMatrix) -> np.ndarray:
        """Apply the butterfly matrix to each row of a (rows, n) array."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return np.stack([self.run_butterfly(row, matrix) for row in x])

    def run_fft_rows(self, x: np.ndarray) -> np.ndarray:
        """FFT of each row of a (rows, n) array."""
        x = np.atleast_2d(np.asarray(x))
        return np.stack([self.run_fft(row) for row in x])

    def run_fft2(self, x: np.ndarray) -> np.ndarray:
        """2D FFT of a (rows, cols) tile: rows first, then columns.

        This is the FBfly Fourier layer; both passes reuse the same engine.
        """
        step1 = self.run_fft_rows(x)
        step2 = self.run_fft_rows(step1.T).T
        return step2


class ButterflyLinearExecutor:
    """Run a :class:`~repro.nn.butterfly_layer.ButterflyLinear` on a BE.

    Handles the layer's zero-padding (input dim -> butterfly size n) and
    output truncation plus the bias add, so the engine output matches the
    software layer exactly.
    """

    def __init__(self, engine: ButterflyEngine) -> None:
        self.engine = engine

    def forward(self, layer, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[-1] != layer.in_features:
            raise ValueError(
                f"expected input dim {layer.in_features}, got {x.shape[-1]}"
            )
        matrix = layer.to_butterfly_matrix()
        padded = np.zeros((x.shape[0], layer.n))
        padded[:, : layer.in_features] = x
        out = self.engine.run_butterfly_rows(padded, matrix)
        out = out[:, : layer.out_features]
        if layer.bias is not None:
            out = out + layer.bias.data
        return out
