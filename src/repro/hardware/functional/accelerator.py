"""Functional model of the complete adaptable butterfly accelerator.

Executes a FABNet :class:`~repro.models.encoder.EncoderClassifier`
layer-by-layer on the functional engines:

* butterfly linear layers (Q/K/V/O projections and FFN) on the
  :class:`ButterflyEngine` in butterfly mode;
* Fourier (FBfly) mixing as two 1D FFT passes on the *same* engine in
  FFT mode;
* attention score/context matrix multiplies on the
  :class:`AttentionProcessor`;
* shortcut addition, layer normalization and GELU on the
  :class:`PostProcessor`.

Embedding lookup and the small classifier head run on the host, as in the
paper's system (the accelerator covers the encoder blocks, which dominate
compute).  The result matches the software model to float64 rounding —
this is the reproduction of the paper's Appendix C RTL-vs-PyTorch
cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...models.blocks import EncoderBlock, FeedForward
from ...models.encoder import EncoderClassifier
from ...nn.attention import MultiHeadAttention
from ...nn.butterfly_layer import ButterflyLinear
from ..config import AcceleratorConfig
from .attention_engine import AttentionProcessor
from .engine import ButterflyEngine, ButterflyLinearExecutor
from .postproc import PostProcessor


@dataclass
class AcceleratorTrace:
    """Aggregate operation counts from one forward pass."""

    butterfly_pair_ops: int = 0
    fft_pair_ops: int = 0
    bank_conflicts: int = 0
    qk_macs: int = 0
    sv_macs: int = 0


class ButterflyAccelerator:
    """Run FABNet encoder blocks on the functional hardware engines."""

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self.config = config or AcceleratorConfig()
        self.engine = ButterflyEngine(pbu=self.config.pbu)
        self.executor = ButterflyLinearExecutor(self.engine)
        pqk = max(1, self.config.pqk)
        psv = max(1, self.config.psv)
        self.attention = AttentionProcessor(max(1, self.config.pae), pqk, psv)
        self.postp = PostProcessor()
        self.trace = AcceleratorTrace()

    # ------------------------------------------------------------------
    def _run_butterfly_linear(self, layer: ButterflyLinear, x: np.ndarray) -> np.ndarray:
        """x: (rows, in_features) -> (rows, out_features)."""
        out = self.executor.forward(layer, x)
        stats = self.engine.last_stats
        if stats is not None:
            self.trace.butterfly_pair_ops += stats.pair_ops
            self.trace.bank_conflicts += stats.bank_conflicts
        return out

    def _run_ffn(self, ffn: FeedForward, x: np.ndarray) -> np.ndarray:
        if not isinstance(ffn.fc1, ButterflyLinear):
            raise TypeError(
                "the butterfly accelerator only executes butterfly FFNs; "
                "dense layers belong to the baseline design"
            )
        hidden = self._run_butterfly_linear(ffn.fc1, x)
        hidden = self.postp.gelu(hidden)
        return self._run_butterfly_linear(ffn.fc2, hidden)

    def _run_fourier_mixing(self, x: np.ndarray) -> np.ndarray:
        """x: (seq, d) -> Re(FFT2(x)) via two engine FFT passes."""
        out = self.engine.run_fft2(x)
        return out.real

    def _run_attention(self, attn: MultiHeadAttention, x: np.ndarray) -> np.ndarray:
        """x: (seq, d) through butterfly projections + attention engines."""
        if not attn.butterfly:
            raise TypeError(
                "the butterfly accelerator only executes ABfly attention "
                "(butterfly Q/K/V/O projections)"
            )
        seq, d = x.shape
        heads, d_head = attn.n_heads, attn.d_head
        # The paper's reordered schedule (Fig. 14): K and V first, then Q.
        k = self._run_butterfly_linear(attn.k_proj, x)
        v = self._run_butterfly_linear(attn.v_proj, x)
        q = self._run_butterfly_linear(attn.q_proj, x)

        def split(m: np.ndarray) -> np.ndarray:
            return m.reshape(seq, heads, d_head).transpose(1, 0, 2)

        context = self.attention.attend_heads(split(q), split(k), split(v))
        for eng in self.attention.engines:
            self.trace.qk_macs += eng.qk.stats.qk_macs
            self.trace.sv_macs += eng.sv.stats.sv_macs
            eng.qk.stats.qk_macs = 0
            eng.sv.stats.sv_macs = 0
        merged = context.transpose(1, 0, 2).reshape(seq, d)
        return self._run_butterfly_linear(attn.out_proj, merged)

    # ------------------------------------------------------------------
    def run_block(self, block: EncoderBlock, x: np.ndarray) -> np.ndarray:
        """Execute one encoder block on (seq, d) activations."""
        if block.mixing_kind == "fourier":
            mixed = self._run_fourier_mixing(x)
        elif block.mixing_kind == "butterfly_attention":
            mixed = self._run_attention(block.mixer, x)
        else:
            raise TypeError(
                f"block mixing {block.mixing_kind!r} is not executable on the "
                "butterfly accelerator (vanilla attention needs the baseline)"
            )
        x = self.postp.layer_norm(
            self.postp.shortcut_add(mixed, x),
            block.norm1.gamma.data,
            block.norm1.beta.data,
        )
        ffn_out = self._run_ffn(block.ffn, x)
        x = self.postp.layer_norm(
            self.postp.shortcut_add(ffn_out, x),
            block.norm2.gamma.data,
            block.norm2.beta.data,
        )
        return x

    def run_encoder(self, model: EncoderClassifier, tokens: np.ndarray) -> np.ndarray:
        """Full forward pass; returns logits identical to ``model(tokens)``.

        Embeddings and the classification head run on the host; all
        encoder blocks run on the accelerator engines.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, seq), got {tokens.shape}")
        seq = tokens.shape[1]
        x = model.token_emb.weight.data[tokens] + model.pos_emb.data[:seq]
        outputs = []
        for sample in x:
            h = sample
            for block in model.blocks:
                h = self.run_block(block, h)
            outputs.append(h)
        h = np.stack(outputs)
        h = self.postp.layer_norm(
            h, model.head_norm.gamma.data, model.head_norm.beta.data
        )
        pooled = h[:, 0] if model.config.pooling == "cls" else h.mean(axis=1)
        return pooled @ model.head.weight.data.T + model.head.bias.data
