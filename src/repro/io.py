"""Model checkpointing: save/load weights + config to a single .npz file.

A checkpoint stores every named parameter plus the :class:`ModelConfig`
fields and the builder name, so ``load_model`` can reconstruct the exact
architecture and weights without pickling arbitrary objects.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from .faults import fault_point
from .models import (
    MODEL_BUILDERS,
    ModelConfig,
    build_butterfly_decoder,
    build_dense_decoder,
)
from .nn.module import Module

_CONFIG_KEY = "__config_json__"
_BUILDER_KEY = "__builder__"

_ALL_BUILDERS = dict(MODEL_BUILDERS)
_ALL_BUILDERS["butterfly_decoder"] = build_butterfly_decoder
_ALL_BUILDERS["dense_decoder"] = build_dense_decoder


def save_model(
    model: Module, path: Union[str, Path], builder: str
) -> Path:
    """Serialize a model built by a registered builder.

    Args:
        model: the model to save; must expose ``.config`` (a ModelConfig).
        path: destination ``.npz`` file (suffix added if missing).
        builder: registered builder name ('transformer', 'fnet', 'fabnet',
            'butterfly_decoder', 'dense_decoder').

    The write is crash-safe: the archive is fully written to a temp file
    in the destination directory, then atomically renamed over ``path``
    with :func:`os.replace`.  A crash (or injected ``io.save`` fault) at
    any point leaves the previous checkpoint untouched.
    """
    if builder not in _ALL_BUILDERS:
        raise ValueError(
            f"unknown builder {builder!r}; choose from {sorted(_ALL_BUILDERS)}"
        )
    config = getattr(model, "config", None)
    if not isinstance(config, ModelConfig):
        raise TypeError("model must carry a ModelConfig as .config")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {name: param.data for name, param in model.named_parameters()}
    payload[_CONFIG_KEY] = np.frombuffer(
        json.dumps(asdict(config)).encode(), dtype=np.uint8
    )
    payload[_BUILDER_KEY] = np.frombuffer(builder.encode(), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Same directory as the target so os.replace stays a same-filesystem
    # atomic rename.  np.savez gets an open handle, not the tmp name —
    # given a string path it would append another ".npz" to it.
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        fault_point("io.save", path=str(path))
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def load_model(path: Union[str, Path]) -> Module:
    """Rebuild a model saved by :func:`save_model` (architecture + weights)."""
    path = Path(path)
    with np.load(path) as archive:
        if _CONFIG_KEY not in archive or _BUILDER_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        config_dict = json.loads(bytes(archive[_CONFIG_KEY].tobytes()).decode())
        builder_name = bytes(archive[_BUILDER_KEY].tobytes()).decode()
        state = {
            key: archive[key]
            for key in archive.files
            if key not in (_CONFIG_KEY, _BUILDER_KEY)
        }
    try:
        builder = _ALL_BUILDERS[builder_name]
    except KeyError:
        raise ValueError(f"checkpoint uses unknown builder {builder_name!r}")
    if builder_name in ("butterfly_decoder", "dense_decoder"):
        state = _migrate_decoder_keys(state)
    model = builder(ModelConfig(**config_dict))
    model.load_state_dict(state)
    return model


# DecoderBlock's FFN moved into a FeedForward submodule when the serving
# subsystem landed, renaming its parameters; rewrite pre-serving decoder
# checkpoint keys (blocks.N.fc1.* / blocks.N.fc2.*) to the current names.
_LEGACY_DECODER_FFN = re.compile(r"^(blocks\.\d+\.)(fc1|fc2)\.")


def _migrate_decoder_keys(state: dict) -> dict:
    return {
        _LEGACY_DECODER_FFN.sub(r"\1ffn.\2.", key): value
        for key, value in state.items()
    }
