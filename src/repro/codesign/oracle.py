"""Accuracy oracles for the co-design search.

The paper obtains each design point's accuracy by training FABNet on the
target LRA task — hundreds of GPU hours over the grid.  We provide two
oracles with one interface:

* :class:`TrainedAccuracyOracle` — actually trains a small FABNet on the
  synthetic task (used by the examples; exact but slow for full grids).
* :class:`SurrogateAccuracyOracle` — a calibrated capacity model used by
  the Fig. 18 benchmark.  Accuracy approaches the task's ceiling (the
  paper's Table III FABNet accuracy) as model capacity grows, with a
  saturating-exponential deficit and small deterministic per-point noise;
  this reproduces the qualitative structure of the paper's scatter (a
  Pareto front where tiny models lose accuracy and big ones saturate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..hardware.perf import WorkloadSpec

# Table III: optimized FABNet accuracy per LRA task.
TASK_ACCURACY_CEILING = {
    "listops": 0.374,
    "text": 0.626,
    "retrieval": 0.801,
    "image": 0.398,
    "pathfinder": 0.679,
}

# Table III: vanilla Transformer accuracy (reference for accuracy-loss
# constraints).
TASK_TRANSFORMER_ACCURACY = {
    "listops": 0.373,
    "text": 0.637,
    "retrieval": 0.783,
    "image": 0.379,
    "pathfinder": 0.709,
}


class AccuracyOracle(Protocol):
    """Anything that maps a workload spec to a task accuracy."""

    def accuracy(self, spec: WorkloadSpec) -> float:  # pragma: no cover
        ...


@dataclass
class SurrogateAccuracyOracle:
    """Calibrated capacity->accuracy surrogate.

    ``capacity = n_total * (log2(d_hidden) + log2(r_ffn)) + boost * n_abfly``;
    ``accuracy = ceiling - deficit * exp(-capacity / tau) + noise``.

    Calibration: a {d=64, n=2, r=4} FABNet sits within ~1% of the ceiling
    (the paper's Fig. 18 winner satisfies the <1% constraint) while a
    {d=64, n=1, r=1} point loses several points.
    """

    task: str = "text"
    deficit: float = 0.25
    tau: float = 3.8
    abfly_boost: float = 3.0
    noise_scale: float = 0.004
    chance_floor: float = 0.5

    def __post_init__(self) -> None:
        if self.task not in TASK_ACCURACY_CEILING:
            raise ValueError(
                f"unknown task {self.task!r}; choose from {sorted(TASK_ACCURACY_CEILING)}"
            )

    def capacity(self, spec: WorkloadSpec) -> float:
        return (
            spec.n_total * (math.log2(spec.d_hidden) + math.log2(max(1, spec.r_ffn)))
            + self.abfly_boost * spec.n_abfly
        )

    def accuracy(self, spec: WorkloadSpec) -> float:
        ceiling = TASK_ACCURACY_CEILING[self.task]
        cap = self.capacity(spec)
        acc = ceiling - self.deficit * math.exp(-cap / self.tau)
        # Deterministic per-point jitter so the scatter is not a clean curve.
        seed = hash((self.task, spec.d_hidden, spec.r_ffn, spec.n_total, spec.n_abfly))
        rng = np.random.default_rng(abs(seed) % (2**32))
        acc += float(rng.normal(0.0, self.noise_scale))
        floor = self.chance_floor if ceiling > self.chance_floor else 1.0 / 10.0
        return float(min(max(acc, floor * 0.2), ceiling + 3 * self.noise_scale))


@dataclass
class TrainedAccuracyOracle:
    """Train a small FABNet on a synthetic LRA task and report accuracy.

    Exact but slow; intended for spot-checking a handful of design points
    (see ``examples/codesign_search.py``).
    """

    task: str = "text"
    seq_len: int = 64
    n_samples: int = 240
    epochs: int = 3
    lr: float = 3e-3
    seed: int = 0

    def accuracy(self, spec: WorkloadSpec) -> float:
        from ..data import load_task
        from ..models import ModelConfig, build_fabnet
        from ..training import train_model_on_task

        kwargs = {"n_samples": self.n_samples, "seed": self.seed}
        if self.task in ("image", "pathfinder"):
            grid = int(round(math.sqrt(self.seq_len)))
            kwargs["grid"] = grid
        else:
            kwargs["seq_len"] = self.seq_len
        dataset = load_task(self.task, **kwargs)
        config = ModelConfig(
            vocab_size=dataset.vocab_size,
            n_classes=dataset.n_classes,
            max_len=dataset.seq_len,
            d_hidden=min(spec.d_hidden, 128),  # keep CPU training tractable
            n_heads=spec.n_heads,
            r_ffn=spec.r_ffn,
            n_total=spec.n_total,
            n_abfly=spec.n_abfly,
            seed=self.seed,
        )
        model = build_fabnet(config)
        result = train_model_on_task(
            model, dataset, epochs=self.epochs, lr=self.lr, seed=self.seed
        )
        return result.best_test_accuracy
