"""Joint algorithm/hardware design space (paper Section V-C, Fig. 15).

The space is the cross product of FABNet hyperparameters
(``d_hidden``, ``r_ffn``, ``n_total``, ``n_abfly``) and accelerator
parallelism (``pbe``, ``pbu``, ``pqk``, ``psv``), with the paper's
validity rules: a configuration with ABfly blocks needs a non-empty
Attention Processor, and an all-FBfly model needs none (``pqk = psv = 0``
— the Fig. 18 winner).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Tuple

from ..hardware.config import AcceleratorConfig
from ..hardware.perf import WorkloadSpec


@dataclass(frozen=True)
class DesignSpace:
    """Grids for every co-design axis (defaults mirror Section VI-C)."""

    d_hidden: Tuple[int, ...] = (64, 128, 256, 512, 1024)
    r_ffn: Tuple[int, ...] = (1, 2, 4)
    n_total: Tuple[int, ...] = (1, 2)
    n_abfly: Tuple[int, ...] = (0, 1)
    pbe: Tuple[int, ...] = (4, 8, 16, 32, 64, 128)
    pbu: Tuple[int, ...] = (4,)
    pqk: Tuple[int, ...] = (0, 4, 8, 16, 32, 64, 128)
    psv: Tuple[int, ...] = (0, 4, 8, 16, 32, 64, 128)
    n_heads: int = 4

    def algorithm_points(self) -> Iterator[Tuple[int, int, int, int]]:
        """Valid (d_hidden, r_ffn, n_total, n_abfly) combinations."""
        for d, r, n, nab in product(self.d_hidden, self.r_ffn, self.n_total, self.n_abfly):
            if nab > n:
                continue
            yield d, r, n, nab

    def hardware_points(self, needs_attention: bool) -> Iterator[AcceleratorConfig]:
        """Valid accelerator configurations for a model.

        All-FBfly models pair with ``pqk = psv = 0``; models with ABfly
        blocks require both attention units to be non-empty.
        """
        for pbe, pbu, pqk, psv in product(self.pbe, self.pbu, self.pqk, self.psv):
            if needs_attention and (pqk == 0 or psv == 0):
                continue
            if not needs_attention and (pqk != 0 or psv != 0):
                continue
            pae = self.n_heads if (pqk or psv) else 0
            yield AcceleratorConfig(pbe=pbe, pbu=pbu, pae=pae, pqk=pqk, psv=psv)

    def joint_points(self, seq_len: int) -> Iterator[Tuple[WorkloadSpec, AcceleratorConfig]]:
        """Every valid (workload, accelerator) pair in the space."""
        for d, r, n, nab in self.algorithm_points():
            spec = WorkloadSpec(
                seq_len=seq_len, d_hidden=d, r_ffn=r, n_total=n,
                n_abfly=nab, n_heads=self.n_heads,
            )
            for config in self.hardware_points(needs_attention=nab > 0):
                yield spec, config

    def size(self, seq_len: int) -> int:
        return sum(1 for _ in self.joint_points(seq_len))
