"""Algorithm-hardware co-design search (paper Section V-C)."""

from .oracle import (
    TASK_ACCURACY_CEILING,
    TASK_TRANSFORMER_ACCURACY,
    AccuracyOracle,
    SurrogateAccuracyOracle,
    TrainedAccuracyOracle,
)
from .random_search import run_random_codesign
from .search import (
    DesignPoint,
    SearchResult,
    design_space_spread,
    pareto_front,
    run_codesign,
)
from .space import DesignSpace

__all__ = [
    "AccuracyOracle",
    "DesignPoint",
    "DesignSpace",
    "SearchResult",
    "SurrogateAccuracyOracle",
    "TASK_ACCURACY_CEILING",
    "TASK_TRANSFORMER_ACCURACY",
    "TrainedAccuracyOracle",
    "design_space_spread",
    "pareto_front",
    "run_codesign",
    "run_random_codesign",
]
