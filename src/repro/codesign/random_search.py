"""Randomized co-design search for large spaces.

The paper's grid search takes ~10 GPU-hours because every design point
needs training.  When the joint space grows (finer grids, more
hyperparameters), exhaustive enumeration stops scaling; this module
provides a budgeted random search over the same space with the same
constraint semantics, which in practice finds near-Pareto points with a
small fraction of the evaluations (asserted in the tests against the
exhaustive result on a shared sub-space).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hardware.config import AcceleratorConfig, FpgaDevice, VCU128
from ..hardware.perf import ButterflyPerformanceModel, WorkloadSpec
from ..hardware.resources import estimate_resources
from .oracle import AccuracyOracle, TASK_TRANSFORMER_ACCURACY
from .search import DesignPoint, SearchResult, pareto_front
from .space import DesignSpace


def _sample_point(
    space: DesignSpace, seq_len: int, rng: np.random.Generator
) -> tuple[WorkloadSpec, AcceleratorConfig]:
    """Draw one valid (workload, accelerator) pair uniformly."""
    while True:
        n_total = int(rng.choice(space.n_total))
        n_abfly = int(rng.choice(space.n_abfly))
        if n_abfly > n_total:
            continue
        spec = WorkloadSpec(
            seq_len=seq_len,
            d_hidden=int(rng.choice(space.d_hidden)),
            r_ffn=int(rng.choice(space.r_ffn)),
            n_total=n_total,
            n_abfly=n_abfly,
            n_heads=space.n_heads,
        )
        pbe = int(rng.choice(space.pbe))
        pbu = int(rng.choice(space.pbu))
        if n_abfly > 0:
            pqk_options = [v for v in space.pqk if v > 0]
            psv_options = [v for v in space.psv if v > 0]
            if not pqk_options or not psv_options:
                continue
            pqk = int(rng.choice(pqk_options))
            psv = int(rng.choice(psv_options))
            pae = space.n_heads
        else:
            pqk = psv = pae = 0
        return spec, AcceleratorConfig(pbe=pbe, pbu=pbu, pae=pae, pqk=pqk, psv=psv)


def run_random_codesign(
    oracle: AccuracyOracle,
    seq_len: int,
    budget: int = 200,
    space: Optional[DesignSpace] = None,
    device: FpgaDevice = VCU128,
    reference_accuracy: Optional[float] = None,
    max_accuracy_loss: float = 0.01,
    seed: int = 0,
) -> SearchResult:
    """Evaluate ``budget`` random valid points and select as the grid does.

    Infeasible (resource-violating) samples count against the budget,
    matching how a practitioner would spend evaluations.
    """
    if budget < 1:
        raise ValueError(f"budget must be positive, got {budget}")
    space = space or DesignSpace()
    rng = np.random.default_rng(seed)
    task = getattr(oracle, "task", "text")
    if reference_accuracy is None:
        reference_accuracy = TASK_TRANSFORMER_ACCURACY.get(task, 0.0)
    result = SearchResult(
        reference_accuracy=reference_accuracy, max_accuracy_loss=max_accuracy_loss
    )
    accuracy_cache: dict = {}
    for _ in range(budget):
        spec, config = _sample_point(space, seq_len, rng)
        config = config.with_(bandwidth_gbs=device.bandwidth_gbs)
        resources = estimate_resources(config)
        if not resources.fits(device):
            continue
        algo_key = (spec.d_hidden, spec.r_ffn, spec.n_total, spec.n_abfly)
        if algo_key not in accuracy_cache:
            accuracy_cache[algo_key] = oracle.accuracy(spec)
        latency = ButterflyPerformanceModel(config).model_latency(spec).latency_ms
        result.points.append(
            DesignPoint(
                spec=spec,
                config=config,
                accuracy=accuracy_cache[algo_key],
                latency_ms=latency,
                dsps=resources.dsps,
                brams=resources.brams,
            )
        )
    result.pareto = pareto_front(result.points)
    feasible = [
        p for p in result.points
        if p.accuracy >= reference_accuracy - max_accuracy_loss
    ]
    if feasible:
        result.selected = min(feasible, key=lambda p: (p.latency_ms, p.dsps, p.brams))
    return result
