"""Exhaustive co-design search with Pareto-front extraction (Fig. 15/18).

Given a dataset (its sequence length and accuracy oracle), an FPGA device
and performance constraints, the search grid-evaluates every joint design
point: accuracy from the oracle, latency from the performance model,
resources from the analytical model (infeasible points are dropped).  The
output is the accuracy-latency scatter, its Pareto front, and the
selected configuration — the fastest point whose accuracy loss against
the vanilla Transformer stays within the constraint, ties broken by
resource usage (which is how the paper's search settles on
``<Pbe, Pbu, Pqk, Psv> = <64, 4, 0, 0>`` when bandwidth, not compute,
limits the bigger designs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..hardware.config import AcceleratorConfig, FpgaDevice, VCU128
from ..hardware.perf import ButterflyPerformanceModel, WorkloadSpec
from ..hardware.resources import estimate_resources
from .oracle import AccuracyOracle, TASK_TRANSFORMER_ACCURACY
from .space import DesignSpace


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated joint design point."""

    spec: WorkloadSpec
    config: AcceleratorConfig
    accuracy: float
    latency_ms: float
    dsps: int
    brams: int

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (accuracy up, latency down)."""
        return (
            self.accuracy >= other.accuracy
            and self.latency_ms <= other.latency_ms
            and (self.accuracy > other.accuracy or self.latency_ms < other.latency_ms)
        )


@dataclass
class SearchResult:
    """All evaluated points plus the Pareto front and the selection."""

    points: List[DesignPoint] = field(default_factory=list)
    pareto: List[DesignPoint] = field(default_factory=list)
    selected: Optional[DesignPoint] = None
    reference_accuracy: float = 0.0
    max_accuracy_loss: float = 0.01


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by latency."""
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: p.latency_ms)


def run_codesign(
    oracle: AccuracyOracle,
    seq_len: int,
    space: Optional[DesignSpace] = None,
    device: FpgaDevice = VCU128,
    reference_accuracy: Optional[float] = None,
    max_accuracy_loss: float = 0.01,
    bandwidth_gbs: Optional[float] = None,
) -> SearchResult:
    """Grid-search the joint space and select the constrained optimum."""
    space = space or DesignSpace()
    task = getattr(oracle, "task", "text")
    if reference_accuracy is None:
        reference_accuracy = TASK_TRANSFORMER_ACCURACY.get(task, 0.0)
    result = SearchResult(
        reference_accuracy=reference_accuracy, max_accuracy_loss=max_accuracy_loss
    )
    accuracy_cache: dict = {}
    for spec, config in space.joint_points(seq_len):
        if bandwidth_gbs is not None:
            config = config.with_(bandwidth_gbs=bandwidth_gbs)
        else:
            config = config.with_(bandwidth_gbs=device.bandwidth_gbs)
        resources = estimate_resources(config)
        if not resources.fits(device):
            continue
        algo_key = (spec.d_hidden, spec.r_ffn, spec.n_total, spec.n_abfly)
        if algo_key not in accuracy_cache:
            accuracy_cache[algo_key] = oracle.accuracy(spec)
        accuracy = accuracy_cache[algo_key]
        latency = ButterflyPerformanceModel(config).model_latency(spec).latency_ms
        result.points.append(
            DesignPoint(
                spec=spec,
                config=config,
                accuracy=accuracy,
                latency_ms=latency,
                dsps=resources.dsps,
                brams=resources.brams,
            )
        )
    result.pareto = pareto_front(result.points)
    feasible = [
        p
        for p in result.points
        if p.accuracy >= reference_accuracy - max_accuracy_loss
    ]
    if feasible:
        result.selected = min(feasible, key=lambda p: (p.latency_ms, p.dsps, p.brams))
    return result


def design_space_spread(result: SearchResult) -> dict:
    """Headline spreads of the scatter (the Fig. 18 annotations).

    * ``accuracy_gain`` — how much more accurate the best point is than
      the worst point in its latency decade.
    * ``speedup`` — latency ratio between the slowest and fastest points
      within the accuracy band of the selected point.
    """
    if not result.points or result.selected is None:
        return {"accuracy_gain": 0.0, "speedup": 0.0}
    sel = result.selected
    same_latency = [
        p for p in result.points if 0.5 * sel.latency_ms <= p.latency_ms <= 2 * sel.latency_ms
    ]
    accuracy_gain = sel.accuracy - min(p.accuracy for p in same_latency)
    same_accuracy = [
        p for p in result.points if abs(p.accuracy - sel.accuracy) <= 0.01
    ]
    speedup = max(p.latency_ms for p in same_accuracy) / sel.latency_ms
    return {"accuracy_gain": accuracy_gain, "speedup": speedup}
