"""Training harness for the synthetic LRA experiments."""

from .experiments import (
    ExperimentConfig,
    ExperimentResult,
    accuracy_by_model,
    results_table,
    run_experiment,
    run_matrix,
)
from .trainer import Trainer, TrainResult, train_model_on_task

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "TrainResult",
    "Trainer",
    "accuracy_by_model",
    "results_table",
    "run_experiment",
    "run_matrix",
    "train_model_on_task",
]
