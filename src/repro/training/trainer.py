"""Training loop for the LRA classification experiments."""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import nn
from ..data.base import TaskDataset
from ..telemetry import gauge_set, span


def _model_dtype_context(model: nn.Module):
    """The dtype policy scope declared by the model's config, if any.

    Models built from a :class:`~repro.models.ModelConfig` carry the
    config's ``dtype`` choice; training honors it automatically so a
    ``dtype="float32"`` model is actually trained in float32 (activations
    created inside the loop follow the parameters instead of silently
    upcasting to the global default).
    """
    config = getattr(model, "config", None)
    if config is None:
        encoder = getattr(model, "encoder", None)
        config = getattr(encoder, "config", None)
    if config is not None and hasattr(config, "dtype_context"):
        return config.dtype_context()
    return contextlib.nullcontext()


@dataclass
class TrainResult:
    """History and final metrics of one training run.

    ``tokens_per_s`` is the whole-fit training throughput (elements of
    every training batch over wall time, evaluation included — the same
    denominator as ``wall_time_s``); ``phase_seconds`` breaks the fit
    into ``forward`` / ``backward`` / ``optimizer`` cumulative seconds.
    """

    train_losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    test_accuracies: List[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    train_tokens: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracies[-1] if self.test_accuracies else 0.0

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracies) if self.test_accuracies else 0.0

    @property
    def tokens_per_s(self) -> Optional[float]:
        if self.wall_time_s <= 0.0 or not self.train_tokens:
            return None
        return self.train_tokens / self.wall_time_s


class Trainer:
    """Minimal epoch-based trainer with per-epoch test evaluation.

    ``model`` is an :class:`EncoderClassifier` or, for the paired
    Retrieval task, a :class:`DualEncoderClassifier`.
    """

    def __init__(
        self,
        model: nn.Module,
        lr: float = 1e-3,
        weight_decay: float = 0.0,
        batch_size: int = 32,
        seed: int = 0,
        grad_clip: Optional[float] = None,
        patience: Optional[int] = None,
        use_masks: bool = False,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        """``grad_clip`` bounds the global gradient norm; ``patience``
        stops training after that many epochs without a new best test
        accuracy (early stopping); ``use_masks`` feeds the dataset's
        padding masks to the model (requires length annotations)."""
        self.model = model
        self.optimizer = nn.Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.grad_clip = grad_clip
        self.patience = patience
        self.use_masks = use_masks
        self.log = log

    # ------------------------------------------------------------------
    def evaluate(self, dataset: TaskDataset, split: str = "test") -> float:
        """Return accuracy on a dataset split.

        Runs under the model config's dtype policy, like :meth:`fit`, so
        standalone evaluation of a float32 model stays float32.
        """
        with _model_dtype_context(self.model):
            return self._evaluate(dataset, split)

    def _evaluate(self, dataset: TaskDataset, split: str) -> float:
        self.model.eval()
        x, y = (
            (dataset.x_test, dataset.y_test)
            if split == "test"
            else (dataset.x_train, dataset.y_train)
        )
        masks = dataset.masks(split) if self.use_masks else None
        correct = 0
        with nn.no_grad():
            for start in range(0, len(y), self.batch_size):
                xb = x[start : start + self.batch_size]
                yb = y[start : start + self.batch_size]
                if masks is not None:
                    logits = self.model(xb, mask=masks[start : start + self.batch_size])
                else:
                    logits = self.model(xb)
                correct += int((logits.data.argmax(axis=-1) == yb).sum())
        self.model.train()
        return correct / len(y)

    def fit(self, dataset: TaskDataset, epochs: int = 5) -> TrainResult:
        """Train for ``epochs`` epochs, recording loss and accuracies.

        Runs under the model config's dtype policy (see
        :meth:`repro.models.ModelConfig.dtype_context`).
        """
        with _model_dtype_context(self.model):
            return self._fit(dataset, epochs)

    def _fit(self, dataset: TaskDataset, epochs: int) -> TrainResult:
        result = TrainResult()
        phases = result.phase_seconds
        phases.update({"forward": 0.0, "backward": 0.0, "optimizer": 0.0})

        @contextlib.contextmanager
        def _phase(name: str):
            t0 = time.perf_counter()
            with span(f"train.{name}"):
                try:
                    yield
                finally:
                    phases[name] += time.perf_counter() - t0

        start_time = time.time()
        self.model.train()
        best_acc = -1.0
        epochs_since_best = 0
        for epoch in range(epochs):
            epoch_losses: List[float] = []
            epoch_correct = 0
            epoch_count = 0
            if self.use_masks:
                batch_iter = (
                    (xb, yb, mb)
                    for xb, yb, mb in dataset.batches_with_masks(
                        self.batch_size, self.rng
                    )
                )
            else:
                batch_iter = (
                    (xb, yb, None)
                    for xb, yb in dataset.batches(self.batch_size, self.rng)
                )
            for xb, yb, mb in batch_iter:
                with _phase("forward"):
                    logits = (self.model(xb, mask=mb) if mb is not None
                              else self.model(xb))
                    loss = nn.cross_entropy_logits(logits, yb)
                # Record train metrics from the forward results *before*
                # backward() — it eagerly releases the graph's saved
                # activations, so nothing about the batch should be
                # derived from graph state afterwards.
                epoch_losses.append(loss.item())
                epoch_correct += int((logits.data.argmax(axis=-1) == yb).sum())
                epoch_count += len(yb)
                result.train_tokens += int(np.asarray(xb).size)
                with _phase("backward"):
                    self.optimizer.zero_grad()
                    loss.backward()
                with _phase("optimizer"):
                    if self.grad_clip is not None:
                        nn.optim.clip_grad_norm(
                            self.model.parameters(), self.grad_clip
                        )
                    self.optimizer.step()
                # Drop the batch's graph roots so the logits/loss arrays
                # are reclaimed before the next forward allocates.
                del logits, loss
            train_loss = float(np.mean(epoch_losses))
            train_acc = epoch_correct / epoch_count
            test_acc = self.evaluate(dataset)
            result.train_losses.append(train_loss)
            result.train_accuracies.append(train_acc)
            result.test_accuracies.append(test_acc)
            if self.log is not None:
                self.log(
                    f"epoch {epoch + 1}/{epochs}: loss={train_loss:.4f} "
                    f"train_acc={train_acc:.3f} test_acc={test_acc:.3f}"
                )
            if test_acc > best_acc:
                best_acc = test_acc
                epochs_since_best = 0
            else:
                epochs_since_best += 1
                if self.patience is not None and epochs_since_best >= self.patience:
                    if self.log is not None:
                        self.log(f"early stop after epoch {epoch + 1}")
                    break
        result.wall_time_s = time.time() - start_time
        rate = result.tokens_per_s
        if rate is not None:
            gauge_set("training_tokens_per_s", rate)
        return result


def train_model_on_task(
    model: nn.Module,
    dataset: TaskDataset,
    epochs: int = 5,
    lr: float = 1e-3,
    batch_size: int = 32,
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> TrainResult:
    """Convenience wrapper: build a Trainer and fit."""
    trainer = Trainer(model, lr=lr, batch_size=batch_size, seed=seed, log=log)
    return trainer.fit(dataset, epochs=epochs)
