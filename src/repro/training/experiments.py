"""Structured experiment runner: config matrices -> results tables.

The paper's evaluation is a matrix of (task, model, hyperparameters)
runs; this module gives that matrix a first-class API so benches,
examples and users replay it reproducibly:

* :class:`ExperimentConfig` — one (task, model, model-config) cell;
* :func:`run_experiment` — train + evaluate one cell;
* :func:`run_matrix` — run a whole grid and collect a results table;
* :func:`results_table` — format results for logs/README.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

from ..data import load_task
from ..models import DualEncoderClassifier, ModelConfig, build_model
from .trainer import TrainResult, Trainer


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: a model on a synthetic LRA task."""

    task: str
    model: str  # 'transformer' | 'fnet' | 'fabnet'
    d_hidden: int = 32
    n_heads: int = 4
    r_ffn: int = 2
    n_total: int = 2
    n_abfly: int = 0
    epochs: int = 3
    lr: float = 3e-3
    batch_size: int = 32
    n_samples: int = 240
    seq_len: int = 32
    seed: int = 0

    @property
    def name(self) -> str:
        return f"{self.task}/{self.model}"


@dataclass
class ExperimentResult:
    """Outcome of one experiment cell."""

    config: ExperimentConfig
    accuracy: float
    parameters: int
    train_result: TrainResult = field(repr=False, default=None)


def _load_dataset(config: ExperimentConfig):
    kwargs = {"n_samples": config.n_samples, "seed": config.seed}
    if config.task in ("image", "pathfinder"):
        kwargs["grid"] = int(round(np.sqrt(config.seq_len)))
    else:
        kwargs["seq_len"] = config.seq_len
    return load_task(config.task, **kwargs)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Train and evaluate one experiment cell."""
    dataset = _load_dataset(config)
    model_config = ModelConfig(
        vocab_size=dataset.vocab_size,
        n_classes=dataset.n_classes,
        max_len=dataset.seq_len,
        d_hidden=config.d_hidden,
        n_heads=config.n_heads,
        r_ffn=config.r_ffn,
        n_total=config.n_total,
        n_abfly=config.n_abfly if config.model == "fabnet" else 0,
        seed=config.seed,
    )
    model = build_model(config.model, model_config)
    if dataset.paired:
        model = DualEncoderClassifier(model)
    trainer = Trainer(model, lr=config.lr, batch_size=config.batch_size,
                      seed=config.seed)
    train_result = trainer.fit(dataset, epochs=config.epochs)
    return ExperimentResult(
        config=config,
        accuracy=train_result.best_test_accuracy,
        parameters=model.num_parameters(),
        train_result=train_result,
    )


def run_matrix(configs: Iterable[ExperimentConfig]) -> List[ExperimentResult]:
    """Run every cell of an experiment matrix sequentially."""
    return [run_experiment(c) for c in configs]


def results_table(results: List[ExperimentResult]) -> str:
    """Align results into a printable table."""
    header = f"{'experiment':<24s} {'accuracy':>9s} {'params':>10s} {'epochs':>7s}"
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.config.name:<24s} {r.accuracy:>9.3f} {r.parameters:>10,d} "
            f"{len(r.train_result.test_accuracies):>7d}"
        )
    return "\n".join(lines)


def accuracy_by_model(results: List[ExperimentResult]) -> Dict[str, float]:
    """Mean accuracy per model across tasks (the Table III 'Avg.' column)."""
    buckets: Dict[str, List[float]] = {}
    for r in results:
        buckets.setdefault(r.config.model, []).append(r.accuracy)
    return {model: float(np.mean(vals)) for model, vals in buckets.items()}
