"""Per-task model configurations used by the analytical experiments.

The paper optimizes FABNet per LRA task via the co-design flow and
compares against the vanilla Transformer / FNet configurations of the
Nystromformer LRA setup.  These are the workload descriptions (no trained
weights are required by the FLOPs/latency models).
"""

from __future__ import annotations

from typing import Dict

from ..data.lra import LRA_FULL_SEQ_LEN
from ..hardware.perf import WorkloadSpec

# Vanilla Transformer / FNet baseline per task (LRA standard: 6 blocks,
# hidden 512, 8 heads, FFN ratio 4; FNet-Retrieval uses hidden 1024 per
# the paper's footnote about its accuracy collapse at 512).
TASK_BASELINE_SPECS: Dict[str, WorkloadSpec] = {
    task: WorkloadSpec(
        seq_len=seq, d_hidden=512, r_ffn=4, n_total=6, n_abfly=6, n_heads=8,
        butterfly=False,
    )
    for task, seq in LRA_FULL_SEQ_LEN.items()
}

TASK_FNET_SPECS: Dict[str, WorkloadSpec] = {
    task: WorkloadSpec(
        seq_len=seq,
        d_hidden=1024 if task == "retrieval" else 512,
        r_ffn=4, n_total=6, n_abfly=0, n_heads=8, butterfly=False,
    )
    for task, seq in LRA_FULL_SEQ_LEN.items()
}

# Accuracy-parity FABNet per task (Table III / Fig. 17): same width and
# depth as the baseline, with butterfly-compressed linear layers and
# Fourier mixing.  LRA-Image is the hardest task for Fourier mixing
# (FNet loses 9 points there, Table III), so its FABNet keeps one ABfly
# block.  The much smaller latency-optimal configs (e.g. the Fig. 18
# winner {Dhid=64, Ntotal=2}) live in :mod:`repro.codesign`.
TASK_FABNET_SPECS: Dict[str, WorkloadSpec] = {
    "listops": WorkloadSpec(
        seq_len=LRA_FULL_SEQ_LEN["listops"], d_hidden=512, r_ffn=4,
        n_total=6, n_abfly=0, n_heads=8,
    ),
    "text": WorkloadSpec(
        seq_len=LRA_FULL_SEQ_LEN["text"], d_hidden=512, r_ffn=4,
        n_total=6, n_abfly=0, n_heads=8,
    ),
    "retrieval": WorkloadSpec(
        seq_len=LRA_FULL_SEQ_LEN["retrieval"], d_hidden=512, r_ffn=4,
        n_total=6, n_abfly=0, n_heads=8,
    ),
    "image": WorkloadSpec(
        seq_len=LRA_FULL_SEQ_LEN["image"], d_hidden=512, r_ffn=4,
        n_total=6, n_abfly=1, n_heads=8,
    ),
    "pathfinder": WorkloadSpec(
        seq_len=LRA_FULL_SEQ_LEN["pathfinder"], d_hidden=512, r_ffn=4,
        n_total=6, n_abfly=0, n_heads=8,
    ),
}

# Token vocabulary per task (byte-level for text/retrieval, pixel levels
# for image/pathfinder) — used when counting whole-model parameters
# including embedding tables.
TASK_VOCAB_SIZE: Dict[str, int] = {
    "listops": 16,
    "text": 256,
    "retrieval": 256,
    "image": 256,
    "pathfinder": 256,
}

# Mainstream attention models for the Fig. 1 operation breakdown.
MAINSTREAM_MODELS: Dict[str, WorkloadSpec] = {
    "BERT-Base": WorkloadSpec(
        seq_len=512, d_hidden=768, r_ffn=4, n_total=12, n_abfly=12,
        n_heads=12, butterfly=False,
    ),
    "BERT-Large": WorkloadSpec(
        seq_len=512, d_hidden=1024, r_ffn=4, n_total=24, n_abfly=24,
        n_heads=16, butterfly=False,
    ),
    "GPT-2": WorkloadSpec(
        seq_len=512, d_hidden=768, r_ffn=4, n_total=12, n_abfly=12,
        n_heads=12, butterfly=False,
    ),
    "ViT-Base": WorkloadSpec(
        seq_len=512, d_hidden=768, r_ffn=4, n_total=12, n_abfly=12,
        n_heads=12, butterfly=False,
    ),
}
