"""Operation and parameter counting for Transformer / FNet / FABNet.

Conventions: one multiply-accumulate = 2 FLOPs; butterfly pair-ops cost
4 mults + 2 adds = 6 FLOPs; complex FFT butterflies cost 10 real FLOPs
(one complex multiply + two complex adds).  Counts cover the encoder
blocks (the paper's compression ratios compare encoder compute/weights;
embedding tables are excluded, as butterfly compression does not apply
to them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..hardware.perf import WorkloadSpec


def _next_power_of_two(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def _log2(n: int) -> float:
    return math.log2(n)


# ----------------------------------------------------------------------
# Per-component FLOPs
# ----------------------------------------------------------------------
def dense_linear_flops(rows: int, d_in: int, d_out: int) -> float:
    return 2.0 * rows * d_in * d_out


def butterfly_linear_flops(rows: int, d_in: int, d_out: int) -> float:
    n = _next_power_of_two(max(d_in, d_out))
    return 6.0 * rows * (n / 2) * _log2(n)


def attention_core_flops(seq: int, d_hidden: int) -> float:
    """Score (QK^T) + context (SV) matmuls plus the softmax pass."""
    return 2.0 * 2.0 * seq * seq * d_hidden + 5.0 * seq * seq


def fft2_mixing_flops(seq: int, d_hidden: int) -> float:
    """2D FFT over a (seq, d) tile, 10 real FLOPs per complex butterfly."""
    d = _next_power_of_two(d_hidden)
    s = _next_power_of_two(seq)
    return 10.0 * (seq * (d / 2) * _log2(d) + d_hidden * (s / 2) * _log2(s))


def layernorm_residual_flops(seq: int, d_hidden: int) -> float:
    return 10.0 * seq * d_hidden


# ----------------------------------------------------------------------
# Per-model FLOPs / parameters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpBreakdown:
    """FLOPs split into the Fig. 1 / Fig. 3 component classes."""

    attention: float
    linear: float
    other: float

    @property
    def total(self) -> float:
        return self.attention + self.linear + self.other

    def percentages(self) -> Dict[str, float]:
        return {
            "attention": 100.0 * self.attention / self.total,
            "linear": 100.0 * self.linear / self.total,
            "other": 100.0 * self.other / self.total,
        }


def transformer_flops(spec: WorkloadSpec) -> OpBreakdown:
    """Vanilla Transformer encoder FLOPs by component class."""
    r, d = spec.seq_len, spec.d_hidden
    linear = spec.n_total * (
        4 * dense_linear_flops(r, d, d)
        + dense_linear_flops(r, d, spec.d_ffn)
        + dense_linear_flops(r, spec.d_ffn, d)
    )
    attention = spec.n_total * attention_core_flops(r, d)
    other = spec.n_total * 2 * layernorm_residual_flops(r, d)
    return OpBreakdown(attention, linear, other)


def fnet_flops(spec: WorkloadSpec) -> OpBreakdown:
    """FNet: Fourier mixing + dense FFN."""
    r, d = spec.seq_len, spec.d_hidden
    linear = spec.n_total * (
        dense_linear_flops(r, d, spec.d_ffn) + dense_linear_flops(r, spec.d_ffn, d)
    )
    attention = spec.n_total * fft2_mixing_flops(r, d)  # the mixing component
    other = spec.n_total * 2 * layernorm_residual_flops(r, d)
    return OpBreakdown(attention, linear, other)


def fabnet_flops(spec: WorkloadSpec) -> OpBreakdown:
    """FABNet: FBfly + ABfly blocks with butterfly linear layers."""
    r, d = spec.seq_len, spec.d_hidden
    ffn = butterfly_linear_flops(r, d, spec.d_ffn) + butterfly_linear_flops(
        r, spec.d_ffn, d
    )
    mixing = 0.0
    linear = 0.0
    attention = 0.0
    mixing += spec.n_fbfly * fft2_mixing_flops(r, d)
    linear += spec.n_fbfly * ffn
    attention_proj = 4 * butterfly_linear_flops(r, d, d)
    attention += spec.n_abfly * attention_core_flops(r, d)
    linear += spec.n_abfly * (attention_proj + ffn)
    other = spec.n_total * 2 * layernorm_residual_flops(r, d)
    return OpBreakdown(attention + mixing, linear, other)


MODEL_FLOPS = {
    "transformer": transformer_flops,
    "fnet": fnet_flops,
    "fabnet": fabnet_flops,
}


def model_flops(name: str, spec: WorkloadSpec) -> OpBreakdown:
    try:
        return MODEL_FLOPS[name](spec)
    except KeyError:
        raise ValueError(f"unknown model {name!r}; choose from {sorted(MODEL_FLOPS)}")


# ----------------------------------------------------------------------
def dense_linear_params(d_in: int, d_out: int) -> int:
    return d_in * d_out + d_out


def butterfly_linear_params(d_in: int, d_out: int) -> int:
    n = _next_power_of_two(max(d_in, d_out))
    return int(2 * n * _log2(n)) + d_out


def transformer_params(spec: WorkloadSpec) -> int:
    d = spec.d_hidden
    per_layer = (
        4 * dense_linear_params(d, d)
        + dense_linear_params(d, spec.d_ffn)
        + dense_linear_params(spec.d_ffn, d)
        + 4 * d  # two LayerNorms
    )
    return spec.n_total * per_layer


def fnet_params(spec: WorkloadSpec) -> int:
    d = spec.d_hidden
    per_layer = (
        dense_linear_params(d, spec.d_ffn)
        + dense_linear_params(spec.d_ffn, d)
        + 4 * d
    )
    return spec.n_total * per_layer


def fabnet_params(spec: WorkloadSpec) -> int:
    d = spec.d_hidden
    ffn = butterfly_linear_params(d, spec.d_ffn) + butterfly_linear_params(
        spec.d_ffn, d
    )
    fbfly = ffn + 4 * d
    abfly = 4 * butterfly_linear_params(d, d) + ffn + 4 * d
    return spec.n_fbfly * fbfly + spec.n_abfly * abfly


MODEL_PARAMS = {
    "transformer": transformer_params,
    "fnet": fnet_params,
    "fabnet": fabnet_params,
}


def model_params(name: str, spec: WorkloadSpec) -> int:
    try:
        return MODEL_PARAMS[name](spec)
    except KeyError:
        raise ValueError(f"unknown model {name!r}; choose from {sorted(MODEL_PARAMS)}")


def embedding_params(spec: WorkloadSpec, vocab_size: int) -> int:
    """Token + positional embedding table sizes (shared by all models)."""
    return vocab_size * spec.d_hidden + spec.seq_len * spec.d_hidden


@dataclass(frozen=True)
class CompressionRatios:
    """FLOPs / model-size reduction factors (Fig. 17 bars)."""

    flops_vs_transformer: float
    flops_vs_fnet: float
    params_vs_transformer: float
    params_vs_fnet: float


def compression_ratios(
    fabnet: WorkloadSpec,
    transformer: WorkloadSpec,
    fnet: WorkloadSpec,
    vocab_size: int = 256,
) -> CompressionRatios:
    """Reduction of FABNet over the two baselines at matched workloads.

    Parameter counts include the (uncompressed) embedding tables, which
    all three models share — this is why the paper's model-size reduction
    (2~22x) is much smaller than its FLOPs reduction (10~66x).
    """
    fab_flops = fabnet_flops(fabnet).total
    fab_params = fabnet_params(fabnet) + embedding_params(fabnet, vocab_size)
    t_params = transformer_params(transformer) + embedding_params(transformer, vocab_size)
    f_params = fnet_params(fnet) + embedding_params(fnet, vocab_size)
    return CompressionRatios(
        flops_vs_transformer=transformer_flops(transformer).total / fab_flops,
        flops_vs_fnet=fnet_flops(fnet).total / fab_flops,
        params_vs_transformer=t_params / fab_params,
        params_vs_fnet=f_params / fab_params,
    )
