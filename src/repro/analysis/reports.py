"""One-shot reproduction report over the analytical experiments.

Aggregates every *fast* (no-training) experiment of the paper into a
single markdown document: the Fig. 19 speedup breakdown, Table V SOTA
comparison, Tables VI/VII cost models, and the Fig. 21 bandwidth
saturation points.  Used by ``python -m repro.cli report`` so a user can
regenerate the paper's hardware story in seconds.
"""

from __future__ import annotations

from typing import List

from ..hardware import (
    BE40_CONFIG,
    BE120_CONFIG,
    AcceleratorConfig,
    BaselineAccelerator,
    BaselineConfig,
    ButterflyPerformanceModel,
    VCU128,
    bert_spec,
    estimate_power,
    estimate_resources,
    fabnet_spec,
    speedup_over_sota,
    table5,
)
from .roofline import saturation_bandwidth_gbs


def _fig19_section() -> List[str]:
    lines = ["## Speedup breakdown (Fig. 19)", ""]
    lines.append("| model | seq | algorithm | hardware | total |")
    lines.append("|---|---|---|---|---|")
    baseline = BaselineAccelerator(BaselineConfig(n_multipliers=2048))
    butterfly = ButterflyPerformanceModel(AcceleratorConfig(pbe=128, pbu=4))
    for large in (False, True):
        for seq in (128, 1024):
            t_bert = baseline.model_latency(bert_spec(seq, large)).latency_ms
            t_fb = baseline.model_latency(fabnet_spec(seq, large)).latency_ms
            t_fa = butterfly.model_latency(fabnet_spec(seq, large)).latency_ms
            lines.append(
                f"| {'Large' if large else 'Base'} | {seq} "
                f"| x{t_bert / t_fb:.2f} | x{t_fb / t_fa:.1f} "
                f"| x{t_bert / t_fa:.1f} |"
            )
    lines.append("")
    return lines


def _table5_section() -> List[str]:
    lines = ["## SOTA comparison at 128 GOPS (Table V)", ""]
    lines.append("| accelerator | latency (ms) | power (W) | pred/J |")
    lines.append("|---|---|---|---|")
    rows = table5()
    for record in rows:
        lines.append(
            f"| {record.name} | {record.latency_ms:.1f} "
            f"| {record.power_w:.2f} | {record.energy_eff_pred_j:.2f} |"
        )
    speedups = speedup_over_sota(rows[-1])
    best = max(speedups, key=speedups.get)
    lines.append("")
    lines.append(
        f"Speedup over SOTA: x{min(speedups.values()):.1f} to "
        f"x{speedups[best]:.1f} ({best})."
    )
    lines.append("")
    return lines


def _cost_section() -> List[str]:
    lines = ["## Implemented designs (Tables VI/VII)", ""]
    lines.append("| design | DSPs | BRAMs | LUTs | power (W) | fits VCU128 |")
    lines.append("|---|---|---|---|---|---|")
    for name, config in (("BE-40", BE40_CONFIG), ("BE-120", BE120_CONFIG)):
        res = estimate_resources(config)
        power = estimate_power(config, res)
        lines.append(
            f"| {name} | {res.dsps} | {res.brams} | {res.luts:,} "
            f"| {power.total:.2f} | {res.fits(VCU128)} |"
        )
    lines.append("")
    return lines


def _bandwidth_section() -> List[str]:
    lines = ["## Bandwidth saturation (Fig. 21, analytic)", ""]
    lines.append("| BEs | saturation bandwidth (GB/s) |")
    lines.append("|---|---|")
    spec = fabnet_spec(1024, large=True)
    for n_bes in (16, 32, 64, 128):
        bw = saturation_bandwidth_gbs(spec, AcceleratorConfig(pbe=n_bes, pbu=4))
        lines.append(f"| {n_bes} | {bw:.1f} |")
    lines.append("")
    lines.append("A single HBM stack (450 GB/s) covers every configuration, "
                 "as the paper concludes.")
    lines.append("")
    return lines


def generate_report() -> str:
    """Full markdown report of the analytical reproduction results."""
    lines = [
        "# Butterfly accelerator — analytical reproduction report",
        "",
        "Regenerated from the performance, resource and power models; "
        "see EXPERIMENTS.md for paper-vs-measured commentary.",
        "",
    ]
    lines.extend(_fig19_section())
    lines.extend(_table5_section())
    lines.extend(_cost_section())
    lines.extend(_bandwidth_section())
    return "\n".join(lines)
