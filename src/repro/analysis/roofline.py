"""Arithmetic-intensity / roofline analysis of accelerator workloads.

Explains the Fig. 21 bandwidth story quantitatively: each layer kind has
an arithmetic intensity (operations per off-chip byte), and a deployment
with ``P`` total multipliers at clock ``f`` needs bandwidth
``ops_rate / intensity`` to stay compute-bound.  The module computes
per-layer intensities for a workload, the machine-balance point of an
accelerator configuration, and the minimum bandwidth at which a given
design saturates — the quantity Fig. 21 sweeps empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..hardware.config import BYTES_PER_VALUE, AcceleratorConfig
from ..hardware.perf import ButterflyPerformanceModel, WorkloadSpec


def _next_power_of_two(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


@dataclass(frozen=True)
class LayerIntensity:
    """Ops and off-chip traffic of one layer invocation."""

    name: str
    pair_ops: float
    off_chip_bytes: float

    @property
    def intensity(self) -> float:
        """Butterfly pair-operations per off-chip byte."""
        return self.pair_ops / self.off_chip_bytes


def butterfly_layer_intensity(rows: int, d_in: int, d_out: int,
                              name: str = "bfly") -> LayerIntensity:
    """Intensity of a butterfly linear layer (weights + activations)."""
    n = _next_power_of_two(max(d_in, d_out))
    stages = int(math.log2(n))
    pair_ops = rows * stages * (n // 2)
    traffic = (
        rows * d_in + rows * d_out + 4 * (n // 2) * stages
    ) * BYTES_PER_VALUE
    return LayerIntensity(name, pair_ops, traffic)


def fft2_layer_intensity(rows: int, cols: int, name: str = "fft") -> LayerIntensity:
    """Intensity of a 2D FFT tile (complex intermediates spill off-chip)."""
    c = _next_power_of_two(cols)
    r = _next_power_of_two(rows)
    pair_ops = rows * int(math.log2(c)) * (c // 2) + cols * int(math.log2(r)) * (r // 2)
    real_tile = rows * cols * BYTES_PER_VALUE
    traffic = real_tile * 2 + 2 * real_tile * 2  # in/out + complex spill
    return LayerIntensity(name, pair_ops, traffic)


def workload_intensities(spec: WorkloadSpec) -> List[LayerIntensity]:
    """Per-layer intensities of a FABNet workload (BP layers only)."""
    out: List[LayerIntensity] = []
    r, d = spec.seq_len, spec.d_hidden
    for i in range(spec.n_fbfly):
        out.append(fft2_layer_intensity(r, _next_power_of_two(d), f"fft:block{i}"))
        out.append(butterfly_layer_intensity(r, d, spec.d_ffn, f"bfly:block{i}.ffn1"))
        out.append(butterfly_layer_intensity(r, spec.d_ffn, d, f"bfly:block{i}.ffn2"))
    for i in range(spec.n_fbfly, spec.n_total):
        for proj in ("k", "v", "q", "out"):
            out.append(butterfly_layer_intensity(r, d, d, f"bfly:block{i}.{proj}"))
        out.append(butterfly_layer_intensity(r, d, spec.d_ffn, f"bfly:block{i}.ffn1"))
        out.append(butterfly_layer_intensity(r, spec.d_ffn, d, f"bfly:block{i}.ffn2"))
    return out


def machine_balance(config: AcceleratorConfig) -> float:
    """Pair-ops per byte the accelerator consumes at peak compute.

    A layer with intensity below this value is bandwidth-bound on the
    configuration.
    """
    ops_per_cycle = config.pbe * config.pbu
    bytes_per_cycle = config.bandwidth_bytes_per_cycle
    return ops_per_cycle / bytes_per_cycle


def saturation_bandwidth_gbs(spec: WorkloadSpec, config: AcceleratorConfig) -> float:
    """Minimum bandwidth (GB/s) making the whole workload compute-bound.

    Computed from the lowest-intensity layer: bandwidth must satisfy
    ``ops_rate / bw_bytes_per_s <= intensity`` for every layer.
    """
    layers = workload_intensities(spec)
    min_intensity = min(layer.intensity for layer in layers)
    ops_per_second = config.pbe * config.pbu * config.clock_mhz * 1e6
    return ops_per_second / min_intensity / 1e9


def bound_report(spec: WorkloadSpec, config: AcceleratorConfig) -> Dict[str, int]:
    """Count compute- vs memory-bound layers at the config's bandwidth."""
    balance = machine_balance(config)
    counts = {"compute": 0, "memory": 0}
    for layer in workload_intensities(spec):
        counts["compute" if layer.intensity >= balance else "memory"] += 1
    return counts


def cross_check_with_perf_model(
    spec: WorkloadSpec, config: AcceleratorConfig
) -> Dict[str, float]:
    """Compare the roofline saturation point against the cycle model.

    Returns latency at 0.5x and 2x the predicted saturation bandwidth;
    the cycle model should show a meaningful gain below saturation and
    little gain above it.
    """
    bw = saturation_bandwidth_gbs(spec, config)
    lat = {}
    for factor in (0.5, 1.0, 2.0, 4.0):
        cfg = config.with_(bandwidth_gbs=max(0.5, bw * factor))
        lat[factor] = ButterflyPerformanceModel(cfg).model_latency(spec).latency_ms
    return {
        "saturation_gbs": bw,
        "gain_below": lat[0.5] / lat[1.0],
        "gain_above": lat[2.0] / lat[4.0],
    }
