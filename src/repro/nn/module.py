"""Module/Parameter system mirroring the small subset of ``torch.nn`` we need."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter.

    Parameters carry a monotonically increasing ``version`` counter that
    the optimizers bump after every in-place update.  Kernel-side caches
    keyed on parameter contents — e.g. the fused linear projection's
    cached ``W^T`` (:func:`repro.kernels.cached_transpose`) — validate
    against this counter (plus ``data`` identity, which covers outright
    rebinds), so a stale cache can never survive a weight update.
    """

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)
        self._version = 0

    @property
    def version(self) -> int:
        """Update counter consumed by kernel-side caches."""
        return self._version

    def bump_version(self) -> None:
        """Record that ``data`` was mutated in place (invalidates caches)."""
        self._version += 1


class Module:
    """Base class for all neural-network modules.

    Sub-modules and parameters assigned as attributes are auto-registered,
    so ``named_parameters`` and ``state_dict`` walk the full tree.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].copy()
            param.bump_version()


class ModuleList(Module):
    """Hold sub-modules in a list, registering each one."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self._modules[str(len(self._items))] = module
            self._items.append(module)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)
