"""A from-scratch numpy neural-network library (the PyTorch substitute).

Public surface: the :class:`Tensor` autograd type and functional ops, the
module system, layers (dense, butterfly, attention, Fourier mixing),
optimizers and losses.
"""

from .attention import FourierMixing, MultiHeadAttention
from .butterfly_layer import ButterflyLinear
from .layers import (
    GELU,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    Tanh,
    make_activation,
)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, WarmupCosineSchedule
from .tensor import (
    Tensor,
    abs_,
    accuracy,
    add,
    clip,
    butterfly_stage,
    concat,
    cross_entropy,
    dropout,
    embedding,
    exp,
    fourier_mix_2d,
    gelu,
    getitem,
    is_grad_enabled,
    layer_norm,
    log,
    log_softmax,
    matmul,
    max_,
    mean,
    min_,
    mul,
    no_grad,
    pad_last,
    power,
    relu,
    reshape,
    sigmoid,
    softmax,
    sqrt,
    stack,
    sub,
    sum_,
    swapaxes,
    tanh,
    transpose,
    var,
    where,
)

__all__ = [
    "Adam",
    "ButterflyLinear",
    "Dropout",
    "Embedding",
    "FourierMixing",
    "GELU",
    "LayerNorm",
    "Linear",
    "Module",
    "ModuleList",
    "MultiHeadAttention",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "Tensor",
    "WarmupCosineSchedule",
    "accuracy",
    "cross_entropy",
    "make_activation",
    "no_grad",
]
