"""Trainable butterfly linear layer (the paper's compression primitive).

``ButterflyLinear`` replaces a dense ``out x in`` weight matrix with a
product of ``log2 n`` butterfly factors (``n`` = smallest power of two
covering both dimensions), reducing parameters and multiplications from
``O(in * out)`` to ``O(n log n)``.  Rectangular shapes are handled by
zero-padding the input to ``n`` and truncating the output, the standard
construction used by the butterfly literature the paper builds on
(Dao et al., Kaleidoscope).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..butterfly.factor import stage_halves
from ..butterfly.matrix import ButterflyMatrix, butterfly_flops
from ..butterfly.factor import ButterflyFactor
from . import tensor as F
from .module import Module, Parameter
from .tensor import Tensor


def _next_power_of_two(n: int) -> int:
    if n < 1:
        raise ValueError(f"dimension must be positive, got {n}")
    p = 1
    while p < n:
        p *= 2
    return p


class ButterflyLinear(Module):
    """Butterfly-factorized linear layer ``y = B x + b``.

    Args:
        in_features: input dimension (any positive integer).
        out_features: output dimension (any positive integer).
        bias: include an additive bias.
        rng: random generator for initialization.

    The internal butterfly size is ``n = next_pow2(max(in, out))``; one
    stage parameter tensor of shape ``(4, n/2)`` exists per stage, matching
    the coefficient layout consumed by the hardware Butterfly Unit model.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"features must be positive, got in={in_features}, out={out_features}"
            )
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.n = _next_power_of_two(max(in_features, out_features))
        self.halves = stage_halves(self.n)
        scale = 1.0 / np.sqrt(2.0)
        for i, _half in enumerate(self.halves):
            coeffs = rng.normal(0.0, scale, size=(4, self.n // 2))
            setattr(self, f"stage_{i}", Parameter(coeffs))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    # ------------------------------------------------------------------
    def stage_parameters(self) -> list[Parameter]:
        """Stage coefficient tensors in application order."""
        return [getattr(self, f"stage_{i}") for i in range(len(self.halves))]

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input dim {self.in_features}, got {x.shape[-1]}"
            )
        out = x
        if self.in_features < self.n:
            out = F.pad_last(out, 0, self.n - self.in_features)
        # One fused autograd op for the whole ladder (one graph node per
        # layer, not per stage), dispatching to the shared kernel layer.
        out = F.butterfly_apply(out, self.stage_parameters(), self.halves)
        if self.out_features < self.n:
            index = tuple([slice(None)] * (out.ndim - 1) + [slice(0, self.out_features)])
            out = F.getitem(out, index)
        if self.bias is not None:
            out = out + self.bias
        return out

    # ------------------------------------------------------------------
    def to_butterfly_matrix(self) -> ButterflyMatrix:
        """Snapshot the current weights as a numpy ButterflyMatrix."""
        factors = [
            ButterflyFactor(self.n, half, coeffs.data.copy())
            for half, coeffs in zip(self.halves, self.stage_parameters())
        ]
        return ButterflyMatrix(factors)

    def dense_weight(self) -> np.ndarray:
        """Equivalent dense ``out x in`` weight matrix (for verification)."""
        full = self.to_butterfly_matrix().dense()
        return full[: self.out_features, : self.in_features]

    def flops(self, rows: int = 1) -> int:
        """Forward FLOPs for ``rows`` input vectors (fast butterfly apply)."""
        total = butterfly_flops(self.n, rows)
        if self.bias is not None:
            total += rows * self.out_features
        return total
