"""Reduced-storage inference modules and ``quantize_for_inference``.

:func:`quantize_for_inference` takes a trained model and returns a
*storage-tier replica*: a deep copy in which every dense :class:`~repro.
nn.layers.Linear` and :class:`~repro.nn.butterfly_layer.ButterflyLinear`
(including the attention Q/K/V/output projections and the LM head) is
swapped for a reduced-storage counterpart (:mod:`repro.kernels.quant`).
Three tiers are offered via ``mode``: ``"int8"`` per-channel symmetric
codes plus fp32 scales (the default), ``"fp16"`` half-precision weight
storage with one-tier-wider compute, and ``"int4"`` grouped nibble-
packed codes below it.  The original model is left untouched — training
paths never see quantized weights; the replica is decode/prefill only
and raises if run in training mode.

Embeddings, LayerNorm affines and biases stay in floating point: they
are a vanishing fraction of the weight bytes (the GEMM weights dominate)
and the accelerator keeps its accumulators and normalization in wider
precision too.

The replica keeps the incremental-decoding protocol of the source model
(``make_cache`` / ``prefill`` / ``decode_step`` / ``generate``), so it
drops into :class:`repro.serving.ServingEngine` unchanged — that is what
``ServingEngine(model, quantize="int8")`` does.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..kernels import quant as QK
from .butterfly_layer import ButterflyLinear
from .layers import Linear
from .module import Module, ModuleList, Sequential
from .tensor import Tensor
from . import tensor as F


class QuantizedLinear(Module):
    """Inference-only dense layer over int8 codes and fp32 scales.

    Forward runs the blocked dequant-on-the-fly GEMM
    (:func:`repro.kernels.quantized_linear`); no gradients are recorded
    (the returned tensor is a constant leaf), and calling it in training
    mode raises.
    """

    def __init__(
        self,
        q_weight: np.ndarray,
        scales: np.ndarray,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        if q_weight.dtype != np.int8:
            raise TypeError(f"q_weight must be int8, got {q_weight.dtype}")
        self.out_features, self.in_features = q_weight.shape
        self.q_weight = q_weight
        self.scales = scales
        self.bias = None if bias is None else np.asarray(bias)
        self.training = False

    @classmethod
    def from_linear(cls, linear: Linear, calibration: str = "absmax") -> "QuantizedLinear":
        q, scales = QK.quantize_per_channel(linear.weight.data, calibration=calibration)
        bias = None if linear.bias is None else linear.bias.data.copy()
        return cls(q, scales, bias)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError(
                "QuantizedLinear is inference-only; quantize_for_inference "
                "replicas cannot be trained"
            )
        return Tensor(QK.quantized_linear(x.data, self.q_weight, self.scales, self.bias))

    def weight_nbytes(self) -> int:
        """Bytes held by the quantized weight (codes + scales + bias)."""
        total = self.q_weight.nbytes + self.scales.nbytes
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dense_weight(self) -> np.ndarray:
        """Dequantized ``(out, in)`` weight (verification / drift analysis)."""
        return QK.dequantize(self.q_weight, self.scales, dtype=np.float64)


class QuantizedButterflyLinear(Module):
    """Inference-only butterfly ladder over int8 stage codes.

    Mirrors :class:`~repro.nn.butterfly_layer.ButterflyLinear.forward`
    (pad to the internal power-of-two size, apply the ladder, truncate,
    add bias) but dequantizes each ``(4, n/2)`` stage on the fly and
    rides the shared fused grouped kernel
    (:func:`repro.kernels.quantized_butterfly_apply`).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        n: int,
        halves: List[int],
        q_stages: List[np.ndarray],
        stage_scales: List[np.ndarray],
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.n = n
        self.halves = list(halves)
        self.q_stages = q_stages
        self.stage_scales = stage_scales
        self.bias = None if bias is None else np.asarray(bias)
        self.training = False

    @classmethod
    def from_butterfly(
        cls, layer: ButterflyLinear, calibration: str = "absmax"
    ) -> "QuantizedButterflyLinear":
        coeffs = [p.data for p in layer.stage_parameters()]
        q_stages, stage_scales = QK.quantize_butterfly_stages(
            coeffs, calibration=calibration
        )
        bias = None if layer.bias is None else layer.bias.data.copy()
        return cls(
            layer.in_features, layer.out_features, layer.n, layer.halves,
            q_stages, stage_scales, bias,
        )

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError(
                "QuantizedButterflyLinear is inference-only; "
                "quantize_for_inference replicas cannot be trained"
            )
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input dim {self.in_features}, got {x.shape[-1]}"
            )
        data = x.data
        if self.in_features < self.n:
            pad = [(0, 0)] * (data.ndim - 1) + [(0, self.n - self.in_features)]
            data = np.pad(data, pad)
        out = QK.quantized_butterfly_apply(
            data, self.q_stages, self.stage_scales, self.halves
        )
        if self.out_features < self.n:
            out = out[..., : self.out_features]
        if self.bias is not None:
            out = out + self.bias
        return Tensor(out)

    def weight_nbytes(self) -> int:
        total = sum(q.nbytes for q in self.q_stages)
        total += sum(s.nbytes for s in self.stage_scales)
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dense_weight(self) -> np.ndarray:
        """Dequantized dense ``(out, in)`` equivalent (verification only)."""
        from ..butterfly.factor import ButterflyFactor
        from ..butterfly.matrix import ButterflyMatrix

        coeffs = QK.dequantize_butterfly_stages(
            self.q_stages, self.stage_scales, dtype=np.float64
        )
        factors = [
            ButterflyFactor(self.n, half, c)
            for half, c in zip(self.halves, coeffs)
        ]
        full = ButterflyMatrix(factors).dense()
        return full[: self.out_features, : self.in_features]


class HalfLinear(Module):
    """Inference-only dense layer over fp16-stored weights.

    Storage-tier sibling of :class:`QuantizedLinear`: half the weight
    bytes of fp32, compute promoted one tier wider inside
    :func:`repro.kernels.half_linear`.
    """

    def __init__(
        self, w_half: np.ndarray, bias: Optional[np.ndarray] = None
    ) -> None:
        super().__init__()
        if w_half.dtype != np.float16:
            raise TypeError(f"w_half must be float16, got {w_half.dtype}")
        self.out_features, self.in_features = w_half.shape
        self.w_half = w_half
        self.bias = None if bias is None else np.asarray(bias)
        self.training = False

    @classmethod
    def from_linear(cls, linear: Linear, calibration: str = "absmax") -> "HalfLinear":
        del calibration  # fp16 rounding needs no scale search
        bias = None if linear.bias is None else linear.bias.data.copy()
        return cls(QK.quantize_to_half(linear.weight.data), bias)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError(
                "HalfLinear is inference-only; quantize_for_inference "
                "replicas cannot be trained"
            )
        return Tensor(QK.half_linear(x.data, self.w_half, self.bias))

    def weight_nbytes(self) -> int:
        total = self.w_half.nbytes
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dense_weight(self) -> np.ndarray:
        return self.w_half.astype(np.float64)


class Int4Linear(Module):
    """Inference-only dense layer over nibble-packed int4 grouped codes."""

    def __init__(
        self,
        q4_weight: np.ndarray,
        scales: np.ndarray,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        if q4_weight.dtype != np.uint8:
            raise TypeError(f"q4_weight must be uint8, got {q4_weight.dtype}")
        self.out_features = q4_weight.shape[0]
        self.in_features = q4_weight.shape[1] * 2
        self.q4_weight = q4_weight
        self.scales = scales
        self.bias = None if bias is None else np.asarray(bias)
        self.training = False

    @classmethod
    def from_linear(cls, linear: Linear, calibration: str = "absmax") -> "Int4Linear":
        w = linear.weight.data
        packed, scales = QK.quantize_int4_grouped(
            w, group_size=_int4_group_size(w.shape[1]), calibration=calibration
        )
        bias = None if linear.bias is None else linear.bias.data.copy()
        return cls(packed, scales, bias)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError(
                "Int4Linear is inference-only; quantize_for_inference "
                "replicas cannot be trained"
            )
        return Tensor(QK.int4_linear(x.data, self.q4_weight, self.scales, self.bias))

    def weight_nbytes(self) -> int:
        total = self.q4_weight.nbytes + self.scales.nbytes
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dense_weight(self) -> np.ndarray:
        return QK.dequantize_int4_grouped(
            self.q4_weight, self.scales, dtype=np.float64
        )


def _int4_group_size(in_features: int) -> int:
    """Largest power-of-two group size <= INT4_GROUP dividing ``in_features``."""
    gs = min(QK.INT4_GROUP, in_features)
    while gs > 2 and in_features % gs:
        gs //= 2
    if gs < 2 or in_features % gs:
        raise ValueError(
            f"int4 grouping needs an even input dim, got {in_features}"
        )
    return gs


class _StorageButterflyLinear(Module):
    """Shared pad/apply/truncate shell of the storage-tier butterfly layers."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        n: int,
        halves: List[int],
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.n = n
        self.halves = list(halves)
        self.bias = None if bias is None else np.asarray(bias)
        self.training = False

    def _apply_ladder(self, data: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError(
                f"{type(self).__name__} is inference-only; "
                "quantize_for_inference replicas cannot be trained"
            )
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input dim {self.in_features}, got {x.shape[-1]}"
            )
        data = x.data
        if self.in_features < self.n:
            pad = [(0, 0)] * (data.ndim - 1) + [(0, self.n - self.in_features)]
            data = np.pad(data, pad)
        out = self._apply_ladder(data)
        if self.out_features < self.n:
            out = out[..., : self.out_features]
        if self.bias is not None:
            out = out + self.bias
        return Tensor(out)

    def _dense_from_coeffs(self, coeffs: List[np.ndarray]) -> np.ndarray:
        from ..butterfly.factor import ButterflyFactor
        from ..butterfly.matrix import ButterflyMatrix

        factors = [
            ButterflyFactor(self.n, half, c)
            for half, c in zip(self.halves, coeffs)
        ]
        full = ButterflyMatrix(factors).dense()
        return full[: self.out_features, : self.in_features]


class HalfButterflyLinear(_StorageButterflyLinear):
    """Inference-only butterfly ladder over fp16 stage coefficients."""

    def __init__(self, in_features, out_features, n, halves, h_stages,
                 bias=None) -> None:
        super().__init__(in_features, out_features, n, halves, bias)
        self.h_stages = h_stages

    @classmethod
    def from_butterfly(
        cls, layer: ButterflyLinear, calibration: str = "absmax"
    ) -> "HalfButterflyLinear":
        del calibration
        coeffs = [p.data for p in layer.stage_parameters()]
        bias = None if layer.bias is None else layer.bias.data.copy()
        return cls(
            layer.in_features, layer.out_features, layer.n, layer.halves,
            QK.half_butterfly_stages(coeffs), bias,
        )

    def _apply_ladder(self, data: np.ndarray) -> np.ndarray:
        return QK.half_butterfly_apply(data, self.h_stages, self.halves)

    def weight_nbytes(self) -> int:
        total = sum(h.nbytes for h in self.h_stages)
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dense_weight(self) -> np.ndarray:
        return self._dense_from_coeffs(
            [h.astype(np.float64) for h in self.h_stages]
        )


class Int4ButterflyLinear(_StorageButterflyLinear):
    """Inference-only butterfly ladder over grouped int4 stage codes."""

    def __init__(self, in_features, out_features, n, halves, q4_stages,
                 stage_scales, bias=None) -> None:
        super().__init__(in_features, out_features, n, halves, bias)
        self.q4_stages = q4_stages
        self.stage_scales = stage_scales

    @classmethod
    def from_butterfly(
        cls, layer: ButterflyLinear, calibration: str = "absmax"
    ) -> "Int4ButterflyLinear":
        coeffs = [p.data for p in layer.stage_parameters()]
        q4_stages, stage_scales = QK.quantize_butterfly_stages_int4(
            coeffs, calibration=calibration
        )
        bias = None if layer.bias is None else layer.bias.data.copy()
        return cls(
            layer.in_features, layer.out_features, layer.n, layer.halves,
            q4_stages, stage_scales, bias,
        )

    def _apply_ladder(self, data: np.ndarray) -> np.ndarray:
        return QK.int4_butterfly_apply(
            data, self.q4_stages, self.stage_scales, self.halves
        )

    def weight_nbytes(self) -> int:
        total = sum(q.nbytes for q in self.q4_stages)
        total += sum(s.nbytes for s in self.stage_scales)
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dense_weight(self) -> np.ndarray:
        return self._dense_from_coeffs([
            QK.dequantize_int4_grouped(q, s, dtype=np.float64)
            for q, s in zip(self.q4_stages, self.stage_scales)
        ])


_QUANTIZABLE = (Linear, ButterflyLinear)
_QUANTIZED = (
    QuantizedLinear,
    QuantizedButterflyLinear,
    HalfLinear,
    HalfButterflyLinear,
    Int4Linear,
    Int4ButterflyLinear,
)

#: Storage tiers understood by :func:`quantize_for_inference`: mode ->
#: (Linear replacement, ButterflyLinear replacement).
QUANT_MODES: Dict[str, tuple] = {
    "int8": (QuantizedLinear, QuantizedButterflyLinear),
    "fp16": (HalfLinear, HalfButterflyLinear),
    "int4": (Int4Linear, Int4ButterflyLinear),
}


@dataclass
class QuantizationReport:
    """What :func:`quantize_for_inference` did to a model.

    ``fp_weight_bytes`` / ``quant_weight_bytes`` cover the *whole* model
    (quantized GEMM weights plus the fp parameters left in place), so
    ``memory_ratio`` is the end-to-end weight-footprint ratio quoted in
    ``BENCH_quant.json``.  Logit-drift fields are populated only when
    calibration tokens are supplied.
    """

    layers_quantized: int
    butterfly_layers_quantized: int
    calibration: str
    fp_weight_bytes: int
    quant_weight_bytes: int
    mode: str = "int8"
    weight_rmse: Dict[str, float] = field(default_factory=dict)
    max_logit_drift: Optional[float] = None
    mean_logit_drift: Optional[float] = None

    @property
    def memory_ratio(self) -> float:
        """Quantized weight bytes as a fraction of the fp footprint."""
        return self.quant_weight_bytes / max(1, self.fp_weight_bytes)


def weight_memory_bytes(model: Module) -> int:
    """Total weight bytes of a model: fp parameters + int8 buffers.

    Parameters reachable through quantized modules are gone (replaced by
    codes/scales, counted via ``weight_nbytes``); everything else is the
    ``nbytes`` of its parameter arrays.
    """
    total = sum(p.data.nbytes for p in model.parameters())
    for module in _walk(model):
        if isinstance(module, _QUANTIZED):
            total += module.weight_nbytes()
    return total


def _walk(module: Module):
    yield module
    for child in module._modules.values():
        yield from _walk(child)


def _weight_rmse(child: Linear, replacement: Module) -> float:
    """Round-trip RMSE of a dense weight against its storage-tier twin."""
    w = child.weight.data
    if isinstance(replacement, QuantizedLinear):
        return QK.quantization_rmse(w, replacement.q_weight, replacement.scales)
    if isinstance(replacement, Int4Linear):
        return QK.int4_quantization_rmse(
            w, replacement.q4_weight, replacement.scales
        )
    w_hat = replacement.dense_weight()
    return float(np.sqrt(np.square(w_hat - np.asarray(w, np.float64)).mean()))


def _swap_quantizable(
    module: Module, calibration: str, report: QuantizationReport,
    mode: str = "int8", prefix: str = "",
):
    """Recursively replace Linear/ButterflyLinear children with storage twins."""
    linear_cls, butterfly_cls = QUANT_MODES[mode]
    for name, child in list(module._modules.items()):
        path = f"{prefix}{name}"
        if isinstance(child, Linear):
            replacement = linear_cls.from_linear(child, calibration=calibration)
            report.layers_quantized += 1
            report.weight_rmse[path] = _weight_rmse(child, replacement)
        elif isinstance(child, ButterflyLinear):
            replacement = butterfly_cls.from_butterfly(
                child, calibration=calibration
            )
            report.butterfly_layers_quantized += 1
        else:
            _swap_quantizable(child, calibration, report, mode=mode,
                              prefix=f"{path}.")
            continue
        module._modules[name] = replacement
        object.__setattr__(module, name, replacement)
        if isinstance(module, (ModuleList, Sequential)):
            # Container forwards iterate _items, not _modules.
            module._items[int(name)] = replacement


def quantize_for_inference(
    model: Module,
    calibration: str = "absmax",
    sample_tokens: Optional[np.ndarray] = None,
    max_logit_drift: Optional[float] = None,
    mode: str = "int8",
) -> Module:
    """Return a reduced-storage inference replica (original untouched).

    Every ``Linear`` / ``ButterflyLinear`` in the copied module tree —
    attention projections, FFN layers, the LM head — becomes its
    ``mode`` counterpart: ``"int8"`` per-channel symmetric codes
    (:class:`QuantizedLinear`), ``"fp16"`` half-precision storage
    (:class:`HalfLinear`) or ``"int4"`` grouped nibble-packed codes
    (:class:`Int4Linear`), each with a butterfly sibling.
    ``calibration`` selects the scale search for the integer tiers
    (``"absmax"`` or ``"mse"``, see
    :func:`repro.kernels.calibrate_scales`; ignored by ``"fp16"``).

    ``sample_tokens`` (an int token batch accepted by ``model``) runs a
    drift calibration pass: both models are evaluated and the max/mean
    absolute logit difference is recorded in the replica's
    ``quantization_report``.  With ``max_logit_drift`` set, a drift above
    the bound raises ``ValueError`` instead of returning a silently
    degraded replica.

    The replica is in eval mode and inference-only: its quantized
    modules raise in training mode, and its ``state_dict`` no longer
    carries the quantized weights (it is a serving artifact, not a
    checkpoint — persist the original model instead).
    """
    if mode not in QUANT_MODES:
        raise ValueError(
            f"mode must be one of {sorted(QUANT_MODES)}, got {mode!r}"
        )
    quantized = copy.deepcopy(model).eval()
    report = QuantizationReport(
        layers_quantized=0,
        butterfly_layers_quantized=0,
        calibration=calibration,
        fp_weight_bytes=weight_memory_bytes(model),
        quant_weight_bytes=0,
        mode=mode,
    )
    _swap_quantizable(quantized, calibration, report, mode=mode)
    if report.layers_quantized + report.butterfly_layers_quantized == 0:
        raise ValueError(
            "model has no Linear/ButterflyLinear layers to quantize"
        )
    report.quant_weight_bytes = weight_memory_bytes(quantized)
    if sample_tokens is not None:
        sample_tokens = np.asarray(sample_tokens, dtype=np.int64)
        model_training = model.training
        model.eval()
        try:
            with F.no_grad():
                reference = model(sample_tokens).data
                drifted = quantized(sample_tokens).data
        finally:
            model.train(model_training)
        drift = np.abs(drifted - reference)
        report.max_logit_drift = float(drift.max())
        report.mean_logit_drift = float(drift.mean())
        if max_logit_drift is not None and report.max_logit_drift > max_logit_drift:
            raise ValueError(
                f"quantized logit drift {report.max_logit_drift:.3e} exceeds "
                f"the requested bound {max_logit_drift:.3e} "
                "(try calibration='mse' or keep this model in fp)"
            )
    quantized.quantization_report = report
    return quantized
