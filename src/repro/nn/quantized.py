"""Int8 inference modules and the ``quantize_for_inference`` transform.

:func:`quantize_for_inference` takes a trained model and returns a
*quantized replica*: a deep copy in which every dense :class:`~repro.nn.
layers.Linear` and :class:`~repro.nn.butterfly_layer.ButterflyLinear`
(including the attention Q/K/V/output projections and the LM head) is
swapped for an int8 counterpart holding per-channel symmetric codes plus
fp32 scales (:mod:`repro.kernels.quant`).  The original model is left
untouched — training paths never see quantized weights; the replica is
decode/prefill only and raises if run in training mode.

Embeddings, LayerNorm affines and biases stay in floating point: they
are a vanishing fraction of the weight bytes (the GEMM weights dominate)
and the accelerator keeps its accumulators and normalization in wider
precision too.

The replica keeps the incremental-decoding protocol of the source model
(``make_cache`` / ``prefill`` / ``decode_step`` / ``generate``), so it
drops into :class:`repro.serving.ServingEngine` unchanged — that is what
``ServingEngine(model, quantize="int8")`` does.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..kernels import quant as QK
from .butterfly_layer import ButterflyLinear
from .layers import Linear
from .module import Module, ModuleList, Sequential
from .tensor import Tensor
from . import tensor as F


class QuantizedLinear(Module):
    """Inference-only dense layer over int8 codes and fp32 scales.

    Forward runs the blocked dequant-on-the-fly GEMM
    (:func:`repro.kernels.quantized_linear`); no gradients are recorded
    (the returned tensor is a constant leaf), and calling it in training
    mode raises.
    """

    def __init__(
        self,
        q_weight: np.ndarray,
        scales: np.ndarray,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        if q_weight.dtype != np.int8:
            raise TypeError(f"q_weight must be int8, got {q_weight.dtype}")
        self.out_features, self.in_features = q_weight.shape
        self.q_weight = q_weight
        self.scales = scales
        self.bias = None if bias is None else np.asarray(bias)
        self.training = False

    @classmethod
    def from_linear(cls, linear: Linear, calibration: str = "absmax") -> "QuantizedLinear":
        q, scales = QK.quantize_per_channel(linear.weight.data, calibration=calibration)
        bias = None if linear.bias is None else linear.bias.data.copy()
        return cls(q, scales, bias)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError(
                "QuantizedLinear is inference-only; quantize_for_inference "
                "replicas cannot be trained"
            )
        return Tensor(QK.quantized_linear(x.data, self.q_weight, self.scales, self.bias))

    def weight_nbytes(self) -> int:
        """Bytes held by the quantized weight (codes + scales + bias)."""
        total = self.q_weight.nbytes + self.scales.nbytes
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dense_weight(self) -> np.ndarray:
        """Dequantized ``(out, in)`` weight (verification / drift analysis)."""
        return QK.dequantize(self.q_weight, self.scales, dtype=np.float64)


class QuantizedButterflyLinear(Module):
    """Inference-only butterfly ladder over int8 stage codes.

    Mirrors :class:`~repro.nn.butterfly_layer.ButterflyLinear.forward`
    (pad to the internal power-of-two size, apply the ladder, truncate,
    add bias) but dequantizes each ``(4, n/2)`` stage on the fly and
    rides the shared fused grouped kernel
    (:func:`repro.kernels.quantized_butterfly_apply`).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        n: int,
        halves: List[int],
        q_stages: List[np.ndarray],
        stage_scales: List[np.ndarray],
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.n = n
        self.halves = list(halves)
        self.q_stages = q_stages
        self.stage_scales = stage_scales
        self.bias = None if bias is None else np.asarray(bias)
        self.training = False

    @classmethod
    def from_butterfly(
        cls, layer: ButterflyLinear, calibration: str = "absmax"
    ) -> "QuantizedButterflyLinear":
        coeffs = [p.data for p in layer.stage_parameters()]
        q_stages, stage_scales = QK.quantize_butterfly_stages(
            coeffs, calibration=calibration
        )
        bias = None if layer.bias is None else layer.bias.data.copy()
        return cls(
            layer.in_features, layer.out_features, layer.n, layer.halves,
            q_stages, stage_scales, bias,
        )

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError(
                "QuantizedButterflyLinear is inference-only; "
                "quantize_for_inference replicas cannot be trained"
            )
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input dim {self.in_features}, got {x.shape[-1]}"
            )
        data = x.data
        if self.in_features < self.n:
            pad = [(0, 0)] * (data.ndim - 1) + [(0, self.n - self.in_features)]
            data = np.pad(data, pad)
        out = QK.quantized_butterfly_apply(
            data, self.q_stages, self.stage_scales, self.halves
        )
        if self.out_features < self.n:
            out = out[..., : self.out_features]
        if self.bias is not None:
            out = out + self.bias
        return Tensor(out)

    def weight_nbytes(self) -> int:
        total = sum(q.nbytes for q in self.q_stages)
        total += sum(s.nbytes for s in self.stage_scales)
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dense_weight(self) -> np.ndarray:
        """Dequantized dense ``(out, in)`` equivalent (verification only)."""
        from ..butterfly.factor import ButterflyFactor
        from ..butterfly.matrix import ButterflyMatrix

        coeffs = QK.dequantize_butterfly_stages(
            self.q_stages, self.stage_scales, dtype=np.float64
        )
        factors = [
            ButterflyFactor(self.n, half, c)
            for half, c in zip(self.halves, coeffs)
        ]
        full = ButterflyMatrix(factors).dense()
        return full[: self.out_features, : self.in_features]


_QUANTIZABLE = (Linear, ButterflyLinear)
_QUANTIZED = (QuantizedLinear, QuantizedButterflyLinear)


@dataclass
class QuantizationReport:
    """What :func:`quantize_for_inference` did to a model.

    ``fp_weight_bytes`` / ``quant_weight_bytes`` cover the *whole* model
    (quantized GEMM weights plus the fp parameters left in place), so
    ``memory_ratio`` is the end-to-end weight-footprint ratio quoted in
    ``BENCH_quant.json``.  Logit-drift fields are populated only when
    calibration tokens are supplied.
    """

    layers_quantized: int
    butterfly_layers_quantized: int
    calibration: str
    fp_weight_bytes: int
    quant_weight_bytes: int
    weight_rmse: Dict[str, float] = field(default_factory=dict)
    max_logit_drift: Optional[float] = None
    mean_logit_drift: Optional[float] = None

    @property
    def memory_ratio(self) -> float:
        """Quantized weight bytes as a fraction of the fp footprint."""
        return self.quant_weight_bytes / max(1, self.fp_weight_bytes)


def weight_memory_bytes(model: Module) -> int:
    """Total weight bytes of a model: fp parameters + int8 buffers.

    Parameters reachable through quantized modules are gone (replaced by
    codes/scales, counted via ``weight_nbytes``); everything else is the
    ``nbytes`` of its parameter arrays.
    """
    total = sum(p.data.nbytes for p in model.parameters())
    for module in _walk(model):
        if isinstance(module, _QUANTIZED):
            total += module.weight_nbytes()
    return total


def _walk(module: Module):
    yield module
    for child in module._modules.values():
        yield from _walk(child)


def _swap_quantizable(
    module: Module, calibration: str, report: QuantizationReport, prefix: str = ""
):
    """Recursively replace Linear/ButterflyLinear children with int8 twins."""
    for name, child in list(module._modules.items()):
        path = f"{prefix}{name}"
        if isinstance(child, Linear):
            replacement = QuantizedLinear.from_linear(child, calibration=calibration)
            report.layers_quantized += 1
            report.weight_rmse[path] = QK.quantization_rmse(
                child.weight.data, replacement.q_weight, replacement.scales
            )
        elif isinstance(child, ButterflyLinear):
            replacement = QuantizedButterflyLinear.from_butterfly(
                child, calibration=calibration
            )
            report.butterfly_layers_quantized += 1
        else:
            _swap_quantizable(child, calibration, report, prefix=f"{path}.")
            continue
        module._modules[name] = replacement
        object.__setattr__(module, name, replacement)
        if isinstance(module, (ModuleList, Sequential)):
            # Container forwards iterate _items, not _modules.
            module._items[int(name)] = replacement


def quantize_for_inference(
    model: Module,
    calibration: str = "absmax",
    sample_tokens: Optional[np.ndarray] = None,
    max_logit_drift: Optional[float] = None,
) -> Module:
    """Return an int8 inference replica of ``model`` (original untouched).

    Every ``Linear`` / ``ButterflyLinear`` in the copied module tree —
    attention projections, FFN layers, the LM head — becomes a
    :class:`QuantizedLinear` / :class:`QuantizedButterflyLinear` with
    per-channel symmetric int8 weights.  ``calibration`` selects the
    scale search (``"absmax"`` or ``"mse"``, see
    :func:`repro.kernels.calibrate_scales`).

    ``sample_tokens`` (an int token batch accepted by ``model``) runs a
    drift calibration pass: both models are evaluated and the max/mean
    absolute logit difference is recorded in the replica's
    ``quantization_report``.  With ``max_logit_drift`` set, a drift above
    the bound raises ``ValueError`` instead of returning a silently
    degraded replica.

    The replica is in eval mode and inference-only: its quantized
    modules raise in training mode, and its ``state_dict`` no longer
    carries the quantized weights (it is a serving artifact, not a
    checkpoint — persist the original model instead).
    """
    quantized = copy.deepcopy(model).eval()
    report = QuantizationReport(
        layers_quantized=0,
        butterfly_layers_quantized=0,
        calibration=calibration,
        fp_weight_bytes=weight_memory_bytes(model),
        quant_weight_bytes=0,
    )
    _swap_quantizable(quantized, calibration, report)
    if report.layers_quantized + report.butterfly_layers_quantized == 0:
        raise ValueError(
            "model has no Linear/ButterflyLinear layers to quantize"
        )
    report.quant_weight_bytes = weight_memory_bytes(quantized)
    if sample_tokens is not None:
        sample_tokens = np.asarray(sample_tokens, dtype=np.int64)
        model_training = model.training
        model.eval()
        try:
            with F.no_grad():
                reference = model(sample_tokens).data
                drifted = quantized(sample_tokens).data
        finally:
            model.train(model_training)
        drift = np.abs(drifted - reference)
        report.max_logit_drift = float(drift.max())
        report.mean_logit_drift = float(drift.mean())
        if max_logit_drift is not None and report.max_logit_drift > max_logit_drift:
            raise ValueError(
                f"quantized logit drift {report.max_logit_drift:.3e} exceeds "
                f"the requested bound {max_logit_drift:.3e} "
                "(try calibration='mse' or keep this model in fp)"
            )
    quantized.quantization_report = report
    return quantized
