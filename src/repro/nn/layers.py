"""Core neural-network layers built on the autograd engine."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import tensor as F
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Dense affine layer ``y = x W^T + b`` with Xavier-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-bound, bound, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        # One fused graph node (GEMM + bias) with the contiguous W^T
        # cached on the parameter; see repro.kernels.fused.
        return F.linear_act(x, self.weight, self.bias)


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_dim))
        self.beta = Parameter(np.zeros(normalized_dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self.rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


_ACTIVATIONS = {"relu": ReLU, "gelu": GELU, "tanh": Tanh}


def make_activation(name: str) -> Module:
    """Instantiate an activation module by name ('relu', 'gelu', 'tanh')."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}")
