"""Multi-head attention and Fourier token-mixing blocks."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels import attention as AK
from . import tensor as F
from .butterfly_layer import ButterflyLinear
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor


class MultiHeadAttention(Module):
    """Standard scaled-dot-product multi-head attention.

    The four projection layers (Q, K, V, output) can be either dense
    (vanilla Transformer) or butterfly-factorized (the paper's ABfly
    block) by setting ``butterfly=True``.

    The attention computation itself runs through the fused
    streaming-softmax kernel (:mod:`repro.kernels.attention`): one
    autograd node per call, ``O(B*H*L*block)`` peak score memory, cached
    causal bias buffers, and a dedicated single-token fast path for
    KV-cache decoding.  The composite op chain survives only for the
    training-with-attention-dropout configuration, which needs the
    materialized softmax.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        dropout: float = 0.0,
        butterfly: bool = False,
        causal: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        rng = rng or np.random.default_rng()
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.butterfly = butterfly
        self.causal = causal
        proj = ButterflyLinear if butterfly else Linear
        self.q_proj = proj(d_model, d_model, rng=rng)
        self.k_proj = proj(d_model, d_model, rng=rng)
        self.v_proj = proj(d_model, d_model, rng=rng)
        self.out_proj = proj(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, L, D) -> (B, H, L, Dh)
        x = F.reshape(x, (batch, seq, self.n_heads, self.d_head))
        return F.transpose(x, (0, 2, 1, 3))

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        layer_kv=None,
    ) -> Tensor:
        """Attend over ``x`` of shape (batch, seq, d_model).

        ``mask`` is an optional boolean array (batch, seq) with True for
        valid positions; masked positions receive -inf scores as keys.

        ``layer_kv`` (a :class:`repro.serving.kv_cache.LayerKV`) switches
        to the incremental decode path: ``x`` then holds only *new*
        tokens, whose keys/values are appended to the cache, and queries
        attend over the full cached context.  Requires ``causal=True``
        and is inference-only (gradients do not flow through the cache).
        """
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)
        if layer_kv is not None:
            if not self.causal:
                raise ValueError("KV-cached attention requires causal=True")
            if mask is not None:
                raise ValueError(
                    "KV-cached attention handles padding via the cache's "
                    "per-row lengths; an explicit key mask is not supported"
                )
            return self._attend_cached(q, k, v, layer_kv, batch, seq)

        if self.training and self.attn_dropout.rate > 0.0:
            # Attention-probability dropout needs the materialized
            # softmax; only this (training + dropout) configuration pays
            # for the composite op chain.
            context = self._attend_composite(q, k, v, mask, seq)
        else:
            context = F.scaled_dot_attention(
                q, k, v, causal=self.causal, key_mask=mask,
                scale=1.0 / np.sqrt(self.d_head),
            )
        context = F.transpose(context, (0, 2, 1, 3))
        context = F.reshape(context, (batch, seq, self.d_model))
        return self.out_proj(context)

    def _attend_composite(
        self, q: Tensor, k: Tensor, v: Tensor, mask: Optional[np.ndarray], seq: int
    ) -> Tensor:
        """Composite-op attention (only used for attention-prob dropout)."""
        scores = F.matmul(q, F.transpose(k, (0, 1, 3, 2))) * (1.0 / np.sqrt(self.d_head))
        if mask is not None:
            scores = scores + Tensor(AK.padding_bias(mask, scores.dtype)[:, None, None, :])
        if self.causal:
            scores = scores + Tensor(AK.causal_bias(seq, seq, scores.dtype))
        attn = F.softmax(scores, axis=-1)
        attn = self.attn_dropout(attn)
        return F.matmul(attn, v)  # (B, H, L, Dh)

    def _attend_cached(
        self, q: Tensor, k: Tensor, v: Tensor, layer_kv, batch: int, seq: int
    ) -> Tensor:
        """Incremental attention over cached keys/values plus new tokens.

        Row ``b`` already holds ``lengths[b]`` cached positions; the new
        tokens land at ``lengths[b] .. lengths[b] + seq - 1``.  Query
        ``s`` may attend to cached positions and to new positions up to
        its own (causal), which also masks the padding of shorter rows
        in a ragged batch.  A single new token outside autograd (the
        serving decode step) takes :func:`repro.kernels.attention_decode`;
        everything else (prefill, multi-token continuation) goes through
        the fused kernel with per-row query offsets.
        """
        if self.training and self.attn_dropout.rate > 0.0:
            raise RuntimeError(
                "KV-cached attention is inference-only and does not apply "
                "attention dropout; call .eval() first"
            )
        lengths = layer_kv.lengths
        layer_kv.write(k.data, v.data)
        total = int(lengths.max()) + seq if batch else seq
        k_all, v_all = layer_kv.view(total)
        scale = 1.0 / np.sqrt(self.d_head)
        if seq == 1 and not F.is_grad_enabled():
            # Decode fast path: one new token per row against the cached
            # context — no transposes, no reshapes, no bias arrays
            # (ragged rows are masked by per-row lengths inside the
            # kernel).  This is the serving engine's per-step hot path.
            ctx = AK.attention_decode(
                q.data[:, :, 0], k_all, v_all, lengths=lengths, scale=scale
            )
            return self.out_proj(Tensor(ctx.reshape(batch, 1, self.d_model)))
        context = F.scaled_dot_attention(
            q, Tensor(k_all), Tensor(v_all),
            causal=True, q_start=lengths, scale=scale,
        )  # (B, H, S, Dh)
        context = F.transpose(context, (0, 2, 1, 3))
        context = F.reshape(context, (batch, seq, self.d_model))
        return self.out_proj(context)


class FourierMixing(Module):
    """FNet-style parameter-free token mixing: ``Re(FFT2(x))``.

    Replaces the attention sub-layer in FBfly blocks.  The 2D transform
    runs along the sequence and hidden axes; only the real component is
    kept, exactly as in FNet / the paper's Fourier layer.
    """

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        return F.fourier_mix_2d(x)
