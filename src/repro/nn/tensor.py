"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole reproduction: the
paper trains FABNet/FNet/Transformer with PyTorch, and we replace PyTorch
with this small, self-contained autograd engine.  A :class:`Tensor` wraps a
``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` walks the recorded graph in reverse topological
order and accumulates gradients.

Only the operations needed by the models in :mod:`repro.models` are
implemented, but each is implemented with full broadcasting support and is
verified against finite differences in ``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from .. import kernels as _kernels
# get_default_dtype is used below; the other two are re-exported through
# repro.nn (redundant aliases mark them as intentional re-exports).
from ..kernels.dtype import default_dtype as default_dtype
from ..kernels.dtype import get_default_dtype
from ..kernels.dtype import set_default_dtype as set_default_dtype

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (for evaluation)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce to the policy floating dtype (see :mod:`repro.kernels.dtype`).

    ``float64`` by default; ``float32`` throughout when the caller has
    opted in via :func:`repro.kernels.set_default_dtype`.
    """
    if dtype is None:
        dtype = get_default_dtype()
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size one.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = requires_grad and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def backward(
        self, grad: Optional[ArrayLike] = None, retain_graph: bool = False
    ) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Unless ``retain_graph`` is set, each node's backward closure —
        and with it every saved activation — is released as soon as the
        node has propagated its gradient, so peak training memory decays
        *during* the backward pass instead of holding the whole forward
        graph alive until the loss tensor is garbage-collected.  A
        second ``backward()`` through a released graph raises
        ``RuntimeError`` (recompute the forward, or pass
        ``retain_graph=True`` on the first call).

        Interior gradients with fan-in are accumulated **in place** into
        an engine-owned buffer (``np.add(..., out=)``); buffers received
        from op backwards are never mutated, because ops may legally
        hand the same array to several parents (e.g. broadcast-free
        ``add``, the fused residual LayerNorm).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: set[int] = set()
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is not None:
                if node.requires_grad and node._backward is None:
                    # Leaf tensor: accumulate.
                    node.grad = (
                        node_grad if node.grad is None else node.grad + node_grad
                    )
                if node._backward is not None:
                    node._accumulate_parent_grads(node_grad, grads, owned)
            if not retain_graph and node._backward is not None:
                # Eager release: drop the closure (and the activations it
                # saved) now that this node's gradient has been consumed.
                node._backward = _graph_freed
                node._parents = ()

    def _accumulate_parent_grads(
        self,
        grad: np.ndarray,
        grads: dict[int, np.ndarray],
        owned: set[int],
    ) -> None:
        parent_grads = self._backward(grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None:
                continue
            # Propagate into leaves, interior nodes, and *released* nodes
            # (parents cleared but _backward holds the freed sentinel) —
            # the latter must reach _graph_freed and raise rather than be
            # silently skipped as constants, or a second backward through
            # a shared subgraph would drop gradients without a sound.
            if not (
                parent.requires_grad
                or parent._parents
                or parent._backward is not None
            ):
                continue
            key = id(parent)
            buffer = grads.get(key)
            if buffer is None:
                # First contribution: keep the op's array as-is (it may be
                # a view or shared with a sibling parent — never write it).
                grads[key] = pgrad
            elif key in owned:
                # Engine-owned accumulation buffer: add in place.
                np.add(buffer, pgrad, out=buffer)
            else:
                # Second contribution: promote to an engine-owned buffer
                # so every further contribution accumulates in place.
                grads[key] = buffer + pgrad
                owned.add(key)

    # ------------------------------------------------------------------
    # Operator overloads
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        return add(self, _ensure_tensor(other))

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return add(_ensure_tensor(other), self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return sub(self, _ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return sub(_ensure_tensor(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return mul(self, _ensure_tensor(other))

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return mul(_ensure_tensor(other), self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return div(self, _ensure_tensor(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return div(_ensure_tensor(other), self)

    def __neg__(self) -> "Tensor":
        return mul(self, Tensor(-1.0))

    def __pow__(self, exponent: float) -> "Tensor":
        return power(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return matmul(self, _ensure_tensor(other))

    def __getitem__(self, index) -> "Tensor":
        return getitem(self, index)

    # Convenience methods mirroring the functional API.
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, *axes: int) -> "Tensor":
        return transpose(self, axes if axes else None)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return mean(self, axis=axis, keepdims=keepdims)

    def exp(self) -> "Tensor":
        return exp(self)

    def log(self) -> "Tensor":
        return log(self)

    def sqrt(self) -> "Tensor":
        return sqrt(self)

    def tanh(self) -> "Tensor":
        return tanh(self)

    def relu(self) -> "Tensor":
        return relu(self)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return max_(self, axis=axis, keepdims=keepdims)


def _graph_freed(grad: np.ndarray):
    raise RuntimeError(
        "cannot backpropagate: this graph's buffers were freed by a previous "
        "backward() call (saved activations are released eagerly); recompute "
        "the forward pass or call backward(retain_graph=True)"
    )


def _ensure_tensor(value: ArrayLike) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _should_record(parents: Sequence[Tensor]) -> bool:
    """Whether an op over ``parents`` must be recorded in the graph.

    Shared by :func:`_make_result` and ops that precompute backward
    state (e.g. :func:`butterfly_apply`) so the two can never disagree.
    """
    return _GRAD_ENABLED and any(p.requires_grad or p._parents for p in parents)


def _make_result(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward: Callable[[np.ndarray], tuple],
) -> Tensor:
    """Create an op result node, recording the graph only when needed."""
    out = Tensor(data)
    if _should_record(parents):
        out._parents = tuple(parents)
        out._backward = backward
        out.requires_grad = False
    return out


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    data = a.data + b.data

    def backward(grad: np.ndarray):
        return _unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape)

    return _make_result(data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    data = a.data - b.data

    def backward(grad: np.ndarray):
        return _unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape)

    return _make_result(data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    data = a.data * b.data

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad * b.data, a.shape),
            _unbroadcast(grad * a.data, b.shape),
        )

    return _make_result(data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    data = a.data / b.data

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad / b.data, a.shape),
            _unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return _make_result(data, (a, b), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    data = a.data**exponent

    def backward(grad: np.ndarray):
        return (grad * exponent * a.data ** (exponent - 1),)

    return _make_result(data, (a,), backward)


def exp(a: Tensor) -> Tensor:
    data = np.exp(a.data)

    def backward(grad: np.ndarray):
        return (grad * data,)

    return _make_result(data, (a,), backward)


def log(a: Tensor) -> Tensor:
    data = np.log(a.data)

    def backward(grad: np.ndarray):
        return (grad / a.data,)

    return _make_result(data, (a,), backward)


def sqrt(a: Tensor) -> Tensor:
    data = np.sqrt(a.data)

    def backward(grad: np.ndarray):
        return (grad * 0.5 / data,)

    return _make_result(data, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    data = np.tanh(a.data)

    def backward(grad: np.ndarray):
        return (grad * (1.0 - data**2),)

    return _make_result(data, (a,), backward)


def relu(a: Tensor) -> Tensor:
    data = np.maximum(a.data, 0.0)

    def backward(grad: np.ndarray):
        return (grad * (a.data > 0.0),)

    return _make_result(data, (a,), backward)


_GELU_C = np.sqrt(2.0 / np.pi)


def gelu(a: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT).

    On the live path the cube/square are spelled as repeated multiplies
    — ``np.power``'s pow() inner loop is ~40x slower for the same
    last-ulp result.  Under :func:`repro.kernels.use_fused` ``(False)``
    the seed's ``x**3`` form is kept verbatim, so the composite baseline
    the training benchmark compares against stays the true pre-fusion
    implementation.
    """
    x = a.data
    fast = _kernels.fused_enabled()
    cube = x * x * x if fast else x**3
    inner = _GELU_C * (x + 0.044715 * cube)
    t = np.tanh(inner)
    data = 0.5 * x * (1.0 + t)

    def backward(grad: np.ndarray):
        square = x * x if fast else x**2
        dinner = _GELU_C * (1.0 + 3 * 0.044715 * square)
        dt = ((1.0 - t * t) if fast else (1.0 - t**2)) * dinner
        return (grad * (0.5 * (1.0 + t) + 0.5 * x * dt),)

    return _make_result(data, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad: np.ndarray):
        return (grad * data * (1.0 - data),)

    return _make_result(data, (a,), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def matmul(a: Tensor, b: Tensor) -> Tensor:
    data = a.data @ b.data

    def backward(grad: np.ndarray):
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            return grad * b_data, grad * a_data
        if a_data.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n)
            ga = (grad[..., None, :] * b_data).sum(axis=-1)
            ga = _unbroadcast(ga, a_data.shape)
            gb = a_data[..., :, None] * grad[..., None, :]
            return ga, _unbroadcast(gb, b_data.shape)
        if b_data.ndim == 1:
            ga = grad[..., :, None] * b_data
            gb = (a_data * grad[..., :, None]).sum(axis=tuple(range(a_data.ndim - 1)))
            return _unbroadcast(ga, a_data.shape), _unbroadcast(gb, b_data.shape)
        ga = grad @ np.swapaxes(b_data, -1, -2)
        gb = np.swapaxes(a_data, -1, -2) @ grad
        return _unbroadcast(ga, a_data.shape), _unbroadcast(gb, b_data.shape)

    return _make_result(data, (a, b), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    data = a.data.reshape(shape)
    original = a.shape

    def backward(grad: np.ndarray):
        return (grad.reshape(original),)

    return _make_result(data, (a,), backward)


def transpose(a: Tensor, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(grad: np.ndarray):
        return (np.transpose(grad, inverse),)

    return _make_result(data, (a,), backward)


def swapaxes(a: Tensor, axis1: int, axis2: int) -> Tensor:
    data = np.swapaxes(a.data, axis1, axis2)

    def backward(grad: np.ndarray):
        return (np.swapaxes(grad, axis1, axis2),)

    return _make_result(data, (a,), backward)


def _index_may_repeat(index) -> bool:
    """Whether an index expression can visit the same element twice.

    Only integer-array (fancy) indices can alias; slices, scalars and
    boolean masks cannot, so their scatter-back can use vectorized
    ``+=`` instead of the elementwise ``np.add.at`` loop.
    """
    items = index if isinstance(index, tuple) else (index,)
    for item in items:
        if isinstance(item, (list, np.ndarray)) and np.asarray(item).dtype.kind in "iu":
            return True
    return False


def getitem(a: Tensor, index) -> Tensor:
    data = a.data[index]
    shape = a.shape
    scatter_add = _index_may_repeat(index)

    def backward(grad: np.ndarray):
        full = np.zeros(shape, dtype=grad.dtype)
        if scatter_add:
            np.add.at(full, index, grad)
        else:
            full[index] += grad
        return (full,)

    return _make_result(data, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray):
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad, splits, axis=axis))

    return _make_result(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        parts = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return _make_result(data, tuple(tensors), backward)


def pad_last(a: Tensor, before: int, after: int) -> Tensor:
    """Zero-pad the last dimension (used to embed vectors in larger butterflies)."""
    widths = [(0, 0)] * (a.ndim - 1) + [(before, after)]
    data = np.pad(a.data, widths)
    n = a.shape[-1]

    def backward(grad: np.ndarray):
        sl = [slice(None)] * (grad.ndim - 1) + [slice(before, before + n)]
        return (grad[tuple(sl)],)

    return _make_result(data, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    data = a.data.sum(axis=axis, keepdims=keepdims)
    shape = a.shape

    def backward(grad: np.ndarray):
        if axis is None:
            return (np.broadcast_to(grad, shape).copy(),)
        g = grad
        if not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % len(shape) for ax in axes)
            for ax in sorted(axes):
                g = np.expand_dims(g, ax)
        return (np.broadcast_to(g, shape).copy(),)

    return _make_result(data, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= a.shape[ax]
    return sum_(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def max_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray):
        expanded = a.data.max(axis=axis, keepdims=True)
        mask = (a.data == expanded).astype(grad.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        g = grad
        if not keepdims and axis is not None:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % a.ndim for ax in axes)
            for ax in sorted(axes):
                g = np.expand_dims(g, ax)
        elif not keepdims and axis is None:
            g = np.broadcast_to(grad, (1,) * a.ndim)
        return (mask * g,)

    return _make_result(data, (a,), backward)


# ----------------------------------------------------------------------
# Neural-network primitives
# ----------------------------------------------------------------------
def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        dot = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - dot),)

    return _make_result(data, (a,), backward)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - logsum
    soft = np.exp(data)

    def backward(grad: np.ndarray):
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return _make_result(data, (a,), backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row-gather from an embedding table.

    ``indices`` is a plain integer array (token ids are never
    differentiated).  The backward is the sort/segment-sum scatter
    (:func:`repro.kernels.embedding_grad`) — the seed's ``np.add.at``
    runs a scalar inner loop per gradient element and is a hot leaf in
    every char-LM and LRA training step.  The composite scatter remains
    behind :func:`repro.kernels.use_fused` as the parity baseline.
    """
    indices = np.asarray(indices, dtype=np.int64)
    data = weight.data[indices]
    num_rows = weight.shape[0]
    segment_sum = _kernels.fused_enabled()

    def backward(grad: np.ndarray):
        if segment_sum:
            return (_kernels.embedding_grad(indices, grad, num_rows),)
        full = np.zeros_like(weight.data)
        np.add.at(full, indices, grad)
        return (full,)

    return _make_result(data, (weight,), backward)


def dropout(a: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep).astype(a.dtype) / keep

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return _make_result(a.data * mask, (a,), backward)


def layer_norm(a: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension with affine parameters."""
    mu = a.data.mean(axis=-1, keepdims=True)
    var = a.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    normed = (a.data - mu) * inv
    data = normed * gamma.data + beta.data
    n = a.shape[-1]

    def backward(grad: np.ndarray):
        dgamma = _unbroadcast(grad * normed, gamma.shape)
        dbeta = _unbroadcast(grad, beta.shape)
        gnormed = grad * gamma.data
        dvar_term = (gnormed * normed).sum(axis=-1, keepdims=True)
        dmean_term = gnormed.sum(axis=-1, keepdims=True)
        da = inv * (gnormed - dmean_term / n - normed * dvar_term / n)
        return (da, dgamma, dbeta)

    return _make_result(data, (a, gamma, beta), backward)


def linear_act(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: str = "identity",
) -> Tensor:
    """Fused ``act(x @ W^T + b)`` as a single autograd node.

    The training-step fast path for every dense projection: one graph
    node instead of the composite ``transpose`` / ``matmul`` / bias-add
    / activation chain, with the contiguous ``W^T`` cached on the weight
    parameter and the ``dW`` GEMM written into a per-parameter scratch
    buffer (see :mod:`repro.kernels.fused`).  ``activation`` is one of
    ``"identity"``, ``"relu"``, ``"gelu"``.  Under
    :func:`repro.kernels.use_fused` ``(False)`` the composite graph is
    recorded instead (the parity/benchmark baseline).
    """
    if not _kernels.fused_enabled():
        out = matmul(x, transpose(weight))
        if bias is not None:
            out = add(out, bias)
        if activation == "identity":
            return out
        if activation == "relu":
            return relu(out)
        if activation == "gelu":
            return gelu(out)
        raise ValueError(
            f"activation must be one of {_kernels.ACTIVATIONS}, got {activation!r}"
        )
    parents = (x, weight) if bias is None else (x, weight, bias)
    record = _should_record(parents)
    data, ctx = _kernels.linear_act_forward(
        x.data, weight, None if bias is None else bias.data,
        activation=activation, need_ctx=record,
    )

    def backward(grad: np.ndarray):
        return _kernels.linear_act_vjp(grad, ctx)

    return _make_result(data, parents, backward)


def residual_layer_norm(
    x: Tensor, sub: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5
) -> Tensor:
    """Fused ``layer_norm(x + sub, gamma, beta)`` as a single autograd node.

    The residual-close of every transformer sub-layer: the ``x + sub``
    temporary is normalized in place instead of living on as a recorded
    ``add`` node, saving one full-activation buffer per sub-layer.  The
    backward hands the *same* gradient array to both residual branches
    (the engine's accumulation never mutates un-owned buffers, so the
    share is safe).  Under :func:`repro.kernels.use_fused` ``(False)``
    the composite ``layer_norm(add(...))`` graph is recorded instead.
    """
    if not _kernels.fused_enabled():
        return layer_norm(add(x, sub), gamma, beta, eps=eps)
    parents = (x, sub, gamma, beta)
    record = _should_record(parents)
    data, ctx = _kernels.residual_layer_norm_forward(
        x.data, sub.data, gamma.data, beta.data, eps=eps, need_ctx=record
    )

    def backward(grad: np.ndarray):
        return _kernels.residual_layer_norm_vjp(grad, ctx)

    return _make_result(data, parents, backward)


def cross_entropy_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy from ``(B, C)`` logits as a single autograd node.

    Fused logsumexp loss: the forward never materializes the full
    log-probability matrix (the composite :func:`cross_entropy` built it
    just to gather ``B`` entries through an autograd ``getitem``), and
    the cached softmax makes the backward one ``O(B*C)`` rescale.  Under
    :func:`repro.kernels.use_fused` ``(False)`` this falls back to the
    composite :func:`cross_entropy` graph.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if not _kernels.fused_enabled():
        return cross_entropy(logits, targets)
    parents = (logits,)
    record = _should_record(parents)
    data, ctx = _kernels.cross_entropy_logits_forward(
        logits.data, targets, need_ctx=record
    )

    def backward(grad: np.ndarray):
        return _kernels.cross_entropy_logits_vjp(grad, ctx)

    return _make_result(data, parents, backward)


def butterfly_stage(x: Tensor, coeffs: Tensor, half: int) -> Tensor:
    """Apply one butterfly factor matrix stage to the last dimension of ``x``.

    ``coeffs`` has shape ``(4, n // 2)`` holding, for each of the ``n/2``
    index pairs ``(i, i + half)`` within each size-``2*half`` block, the
    entries of the trainable 2x2 block::

        [ y_top ]   [ a  b ] [ x_top ]
        [ y_bot ] = [ c  d ] [ x_bot ]

    This is the exact computation the paper's adaptable Butterfly Unit
    performs with its four real multipliers (Fig. 7b).  Forward and VJP
    delegate to the shared kernel layer
    (:func:`repro.kernels.stage_forward` / :func:`repro.kernels.stage_vjp`);
    multi-stage ladders should prefer :func:`butterfly_apply`, which fuses
    the whole ladder into one graph node and a faster grouped kernel.
    """
    data = _kernels.stage_forward(x.data, coeffs.data, half)

    def backward(grad: np.ndarray):
        return _kernels.stage_vjp(grad, x.data, coeffs.data, half)

    return _make_result(data, (x, coeffs), backward)


def butterfly_apply(
    x: Tensor, coeffs: Sequence[Tensor], halves: Sequence[int]
) -> Tensor:
    """Apply a full ladder of butterfly stages as a single autograd op.

    ``coeffs[s]`` is the ``(4, n/2)`` stage tensor for pair stride
    ``halves[s]``; stages apply in order (``halves = [1, 2, ..., n/2]``
    for a complete butterfly matrix).  Compared to chaining
    :func:`butterfly_stage`, this records one graph node for the whole
    ladder and dispatches to :mod:`repro.kernels`' fused grouped kernel,
    which is several times faster at ``n >= 256``.
    """
    parents = (x, *coeffs)
    record = _should_record(parents)
    data, ctx = _kernels.butterfly_apply(
        x.data, [c.data for c in coeffs], halves, need_ctx=record
    )

    def backward(grad: np.ndarray):
        gx, gcoeffs = _kernels.butterfly_apply_vjp(grad, ctx)
        return (gx, *gcoeffs)

    return _make_result(data, parents, backward)


def scaled_dot_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    *,
    causal: bool = False,
    key_mask: Optional[np.ndarray] = None,
    q_start: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
    block: Optional[int] = None,
) -> Tensor:
    """Fused scaled-dot-product attention as a single autograd op.

    ``q`` is ``(B, H, Lq, Dh)``; ``k``/``v`` are ``(B, H, Lk, Dh)``.
    Compared to composing :func:`matmul`/:func:`softmax`/bias adds, this
    records **one** graph node, never materializes the full
    ``(B, H, Lq, Lk)`` softmax in the graph, and streams the softmax
    over key blocks (see :mod:`repro.kernels.attention`).  ``key_mask``
    is a boolean ``(B, Lk)`` validity mask; ``q_start`` gives per-row
    absolute query offsets for causal KV-cache continuation.
    """
    parents = (q, k, v)
    record = _should_record(parents)
    data, ctx = _kernels.attention_forward(
        q.data, k.data, v.data, causal=causal, key_mask=key_mask,
        q_start=q_start, scale=scale, block=block, need_ctx=record,
    )

    def backward(grad: np.ndarray):
        return _kernels.attention_vjp(grad, ctx)

    return _make_result(data, parents, backward)


def fourier_mix_2d(x: Tensor) -> Tensor:
    """FNet-style token mixing: real part of a 2D DFT over (seq, hidden).

    ``x`` has shape ``(..., seq, hidden)``.  Because the DFT matrix ``F`` is
    symmetric (``F.T == F``) and the input is real, the Jacobian of
    ``Re(F x F)`` is ``Re(F) (.) Re(F)`` and the backward pass is the same
    real-FFT mixing applied to the incoming gradient.
    """
    data = np.fft.fft2(x.data, axes=(-2, -1)).real

    def backward(grad: np.ndarray):
        return (np.fft.fft2(grad, axes=(-2, -1)).real,)

    return _make_result(data, (x,), backward)


def abs_(a: Tensor) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the origin)."""
    data = np.abs(a.data)

    def backward(grad: np.ndarray):
        return (grad * np.sign(a.data),)

    return _make_result(data, (a,), backward)


def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Clamp values to [low, high]; gradient passes only inside the range."""
    if low > high:
        raise ValueError(f"clip bounds inverted: [{low}, {high}]")
    data = np.clip(a.data, low, high)

    def backward(grad: np.ndarray):
        inside = (a.data > low) & (a.data < high)
        return (grad * inside,)

    return _make_result(data, (a,), backward)


def min_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Minimum reduction (gradient split among ties, mirroring max_)."""
    return -max_(-a, axis=axis, keepdims=keepdims)


def var(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Population variance along ``axis`` (composite, differentiable)."""
    mu = mean(a, axis=axis, keepdims=True)
    sq = (a - mu) ** 2.0
    return mean(sq, axis=axis, keepdims=keepdims)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(np.where(condition, grad, 0.0), a.shape),
            _unbroadcast(np.where(condition, 0.0, grad), b.shape),
        )

    return _make_result(data, (a, b), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (B, C) and integer ``targets`` (B,)."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy expects (batch, classes) logits, got {logits.shape}")
    batch = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = getitem(logp, (np.arange(batch), targets))
    return -mean(picked)


def accuracy(logits: Union[Tensor, np.ndarray], targets: np.ndarray) -> float:
    """Classification accuracy of argmax predictions."""
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    preds = arr.argmax(axis=-1)
    return float((preds == np.asarray(targets)).mean())
