"""First-order optimizers (SGD with momentum, Adam) and LR schedules."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    The update runs entirely through in-place ``np.multiply/add(...,
    out=...)`` kernels over one persistent per-parameter scratch buffer:
    the step allocates nothing, which matters because it executes once
    per training batch over every model parameter.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v, buf in zip(self.params, self._velocity, self._scratch):
            if p.grad is None:
                continue
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=buf)
                np.add(buf, p.grad, out=buf)
                grad = buf
            else:
                grad = p.grad
            if self.momentum:
                np.multiply(v, self.momentum, out=v)
                np.add(v, grad, out=v)
                grad = v
            np.multiply(grad, self.lr, out=buf)
            np.subtract(p.data, buf, out=p.data)
            p.bump_version()  # invalidate kernel caches (e.g. cached W^T)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with decoupled weight decay option."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Allocation-free Adam step (same math as the textbook update).

        Every moment/update expression is an in-place ``out=`` ufunc over
        one persistent scratch buffer per parameter; the decoupled weight
        decay ``p -= lr * wd * p`` is folded into a single in-place
        rescale of the parameter, which is algebraically identical to
        adding ``wd * p`` to the update.
        """
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v, buf in zip(self.params, self._m, self._v, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            np.add(m, buf, out=m)
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=buf)
            np.multiply(buf, 1.0 - self.beta2, out=buf)
            np.add(v, buf, out=v)
            # update = (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=buf)
            np.sqrt(buf, out=buf)
            np.add(buf, self.eps, out=buf)
            np.divide(m, buf, out=buf)
            np.divide(buf, bias1, out=buf)
            if self.weight_decay:
                np.multiply(p.data, 1.0 - self.lr * self.weight_decay, out=p.data)
            np.multiply(buf, self.lr, out=buf)
            np.subtract(p.data, buf, out=p.data)
            p.bump_version()  # invalidate kernel caches (e.g. cached W^T)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return 0.0
    # Single vectorized pass: one BLAS dot per gradient (no squared-grad
    # temporaries, no per-parameter Python-float round-trips), one numpy
    # reduction over the per-parameter partial sums.
    sq = np.array([np.dot(g.reshape(-1), g.reshape(-1)) for g in grads])
    total = np.sqrt(sq.sum())
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            np.multiply(g, scale, out=g)
    return float(total)


class WarmupCosineSchedule:
    """Linear warmup followed by cosine decay, applied to an optimizer."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr_ratio: float = 0.05,
    ) -> None:
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr_ratio = min_lr_ratio
        self._step = 0

    def current_lr(self) -> float:
        if self._step < self.warmup_steps:
            return self.base_lr * (self._step + 1) / max(1, self.warmup_steps)
        progress = (self._step - self.warmup_steps) / max(
            1, self.total_steps - self.warmup_steps
        )
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        floor = self.min_lr_ratio
        return self.base_lr * (floor + (1.0 - floor) * cosine)

    def step(self) -> float:
        lr = self.current_lr()
        self.optimizer.lr = lr
        self._step += 1
        return lr
