"""Process-wide metric registry: counters, gauges, histograms.

This is the substrate every subsystem reports into — the software
analogue of the hardware model's cycle/operation counters, promoted to a
first-class production signal the way serving systems (vLLM et al.)
expose engine counters and latency histograms.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Telemetry is opt-in
   (``REPRO_TELEMETRY=1`` or :func:`enable`).  Hot paths guard with
   ``if STATE.on:`` (two attribute loads) or call the module-level
   conveniences (:func:`counter_inc` / :func:`gauge_set` /
   :func:`observe`), which return immediately while disabled and never
   touch the registry — the disabled fast path performs *zero* registry
   mutations, asserted by tests and gated by the telemetry-overhead
   benchmark.
2. **Bit-neutral.**  Instruments only ever record scalars; no kernel
   array is read or written, so enabling telemetry can never change
   numerics (asserted by a token-parity test).
3. **Thread-safe.**  The threaded kernel backend increments shared
   counters from pool workers; every instrument carries its own lock and
   the registry serializes instrument creation.
4. **Deterministic in tests.**  The clock is injectable per registry
   (``Registry(clock=...)``), and histogram reservoirs use a seeded
   stdlib RNG, so timelines and percentiles are reproducible.

Naming convention (see CONTRIBUTING): ``subsystem_op_unit``, e.g.
``kernels_plan_cache_hits_total`` (counter), ``serving_ttft_ms``
(histogram), ``training_tokens_per_s`` (gauge).  Optional labels are
passed as keyword arguments and become Prometheus labels.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "STATE",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Reservoir",
    "counter_inc",
    "disable",
    "enable",
    "enabled",
    "gauge_set",
    "get_registry",
    "observe",
    "reset",
    "set_registry",
    "use_telemetry",
]

#: Default histogram bucket upper bounds for millisecond latencies.
DEFAULT_MS_BOUNDARIES: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)

#: Default bounded-reservoir capacity: percentiles are exact while the
#: stream fits, an unbiased uniform sample beyond (Algorithm R).
DEFAULT_RESERVOIR = 1024


class _State:
    """The module-level enabled flag, readable as two attribute loads."""

    __slots__ = ("on",)

    def __init__(self, on: bool) -> None:
        self.on = on


STATE = _State(os.environ.get("REPRO_TELEMETRY", "0") == "1")


def enabled() -> bool:
    """Whether telemetry collection is on (``REPRO_TELEMETRY=1`` or
    :func:`enable`)."""
    return STATE.on


def enable() -> None:
    """Turn telemetry collection on process-wide."""
    STATE.on = True


def disable() -> None:
    """Turn telemetry collection off process-wide."""
    STATE.on = False


class use_telemetry:
    """Scope the enabled flag: ``with use_telemetry(): ...``.

    A plain class (not ``@contextmanager``) so entering costs one
    attribute swap and the object is reusable.
    """

    def __init__(self, on: bool = True) -> None:
        self._on = on
        self._prev: Optional[bool] = None

    def __enter__(self) -> "use_telemetry":
        self._prev = STATE.on
        STATE.on = self._on
        return self

    def __exit__(self, *exc) -> bool:
        STATE.on = self._prev
        return False


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing count (``*_total`` by convention)."""

    __slots__ = ("name", "labels", "_lock", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "_lock", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Reservoir:
    """Bounded uniform sample of a stream (Vitter's Algorithm R).

    Percentiles computed from the reservoir are *exact* while the stream
    has produced at most ``capacity`` values and an unbiased estimate
    beyond that — bounded memory either way, which is the whole point
    (the unbounded per-step sample lists this replaces grew forever).
    The RNG is a seeded :mod:`random.Random` so tests are deterministic.
    """

    __slots__ = ("capacity", "count", "_values", "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self._values: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._values[slot] = value

    def values(self) -> List[float]:
        return list(self._values)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile (``q`` in [0, 100]) over the sample."""
        if not self._values:
            return None
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]


class Histogram:
    """Fixed-boundary buckets plus a bounded reservoir for percentiles.

    ``boundaries`` are inclusive upper bounds; an implicit ``+Inf``
    bucket closes the range (Prometheus cumulative-bucket semantics are
    produced at render time).  ``observe`` is O(len(boundaries)) with a
    linear scan — boundary lists are short and a scan beats bisect call
    overhead at these sizes.
    """

    __slots__ = (
        "name", "labels", "boundaries", "bucket_counts",
        "count", "sum", "min", "max", "_reservoir", "_lock",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_MS_BOUNDARIES,
        labels: Tuple[Tuple[str, str], ...] = (),
        reservoir: int = DEFAULT_RESERVOIR,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram boundaries must be strictly "
                             f"increasing, got {boundaries}")
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir = Reservoir(reservoir)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for i, bound in enumerate(self.boundaries):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break
            else:
                self.bucket_counts[-1] += 1
            self._reservoir.add(value)

    def percentile(self, q: float) -> Optional[float]:
        with self._lock:
            return self._reservoir.percentile(q)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "count": self.count,
                "sum": self.sum,
                "mean": self.mean,
                "min": self.min,
                "max": self.max,
                "p50": self._reservoir.percentile(50),
                "p95": self._reservoir.percentile(95),
                "p99": self._reservoir.percentile(99),
            }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Registry:
    """A named collection of instruments with one injectable clock.

    Instrument getters are get-or-create and type-checked: asking for an
    existing name with a different instrument kind raises, which catches
    naming-collision bugs at the call site.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, tuple], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, labels=key[1], **kwargs)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"instrument {name!r} already registered as "
                    f"{type(inst).__name__}, requested {cls.__name__}"
                )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_MS_BOUNDARIES,
        reservoir: int = DEFAULT_RESERVOIR,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, labels,
                         boundaries=boundaries, reservoir=reservoir)

    def instruments(self) -> List[object]:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, dict]:
        """JSON-ready view: ``{name{labels}: {kind, value/percentiles}}``."""
        out: Dict[str, dict] = {}
        for inst in self.instruments():
            label_str = ",".join(f"{k}={v}" for k, v in inst.labels)
            key = f"{inst.name}{{{label_str}}}" if label_str else inst.name
            out[key] = inst.snapshot()
        return out

    def reset(self) -> None:
        """Drop every instrument (tests and the profile CLI)."""
        with self._lock:
            self._instruments.clear()


_default_registry = Registry()
_default_lock = threading.Lock()


def get_registry() -> Registry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Swap the default registry (tests inject a fake-clock one); returns
    the previous registry."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


def reset() -> None:
    """Clear the default registry's instruments."""
    _default_registry.reset()


# ----------------------------------------------------------------------
# Gated conveniences for hot paths
# ----------------------------------------------------------------------
def counter_inc(name: str, amount: float = 1.0, **labels) -> None:
    """Increment a default-registry counter; no-op while disabled."""
    if not STATE.on:
        return
    _default_registry.counter(name, **labels).inc(amount)


def gauge_set(name: str, value: float, **labels) -> None:
    """Set a default-registry gauge; no-op while disabled."""
    if not STATE.on:
        return
    _default_registry.gauge(name, **labels).set(value)


def observe(
    name: str,
    value: float,
    boundaries: Sequence[float] = DEFAULT_MS_BOUNDARIES,
    **labels,
) -> None:
    """Observe into a default-registry histogram; no-op while disabled."""
    if not STATE.on:
        return
    _default_registry.histogram(name, boundaries=boundaries, **labels).observe(value)
