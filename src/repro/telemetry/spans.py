"""Tracing spans: a hierarchical timing tree with Chrome-trace export.

``with span("decode.step", request_id=3):`` records one timed interval.
Spans nest through a thread-local stack, so concurrently decoding
threads each get their own well-formed tree; completed spans land in a
bounded process-wide collector (overflow is counted, never unbounded).

The collector supports three read-side views:

* :func:`span_tree` / :func:`render_span_tree` — spans aggregated by
  their name-path (``serve.step > serve.decode > kernels.attention_decode``),
  with call counts, total/self time, and share of the root's wall time;
* :func:`top_ops` — per-name totals across the whole trace, the
  "where did the time go" table ``repro profile`` prints;
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` JSON (``ph: "X"`` complete events, microsecond
  timestamps) loadable in ``chrome://tracing`` or Perfetto.

Disabled fast path: :func:`span` returns a shared no-op context manager
— no clock read, no allocation, no stack push — so instrumented hot
loops cost two attribute loads and one call while telemetry is off.
Timing comes from the default registry's injectable clock, so tests
drive deterministic span durations.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from .registry import STATE, get_registry

__all__ = [
    "Span",
    "SpanCollector",
    "chrome_trace_events",
    "clear_spans",
    "get_collector",
    "render_span_tree",
    "span",
    "span_records",
    "span_tree",
    "top_ops",
    "write_chrome_trace",
]

#: Collector capacity: beyond this, completed spans are dropped and
#: counted (`dropped`), bounding memory on long-running processes.
MAX_SPANS = 200_000


class Span:
    """One live (then completed) timed interval."""

    __slots__ = (
        "collector", "span_id", "parent_id", "name", "attrs",
        "start", "duration", "depth", "thread_id",
    )

    def __init__(self, collector: "SpanCollector", name: str, attrs: dict) -> None:
        self.collector = collector
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.duration: Optional[float] = None
        self.depth = 0
        self.thread_id = 0

    def __enter__(self) -> "Span":
        self.collector._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Unwind unconditionally: an exception inside the span must pop
        # the stack (or every later span in this thread mis-parents) and
        # still record the interval, tagged with the error type.
        if exc_type is not None:
            self.attrs = dict(self.attrs, error=exc_type.__name__)
        self.collector._close(self)
        return False


class _NoopSpan:
    """Shared reusable no-op for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class SpanCollector:
    """Bounded store of completed spans plus per-thread open stacks."""

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._records: List[Span] = []
        self._next_id = 1
        self._tls = threading.local()
        self.dropped = 0

    # -- write side ----------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        span.parent_id = stack[-1].span_id if stack else None
        span.depth = len(stack)
        span.thread_id = threading.get_ident()
        stack.append(span)
        span.start = get_registry().clock()

    def _close(self, span: Span) -> None:
        span.duration = get_registry().clock() - span.start
        stack = self._stack()
        # The span being closed is normally the top of the stack; pop
        # defensively by identity so a mismatched exit cannot corrupt
        # every later parent link.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        with self._lock:
            if len(self._records) >= self.max_spans:
                self.dropped += 1
                return
            self._records.append(span)

    # -- read side -----------------------------------------------------
    def records(self) -> List[Span]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0


_collector = SpanCollector()


def get_collector() -> SpanCollector:
    return _collector


def span(name: str, **attrs):
    """Open a timed span: ``with span("decode.step", request_id=rid):``.

    Returns a shared no-op context manager while telemetry is disabled,
    so call sites never need their own guard.
    """
    if not STATE.on:
        return _NOOP
    return Span(_collector, name, attrs)


def span_records() -> List[Span]:
    """Every completed span, in completion order."""
    return _collector.records()


def clear_spans() -> None:
    """Drop all completed spans (tests and the profile CLI)."""
    _collector.clear()


# ----------------------------------------------------------------------
# Aggregated views
# ----------------------------------------------------------------------
def _paths(records: Iterable[Span]) -> List[Tuple[Tuple[str, ...], Span]]:
    by_id = {r.span_id: r for r in records}
    out = []
    for r in by_id.values():
        path = [r.name]
        cursor = r
        while cursor.parent_id is not None:
            parent = by_id.get(cursor.parent_id)
            if parent is None:
                break  # parent still open or dropped: root the path here
            path.append(parent.name)
            cursor = parent
        out.append((tuple(reversed(path)), r))
    return out


def span_tree() -> Dict[Tuple[str, ...], Dict[str, float]]:
    """Aggregate spans by name-path: ``{path: {count, total_s, self_s}}``.

    ``self_s`` is the path's total minus the totals of its direct
    children, i.e. time spent at that node itself.
    """
    agg: Dict[Tuple[str, ...], Dict[str, float]] = {}
    for path, record in _paths(span_records()):
        node = agg.setdefault(path, {"count": 0, "total_s": 0.0, "self_s": 0.0})
        node["count"] += 1
        node["total_s"] += record.duration or 0.0
    for path, node in agg.items():
        child_total = sum(
            other["total_s"] for other_path, other in agg.items()
            if len(other_path) == len(path) + 1 and other_path[:-1] == path
        )
        node["self_s"] = max(0.0, node["total_s"] - child_total)
    return agg


def render_span_tree(min_share: float = 0.0) -> str:
    """Human-readable indented tree with counts and total/self times."""
    tree = span_tree()
    if not tree:
        return "(no spans recorded)"
    roots_total = sum(n["total_s"] for p, n in tree.items() if len(p) == 1)
    children: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
    for path in tree:
        children.setdefault(path[:-1], []).append(path)
    ordered: List[Tuple[str, ...]] = []

    def visit(prefix: Tuple[str, ...]) -> None:
        for path in sorted(children.get(prefix, ()),
                           key=lambda p: -tree[p]["total_s"]):
            ordered.append(path)
            visit(path)

    visit(())
    lines = [f"{'span':<52} {'count':>7} {'total ms':>10} "
             f"{'self ms':>10} {'share':>6}"]
    for path in ordered:
        node = tree[path]
        share = node["total_s"] / roots_total if roots_total > 0 else 0.0
        if share < min_share and len(path) > 1:
            continue
        label = "  " * (len(path) - 1) + path[-1]
        lines.append(
            f"{label:<52} {node['count']:>7d} {node['total_s'] * 1e3:>10.2f} "
            f"{node['self_s'] * 1e3:>10.2f} {share:>6.1%}"
        )
    return "\n".join(lines)


def top_ops(n: int = 10) -> List[Dict[str, object]]:
    """Per-name totals across the trace, heaviest first."""
    agg: Dict[str, Dict[str, float]] = {}
    for record in span_records():
        node = agg.setdefault(record.name, {"count": 0, "total_s": 0.0})
        node["count"] += 1
        node["total_s"] += record.duration or 0.0
    ranked = sorted(agg.items(), key=lambda kv: -kv[1]["total_s"])
    return [
        {"name": name, "count": int(node["count"]), "total_s": node["total_s"]}
        for name, node in ranked[:n]
    ]


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
def chrome_trace_events() -> List[dict]:
    """Spans as Chrome ``trace_event`` complete (``ph: "X"``) events.

    Timestamps are microseconds relative to the earliest span, one
    ``tid`` per recording thread — the format ``chrome://tracing`` and
    Perfetto load directly.
    """
    records = span_records()
    if not records:
        return []
    t0 = min(r.start for r in records)
    events = []
    for r in records:
        args = {k: v for k, v in r.attrs.items()
                if isinstance(v, (str, int, float, bool))}
        events.append({
            "name": r.name,
            "ph": "X",
            "ts": (r.start - t0) * 1e6,
            "dur": (r.duration or 0.0) * 1e6,
            "pid": 1,
            "tid": r.thread_id % 1_000_000,
            "args": args,
        })
    return events


def write_chrome_trace(path: str) -> str:
    """Write ``{"traceEvents": [...]}`` JSON to ``path``; returns it."""
    payload = {"traceEvents": chrome_trace_events(),
               "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path
