"""Unified telemetry: counters, gauges, histograms, and tracing spans.

One observability substrate for the whole stack — kernels, training,
serving, and the hardware functional engines all report into the same
process-wide :class:`Registry` and span collector, the way production
serving systems expose engine counters and latency histograms as
first-class signals.

**Opt-in and near-zero overhead when off.**  Telemetry is disabled by
default; enable it with ``REPRO_TELEMETRY=1`` in the environment or
:func:`enable` / :func:`use_telemetry` in code.  While disabled, the
gated entry points (:func:`counter_inc`, :func:`gauge_set`,
:func:`observe`, :func:`span`) return immediately without touching the
registry, so instrumented hot paths stay within noise of uninstrumented
ones (gated by the ``telemetry_overhead`` benchmark).  Instrument
*objects* obtained directly from a :class:`Registry` are always live —
that is how the serving engine keeps its bounded always-on request
metrics while the global opt-in stays off.

**Bit-neutral.**  Instrumentation only records scalar observations;
enabling it never changes kernel numerics (asserted by a token-parity
test in ``tests/telemetry``).

Quick tour::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("decode.step", request_id=7):
        ...
    telemetry.counter_inc("kernels_plan_cache_hits_total")
    telemetry.observe("serving_ttft_ms", 12.5)

    print(telemetry.render_span_tree())
    print(telemetry.render_prometheus())
    telemetry.write_chrome_trace("trace.json")   # chrome://tracing

Metric names follow ``subsystem_op_unit`` (see CONTRIBUTING): the
subsystem prefix first (``kernels_``, ``serving_``, ``training_``,
``hardware_``), then the operation, then the unit (``_total`` for
counters, ``_ms`` / ``_seconds`` for times, ``_per_s`` for rates).
"""

from __future__ import annotations

from .prometheus import render_prometheus, render_sections
from .registry import (
    DEFAULT_MS_BOUNDARIES,
    DEFAULT_RESERVOIR,
    STATE,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Reservoir,
    counter_inc,
    disable,
    enable,
    enabled,
    gauge_set,
    get_registry,
    observe,
    reset,
    set_registry,
    use_telemetry,
)
from .spans import (
    MAX_SPANS,
    Span,
    SpanCollector,
    chrome_trace_events,
    clear_spans,
    get_collector,
    render_span_tree,
    span,
    span_records,
    span_tree,
    top_ops,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_MS_BOUNDARIES",
    "DEFAULT_RESERVOIR",
    "MAX_SPANS",
    "STATE",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Reservoir",
    "Span",
    "SpanCollector",
    "chrome_trace_events",
    "clear_all",
    "clear_spans",
    "counter_inc",
    "disable",
    "enable",
    "enabled",
    "gauge_set",
    "get_collector",
    "get_registry",
    "observe",
    "render_prometheus",
    "render_sections",
    "render_span_tree",
    "reset",
    "set_registry",
    "span",
    "span_records",
    "span_tree",
    "top_ops",
    "use_telemetry",
    "write_chrome_trace",
]


def clear_all() -> None:
    """Reset the default registry and drop every recorded span."""
    reset()
    clear_spans()
