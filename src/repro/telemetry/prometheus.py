"""Prometheus text exposition of one or more registries.

Flat ``metric{label="v"} value`` lines in the Prometheus text format:
counters and gauges render directly; histograms render with cumulative
``_bucket`` lines (``le`` upper bounds plus ``+Inf``), ``_sum`` and
``_count``, and additionally as ``_p50`` / ``_p95`` / ``_p99`` gauges
computed from the bounded reservoir — tail latency readable straight off
the text endpoint without a PromQL ``histogram_quantile`` round trip.

:func:`render_prometheus` with no arguments renders the process-wide
default registry; the serving engine passes its own engine-local
registry alongside, so one scrape covers both.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from .registry import Counter, Gauge, Histogram, Registry, get_registry

__all__ = ["render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _name(raw: str) -> str:
    cleaned = _NAME_RE.sub("_", raw)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _labels(pairs: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{_name(k)}="{v}"' for k, v in pairs]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "NaN"
    as_float = float(value)
    return repr(int(as_float)) if as_float == int(as_float) else repr(as_float)


def render_prometheus(*registries: Registry) -> str:
    """Render registries (default: the process-wide one) as Prometheus text."""
    if not registries:
        registries = (get_registry(),)
    lines: List[str] = []
    seen_types = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for registry in registries:
        for inst in registry.instruments():
            name = _name(inst.name)
            if isinstance(inst, Counter):
                type_line(name, "counter")
                lines.append(f"{name}{_labels(inst.labels)} {_fmt(inst.value)}")
            elif isinstance(inst, Gauge):
                type_line(name, "gauge")
                lines.append(f"{name}{_labels(inst.labels)} {_fmt(inst.value)}")
            elif isinstance(inst, Histogram):
                type_line(name, "histogram")
                cumulative = 0
                for bound, count in zip(inst.boundaries, inst.bucket_counts):
                    cumulative += count
                    le = 'le="%s"' % _fmt(bound)
                    lines.append(
                        f"{name}_bucket{_labels(inst.labels, le)} {cumulative}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{_labels(inst.labels, inf)} {inst.count}"
                )
                lines.append(f"{name}_sum{_labels(inst.labels)} {_fmt(inst.sum)}")
                lines.append(f"{name}_count{_labels(inst.labels)} {inst.count}")
                for q, suffix in ((50, "p50"), (95, "p95"), (99, "p99")):
                    qname = f"{name}_{suffix}"
                    type_line(qname, "gauge")
                    lines.append(
                        f"{qname}{_labels(inst.labels)} "
                        f"{_fmt(inst.percentile(q))}"
                    )
    return "\n".join(lines) + ("\n" if lines else "")


def render_sections(sections: Sequence[Tuple[str, Registry]]) -> str:
    """Concatenate labelled registries with comment separators."""
    chunks = []
    for title, registry in sections:
        chunks.append(f"# {title}\n" + render_prometheus(registry))
    return "\n".join(chunks)
