"""Model configuration shared by Transformer, FNet and FABNet."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelConfig:
    """Hyperparameters of an encoder-only attention model.

    Mirrors the paper's notation: ``d_hidden`` is :math:`D_{hid}`,
    ``r_ffn`` is :math:`R_{ffn}`, ``n_total`` is :math:`N_{total}` and
    ``n_abfly`` is :math:`N_{ABfly}` (only meaningful for FABNet, where the
    first ``n_total - n_abfly`` blocks are FBfly and the rest ABfly).

    ``dtype`` selects the software arithmetic via the kernel layer's
    policy (:mod:`repro.kernels.dtype`): ``"float64"`` (default, tightest
    golden parity) or ``"float32"`` (faster; still wider than the
    accelerator's fixed-point datapath).  Wrap model construction *and*
    training in :meth:`dtype_context` so parameters and activations agree.

    ``backend`` selects the kernel execution backend
    (:mod:`repro.kernels.backend`): ``"serial"`` (default) or
    ``"threaded"``; backends change execution only, never numerics.
    Wrap model execution in :meth:`backend_context` to activate it.
    """

    vocab_size: int = 64
    n_classes: int = 2
    max_len: int = 128
    d_hidden: int = 64
    n_heads: int = 4
    r_ffn: int = 4
    n_total: int = 2
    n_abfly: int = 0
    dropout: float = 0.0
    pooling: str = "mean"  # "mean" or "cls"
    seed: int = 0
    dtype: str = "float64"
    backend: str = "serial"

    def dtype_context(self):
        """Context manager scoping the kernel dtype policy to ``dtype``."""
        from ..kernels import default_dtype

        return default_dtype(self.dtype)

    def backend_context(self):
        """Context manager scoping the kernel backend to ``backend``."""
        from ..kernels import use_backend

        return use_backend(self.backend)

    def __post_init__(self) -> None:
        if self.d_hidden % self.n_heads != 0:
            raise ValueError(
                f"d_hidden={self.d_hidden} must be divisible by n_heads={self.n_heads}"
            )
        if not 0 <= self.n_abfly <= self.n_total:
            raise ValueError(
                f"n_abfly={self.n_abfly} must lie in [0, n_total={self.n_total}]"
            )
        if self.pooling not in ("mean", "cls"):
            raise ValueError(f"pooling must be 'mean' or 'cls', got {self.pooling!r}")
        if self.d_hidden & (self.d_hidden - 1):
            raise ValueError(
                f"d_hidden must be a power of two for butterfly layers, got {self.d_hidden}"
            )
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        from ..kernels.backend import available_backends

        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {available_backends()}, "
                f"got {self.backend!r}"
            )

    @property
    def d_ffn(self) -> int:
        return self.d_hidden * self.r_ffn

    @property
    def n_fbfly(self) -> int:
        return self.n_total - self.n_abfly

    def with_(self, **changes) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


# The paper's two reference configurations (Section VI-A).
FABNET_BASE = ModelConfig(
    vocab_size=30522, n_classes=2, max_len=512,
    d_hidden=768 if False else 1024, n_heads=8, r_ffn=4, n_total=12, n_abfly=0,
)
# d_hidden=768 is not a power of two; butterfly layers need one. The paper's
# hardware pads to 1024 internally (buffer depth 1024); we model FABNet-Base
# with the padded hidden size for the algorithmic library and use the
# *paper's* 768 figure in the analytical FLOPs/latency models, which accept
# arbitrary sizes.
FABNET_LARGE = ModelConfig(
    vocab_size=30522, n_classes=2, max_len=512,
    d_hidden=1024, n_heads=16, r_ffn=4, n_total=24, n_abfly=0,
)
