"""Decoder-only (GPT-style) butterfly language model.

The paper focuses on encoder-only networks but notes (Section II-A) that
"our hardware design is flexible and applicable to decoders too": a
decoder block is the same butterfly-compressed attention + FFN pipeline
with a causal mask, which is a score-matrix masking detail invisible to
the Butterfly Processor.  This module provides that decoder variant:
causal ABfly blocks, an autoregressive LM head, and greedy/sampled
generation.

Generation runs over a per-layer KV cache (:mod:`repro.serving.kv_cache`)
by default: the prompt is prefetched once and every further token costs a
single-token forward against the cached keys/values instead of the
O(T^2) full-window recompute of the seed loop.  Because positions are
learned *absolute* embeddings, the sliding-window eviction at ``max_len``
re-prefills the clipped window (cached keys cannot shift), keeping
incremental decoding exactly equivalent to full recompute.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import tensor as F
from ..serving.kv_cache import DecoderKVCache
from ..serving.sampling import sample_logits
from .blocks import DecoderBlock
from .config import ModelConfig

__all__ = [
    "ButterflyDecoderLM",
    "DecoderBlock",
    "build_butterfly_decoder",
    "build_dense_decoder",
]


class ButterflyDecoderLM(nn.Module):
    """Autoregressive language model with butterfly-compressed blocks.

    Predicts token ``t+1`` from tokens ``<= t``; the LM head shares no
    weights with the embedding (simplest faithful variant).
    """

    def __init__(self, config: ModelConfig, butterfly: bool = True) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.butterfly = butterfly
        self.token_emb = nn.Embedding(config.vocab_size, config.d_hidden, rng=rng)
        self.pos_emb = nn.Parameter(
            rng.normal(0.0, 0.02, size=(config.max_len, config.d_hidden))
        )
        self.blocks = nn.ModuleList([
            DecoderBlock(config.d_hidden, config.n_heads, config.r_ffn,
                         config.dropout, butterfly=butterfly, rng=rng)
            for _ in range(config.n_total)
        ])
        self.final_norm = nn.LayerNorm(config.d_hidden)
        self.lm_head = nn.Linear(config.d_hidden, config.vocab_size, rng=rng)
        self.drop = nn.Dropout(config.dropout, rng=rng)

    # ------------------------------------------------------------------
    def forward(self, tokens: np.ndarray) -> nn.Tensor:
        """Return next-token logits of shape (batch, seq, vocab)."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, seq), got {tokens.shape}")
        seq = tokens.shape[1]
        if seq > self.config.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.config.max_len}")
        x = self.token_emb(tokens) + F.getitem(self.pos_emb, slice(0, seq))
        x = self.drop(x)
        for block in self.blocks:
            x = block(x)
        return self.lm_head(self.final_norm(x))

    def loss(self, tokens: np.ndarray) -> nn.Tensor:
        """Teacher-forced next-token cross-entropy over a token batch."""
        tokens = np.asarray(tokens, dtype=np.int64)
        logits = self.forward(tokens[:, :-1])
        batch, seq, vocab = logits.shape
        flat = F.reshape(logits, (batch * seq, vocab))
        targets = tokens[:, 1:].reshape(-1)
        # Fused logsumexp loss: never materializes (B*L, V) log-probs.
        return F.cross_entropy_logits(flat, targets)

    # ------------------------------------------------------------------
    # KV-cache incremental decoding (inference-only)
    # ------------------------------------------------------------------
    def make_cache(self, batch: int) -> DecoderKVCache:
        """Empty KV cache sized for this model and ``batch`` sequences."""
        cfg = self.config
        return DecoderKVCache(
            n_layers=len(self.blocks), batch=batch, n_heads=cfg.n_heads,
            d_head=cfg.d_hidden // cfg.n_heads, max_len=cfg.max_len,
            dtype=self.token_emb.weight.dtype,
        )

    def forward_incremental(
        self, tokens: np.ndarray, cache: DecoderKVCache
    ) -> np.ndarray:
        """Forward only the new ``(batch, s_new)`` tokens against ``cache``.

        Appends the new keys/values to the cache, advances its lengths,
        and returns plain-numpy logits ``(batch, s_new, vocab)``.  Rows
        may sit at different context lengths (continuous batching);
        every new token lands at its row's next absolute position, which
        must stay below ``max_len`` (callers re-prefill the clipped
        window at the sliding-window edge).
        """
        if self.training:
            raise RuntimeError(
                "KV-cache decoding is inference-only; call .eval() first"
            )
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, s_new), got {tokens.shape}")
        if tokens.shape[0] != cache.batch:
            raise ValueError(
                f"batch mismatch: cache has {cache.batch} rows, "
                f"tokens have {tokens.shape[0]}"
            )
        s_new = tokens.shape[1]
        positions = cache.lengths[:, None] + np.arange(s_new)[None, :]
        if positions.size and positions.max() >= self.config.max_len:
            raise ValueError(
                f"position {positions.max()} exceeds max_len "
                f"{self.config.max_len}; re-prefill the sliding window"
            )
        with nn.no_grad():
            x = self.token_emb(tokens) + F.embedding(self.pos_emb, positions)
            for index, block in enumerate(self.blocks):
                x = block(x, layer_kv=cache.layer(index))
            logits = self.lm_head(self.final_norm(x))
        cache.advance(s_new)
        return logits.data

    def prefill(self, tokens: np.ndarray, cache: DecoderKVCache) -> np.ndarray:
        """Run the prompt through an empty-tail cache; return last-position logits."""
        return self.forward_incremental(tokens, cache)[:, -1]

    def decode_step(self, tokens: np.ndarray, cache: DecoderKVCache) -> np.ndarray:
        """Single-token step: ``(batch,)`` new tokens -> ``(batch, vocab)`` logits."""
        tokens = np.asarray(tokens, dtype=np.int64)
        return self.forward_incremental(tokens[:, None], cache)[:, 0]

    # ------------------------------------------------------------------
    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        top_k: int = 0,
        top_p: float = 1.0,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Autoregressive decoding; greedy when ``temperature == 0``.

        Sampling is vectorized over the batch (Gumbel-max with optional
        top-k / top-p filtering, shared with the serving engine).  With
        ``use_cache`` (default) decoding is incremental over a KV cache;
        ``use_cache=False`` keeps the full-window recompute path, which
        the parity tests use as the reference.
        """
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        rng = rng or np.random.default_rng()
        tokens = np.atleast_2d(np.asarray(prompt, dtype=np.int64)).copy()
        if max_new_tokens == 0:
            return tokens
        max_len = self.config.max_len
        self.eval()
        with nn.no_grad():
            if not use_cache:
                for _ in range(max_new_tokens):
                    window = tokens[:, -max_len:]
                    logits = self.forward(window).data[:, -1]
                    next_token = sample_logits(
                        logits, temperature=temperature,
                        top_k=top_k, top_p=top_p, rng=rng,
                    )
                    tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
                return tokens
            cache = self.make_cache(tokens.shape[0])
            logits = self.prefill(tokens[:, -max_len:], cache)
            for step in range(max_new_tokens):
                next_token = sample_logits(
                    logits, temperature=temperature,
                    top_k=top_k, top_p=top_p, rng=rng,
                )
                tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
                if step == max_new_tokens - 1:
                    break
                if int(cache.lengths.max()) >= max_len:
                    # Sliding-window edge: absolute positions shift, so
                    # re-prime the cache from the clipped window.
                    cache = self.make_cache(tokens.shape[0])
                    logits = self.prefill(tokens[:, -max_len:], cache)
                else:
                    logits = self.decode_step(next_token, cache)
        return tokens


def build_butterfly_decoder(config: ModelConfig) -> ButterflyDecoderLM:
    """GPT-style decoder with butterfly-compressed linear layers."""
    with config.dtype_context():
        return ButterflyDecoderLM(config, butterfly=True)


def build_dense_decoder(config: ModelConfig) -> ButterflyDecoderLM:
    """Dense decoder baseline (for compression comparisons)."""
    with config.dtype_context():
        return ButterflyDecoderLM(config, butterfly=False)
