"""Decoder-only (GPT-style) butterfly language model.

The paper focuses on encoder-only networks but notes (Section II-A) that
"our hardware design is flexible and applicable to decoders too": a
decoder block is the same butterfly-compressed attention + FFN pipeline
with a causal mask, which is a score-matrix masking detail invisible to
the Butterfly Processor.  This module provides that decoder variant:
causal ABfly blocks, an autoregressive LM head, and greedy/sampled
generation — the 'future work' direction made concrete.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import tensor as F
from .config import ModelConfig


class DecoderBlock(nn.Module):
    """Causal ABfly block: masked butterfly attention + butterfly FFN."""

    def __init__(
        self,
        d_hidden: int,
        n_heads: int,
        r_ffn: int,
        dropout: float = 0.0,
        butterfly: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attn = nn.MultiHeadAttention(
            d_hidden, n_heads, dropout=dropout, butterfly=butterfly,
            causal=True, rng=rng,
        )
        self.norm1 = nn.LayerNorm(d_hidden)
        layer = nn.ButterflyLinear if butterfly else nn.Linear
        self.fc1 = layer(d_hidden, d_hidden * r_ffn, rng=rng)
        self.fc2 = layer(d_hidden * r_ffn, d_hidden, rng=rng)
        self.act = nn.GELU()
        self.norm2 = nn.LayerNorm(d_hidden)
        self.drop = nn.Dropout(dropout, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = self.norm1(x + self.drop(self.attn(x)))
        ffn_out = self.drop(self.fc2(self.act(self.fc1(x))))
        return self.norm2(x + ffn_out)


class ButterflyDecoderLM(nn.Module):
    """Autoregressive language model with butterfly-compressed blocks.

    Predicts token ``t+1`` from tokens ``<= t``; the LM head shares no
    weights with the embedding (simplest faithful variant).
    """

    def __init__(self, config: ModelConfig, butterfly: bool = True) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.butterfly = butterfly
        self.token_emb = nn.Embedding(config.vocab_size, config.d_hidden, rng=rng)
        self.pos_emb = nn.Parameter(
            rng.normal(0.0, 0.02, size=(config.max_len, config.d_hidden))
        )
        self.blocks = nn.ModuleList([
            DecoderBlock(config.d_hidden, config.n_heads, config.r_ffn,
                         config.dropout, butterfly=butterfly, rng=rng)
            for _ in range(config.n_total)
        ])
        self.final_norm = nn.LayerNorm(config.d_hidden)
        self.lm_head = nn.Linear(config.d_hidden, config.vocab_size, rng=rng)
        self.drop = nn.Dropout(config.dropout, rng=rng)

    # ------------------------------------------------------------------
    def forward(self, tokens: np.ndarray) -> nn.Tensor:
        """Return next-token logits of shape (batch, seq, vocab)."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, seq), got {tokens.shape}")
        seq = tokens.shape[1]
        if seq > self.config.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.config.max_len}")
        x = self.token_emb(tokens) + F.getitem(self.pos_emb, slice(0, seq))
        x = self.drop(x)
        for block in self.blocks:
            x = block(x)
        return self.lm_head(self.final_norm(x))

    def loss(self, tokens: np.ndarray) -> nn.Tensor:
        """Teacher-forced next-token cross-entropy over a token batch."""
        tokens = np.asarray(tokens, dtype=np.int64)
        logits = self.forward(tokens[:, :-1])
        batch, seq, vocab = logits.shape
        flat = F.reshape(logits, (batch * seq, vocab))
        targets = tokens[:, 1:].reshape(-1)
        return F.cross_entropy(flat, targets)

    # ------------------------------------------------------------------
    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Autoregressive decoding; greedy when ``temperature == 0``."""
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        rng = rng or np.random.default_rng()
        tokens = np.atleast_2d(np.asarray(prompt, dtype=np.int64)).copy()
        self.eval()
        with nn.no_grad():
            for _ in range(max_new_tokens):
                window = tokens[:, -self.config.max_len:]
                logits = self.forward(window).data[:, -1]
                if temperature <= 0.0:
                    next_token = logits.argmax(axis=-1)
                else:
                    scaled = logits / temperature
                    scaled -= scaled.max(axis=-1, keepdims=True)
                    probs = np.exp(scaled)
                    probs /= probs.sum(axis=-1, keepdims=True)
                    next_token = np.array([
                        rng.choice(len(p), p=p) for p in probs
                    ])
                tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
        return tokens


def build_butterfly_decoder(config: ModelConfig) -> ButterflyDecoderLM:
    """GPT-style decoder with butterfly-compressed linear layers."""
    with config.dtype_context():
        return ButterflyDecoderLM(config, butterfly=True)


def build_dense_decoder(config: ModelConfig) -> ButterflyDecoderLM:
    """Dense decoder baseline (for compression comparisons)."""
    with config.dtype_context():
        return ButterflyDecoderLM(config, butterfly=False)
