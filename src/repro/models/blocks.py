"""Transformer blocks: vanilla/FBfly/ABfly encoder blocks and the causal
decoder block (paper Fig. 5; Section II-A for the decoder variant)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import tensor as F


class FeedForward(nn.Module):
    """Two-layer FFN; dense for the vanilla models, butterfly for FABNet."""

    def __init__(
        self,
        d_hidden: int,
        d_ffn: int,
        dropout: float = 0.0,
        butterfly: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        layer = nn.ButterflyLinear if butterfly else nn.Linear
        self.butterfly = butterfly
        self.fc1 = layer(d_hidden, d_ffn, rng=rng)
        self.fc2 = layer(d_ffn, d_hidden, rng=rng)
        self.act = nn.GELU()
        self.drop = nn.Dropout(dropout, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        if self.butterfly or not isinstance(self.fc1, nn.Linear):
            # Butterfly layers — and the int8 inference replicas that
            # quantize_for_inference swaps in — run through the module
            # call; only the dense fp projections take the fused path.
            return self.drop(self.fc2(self.act(self.fc1(x))))
        # Dense fast path: GEMM + bias + GELU fused into one graph node
        # for the first projection, one fused node for the second.
        # Dropout (when enabled) stays its own node after the stack —
        # the same composite-survives-only-around-dropout rule as the
        # attention kernel.
        h = F.linear_act(x, self.fc1.weight, self.fc1.bias, activation="gelu")
        return self.drop(F.linear_act(h, self.fc2.weight, self.fc2.bias))


class DecoderBlock(nn.Module):
    """Causal ABfly block: masked butterfly attention + butterfly FFN.

    ``forward`` optionally takes a per-layer KV cache handle
    (:class:`repro.serving.kv_cache.LayerKV`) for incremental decoding:
    ``x`` then carries only the new tokens and attention runs against
    the cached context.  The FFN/LayerNorm sub-layers are position-wise,
    so the cached path reuses them unchanged.
    """

    def __init__(
        self,
        d_hidden: int,
        n_heads: int,
        r_ffn: int,
        dropout: float = 0.0,
        butterfly: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attn = nn.MultiHeadAttention(
            d_hidden, n_heads, dropout=dropout, butterfly=butterfly,
            causal=True, rng=rng,
        )
        self.norm1 = nn.LayerNorm(d_hidden)
        self.ffn = FeedForward(
            d_hidden, d_hidden * r_ffn, dropout=dropout, butterfly=butterfly, rng=rng
        )
        self.norm2 = nn.LayerNorm(d_hidden)
        self.drop = nn.Dropout(dropout, rng=rng)

    def forward(self, x: nn.Tensor, layer_kv=None) -> nn.Tensor:
        # norm(x + sub(x)) runs as one fused node per sub-layer close
        # (residual add never materialized as a separate graph node).
        x = F.residual_layer_norm(
            x, self.drop(self.attn(x, layer_kv=layer_kv)),
            self.norm1.gamma, self.norm1.beta, eps=self.norm1.eps,
        )
        return F.residual_layer_norm(
            x, self.ffn(x), self.norm2.gamma, self.norm2.beta,
            eps=self.norm2.eps,
        )


class EncoderBlock(nn.Module):
    """One encoder block: token mixing + FFN, each with residual and LayerNorm.

    ``mixing`` chooses the token-mixing sub-layer:
      * ``"attention"`` — dense multi-head attention (vanilla Transformer).
      * ``"fourier"`` — parameter-free 2D-FFT mixing (FNet / FBfly).
      * ``"butterfly_attention"`` — attention with butterfly Q/K/V/O
        projections (the paper's ABfly block).

    ``butterfly_ffn`` selects butterfly-factorized FFN weights.
    """

    MIXINGS = ("attention", "fourier", "butterfly_attention")

    def __init__(
        self,
        d_hidden: int,
        n_heads: int,
        r_ffn: int,
        dropout: float = 0.0,
        mixing: str = "attention",
        butterfly_ffn: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if mixing not in self.MIXINGS:
            raise ValueError(f"mixing must be one of {self.MIXINGS}, got {mixing!r}")
        self.mixing_kind = mixing
        self.butterfly_ffn = butterfly_ffn
        if mixing == "fourier":
            self.mixer = nn.FourierMixing()
        else:
            self.mixer = nn.MultiHeadAttention(
                d_hidden,
                n_heads,
                dropout=dropout,
                butterfly=(mixing == "butterfly_attention"),
                rng=rng,
            )
        self.norm1 = nn.LayerNorm(d_hidden)
        self.ffn = FeedForward(
            d_hidden, d_hidden * r_ffn, dropout=dropout, butterfly=butterfly_ffn, rng=rng
        )
        self.norm2 = nn.LayerNorm(d_hidden)
        self.drop = nn.Dropout(dropout, rng=rng)

    def forward(self, x: nn.Tensor, mask: Optional[np.ndarray] = None) -> nn.Tensor:
        mixed = self.mixer(x, mask=mask)
        # Fused residual + LayerNorm closes each sub-layer in one node.
        x = F.residual_layer_norm(
            x, self.drop(mixed), self.norm1.gamma, self.norm1.beta,
            eps=self.norm1.eps,
        )
        x = F.residual_layer_norm(
            x, self.ffn(x), self.norm2.gamma, self.norm2.beta,
            eps=self.norm2.eps,
        )
        return x


def make_fbfly_block(
    d_hidden: int, n_heads: int, r_ffn: int, dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> EncoderBlock:
    """FBfly: Fourier mixing + butterfly FFN (paper Fig. 5, bottom blocks)."""
    return EncoderBlock(
        d_hidden, n_heads, r_ffn, dropout, mixing="fourier", butterfly_ffn=True, rng=rng
    )


def make_abfly_block(
    d_hidden: int, n_heads: int, r_ffn: int, dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> EncoderBlock:
    """ABfly: butterfly-projected attention + butterfly FFN (paper Fig. 5)."""
    return EncoderBlock(
        d_hidden, n_heads, r_ffn, dropout,
        mixing="butterfly_attention", butterfly_ffn=True, rng=rng,
    )
