"""Encoder-decoder (sequence-to-sequence) butterfly Transformer.

Paper Figure 2 describes the original encoder-decoder Transformer; the
paper evaluates encoder-only models but its compression applies to every
linear layer in the stack.  This module completes the taxonomy: a seq2seq
model whose encoder blocks, decoder blocks and cross-attention
projections are all butterfly-compressed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import tensor as F
from .config import ModelConfig


class CrossAttention(nn.Module):
    """Multi-head attention where queries attend to encoder memory."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        butterfly: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        rng = rng or np.random.default_rng()
        proj = nn.ButterflyLinear if butterfly else nn.Linear
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.q_proj = proj(d_model, d_model, rng=rng)
        self.k_proj = proj(d_model, d_model, rng=rng)
        self.v_proj = proj(d_model, d_model, rng=rng)
        self.out_proj = proj(d_model, d_model, rng=rng)

    def forward(self, x: nn.Tensor, memory: nn.Tensor) -> nn.Tensor:
        """``x``: (B, Lt, D) decoder states; ``memory``: (B, Ls, D)."""
        batch, lt, _ = x.shape
        ls = memory.shape[1]

        def split(t: nn.Tensor, length: int) -> nn.Tensor:
            t = F.reshape(t, (batch, length, self.n_heads, self.d_head))
            return F.transpose(t, (0, 2, 1, 3))

        q = split(self.q_proj(x), lt)
        k = split(self.k_proj(memory), ls)
        v = split(self.v_proj(memory), ls)
        scores = F.matmul(q, F.transpose(k, (0, 1, 3, 2))) * (
            1.0 / np.sqrt(self.d_head)
        )
        attn = F.softmax(scores, axis=-1)
        ctx = F.matmul(attn, v)
        ctx = F.reshape(F.transpose(ctx, (0, 2, 1, 3)), (batch, lt, self.d_model))
        return self.out_proj(ctx)


class Seq2SeqDecoderBlock(nn.Module):
    """Causal self-attention + cross-attention + butterfly FFN."""

    def __init__(
        self,
        d_hidden: int,
        n_heads: int,
        r_ffn: int,
        butterfly: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.self_attn = nn.MultiHeadAttention(
            d_hidden, n_heads, butterfly=butterfly, causal=True, rng=rng
        )
        self.norm1 = nn.LayerNorm(d_hidden)
        self.cross_attn = CrossAttention(d_hidden, n_heads, butterfly, rng=rng)
        self.norm2 = nn.LayerNorm(d_hidden)
        layer = nn.ButterflyLinear if butterfly else nn.Linear
        self.fc1 = layer(d_hidden, d_hidden * r_ffn, rng=rng)
        self.fc2 = layer(d_hidden * r_ffn, d_hidden, rng=rng)
        self.act = nn.GELU()
        self.norm3 = nn.LayerNorm(d_hidden)

    def forward(self, x: nn.Tensor, memory: nn.Tensor) -> nn.Tensor:
        # Each sub-layer closes with the fused residual + LayerNorm node.
        x = F.residual_layer_norm(
            x, self.self_attn(x), self.norm1.gamma, self.norm1.beta,
            eps=self.norm1.eps,
        )
        x = F.residual_layer_norm(
            x, self.cross_attn(x, memory), self.norm2.gamma, self.norm2.beta,
            eps=self.norm2.eps,
        )
        return F.residual_layer_norm(
            x, self.fc2(self.act(self.fc1(x))), self.norm3.gamma,
            self.norm3.beta, eps=self.norm3.eps,
        )


class ButterflySeq2Seq(nn.Module):
    """Full encoder-decoder Transformer with butterfly compression.

    The encoder is FABNet-style (FBfly blocks by default); the decoder
    stacks causal + cross-attention blocks.  Shapes follow Fig. 2.
    """

    def __init__(self, config: ModelConfig, butterfly: bool = True) -> None:
        super().__init__()
        from .encoder import build_fabnet

        rng = np.random.default_rng(config.seed + 17)
        self.config = config
        self.butterfly = butterfly
        self.encoder = build_fabnet(config)
        self.tgt_emb = nn.Embedding(config.vocab_size, config.d_hidden, rng=rng)
        self.tgt_pos = nn.Parameter(
            rng.normal(0.0, 0.02, size=(config.max_len, config.d_hidden))
        )
        self.decoder_blocks = nn.ModuleList([
            Seq2SeqDecoderBlock(config.d_hidden, config.n_heads, config.r_ffn,
                                butterfly, rng=rng)
            for _ in range(config.n_total)
        ])
        self.out_norm = nn.LayerNorm(config.d_hidden)
        self.lm_head = nn.Linear(config.d_hidden, config.vocab_size, rng=rng)

    # ------------------------------------------------------------------
    def encode(self, src: np.ndarray) -> nn.Tensor:
        """Encoder memory of shape (B, Ls, D)."""
        src = np.asarray(src, dtype=np.int64)
        seq = src.shape[1]
        x = self.encoder.token_emb(src) + F.getitem(self.encoder.pos_emb, slice(0, seq))
        for block in self.encoder.blocks:
            x = block(x)
        return self.encoder.head_norm(x)

    def decode(self, tgt: np.ndarray, memory: nn.Tensor) -> nn.Tensor:
        """Next-token logits (B, Lt, vocab) given target prefix + memory."""
        tgt = np.asarray(tgt, dtype=np.int64)
        seq = tgt.shape[1]
        if seq > self.config.max_len:
            raise ValueError(f"target length {seq} exceeds max_len")
        y = self.tgt_emb(tgt) + F.getitem(self.tgt_pos, slice(0, seq))
        for block in self.decoder_blocks:
            y = block(y, memory)
        return self.lm_head(self.out_norm(y))

    def forward(self, src: np.ndarray, tgt: np.ndarray) -> nn.Tensor:
        return self.decode(tgt, self.encode(src))

    def loss(self, src: np.ndarray, tgt: np.ndarray) -> nn.Tensor:
        """Teacher-forced loss: predict tgt[1:] from tgt[:-1] + memory."""
        tgt = np.asarray(tgt, dtype=np.int64)
        logits = self.forward(src, tgt[:, :-1])
        batch, seq, vocab = logits.shape
        return F.cross_entropy_logits(
            F.reshape(logits, (batch * seq, vocab)), tgt[:, 1:].reshape(-1)
        )

    def greedy_translate(
        self, src: np.ndarray, bos: int, max_len: Optional[int] = None
    ) -> np.ndarray:
        """Greedy decoding from a BOS token."""
        src = np.atleast_2d(np.asarray(src, dtype=np.int64))
        max_len = max_len or src.shape[1] + 1
        self.eval()
        with nn.no_grad():
            memory = self.encode(src)
            tgt = np.full((src.shape[0], 1), bos, dtype=np.int64)
            for _ in range(max_len - 1):
                logits = self.decode(tgt, memory).data[:, -1]
                nxt = logits.argmax(axis=-1)
                tgt = np.concatenate([tgt, nxt[:, None]], axis=1)
        return tgt


def generate_copy_task(
    n_samples: int = 128,
    seq_len: int = 12,
    vocab: int = 12,
    bos: int = 1,
    reverse: bool = False,
    seed: int = 0,
):
    """Toy seq2seq data: copy (or reverse) the source sequence.

    Returns (src, tgt) where ``tgt`` starts with BOS followed by the
    (possibly reversed) source; tokens are drawn from [2, vocab).
    """
    rng = np.random.default_rng(seed)
    src = rng.integers(2, vocab, size=(n_samples, seq_len)).astype(np.int64)
    body = src[:, ::-1] if reverse else src
    tgt = np.concatenate(
        [np.full((n_samples, 1), bos, dtype=np.int64), body], axis=1
    )
    return src, tgt
