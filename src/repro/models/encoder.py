"""Encoder-only classifier models: Transformer, FNet, FABNet.

All three share one skeleton (embeddings -> blocks -> pooling -> head) and
differ only in which :class:`~repro.models.blocks.EncoderBlock` variants
they stack, which is exactly the framing of the paper's Figure 5.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import tensor as F
from .blocks import EncoderBlock, make_abfly_block, make_fbfly_block
from .config import ModelConfig


class EncoderClassifier(nn.Module):
    """Token embeddings + positional embeddings + encoder blocks + head."""

    def __init__(self, config: ModelConfig, blocks: List[EncoderBlock],
                 rng: np.random.Generator) -> None:
        super().__init__()
        if len(blocks) != config.n_total:
            raise ValueError(
                f"expected {config.n_total} blocks, got {len(blocks)}"
            )
        self.config = config
        self.token_emb = nn.Embedding(config.vocab_size, config.d_hidden, rng=rng)
        self.pos_emb = nn.Parameter(
            rng.normal(0.0, 0.02, size=(config.max_len, config.d_hidden))
        )
        self.blocks = nn.ModuleList(blocks)
        self.head_norm = nn.LayerNorm(config.d_hidden)
        self.head = nn.Linear(config.d_hidden, config.n_classes, rng=rng)
        self.drop = nn.Dropout(config.dropout, rng=rng)

    # ------------------------------------------------------------------
    def encode(self, tokens: np.ndarray, mask: Optional[np.ndarray] = None) -> nn.Tensor:
        """Return pooled (batch, d_hidden) features for integer token ids."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, seq), got shape {tokens.shape}")
        seq = tokens.shape[1]
        if seq > self.config.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.config.max_len}")
        x = self.token_emb(tokens) + F.getitem(self.pos_emb, slice(0, seq))
        x = self.drop(x)
        for block in self.blocks:
            x = block(x, mask=mask)
        x = self.head_norm(x)
        if self.config.pooling == "cls":
            pooled = F.getitem(x, (slice(None), 0))
        else:
            if mask is not None:
                m = mask.astype(x.dtype)[..., None]
                x = x * nn.Tensor(m)
                denom = nn.Tensor(m.sum(axis=1).clip(min=1.0))
                pooled = F.sum_(x, axis=1) / denom
            else:
                pooled = F.mean(x, axis=1)
        return pooled

    def forward(self, tokens: np.ndarray, mask: Optional[np.ndarray] = None) -> nn.Tensor:
        """Return class logits of shape (batch, n_classes)."""
        return self.head(self.encode(tokens, mask=mask))


def build_transformer(config: ModelConfig) -> EncoderClassifier:
    """Vanilla post-LN Transformer encoder (dense attention + dense FFN)."""
    with config.dtype_context():
        rng = np.random.default_rng(config.seed)
        blocks = [
            EncoderBlock(
                config.d_hidden, config.n_heads, config.r_ffn, config.dropout,
                mixing="attention", butterfly_ffn=False, rng=rng,
            )
            for _ in range(config.n_total)
        ]
        return EncoderClassifier(config, blocks, rng)


def build_fnet(config: ModelConfig) -> EncoderClassifier:
    """FNet: every block uses Fourier mixing with a dense FFN."""
    with config.dtype_context():
        rng = np.random.default_rng(config.seed)
        blocks = [
            EncoderBlock(
                config.d_hidden, config.n_heads, config.r_ffn, config.dropout,
                mixing="fourier", butterfly_ffn=False, rng=rng,
            )
            for _ in range(config.n_total)
        ]
        return EncoderClassifier(config, blocks, rng)


def build_fabnet(config: ModelConfig) -> EncoderClassifier:
    """FABNet: ``n_fbfly`` FBfly blocks followed by ``n_abfly`` ABfly blocks."""
    with config.dtype_context():
        rng = np.random.default_rng(config.seed)
        blocks: List[EncoderBlock] = []
        for _ in range(config.n_fbfly):
            blocks.append(
                make_fbfly_block(config.d_hidden, config.n_heads, config.r_ffn,
                                 config.dropout, rng=rng)
            )
        for _ in range(config.n_abfly):
            blocks.append(
                make_abfly_block(config.d_hidden, config.n_heads, config.r_ffn,
                                 config.dropout, rng=rng)
            )
        return EncoderClassifier(config, blocks, rng)


def build_hybrid_transformer(config: ModelConfig, n_compressed: int) -> EncoderClassifier:
    """Transformer with the *last* ``n_compressed`` blocks replaced by FBfly.

    This is the Figure 16 experiment: compressing a 6-layer Transformer
    starting from the last block.
    """
    if not 0 <= n_compressed <= config.n_total:
        raise ValueError(
            f"n_compressed={n_compressed} out of range [0, {config.n_total}]"
        )
    with config.dtype_context():
        rng = np.random.default_rng(config.seed)
        blocks: List[EncoderBlock] = []
        n_dense = config.n_total - n_compressed
        for _ in range(n_dense):
            blocks.append(
                EncoderBlock(config.d_hidden, config.n_heads, config.r_ffn,
                             config.dropout, mixing="attention", rng=rng)
            )
        for _ in range(n_compressed):
            blocks.append(
                make_fbfly_block(config.d_hidden, config.n_heads, config.r_ffn,
                                 config.dropout, rng=rng)
            )
        return EncoderClassifier(config, blocks, rng)


MODEL_BUILDERS = {
    "transformer": build_transformer,
    "fnet": build_fnet,
    "fabnet": build_fabnet,
}


def build_model(name: str, config: ModelConfig) -> EncoderClassifier:
    """Build a model by name ('transformer', 'fnet', 'fabnet')."""
    try:
        return MODEL_BUILDERS[name](config)
    except KeyError:
        raise ValueError(f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}")


class DualEncoderClassifier(nn.Module):
    """Two-tower model for the Retrieval task (paper's LRA-Retrieval).

    Both documents are encoded with a shared encoder; the pooled features
    are combined as ``[h1, h2, h1*h2, h1-h2]`` and classified by a small
    MLP, following the standard LRA dual-encoder recipe.
    """

    def __init__(self, encoder: EncoderClassifier) -> None:
        super().__init__()
        self.encoder = encoder
        d = encoder.config.d_hidden
        rng = np.random.default_rng(encoder.config.seed + 1)
        # Build the head under the encoder's dtype policy so the whole
        # two-tower model is uniform-precision.
        with encoder.config.dtype_context():
            self.fc = nn.Linear(4 * d, d, rng=rng)
            self.out = nn.Linear(d, encoder.config.n_classes, rng=rng)

    def forward(self, tokens_pair: np.ndarray) -> nn.Tensor:
        """``tokens_pair`` has shape (batch, 2, seq)."""
        tokens_pair = np.asarray(tokens_pair, dtype=np.int64)
        if tokens_pair.ndim != 3 or tokens_pair.shape[1] != 2:
            raise ValueError(
                f"expected (batch, 2, seq) token pairs, got {tokens_pair.shape}"
            )
        h1 = self.encoder.encode(tokens_pair[:, 0])
        h2 = self.encoder.encode(tokens_pair[:, 1])
        feats = F.concat([h1, h2, h1 * h2, h1 - h2], axis=-1)
        if isinstance(self.fc, nn.Linear):
            # Head MLP on the fused fast path: projection + GELU in one node.
            hidden = F.linear_act(feats, self.fc.weight, self.fc.bias,
                                  activation="gelu")
        else:  # int8 inference replica: run through the module call
            hidden = F.gelu(self.fc(feats))
        return self.out(hidden)
