"""Model zoo: vanilla Transformer, FNet, FABNet and hybrids."""

from .blocks import EncoderBlock, FeedForward, make_abfly_block, make_fbfly_block
from .config import FABNET_BASE, FABNET_LARGE, ModelConfig
from .decoder import (
    ButterflyDecoderLM,
    DecoderBlock,
    build_butterfly_decoder,
    build_dense_decoder,
)
from .encoder import (
    MODEL_BUILDERS,
    DualEncoderClassifier,
    EncoderClassifier,
    build_fabnet,
    build_fnet,
    build_hybrid_transformer,
    build_model,
    build_transformer,
)
from .seq2seq import (
    ButterflySeq2Seq,
    CrossAttention,
    Seq2SeqDecoderBlock,
    generate_copy_task,
)

__all__ = [
    "ButterflyDecoderLM",
    "ButterflySeq2Seq",
    "CrossAttention",
    "DecoderBlock",
    "Seq2SeqDecoderBlock",
    "generate_copy_task",
    "FABNET_BASE",
    "FABNET_LARGE",
    "MODEL_BUILDERS",
    "DualEncoderClassifier",
    "EncoderBlock",
    "EncoderClassifier",
    "FeedForward",
    "ModelConfig",
    "build_butterfly_decoder",
    "build_dense_decoder",
    "build_fabnet",
    "build_fnet",
    "build_hybrid_transformer",
    "build_model",
    "build_transformer",
    "make_abfly_block",
    "make_fbfly_block",
]
