"""Variable-length sequences, padding masks and mask-aware training."""

import numpy as np
import pytest

from repro.data import generate_text
from repro.data.base import TaskDataset
from repro.models import ModelConfig, build_transformer
from repro.training import Trainer


@pytest.fixture(scope="module")
def var_dataset():
    return generate_text(n_samples=120, seq_len=32, variable_length=True, seed=0)


class TestVariableLengthGeneration:
    def test_lengths_annotated(self, var_dataset):
        assert var_dataset.has_lengths
        assert var_dataset.lengths_train.min() >= 5
        assert var_dataset.lengths_train.max() <= 32

    def test_lengths_actually_vary(self, var_dataset):
        assert len(np.unique(var_dataset.lengths_train)) > 3

    def test_padding_beyond_length_is_zero(self, var_dataset):
        for row, length in zip(var_dataset.x_train, var_dataset.lengths_train):
            assert (row[length:] == 0).all()

    def test_content_before_length_nonzero(self, var_dataset):
        for row, length in zip(var_dataset.x_train[:20], var_dataset.lengths_train[:20]):
            assert (row[: max(0, length - 5)] != 0).any()

    def test_fixed_length_has_no_annotations(self):
        ds = generate_text(n_samples=20, seq_len=16, seed=0)
        assert not ds.has_lengths
        with pytest.raises(ValueError, match="length annotations"):
            ds.masks()


class TestMasks:
    def test_mask_shape_and_semantics(self, var_dataset):
        masks = var_dataset.masks("train")
        assert masks.shape == var_dataset.x_train.shape
        np.testing.assert_array_equal(
            masks.sum(axis=1), var_dataset.lengths_train
        )

    def test_batches_with_masks(self, var_dataset, rng):
        total = 0
        for xb, yb, mb in var_dataset.batches_with_masks(16, rng):
            assert xb.shape == mb.shape
            assert len(xb) == len(yb)
            total += len(yb)
        assert total == var_dataset.n_train

    def test_length_validation(self):
        with pytest.raises(ValueError, match="exceeds seq_len"):
            TaskDataset(
                name="t", vocab_size=4, n_classes=2, seq_len=4,
                x_train=np.zeros((2, 4), dtype=np.int64),
                y_train=np.zeros(2, dtype=np.int64),
                x_test=np.zeros((1, 4), dtype=np.int64),
                y_test=np.zeros(1, dtype=np.int64),
                lengths_train=np.array([3, 9]),
                lengths_test=np.array([2]),
            )

    def test_length_count_validation(self):
        with pytest.raises(ValueError, match="sample count"):
            TaskDataset(
                name="t", vocab_size=4, n_classes=2, seq_len=4,
                x_train=np.zeros((2, 4), dtype=np.int64),
                y_train=np.zeros(2, dtype=np.int64),
                x_test=np.zeros((1, 4), dtype=np.int64),
                y_test=np.zeros(1, dtype=np.int64),
                lengths_train=np.array([3]),
                lengths_test=np.array([2]),
            )


class TestMaskAwareTraining:
    def test_trainer_with_masks_learns(self, var_dataset):
        cfg = ModelConfig(
            vocab_size=var_dataset.vocab_size, n_classes=var_dataset.n_classes,
            max_len=var_dataset.seq_len, d_hidden=16, n_heads=2, r_ffn=2,
            n_total=1, seed=0,
        )
        trainer = Trainer(build_transformer(cfg), lr=3e-3, use_masks=True)
        result = trainer.fit(var_dataset, epochs=3)
        assert result.train_losses[-1] < result.train_losses[0]
        assert result.best_test_accuracy > 0.55

    def test_masked_model_ignores_padding_tokens(self, var_dataset, rng):
        """Corrupting padded positions cannot change masked predictions."""
        cfg = ModelConfig(
            vocab_size=var_dataset.vocab_size, n_classes=2,
            max_len=var_dataset.seq_len, d_hidden=16, n_heads=2, r_ffn=2,
            n_total=1, seed=0,
        )
        model = build_transformer(cfg).eval()
        x = var_dataset.x_test[:4].copy()
        masks = var_dataset.masks("test")[:4]
        base = model(x, mask=masks).data
        x_corrupt = x.copy()
        x_corrupt[~masks] = rng.integers(1, 28, size=(~masks).sum())
        out = model(x_corrupt, mask=masks).data
        np.testing.assert_allclose(base, out, atol=1e-8)
