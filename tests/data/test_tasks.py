"""The five synthetic LRA task generators."""

import numpy as np
import pytest

from repro.data import (
    LRA_FULL_SEQ_LEN,
    LRA_TASKS,
    generate_image,
    generate_listops,
    generate_pathfinder,
    generate_retrieval,
    generate_text,
    load_task,
)
from repro.data.listops import CLOSE, DIGIT_BASE, OP_MAX, OP_MED, OP_MIN, OP_SM, _eval_op


class TestRegistry:
    def test_five_tasks(self):
        assert set(LRA_TASKS) == {"listops", "text", "retrieval", "image", "pathfinder"}

    def test_load_task_by_name(self):
        ds = load_task("text", n_samples=16, seq_len=32)
        assert ds.name == "text"

    def test_load_task_unknown(self):
        with pytest.raises(ValueError, match="unknown LRA task"):
            load_task("audio")

    def test_full_seq_lengths_match_paper(self):
        assert LRA_FULL_SEQ_LEN["text"] == 4096
        assert LRA_FULL_SEQ_LEN["image"] == 1024
        assert all(1024 <= v <= 4096 for v in LRA_FULL_SEQ_LEN.values())


class TestCommonProperties:
    @pytest.mark.parametrize("task,kwargs", [
        ("listops", dict(n_samples=64, seq_len=48)),
        ("text", dict(n_samples=64, seq_len=48)),
        ("retrieval", dict(n_samples=64, seq_len=32)),
        ("image", dict(n_samples=64, grid=8)),
        ("pathfinder", dict(n_samples=64, grid=8)),
    ])
    def test_shapes_vocab_and_determinism(self, task, kwargs):
        ds1 = load_task(task, seed=3, **kwargs)
        ds2 = load_task(task, seed=3, **kwargs)
        np.testing.assert_array_equal(ds1.x_train, ds2.x_train)
        np.testing.assert_array_equal(ds1.y_test, ds2.y_test)
        assert ds1.x_train.max() < ds1.vocab_size
        assert ds1.x_train.min() >= 0
        assert ds1.y_train.max() < ds1.n_classes
        expected_ndim = 3 if ds1.paired else 2
        assert ds1.x_train.ndim == expected_ndim

    @pytest.mark.parametrize("task,kwargs", [
        ("text", dict(n_samples=64, seq_len=48)),
        ("retrieval", dict(n_samples=64, seq_len=32)),
        ("pathfinder", dict(n_samples=64, grid=8)),
    ])
    def test_binary_labels_roughly_balanced(self, task, kwargs):
        ds = load_task(task, seed=0, **kwargs)
        y = np.concatenate([ds.y_train, ds.y_test])
        assert 0.3 < y.mean() < 0.7

    def test_different_seeds_differ(self):
        a = load_task("text", n_samples=32, seq_len=32, seed=0)
        b = load_task("text", n_samples=32, seq_len=32, seed=1)
        assert not np.array_equal(a.x_train, b.x_train)


class TestListOps:
    def test_eval_op_semantics(self):
        assert _eval_op(OP_MAX, [3, 7, 1]) == 7
        assert _eval_op(OP_MIN, [3, 7, 1]) == 1
        assert _eval_op(OP_MED, [3, 7, 1]) == 3
        assert _eval_op(OP_SM, [7, 7]) == 4

    def test_eval_op_unknown(self):
        with pytest.raises(ValueError, match="unknown op"):
            _eval_op(99, [1])

    def test_sequences_are_wellformed(self):
        ds = generate_listops(n_samples=32, seq_len=64, seed=0)
        for row in ds.x_train:
            tokens = row[row != 0]
            opens = sum(1 for t in tokens if t in (OP_MAX, OP_MIN, OP_MED, OP_SM))
            closes = sum(1 for t in tokens if t == CLOSE)
            assert opens == closes >= 1
            assert tokens[0] in (OP_MAX, OP_MIN, OP_MED, OP_SM)
            assert tokens[-1] == CLOSE

    def test_ten_classes(self):
        ds = generate_listops(n_samples=256, seq_len=64, seed=0)
        assert ds.n_classes == 10
        assert set(np.unique(ds.y_train)) <= set(range(10))

    def test_digits_in_range(self):
        ds = generate_listops(n_samples=32, seq_len=64, seed=0)
        digits = ds.x_train[(ds.x_train >= DIGIT_BASE) & (ds.x_train < DIGIT_BASE + 10)]
        assert digits.size > 0


class TestText:
    def test_label_correlates_with_lexicon(self):
        """Documents of different labels must differ distributionally."""
        ds = generate_text(n_samples=200, seq_len=128, seed=0)
        x, y = ds.x_train, ds.y_train
        pos_hist = np.bincount(x[y == 1].reshape(-1), minlength=ds.vocab_size)
        neg_hist = np.bincount(x[y == 0].reshape(-1), minlength=ds.vocab_size)
        pos_hist = pos_hist / pos_hist.sum()
        neg_hist = neg_hist / neg_hist.sum()
        assert np.abs(pos_hist - neg_hist).sum() > 0.05

    def test_documents_fill_sequence(self):
        ds = generate_text(n_samples=16, seq_len=64, seed=0)
        # Only the trailing remainder (< word_len + 1) may be padding.
        assert (ds.x_train[:, :60] != 0).all()


class TestRetrieval:
    def test_paired_shape(self):
        ds = generate_retrieval(n_samples=32, seq_len=32, seed=0)
        assert ds.paired
        assert ds.x_train.shape[1:] == (2, 32)

    def test_positive_pairs_more_similar(self):
        """Same-topic pairs share more character statistics."""
        ds = generate_retrieval(n_samples=200, seq_len=128, seed=0)

        def similarity(pair):
            h1 = np.bincount(pair[0], minlength=ds.vocab_size).astype(float)
            h2 = np.bincount(pair[1], minlength=ds.vocab_size).astype(float)
            h1 /= np.linalg.norm(h1)
            h2 /= np.linalg.norm(h2)
            return float(h1 @ h2)

        sims = np.array([similarity(p) for p in ds.x_train])
        assert sims[ds.y_train == 1].mean() > sims[ds.y_train == 0].mean()


class TestImage:
    def test_seq_len_is_grid_squared(self):
        ds = generate_image(n_samples=16, grid=8, seed=0)
        assert ds.seq_len == 64

    def test_all_ten_classes_present(self):
        ds = generate_image(n_samples=100, grid=8, seed=0)
        assert set(np.unique(np.concatenate([ds.y_train, ds.y_test]))) == set(range(10))

    def test_tokens_are_quantized_intensities(self):
        ds = generate_image(n_samples=16, grid=8, n_levels=16, seed=0)
        assert ds.vocab_size == 16
        assert ds.x_train.max() < 16

    def test_stripes_have_periodic_structure(self):
        from repro.data.image import _render_class
        img = _render_class(np.random.default_rng(0), 1, 16)  # vertical stripes
        # Columns constant, rows varying.
        assert (img.std(axis=0) < 1e-9).all()
        assert img.std(axis=1).max() > 0.1


class TestPathfinder:
    def test_exactly_two_markers(self):
        ds = generate_pathfinder(n_samples=32, grid=12, seed=0)
        from repro.data.pathfinder import MARKER_LEVEL
        for row in ds.x_train:
            assert (row == MARKER_LEVEL).sum() == 2

    def test_connectivity_label_is_correct(self):
        """BFS over path pixels must agree with the generated label."""
        from repro.data.pathfinder import MARKER_LEVEL
        ds = generate_pathfinder(n_samples=40, grid=12, seed=1)
        grid = 12
        for row, label in zip(ds.x_train, ds.y_train):
            canvas = row.reshape(grid, grid)
            passable = canvas > 0
            markers = list(zip(*np.where(canvas == MARKER_LEVEL)))
            start, goal = markers
            frontier, seen = [start], {start}
            found = False
            while frontier:
                r, c = frontier.pop()
                if (r, c) == goal:
                    found = True
                    break
                for nr, nc in ((r+1, c), (r-1, c), (r, c+1), (r, c-1)):
                    if 0 <= nr < grid and 0 <= nc < grid and passable[nr, nc] \
                            and (nr, nc) not in seen:
                        seen.add((nr, nc))
                        frontier.append((nr, nc))
            assert found == bool(label), "BFS connectivity disagrees with label"
