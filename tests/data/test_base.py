"""TaskDataset container and split utilities."""

import numpy as np
import pytest

from repro.data import TaskDataset, train_test_split


def make_dataset(**overrides):
    defaults = dict(
        name="toy",
        vocab_size=4,
        n_classes=2,
        seq_len=6,
        x_train=np.zeros((10, 6), dtype=np.int64),
        y_train=np.zeros(10, dtype=np.int64),
        x_test=np.zeros((4, 6), dtype=np.int64),
        y_test=np.zeros(4, dtype=np.int64),
    )
    defaults.update(overrides)
    return TaskDataset(**defaults)


class TestValidation:
    def test_valid_dataset(self):
        ds = make_dataset()
        assert ds.n_train == 10
        assert ds.n_test == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="inputs vs"):
            make_dataset(y_train=np.zeros(9, dtype=np.int64))

    def test_token_out_of_vocab(self):
        bad = np.full((10, 6), 7, dtype=np.int64)
        with pytest.raises(ValueError, match="vocab_size"):
            make_dataset(x_train=bad)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError, match="n_classes"):
            make_dataset(y_test=np.full(4, 5, dtype=np.int64))

    def test_paired_needs_3d(self):
        with pytest.raises(ValueError, match="paired"):
            make_dataset(paired=True)

    def test_paired_accepts_3d(self):
        ds = make_dataset(
            paired=True,
            x_train=np.zeros((10, 2, 6), dtype=np.int64),
            x_test=np.zeros((4, 2, 6), dtype=np.int64),
        )
        assert ds.paired


class TestBatches:
    def test_batches_cover_all_samples(self, rng):
        ds = make_dataset()
        seen = 0
        for xb, yb in ds.batches(3, rng):
            assert len(xb) == len(yb)
            seen += len(yb)
        assert seen == 10

    def test_batches_shuffled(self):
        x = np.arange(100, dtype=np.int64).reshape(100, 1) % 4
        ds = make_dataset(
            seq_len=1, x_train=x, y_train=np.zeros(100, dtype=np.int64),
            x_test=x[:4], y_test=np.zeros(4, dtype=np.int64),
        )
        first_batch_a = next(iter(ds.batches(10, np.random.default_rng(1))))[0]
        first_batch_b = next(iter(ds.batches(10, np.random.default_rng(2))))[0]
        assert not np.array_equal(first_batch_a, first_batch_b)

    def test_test_split_batches(self, rng):
        ds = make_dataset()
        total = sum(len(yb) for _, yb in ds.batches(3, rng, split="test"))
        assert total == 4


class TestTrainTestSplit:
    def test_sizes(self, rng):
        x = np.zeros((20, 3))
        y = np.arange(20)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, 0.25, rng)
        assert len(y_te) == 5
        assert len(y_tr) == 15

    def test_disjoint(self, rng):
        x = np.arange(20).reshape(20, 1)
        y = np.arange(20)
        _, y_tr, _, y_te = train_test_split(x, y, 0.3, rng)
        assert set(y_tr) & set(y_te) == set()
        assert set(y_tr) | set(y_te) == set(range(20))

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5, rng)
