"""Accuracy oracles: surrogate calibration and trained spot-check."""

import pytest

from repro.codesign import (
    SurrogateAccuracyOracle,
    TASK_ACCURACY_CEILING,
    TASK_TRANSFORMER_ACCURACY,
    TrainedAccuracyOracle,
)
from repro.hardware.perf import WorkloadSpec


def spec(d_hidden=128, r_ffn=4, n_total=2, n_abfly=0):
    return WorkloadSpec(seq_len=512, d_hidden=d_hidden, r_ffn=r_ffn,
                        n_total=n_total, n_abfly=n_abfly, n_heads=4)


class TestSurrogate:
    def test_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            SurrogateAccuracyOracle(task="audio")

    def test_accuracy_monotone_in_width(self):
        oracle = SurrogateAccuracyOracle(task="text", noise_scale=0.0)
        accs = [oracle.accuracy(spec(d_hidden=d)) for d in (64, 128, 256, 1024)]
        assert all(b >= a for a, b in zip(accs, accs[1:]))

    def test_accuracy_monotone_in_depth(self):
        oracle = SurrogateAccuracyOracle(task="text", noise_scale=0.0)
        a1 = oracle.accuracy(spec(n_total=1))
        a2 = oracle.accuracy(spec(n_total=4))
        assert a2 > a1

    def test_abfly_blocks_help(self):
        oracle = SurrogateAccuracyOracle(task="image", noise_scale=0.0)
        assert oracle.accuracy(spec(n_total=2, n_abfly=1)) > oracle.accuracy(
            spec(n_total=2, n_abfly=0)
        )

    def test_saturates_at_task_ceiling(self):
        oracle = SurrogateAccuracyOracle(task="text", noise_scale=0.0)
        big = oracle.accuracy(spec(d_hidden=1024, n_total=2))
        assert big == pytest.approx(TASK_ACCURACY_CEILING["text"], abs=0.005)

    def test_deterministic_per_point(self):
        oracle = SurrogateAccuracyOracle(task="text")
        assert oracle.accuracy(spec()) == oracle.accuracy(spec())

    def test_table3_reference_values(self):
        assert TASK_TRANSFORMER_ACCURACY["text"] == 0.637
        assert TASK_ACCURACY_CEILING["retrieval"] == 0.801
        assert set(TASK_ACCURACY_CEILING) == set(TASK_TRANSFORMER_ACCURACY)

    def test_paper_fig18_winner_within_constraint(self):
        """{Dhid=64, Rffn=4, Ntotal=2} sits within ~1.5% of Transformer."""
        oracle = SurrogateAccuracyOracle(task="text", noise_scale=0.0)
        acc = oracle.accuracy(spec(d_hidden=64, r_ffn=4, n_total=2))
        assert acc >= TASK_TRANSFORMER_ACCURACY["text"] - 0.015


class TestTrainedOracle:
    def test_spot_check_returns_reasonable_accuracy(self):
        oracle = TrainedAccuracyOracle(task="text", seq_len=32, n_samples=120,
                                       epochs=2)
        acc = oracle.accuracy(spec(d_hidden=16, n_total=1, r_ffn=2))
        assert 0.4 <= acc <= 1.0

    def test_image_task_uses_grid(self):
        oracle = TrainedAccuracyOracle(task="image", seq_len=64, n_samples=100,
                                       epochs=1)
        acc = oracle.accuracy(spec(d_hidden=16, n_total=1, r_ffn=2))
        assert 0.0 <= acc <= 1.0
