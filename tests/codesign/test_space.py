"""Design space: validity rules and enumeration."""


from repro.codesign import DesignSpace
from repro.hardware.perf import WorkloadSpec


class TestAlgorithmPoints:
    def test_respects_nabfly_le_ntotal(self):
        space = DesignSpace(n_total=(1,), n_abfly=(0, 1, 2))
        points = list(space.algorithm_points())
        assert all(nab <= n for _, _, n, nab in points)

    def test_count(self):
        space = DesignSpace(
            d_hidden=(64, 128), r_ffn=(2,), n_total=(1, 2), n_abfly=(0, 1)
        )
        # n_total=1: nab in {0,1}; n_total=2: nab in {0,1} -> 4 per d_hidden
        assert len(list(space.algorithm_points())) == 8


class TestHardwarePoints:
    def test_fbfly_only_configs_have_no_ap(self):
        space = DesignSpace(pbe=(8,), pqk=(0, 8), psv=(0, 8))
        configs = list(space.hardware_points(needs_attention=False))
        assert all(c.pqk == 0 and c.psv == 0 for c in configs)
        assert len(configs) == 1

    def test_attention_configs_need_both_units(self):
        space = DesignSpace(pbe=(8,), pqk=(0, 8), psv=(0, 8))
        configs = list(space.hardware_points(needs_attention=True))
        assert all(c.pqk > 0 and c.psv > 0 for c in configs)
        assert all(c.pae > 0 for c in configs)

    def test_default_grid_mirrors_paper(self):
        space = DesignSpace()
        assert space.d_hidden == (64, 128, 256, 512, 1024)
        assert space.r_ffn == (1, 2, 4)
        assert set(space.pbe) <= {0, 4, 8, 16, 32, 64, 128}


class TestJointPoints:
    def test_specs_carry_seq_len(self):
        space = DesignSpace(d_hidden=(64,), r_ffn=(2,), n_total=(1,),
                            n_abfly=(0,), pbe=(8,))
        points = list(space.joint_points(seq_len=512))
        assert all(isinstance(s, WorkloadSpec) and s.seq_len == 512
                   for s, _ in points)

    def test_size_matches_enumeration(self):
        space = DesignSpace(d_hidden=(64, 128), r_ffn=(2,), n_total=(1,),
                            n_abfly=(0,), pbe=(8, 16))
        assert space.size(128) == len(list(space.joint_points(128)))
