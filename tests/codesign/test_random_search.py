"""Randomized co-design search vs the exhaustive grid."""

import pytest

from repro.codesign import (
    DesignSpace,
    SurrogateAccuracyOracle,
    run_codesign,
    run_random_codesign,
)
from repro.hardware.config import ZYNQ7045


@pytest.fixture(scope="module")
def shared_space():
    return DesignSpace(
        d_hidden=(64, 128, 256), r_ffn=(2, 4), n_total=(1, 2), n_abfly=(0, 1),
        pbe=(16, 32, 64), pqk=(0, 8), psv=(0, 8),
    )


@pytest.fixture(scope="module")
def oracle():
    return SurrogateAccuracyOracle(task="text", noise_scale=0.0)


class TestRandomSearch:
    def test_respects_budget(self, shared_space, oracle):
        result = run_random_codesign(oracle, 1024, budget=50,
                                     space=shared_space, seed=0)
        assert 0 < len(result.points) <= 50

    def test_deterministic_given_seed(self, shared_space, oracle):
        a = run_random_codesign(oracle, 1024, budget=30, space=shared_space, seed=3)
        b = run_random_codesign(oracle, 1024, budget=30, space=shared_space, seed=3)
        assert [p.latency_ms for p in a.points] == [p.latency_ms for p in b.points]

    def test_different_seeds_differ(self, shared_space, oracle):
        a = run_random_codesign(oracle, 1024, budget=30, space=shared_space, seed=1)
        b = run_random_codesign(oracle, 1024, budget=30, space=shared_space, seed=2)
        assert [p.latency_ms for p in a.points] != [p.latency_ms for p in b.points]

    def test_points_are_valid(self, shared_space, oracle):
        result = run_random_codesign(oracle, 1024, budget=60,
                                     space=shared_space, seed=0)
        for p in result.points:
            if p.spec.n_abfly > 0:
                assert p.config.pqk > 0 and p.config.psv > 0
            else:
                assert p.config.pqk == 0 and p.config.psv == 0

    def test_selected_satisfies_constraint(self, shared_space, oracle):
        result = run_random_codesign(oracle, 1024, budget=120,
                                     space=shared_space, seed=0,
                                     max_accuracy_loss=0.02)
        assert result.selected is not None
        assert result.selected.accuracy >= (
            result.reference_accuracy - result.max_accuracy_loss
        )

    def test_close_to_exhaustive_optimum(self, shared_space, oracle):
        """With a healthy budget, random search lands within 2x of the
        grid optimum's latency under the same constraint."""
        grid = run_codesign(oracle, 1024, space=shared_space,
                            max_accuracy_loss=0.02)
        rand = run_random_codesign(oracle, 1024, budget=150,
                                   space=shared_space, seed=0,
                                   max_accuracy_loss=0.02)
        assert rand.selected is not None
        assert rand.selected.latency_ms <= 2.0 * grid.selected.latency_ms

    def test_device_constraint(self, shared_space, oracle):
        result = run_random_codesign(oracle, 512, budget=80,
                                     space=shared_space, seed=0,
                                     device=ZYNQ7045)
        assert all(p.config.pbe <= 32 for p in result.points)

    def test_invalid_budget(self, shared_space, oracle):
        with pytest.raises(ValueError, match="budget"):
            run_random_codesign(oracle, 512, budget=0, space=shared_space)
