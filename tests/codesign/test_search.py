"""Co-design search: Pareto extraction and constrained selection."""

import pytest

from repro.codesign import (
    DesignPoint,
    DesignSpace,
    SurrogateAccuracyOracle,
    design_space_spread,
    pareto_front,
    run_codesign,
)
from repro.hardware.config import AcceleratorConfig, ZYNQ7045
from repro.hardware.perf import WorkloadSpec


def point(accuracy, latency):
    return DesignPoint(
        spec=WorkloadSpec(seq_len=64, d_hidden=64, n_total=1, n_abfly=0),
        config=AcceleratorConfig(),
        accuracy=accuracy,
        latency_ms=latency,
        dsps=100,
        brams=50,
    )


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [point(0.9, 1.0), point(0.8, 2.0), point(0.95, 0.5)]
        front = pareto_front(points)
        assert len(front) == 1
        assert front[0].accuracy == 0.95

    def test_tradeoff_points_kept(self):
        points = [point(0.9, 1.0), point(0.95, 2.0), point(0.8, 0.5)]
        front = pareto_front(points)
        assert len(front) == 3

    def test_front_sorted_by_latency(self):
        points = [point(0.95, 2.0), point(0.8, 0.5), point(0.9, 1.0)]
        front = pareto_front(points)
        latencies = [p.latency_ms for p in front]
        assert latencies == sorted(latencies)

    def test_dominance_semantics(self):
        assert point(0.9, 1.0).dominates(point(0.8, 2.0))
        assert not point(0.9, 1.0).dominates(point(0.95, 2.0))
        assert not point(0.9, 1.0).dominates(point(0.9, 1.0))


@pytest.fixture(scope="module")
def small_search():
    space = DesignSpace(
        d_hidden=(64, 256), r_ffn=(2, 4), n_total=(1, 2), n_abfly=(0,),
        pbe=(16, 64), pqk=(0,), psv=(0,),
    )
    oracle = SurrogateAccuracyOracle(task="text", noise_scale=0.0)
    return run_codesign(oracle, seq_len=1024, space=space,
                        max_accuracy_loss=0.02)


class TestRunCodesign:
    def test_evaluates_full_grid(self, small_search):
        assert len(small_search.points) == 2 * 2 * 2 * 2

    def test_selected_satisfies_constraint(self, small_search):
        sel = small_search.selected
        assert sel is not None
        assert sel.accuracy >= (
            small_search.reference_accuracy - small_search.max_accuracy_loss
        )

    def test_selected_is_fastest_feasible(self, small_search):
        feasible = [
            p for p in small_search.points
            if p.accuracy >= small_search.reference_accuracy
            - small_search.max_accuracy_loss
        ]
        assert small_search.selected.latency_ms == min(
            p.latency_ms for p in feasible
        )

    def test_pareto_subset_of_points(self, small_search):
        assert set(id(p) for p in small_search.pareto) <= set(
            id(p) for p in small_search.points
        )

    def test_infeasible_device_prunes_points(self):
        """On the small Zynq, big designs must be dropped."""
        space = DesignSpace(d_hidden=(64,), r_ffn=(2,), n_total=(1,),
                            n_abfly=(0,), pbe=(16, 128), pqk=(0,), psv=(0,))
        oracle = SurrogateAccuracyOracle(task="text")
        result = run_codesign(oracle, seq_len=512, space=space, device=ZYNQ7045)
        assert all(p.config.pbe == 16 for p in result.points)

    def test_spread_metrics(self, small_search):
        spread = design_space_spread(small_search)
        assert spread["accuracy_gain"] >= 0.0
        assert spread["speedup"] >= 1.0

    def test_bandwidth_override(self):
        space = DesignSpace(d_hidden=(64,), r_ffn=(2,), n_total=(1,),
                            n_abfly=(0,), pbe=(64,), pqk=(0,), psv=(0,))
        oracle = SurrogateAccuracyOracle(task="text")
        slow = run_codesign(oracle, 1024, space=space, bandwidth_gbs=5.0)
        fast = run_codesign(oracle, 1024, space=space, bandwidth_gbs=500.0)
        assert slow.points[0].latency_ms > fast.points[0].latency_ms
