"""Butterfly decoder LM: causality, training, generation."""

import numpy as np
import pytest

from repro import nn
from repro.data.charlm import VOCAB_SIZE, decode_tokens, encode_text, generate_charlm
from repro.models import (
    ModelConfig,
    build_butterfly_decoder,
    build_dense_decoder,
)


@pytest.fixture
def lm_config():
    return ModelConfig(
        vocab_size=VOCAB_SIZE, n_classes=2, max_len=32, d_hidden=32,
        n_heads=4, r_ffn=2, n_total=2, seed=0,
    )


class TestCausality:
    def test_future_tokens_do_not_affect_past_logits(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config).eval()
        tokens = rng.integers(1, VOCAB_SIZE, size=(1, 16))
        base = lm(tokens).data
        perturbed = tokens.copy()
        perturbed[0, 10:] = (perturbed[0, 10:] % (VOCAB_SIZE - 1)) + 1
        out = lm(perturbed).data
        np.testing.assert_allclose(base[0, :10], out[0, :10], atol=1e-10)

    def test_past_tokens_do_affect_later_logits(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config).eval()
        tokens = rng.integers(1, VOCAB_SIZE, size=(1, 16))
        base = lm(tokens).data
        perturbed = tokens.copy()
        perturbed[0, 0] = (perturbed[0, 0] % (VOCAB_SIZE - 1)) + 1
        out = lm(perturbed).data
        assert np.abs(base[0, -1] - out[0, -1]).max() > 1e-9

    def test_causal_mask_in_attention(self, rng):
        attn = nn.MultiHeadAttention(8, 2, causal=True, rng=rng).eval()
        x = rng.normal(size=(1, 6, 8))
        base = attn(nn.Tensor(x)).data
        x2 = x.copy()
        x2[0, 5] += 1.0
        out = attn(nn.Tensor(x2)).data
        np.testing.assert_allclose(base[0, :5], out[0, :5], atol=1e-10)


class TestForwardAndLoss:
    def test_logit_shape(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config).eval()
        tokens = rng.integers(0, VOCAB_SIZE, size=(3, 16))
        assert lm(tokens).shape == (3, 16, VOCAB_SIZE)

    def test_rejects_long_input(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        with pytest.raises(ValueError, match="max_len"):
            lm(rng.integers(0, VOCAB_SIZE, size=(1, 33)))

    def test_rejects_1d_input(self, lm_config):
        lm = build_butterfly_decoder(lm_config)
        with pytest.raises(ValueError, match="batch"):
            lm(np.zeros(8, dtype=int))

    def test_loss_near_log_vocab_at_init(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        tokens = rng.integers(0, VOCAB_SIZE, size=(4, 16))
        loss = lm.loss(tokens)
        assert abs(loss.item() - np.log(VOCAB_SIZE)) < 1.0

    def test_training_reduces_loss(self, lm_config):
        train, _ = generate_charlm(n_samples=48, seq_len=32, seed=0)
        lm = build_butterfly_decoder(lm_config)
        opt = nn.Adam(lm.parameters(), lr=3e-3)
        losses = []
        for step in range(12):
            batch = train[(step * 8) % 40 : (step * 8) % 40 + 8]
            loss = lm.loss(batch)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-3:]) < np.mean(losses[:3]) - 0.2

    def test_butterfly_fewer_params_than_dense(self, lm_config):
        bfly = build_butterfly_decoder(lm_config.with_(d_hidden=64))
        dense = build_dense_decoder(lm_config.with_(d_hidden=64))
        assert bfly.num_parameters() < dense.num_parameters()


class TestGeneration:
    def test_greedy_extends_prompt(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(2, 5))
        out = lm.generate(prompt, max_new_tokens=7)
        assert out.shape == (2, 12)
        np.testing.assert_array_equal(out[:, :5], prompt)

    def test_greedy_is_deterministic(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(1, 4))
        a = lm.generate(prompt, max_new_tokens=6)
        b = lm.generate(prompt, max_new_tokens=6)
        np.testing.assert_array_equal(a, b)

    def test_sampled_generation_varies_with_rng(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(1, 4))
        a = lm.generate(prompt, 10, temperature=2.0, rng=np.random.default_rng(1))
        b = lm.generate(prompt, 10, temperature=2.0, rng=np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_zero_new_tokens(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(1, 4))
        np.testing.assert_array_equal(lm.generate(prompt, 0), prompt)

    def test_negative_new_tokens(self, lm_config):
        lm = build_butterfly_decoder(lm_config)
        with pytest.raises(ValueError, match="non-negative"):
            lm.generate(np.ones((1, 2), dtype=int), -1)

    def test_window_clipping_beyond_max_len(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(1, 30))
        out = lm.generate(prompt, max_new_tokens=8)
        assert out.shape == (1, 38)

    def test_cached_and_uncached_greedy_agree(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(3, 6))
        np.testing.assert_array_equal(
            lm.generate(prompt, 10, use_cache=True),
            lm.generate(prompt, 10, use_cache=False),
        )

    def test_cached_and_uncached_sampling_agree_with_same_rng(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(2, 5))
        a = lm.generate(prompt, 8, temperature=0.9, top_k=8,
                        rng=np.random.default_rng(0), use_cache=True)
        b = lm.generate(prompt, 8, temperature=0.9, top_k=8,
                        rng=np.random.default_rng(0), use_cache=False)
        np.testing.assert_array_equal(a, b)

    def test_top_k_sampling_stays_in_top_k(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(1, 4))
        window = prompt.copy()
        gen_rng = np.random.default_rng(5)
        for _ in range(6):
            logits = lm(window[:, -lm.config.max_len:]).data[:, -1]
            allowed = np.argsort(-logits[0])[:4]
            out = lm.generate(window, 1, temperature=1.5, top_k=4, rng=gen_rng)
            assert out[0, -1] in allowed
            window = out

    def test_top_p_sampling_varies_with_rng(self, lm_config, rng):
        lm = build_butterfly_decoder(lm_config)
        prompt = rng.integers(1, VOCAB_SIZE, size=(1, 4))
        a = lm.generate(prompt, 10, temperature=2.0, top_p=0.9,
                        rng=np.random.default_rng(1))
        b = lm.generate(prompt, 10, temperature=2.0, top_p=0.9,
                        rng=np.random.default_rng(2))
        assert not np.array_equal(a, b)
        assert a.shape == b.shape == (1, 14)


class TestCharLMData:
    def test_encode_decode_round_trip(self):
        text = "cat sees food"
        np.testing.assert_array_equal(
            encode_text(text), encode_text(text)
        )
        assert decode_tokens(encode_text(text)) == text

    def test_encode_rejects_unsupported(self):
        with pytest.raises(ValueError, match="unsupported"):
            encode_text("Hello!")

    def test_generate_charlm_shapes(self):
        train, test = generate_charlm(n_samples=50, seq_len=24, seed=1)
        assert train.shape == (40, 24)
        assert test.shape == (10, 24)
        assert train.max() < VOCAB_SIZE

    def test_deterministic(self):
        a, _ = generate_charlm(n_samples=10, seq_len=16, seed=5)
        b, _ = generate_charlm(n_samples=10, seq_len=16, seed=5)
        np.testing.assert_array_equal(a, b)
