"""Encoder-decoder butterfly Transformer (paper Fig. 2 completion)."""

import numpy as np
import pytest

from repro import nn
from repro.models import ModelConfig
from repro.models.seq2seq import (
    ButterflySeq2Seq,
    CrossAttention,
    generate_copy_task,
)


@pytest.fixture
def s2s_config():
    return ModelConfig(vocab_size=12, n_classes=2, max_len=16, d_hidden=16,
                       n_heads=2, r_ffn=2, n_total=1, n_abfly=0, seed=0)


class TestCrossAttention:
    def test_output_shape(self, rng):
        ca = CrossAttention(8, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(2, 3, 8)))
        mem = nn.Tensor(rng.normal(size=(2, 5, 8)))
        assert ca(x, mem).shape == (2, 3, 8)

    def test_depends_on_memory(self, rng):
        ca = CrossAttention(8, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(1, 3, 8)))
        m1 = nn.Tensor(rng.normal(size=(1, 4, 8)))
        m2 = nn.Tensor(rng.normal(size=(1, 4, 8)))
        assert not np.allclose(ca(x, m1).data, ca(x, m2).data)

    def test_invalid_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            CrossAttention(10, 3)

    def test_butterfly_projections(self, rng):
        ca = CrossAttention(8, 2, butterfly=True, rng=rng)
        assert isinstance(ca.q_proj, nn.ButterflyLinear)
        dense = CrossAttention(8, 2, butterfly=False, rng=rng)
        assert isinstance(dense.q_proj, nn.Linear)


class TestSeq2SeqModel:
    def test_forward_shapes(self, s2s_config, rng):
        model = ButterflySeq2Seq(s2s_config).eval()
        src = rng.integers(2, 12, size=(2, 8))
        tgt = rng.integers(2, 12, size=(2, 6))
        logits = model(src, tgt)
        assert logits.shape == (2, 6, 12)

    def test_decoder_is_causal(self, s2s_config, rng):
        model = ButterflySeq2Seq(s2s_config).eval()
        src = rng.integers(2, 12, size=(1, 8))
        tgt = rng.integers(2, 12, size=(1, 8))
        base = model(src, tgt).data
        perturbed = tgt.copy()
        perturbed[0, 5:] = 2 + (perturbed[0, 5:] % 9)
        out = model(src, perturbed).data
        np.testing.assert_allclose(base[0, :5], out[0, :5], atol=1e-10)

    def test_decoder_attends_to_source(self, s2s_config, rng):
        model = ButterflySeq2Seq(s2s_config).eval()
        tgt = rng.integers(2, 12, size=(1, 4))
        a = model(rng.integers(2, 12, size=(1, 8)), tgt).data
        b = model(rng.integers(2, 12, size=(1, 8)), tgt).data
        assert np.abs(a - b).max() > 1e-9

    def test_rejects_long_target(self, s2s_config, rng):
        model = ButterflySeq2Seq(s2s_config)
        src = rng.integers(2, 12, size=(1, 8))
        with pytest.raises(ValueError, match="max_len"):
            model(src, rng.integers(2, 12, size=(1, 17)))

    def test_training_learns_copy_task(self, s2s_config):
        src, tgt = generate_copy_task(n_samples=64, seq_len=6, vocab=12, seed=0)
        model = ButterflySeq2Seq(s2s_config)
        opt = nn.Adam(model.parameters(), lr=3e-3)
        losses = []
        for step in range(40):
            idx = slice((step * 16) % 48, (step * 16) % 48 + 16)
            loss = model.loss(src[idx], tgt[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-5:]) < np.mean(losses[:5]) * 0.75

    def test_greedy_translate_shape(self, s2s_config, rng):
        model = ButterflySeq2Seq(s2s_config)
        src = rng.integers(2, 12, size=(2, 6))
        out = model.greedy_translate(src, bos=1)
        assert out.shape == (2, 7)
        assert (out[:, 0] == 1).all()

    def test_gradients_reach_everything(self, s2s_config, rng):
        model = ButterflySeq2Seq(s2s_config)
        src = rng.integers(2, 12, size=(2, 6))
        tgt = rng.integers(2, 12, size=(2, 6))
        model.loss(src, tgt).backward()
        # The encoder's classification head is unused in seq2seq mode.
        missing = [
            n for n, p in model.named_parameters()
            if p.grad is None and not n.startswith("encoder.head")
        ]
        assert missing == []


class TestCopyTaskData:
    def test_shapes_and_bos(self):
        src, tgt = generate_copy_task(n_samples=10, seq_len=5, vocab=8)
        assert src.shape == (10, 5)
        assert tgt.shape == (10, 6)
        assert (tgt[:, 0] == 1).all()
        np.testing.assert_array_equal(tgt[:, 1:], src)

    def test_reverse_variant(self):
        src, tgt = generate_copy_task(n_samples=4, seq_len=5, reverse=True)
        np.testing.assert_array_equal(tgt[:, 1:], src[:, ::-1])

    def test_tokens_avoid_reserved_ids(self):
        src, _ = generate_copy_task(n_samples=20, seq_len=8, vocab=10)
        assert src.min() >= 2
        assert src.max() < 10
