"""Encoder blocks: vanilla, FBfly and ABfly variants."""

import numpy as np
import pytest

from repro import nn
from repro.models import EncoderBlock, FeedForward, make_abfly_block, make_fbfly_block
from repro.nn.tensor import Tensor


class TestFeedForward:
    def test_dense_shapes(self, rng):
        ffn = FeedForward(8, 16, rng=rng)
        assert ffn(Tensor(rng.normal(size=(2, 3, 8)))).shape == (2, 3, 8)
        assert isinstance(ffn.fc1, nn.Linear)

    def test_butterfly_uses_butterfly_layers(self, rng):
        ffn = FeedForward(8, 16, butterfly=True, rng=rng)
        assert isinstance(ffn.fc1, nn.ButterflyLinear)
        assert isinstance(ffn.fc2, nn.ButterflyLinear)

    def test_butterfly_fewer_params(self, rng):
        dense = FeedForward(64, 256, rng=rng)
        bfly = FeedForward(64, 256, butterfly=True, rng=rng)
        assert bfly.num_parameters() < dense.num_parameters() / 3


class TestEncoderBlock:
    @pytest.mark.parametrize("mixing", EncoderBlock.MIXINGS)
    def test_forward_shape(self, mixing, rng):
        block = EncoderBlock(8, 2, 2, mixing=mixing, rng=rng).eval()
        out = block(Tensor(rng.normal(size=(2, 4, 8))))
        assert out.shape == (2, 4, 8)

    def test_invalid_mixing(self):
        with pytest.raises(ValueError, match="mixing"):
            EncoderBlock(8, 2, 2, mixing="conv")

    def test_fourier_block_has_no_attention_params(self, rng):
        block = EncoderBlock(8, 2, 2, mixing="fourier", rng=rng)
        names = {n for n, _ in block.named_parameters()}
        assert not any("q_proj" in n for n in names)

    def test_residual_connection_present(self, rng):
        """Zeroing the FFN and mixer weights must leave a LayerNormed input."""
        block = EncoderBlock(4, 2, 1, mixing="fourier", butterfly_ffn=False, rng=rng).eval()
        block.ffn.fc1.weight.data[:] = 0.0
        block.ffn.fc2.weight.data[:] = 0.0
        block.ffn.fc2.bias.data[:] = 0.0
        x = rng.normal(size=(1, 4, 4))
        out = block(Tensor(x)).data
        # With a dead FFN, the second sub-layer is LN(x + 0): still finite
        # and depending on x.
        assert np.isfinite(out).all()
        out2 = block(Tensor(x + 1e-3)).data
        assert np.abs(out - out2).max() > 0

    def test_gradients_flow_through_block(self, rng):
        block = EncoderBlock(8, 2, 2, mixing="butterfly_attention",
                             butterfly_ffn=True, rng=rng)
        out = block(Tensor(rng.normal(size=(1, 4, 8))))
        (out * out).sum().backward()
        for name, p in block.named_parameters():
            assert p.grad is not None, f"no grad for {name}"


class TestBlockFactories:
    def test_fbfly_block(self, rng):
        block = make_fbfly_block(8, 2, 2, rng=rng)
        assert block.mixing_kind == "fourier"
        assert block.butterfly_ffn
        assert isinstance(block.mixer, nn.FourierMixing)

    def test_abfly_block(self, rng):
        block = make_abfly_block(8, 2, 2, rng=rng)
        assert block.mixing_kind == "butterfly_attention"
        assert block.butterfly_ffn
        assert isinstance(block.mixer, nn.MultiHeadAttention)
        assert block.mixer.butterfly

    def test_abfly_all_linear_layers_butterfly(self, rng):
        """The ABfly block compresses every linear layer (paper Fig. 5)."""
        block = make_abfly_block(8, 2, 2, rng=rng)
        for layer in (block.mixer.q_proj, block.mixer.k_proj, block.mixer.v_proj,
                      block.mixer.out_proj, block.ffn.fc1, block.ffn.fc2):
            assert isinstance(layer, nn.ButterflyLinear)
