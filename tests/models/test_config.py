"""ModelConfig validation and derived properties."""

import pytest

from repro.models import FABNET_BASE, FABNET_LARGE, ModelConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = ModelConfig()
        assert cfg.d_ffn == cfg.d_hidden * cfg.r_ffn

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig(d_hidden=64, n_heads=3)

    def test_n_abfly_bounds(self):
        with pytest.raises(ValueError, match="n_abfly"):
            ModelConfig(n_total=2, n_abfly=3)

    def test_pooling_values(self):
        with pytest.raises(ValueError, match="pooling"):
            ModelConfig(pooling="max")
        assert ModelConfig(pooling="cls").pooling == "cls"

    def test_hidden_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            ModelConfig(d_hidden=48, n_heads=4)

    def test_n_fbfly(self):
        cfg = ModelConfig(n_total=4, n_abfly=1)
        assert cfg.n_fbfly == 3

    def test_with_returns_modified_copy(self):
        cfg = ModelConfig(d_hidden=64)
        cfg2 = cfg.with_(d_hidden=128)
        assert cfg.d_hidden == 64
        assert cfg2.d_hidden == 128
        assert cfg2.n_total == cfg.n_total

    def test_frozen(self):
        with pytest.raises(Exception):
            ModelConfig().d_hidden = 32


class TestReferenceConfigs:
    def test_fabnet_base(self):
        assert FABNET_BASE.n_total == 12
        assert FABNET_BASE.n_abfly == 0

    def test_fabnet_large(self):
        assert FABNET_LARGE.d_hidden == 1024
        assert FABNET_LARGE.n_total == 24
