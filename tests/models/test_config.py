"""ModelConfig validation and derived properties."""

import pytest

from repro.models import FABNET_BASE, FABNET_LARGE, ModelConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = ModelConfig()
        assert cfg.d_ffn == cfg.d_hidden * cfg.r_ffn

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig(d_hidden=64, n_heads=3)

    def test_n_abfly_bounds(self):
        with pytest.raises(ValueError, match="n_abfly"):
            ModelConfig(n_total=2, n_abfly=3)

    def test_pooling_values(self):
        with pytest.raises(ValueError, match="pooling"):
            ModelConfig(pooling="max")
        assert ModelConfig(pooling="cls").pooling == "cls"

    def test_hidden_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            ModelConfig(d_hidden=48, n_heads=4)

    def test_n_fbfly(self):
        cfg = ModelConfig(n_total=4, n_abfly=1)
        assert cfg.n_fbfly == 3

    def test_with_returns_modified_copy(self):
        cfg = ModelConfig(d_hidden=64)
        cfg2 = cfg.with_(d_hidden=128)
        assert cfg.d_hidden == 64
        assert cfg2.d_hidden == 128
        assert cfg2.n_total == cfg.n_total

    def test_frozen(self):
        with pytest.raises(Exception):
            ModelConfig().d_hidden = 32


class TestReferenceConfigs:
    def test_fabnet_base(self):
        assert FABNET_BASE.n_total == 12
        assert FABNET_BASE.n_abfly == 0

    def test_fabnet_large(self):
        assert FABNET_LARGE.d_hidden == 1024
        assert FABNET_LARGE.n_total == 24


class TestDtypePolicy:
    def test_default_dtype(self):
        assert ModelConfig().dtype == "float64"

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            ModelConfig(dtype="float16")

    def test_dtype_context_scopes_kernel_policy(self):
        import numpy as np
        from repro.kernels import get_default_dtype

        cfg = ModelConfig(dtype="float32")
        with cfg.dtype_context():
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_model_builds_in_float32(self):
        """Builders honor config.dtype without an explicit context."""
        import numpy as np
        from repro.models import build_model

        cfg = ModelConfig(d_hidden=16, n_heads=2, n_total=1, max_len=8,
                          vocab_size=16, dtype="float32")
        model = build_model("fabnet", cfg)
        params = model.parameters()
        assert params and all(p.dtype == np.float32 for p in params)

    def test_trainer_honors_config_dtype(self):
        """A float32 model trains in float32 end to end via the Trainer."""
        import numpy as np
        from repro.data import load_task
        from repro.models import build_model
        from repro.training import train_model_on_task

        ds = load_task("text", n_samples=64, seq_len=8, seed=0)
        cfg = ModelConfig(vocab_size=ds.vocab_size, n_classes=ds.n_classes,
                          max_len=ds.seq_len, d_hidden=16, n_heads=2,
                          r_ffn=2, n_total=1, seed=0, dtype="float32")
        model = build_model("fabnet", cfg)
        train_model_on_task(model, ds, epochs=1, lr=1e-2)
        assert all(p.dtype == np.float32 for p in model.parameters())
