"""Encoder classifiers: the three builders, hybrids and the dual encoder."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    DualEncoderClassifier,
    build_fabnet,
    build_fnet,
    build_hybrid_transformer,
    build_model,
    build_transformer,
)


@pytest.fixture
def tokens(tiny_config, rng):
    return rng.integers(0, tiny_config.vocab_size, size=(3, tiny_config.max_len))


class TestBuilders:
    @pytest.mark.parametrize("name", ["transformer", "fnet", "fabnet"])
    def test_logit_shape(self, name, tiny_config, tokens):
        model = build_model(name, tiny_config).eval()
        assert model(tokens).shape == (3, tiny_config.n_classes)

    def test_build_model_unknown(self, tiny_config):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("rnn", tiny_config)

    def test_fabnet_block_kinds(self, tiny_config):
        model = build_fabnet(tiny_config)  # n_total=2, n_abfly=1
        kinds = [b.mixing_kind for b in model.blocks]
        assert kinds == ["fourier", "butterfly_attention"]

    def test_fnet_is_all_fourier(self, tiny_config):
        model = build_fnet(tiny_config)
        assert all(b.mixing_kind == "fourier" for b in model.blocks)

    def test_transformer_is_all_attention(self, tiny_config):
        model = build_transformer(tiny_config)
        assert all(b.mixing_kind == "attention" for b in model.blocks)

    def test_parameter_ordering_fabnet_smallest(self, tiny_config):
        cfg = tiny_config.with_(d_hidden=64, n_heads=4)
        p_trans = build_transformer(cfg).num_parameters()
        p_fnet = build_fnet(cfg).num_parameters()
        p_fab = build_fabnet(cfg.with_(n_abfly=0)).num_parameters()
        assert p_fab < p_fnet < p_trans

    def test_deterministic_given_seed(self, tiny_config, tokens):
        a = build_fabnet(tiny_config).eval()
        b = build_fabnet(tiny_config).eval()
        np.testing.assert_allclose(a(tokens).data, b(tokens).data)


class TestEncoderBehavior:
    def test_rejects_long_sequence(self, tiny_config, rng):
        model = build_fnet(tiny_config)
        bad = rng.integers(0, 8, size=(1, tiny_config.max_len + 1))
        with pytest.raises(ValueError, match="max_len"):
            model(bad)

    def test_rejects_non_2d_tokens(self, tiny_config):
        model = build_fnet(tiny_config)
        with pytest.raises(ValueError, match="batch"):
            model(np.zeros(4, dtype=int))

    def test_wrong_block_count_rejected(self, tiny_config):
        from repro.models.encoder import EncoderClassifier
        with pytest.raises(ValueError, match="blocks"):
            EncoderClassifier(tiny_config, [], np.random.default_rng(0))

    def test_cls_pooling(self, tiny_config, tokens):
        model = build_fnet(tiny_config.with_(pooling="cls")).eval()
        assert model(tokens).shape == (3, tiny_config.n_classes)

    def test_mask_ignores_padding_mean_pool(self, tiny_config, rng):
        model = build_transformer(tiny_config).eval()
        toks = rng.integers(0, 8, size=(1, tiny_config.max_len))
        mask = np.ones((1, tiny_config.max_len), dtype=bool)
        mask[0, 8:] = False
        out1 = model(toks, mask=mask).data
        toks2 = toks.copy()
        toks2[0, 8:] = (toks2[0, 8:] + 1) % 8  # change only masked tokens
        out2 = model(toks2, mask=mask).data
        np.testing.assert_allclose(out1, out2, atol=1e-8)

    def test_encode_returns_pooled_features(self, tiny_config, tokens):
        model = build_fnet(tiny_config).eval()
        feats = model.encode(tokens)
        assert feats.shape == (3, tiny_config.d_hidden)

    def test_state_dict_round_trip(self, tiny_config, tokens):
        a = build_fabnet(tiny_config).eval()
        b = build_fabnet(tiny_config.with_(seed=99)).eval()
        assert not np.allclose(a(tokens).data, b(tokens).data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(tokens).data, b(tokens).data)


class TestHybridTransformer:
    def test_zero_compressed_is_all_attention(self, tiny_config):
        model = build_hybrid_transformer(tiny_config, 0)
        assert all(b.mixing_kind == "attention" for b in model.blocks)

    def test_fully_compressed_is_all_fourier(self, tiny_config):
        model = build_hybrid_transformer(tiny_config, tiny_config.n_total)
        assert all(b.mixing_kind == "fourier" for b in model.blocks)

    def test_compression_starts_from_last_block(self, tiny_config):
        model = build_hybrid_transformer(tiny_config, 1)
        kinds = [b.mixing_kind for b in model.blocks]
        assert kinds == ["attention", "fourier"]

    def test_out_of_range(self, tiny_config):
        with pytest.raises(ValueError, match="out of range"):
            build_hybrid_transformer(tiny_config, tiny_config.n_total + 1)


class TestDualEncoder:
    def test_forward_shape(self, tiny_config, rng):
        model = DualEncoderClassifier(build_fabnet(tiny_config)).eval()
        pairs = rng.integers(0, 8, size=(4, 2, tiny_config.max_len))
        assert model(pairs).shape == (4, tiny_config.n_classes)

    def test_rejects_wrong_shape(self, tiny_config, rng):
        model = DualEncoderClassifier(build_fabnet(tiny_config))
        with pytest.raises(ValueError, match="token pairs"):
            model(rng.integers(0, 8, size=(4, 3, tiny_config.max_len)))

    def test_shared_encoder_weights(self, tiny_config, rng):
        """Swapping identical documents yields features from one tower."""
        model = DualEncoderClassifier(build_fabnet(tiny_config)).eval()
        doc = rng.integers(0, 8, size=(1, tiny_config.max_len))
        pair = np.stack([doc, doc], axis=1)
        out = model(pair)
        assert out.shape == (1, tiny_config.n_classes)
        assert np.isfinite(out.data).all()

    def test_gradients_reach_encoder(self, tiny_config, rng):
        model = DualEncoderClassifier(build_fabnet(tiny_config))
        pairs = rng.integers(0, 8, size=(2, 2, tiny_config.max_len))
        loss = nn.cross_entropy(model(pairs), np.array([0, 1]))
        loss.backward()
        assert model.encoder.token_emb.weight.grad is not None
