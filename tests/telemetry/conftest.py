"""Isolation for telemetry tests: every test gets a clean slate.

The telemetry layer is deliberately process-global (one enabled flag,
one default registry, one span collector), so tests must not leak state
into each other — or into the rest of the suite, which assumes telemetry
is off.
"""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Fresh default registry + empty span collector, flag restored."""
    previous_on = telemetry.STATE.on
    previous_registry = telemetry.set_registry(telemetry.Registry())
    telemetry.clear_spans()
    try:
        yield
    finally:
        telemetry.STATE.on = previous_on
        telemetry.set_registry(previous_registry)
        telemetry.clear_spans()


class FakeClock:
    """Manually advanced clock for deterministic durations."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()
