"""Thread-safety: instruments hammered from threads and pool workers."""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import Registry, counter_inc, use_telemetry


class TestInstrumentHammer:
    def test_shared_counter_exact_under_contention(self):
        reg = Registry()
        counter = reg.counter("hammer_total")
        threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                counter.inc()

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value == threads * per_thread

    def test_histogram_count_exact_under_contention(self):
        reg = Registry()
        hist = reg.histogram("hammer_ms")
        threads, per_thread = 8, 1000

        def work(seed):
            for i in range(per_thread):
                hist.observe(float((seed * per_thread + i) % 50))

        pool = [threading.Thread(target=work, args=(s,)) for s in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert hist.count == threads * per_thread
        assert sum(hist.bucket_counts) == threads * per_thread

    def test_gated_convenience_exact_under_contention(self):
        with use_telemetry(True):
            threads, per_thread = 8, 1000

            def work():
                for _ in range(per_thread):
                    counter_inc("gated_hammer_total")

            pool = [threading.Thread(target=work) for _ in range(threads)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            snap = telemetry.get_registry().snapshot()
        assert snap["gated_hammer_total"]["value"] == threads * per_thread

    def test_get_or_create_race_yields_one_instrument(self):
        reg = Registry()
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            seen.append(reg.counter("raced_total"))

        pool = [threading.Thread(target=work) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert all(inst is seen[0] for inst in seen)


class TestThreadedBackend:
    def test_sharded_gemm_counts_and_parity(self):
        from repro.kernels.backend import ThreadedBackend

        backend = ThreadedBackend(workers=4)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((512, 128))
        b = rng.standard_normal((128, 64))
        with use_telemetry(True):
            out = backend.matmul(a, b, np.empty((512, 64)))
            snap = telemetry.get_registry().snapshot()
        assert np.allclose(out, a @ b)
        # The GEMM either sharded (shards counted) or ran inline on a
        # 1-worker fallback; on a multi-core box with workers=4 it shards.
        assert snap.get("kernels_threaded_shards_total", {}).get("value", 0) > 0
        assert snap["kernels_threaded_occupancy"]["value"] > 0

    def test_pool_workers_record_spans_on_their_own_stacks(self):
        from repro.kernels.backend import ThreadedBackend

        backend = ThreadedBackend(workers=4)
        telemetry.enable()

        def task(i):
            def run():
                with telemetry.span("worker.task", index=i):
                    return i * 2
            return run

        results = backend._run_tasks([task(i) for i in range(8)])
        assert results == [i * 2 for i in range(8)]
        names = [r.name for r in telemetry.span_records()]
        assert names.count("worker.task") == 8
        # Per-thread stacks: none of the concurrent spans became parents
        # of each other.
        tree = telemetry.span_tree()
        assert set(tree) == {("worker.task",)}
        assert tree[("worker.task",)]["count"] == 8

    def test_parity_threaded_vs_serial_with_telemetry(self):
        from repro.kernels.backend import SerialBackend, ThreadedBackend

        rng = np.random.default_rng(1)
        a = rng.standard_normal((128, 64))
        b = rng.standard_normal((64, 32))
        serial = SerialBackend().matmul(a, b, np.empty((128, 32)))
        with use_telemetry(True):
            threaded = ThreadedBackend(workers=4).matmul(
                a, b, np.empty((128, 32)))
        assert np.array_equal(serial, threaded)
