"""Prometheus text-format rendering."""

from repro.telemetry import Registry, render_prometheus, render_sections


def test_counter_and_gauge_lines():
    reg = Registry()
    reg.counter("kernels_hits_total").inc(3)
    reg.gauge("training_tokens_per_s").set(1234.5)
    text = render_prometheus(reg)
    assert "# TYPE kernels_hits_total counter" in text
    assert "kernels_hits_total 3" in text
    assert "# TYPE training_tokens_per_s gauge" in text
    assert "training_tokens_per_s 1234.5" in text


def test_labels_rendered():
    reg = Registry()
    reg.counter("serving_finished_total", reason="length").inc(2)
    assert 'serving_finished_total{reason="length"} 2' in render_prometheus(reg)


def test_histogram_cumulative_buckets():
    reg = Registry()
    h = reg.histogram("serving_ttft_ms", boundaries=(1.0, 10.0))
    for v in (0.5, 5.0, 100.0):
        h.observe(v)
    text = render_prometheus(reg)
    assert '# TYPE serving_ttft_ms histogram' in text
    assert 'serving_ttft_ms_bucket{le="1"} 1' in text
    assert 'serving_ttft_ms_bucket{le="10"} 2' in text  # cumulative
    assert 'serving_ttft_ms_bucket{le="+Inf"} 3' in text
    assert "serving_ttft_ms_sum 105.5" in text
    assert "serving_ttft_ms_count 3" in text


def test_histogram_percentile_gauges():
    reg = Registry()
    h = reg.histogram("serving_ttft_ms")
    for v in range(1, 101):
        h.observe(float(v))
    text = render_prometheus(reg)
    assert "# TYPE serving_ttft_ms_p50 gauge" in text
    assert "serving_ttft_ms_p50 " in text
    assert "serving_ttft_ms_p95 " in text
    assert "serving_ttft_ms_p99 " in text


def test_empty_histogram_percentiles_are_nan():
    reg = Registry()
    reg.histogram("serving_ttft_ms")
    text = render_prometheus(reg)
    assert "serving_ttft_ms_p50 NaN" in text


def test_multiple_registries_in_one_scrape():
    a, b = Registry(), Registry()
    a.counter("a_total").inc()
    b.counter("b_total").inc()
    text = render_prometheus(a, b)
    assert "a_total 1" in text and "b_total 1" in text


def test_render_sections_labels_chunks():
    reg = Registry()
    reg.counter("x_total").inc()
    text = render_sections([("engine", reg)])
    assert text.startswith("# engine\n")
    assert "x_total 1" in text


def test_empty_registry_renders_empty():
    assert render_prometheus(Registry()) == ""
