"""Registry semantics: instruments, labels, gating, determinism."""

import pytest

from repro import telemetry
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    Reservoir,
    counter_inc,
    gauge_set,
    observe,
    use_telemetry,
)


class TestCounter:
    def test_increments_accumulate(self):
        c = Registry().counter("kernels_hits_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Registry().counter("kernels_hits_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)

    def test_snapshot(self):
        c = Registry().counter("kernels_hits_total")
        c.inc(4)
        assert c.snapshot() == {"kind": "counter", "value": 4.0}


class TestGauge:
    def test_set_and_add(self):
        g = Registry().gauge("training_tokens_per_s")
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0


class TestReservoir:
    def test_exact_while_under_capacity(self):
        r = Reservoir(capacity=100)
        for v in range(10):
            r.add(float(v))
        assert sorted(r.values()) == [float(v) for v in range(10)]
        assert r.percentile(0) == 0.0
        assert r.percentile(100) == 9.0
        assert r.percentile(50) == pytest.approx(4.0, abs=1.0)

    def test_bounded_beyond_capacity(self):
        r = Reservoir(capacity=16)
        for v in range(1000):
            r.add(float(v))
        assert len(r.values()) == 16
        assert r.count == 1000

    def test_deterministic_sampling(self):
        def fill():
            r = Reservoir(capacity=8, seed=0)
            for v in range(500):
                r.add(float(v))
            return r.values()

        assert fill() == fill()

    def test_empty_percentile_is_none(self):
        assert Reservoir().percentile(50) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)


class TestHistogram:
    def test_bucket_assignment(self):
        h = Registry().histogram("serving_ttft_ms", boundaries=(1.0, 10.0))
        for v in (0.5, 0.9, 5.0, 100.0):
            h.observe(v)
        # Buckets: <=1, <=10, +Inf
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(106.4)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(26.6)

    def test_percentiles_exact_while_small(self):
        h = Registry().histogram("serving_ttft_ms")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(99) == pytest.approx(99.0, abs=1.0)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Registry().histogram("bad_ms", boundaries=(10.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = Registry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_labels_separate_instruments(self):
        reg = Registry()
        ok = reg.counter("serving_finished_total", reason="length")
        stopped = reg.counter("serving_finished_total", reason="stop")
        assert ok is not stopped
        ok.inc()
        assert stopped.value == 0.0

    def test_label_order_is_canonical(self):
        reg = Registry()
        a = reg.counter("x_total", b="2", a="1")
        b = reg.counter("x_total", a="1", b="2")
        assert a is b

    def test_kind_collision_raises(self):
        reg = Registry()
        reg.counter("name_total")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("name_total")

    def test_snapshot_keys_include_labels(self):
        reg = Registry()
        reg.counter("plain_total").inc()
        reg.counter("labelled_total", mode="fast").inc(2)
        snap = reg.snapshot()
        assert snap["plain_total"]["value"] == 1.0
        assert snap["labelled_total{mode=fast}"]["value"] == 2.0

    def test_injectable_clock(self, fake_clock):
        reg = Registry(clock=fake_clock)
        fake_clock.advance(1.5)
        assert reg.clock() == 1.5

    def test_reset_drops_instruments(self):
        reg = Registry()
        reg.counter("a_total").inc()
        reg.reset()
        assert reg.snapshot() == {}


class TestGatedConveniences:
    def test_disabled_mode_never_touches_registry(self):
        with use_telemetry(False):
            counter_inc("kernels_hits_total")
            gauge_set("training_tokens_per_s", 5.0)
            observe("serving_ttft_ms", 1.0)
        assert telemetry.get_registry().snapshot() == {}

    def test_enabled_mode_records(self):
        with use_telemetry(True):
            counter_inc("kernels_hits_total", amount=3)
            gauge_set("training_tokens_per_s", 5.0)
            observe("serving_ttft_ms", 1.0)
        snap = telemetry.get_registry().snapshot()
        assert snap["kernels_hits_total"]["value"] == 3.0
        assert snap["training_tokens_per_s"]["value"] == 5.0
        assert snap["serving_ttft_ms"]["count"] == 1

    def test_use_telemetry_restores_flag(self):
        telemetry.disable()
        with use_telemetry(True):
            assert telemetry.enabled()
        assert not telemetry.enabled()

    def test_direct_instruments_live_while_disabled(self):
        # Engine-local registries (serving metrics) work without opt-in.
        with use_telemetry(False):
            reg = Registry()
            reg.counter("serving_tokens_total").inc()
            assert reg.snapshot()["serving_tokens_total"]["value"] == 1.0
