"""End-to-end instrumentation: bit-neutrality, serving metrics, CLI."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.models import ModelConfig, build_butterfly_decoder
from repro.serving import SamplingParams, ServingEngine
from repro.serving.metrics import RequestMetrics, ServingMetrics
from repro.training.trainer import TrainResult

TINY = ModelConfig(
    vocab_size=28, n_classes=2, max_len=64, d_hidden=32,
    n_heads=2, r_ffn=2, n_total=2, seed=0,
)


def _decode_tokens(model, prompts, enabled):
    telemetry.STATE.on = enabled
    engine = ServingEngine(model, max_batch_size=4, seed=0)
    for row in range(prompts.shape[0]):
        engine.submit(prompts[row], SamplingParams(
            max_new_tokens=8, temperature=0.8, seed=row,
        ))
    results = engine.run()
    return [tuple(results[rid].tokens) for rid in sorted(results)], engine


class TestBitNeutrality:
    def test_enabled_and_disabled_generate_identical_tokens(self):
        model = build_butterfly_decoder(TINY).eval()
        prompts = np.random.default_rng(0).integers(1, 28, size=(4, 12))
        off_tokens, _ = _decode_tokens(model, prompts, enabled=False)
        on_tokens, _ = _decode_tokens(model, prompts, enabled=True)
        assert off_tokens == on_tokens
        # The enabled run actually recorded something.
        assert telemetry.span_records()
        assert telemetry.get_registry().snapshot()


class TestEngineMetrics:
    def test_metrics_snapshot_has_percentiles(self):
        model = build_butterfly_decoder(TINY).eval()
        prompts = np.random.default_rng(0).integers(1, 28, size=(4, 12))
        telemetry.disable()
        _, engine = _decode_tokens(model, prompts, enabled=False)
        snap = engine.metrics_snapshot()
        agg = snap["aggregate"]
        assert agg["completed"] == 4
        assert agg["p50_ttft_ms"] is not None
        assert agg["p99_ttft_ms"] is not None
        assert agg["p50_latency_ms"] is not None
        # Engine-local instruments are live without the global opt-in.
        assert snap["instruments"]["serving_ttft_ms"]["count"] == 4
        assert "global_instruments" not in snap

    def test_snapshot_includes_global_registry_when_enabled(self):
        model = build_butterfly_decoder(TINY).eval()
        prompts = np.random.default_rng(0).integers(1, 28, size=(4, 12))
        _, engine = _decode_tokens(model, prompts, enabled=True)
        snap = engine.metrics_snapshot()
        assert "global_instruments" in snap

    def test_prometheus_endpoint_exposes_ttft(self):
        model = build_butterfly_decoder(TINY).eval()
        prompts = np.random.default_rng(0).integers(1, 28, size=(4, 12))
        telemetry.disable()
        _, engine = _decode_tokens(model, prompts, enabled=False)
        text = engine.render_prometheus()
        assert "serving_ttft_ms_bucket" in text
        assert "serving_ttft_ms_p50 " in text
        assert "serving_ttft_ms_p99 " in text
        assert "serving_tokens_total" in text


class TestServingMetricsUnit:
    def test_decode_rate_falls_back_for_single_token(self, fake_clock):
        metrics = ServingMetrics(clock=fake_clock)
        metrics.on_submit(0, prompt_tokens=4)
        fake_clock.advance(0.5)          # prefill
        metrics.on_token(0)              # the only token
        fake_clock.advance(0.0)
        metrics.on_finish(0, "length")
        record = metrics.requests[0]
        # No decode span exists; rate is prefill-inclusive, not None.
        assert record.decode_tokens_per_s == pytest.approx(1 / 0.5)

    def test_decode_rate_uses_decode_span_for_multi_token(self, fake_clock):
        metrics = ServingMetrics(clock=fake_clock)
        metrics.on_submit(0, prompt_tokens=4)
        fake_clock.advance(1.0)          # prefill (excluded from rate)
        metrics.on_token(0)
        for _ in range(4):
            fake_clock.advance(0.1)
            metrics.on_token(0)
        metrics.on_finish(0, "length")
        record = metrics.requests[0]
        assert record.decode_tokens_per_s == pytest.approx(4 / 0.4)

    def test_unfinished_request_has_no_rate(self, fake_clock):
        metrics = ServingMetrics(clock=fake_clock)
        metrics.on_submit(0, prompt_tokens=4)
        assert metrics.requests[0].decode_tokens_per_s is None

    def test_step_samples_are_bounded(self, fake_clock):
        metrics = ServingMetrics(clock=fake_clock)
        for i in range(5000):
            metrics.on_step(queue_depth=i % 7, batch_size=i % 4)
        assert metrics.steps == 5000
        assert metrics.queue_depth.count == 5000
        # Bounded reservoir, not an append-forever sample list.
        assert len(metrics.queue_depth._reservoir.values()) <= \
            telemetry.DEFAULT_RESERVOIR

    def test_aggregate_percentiles_from_timeline(self, fake_clock):
        metrics = ServingMetrics(clock=fake_clock)
        for rid, ttft in enumerate((0.010, 0.020, 0.030, 0.200)):
            metrics.on_submit(rid, prompt_tokens=2)
        for rid, ttft in enumerate((0.010, 0.020, 0.030, 0.200)):
            fake_clock.now = ttft
            metrics.on_token(rid)
            metrics.on_finish(rid, "length")
        agg = metrics.aggregate()
        assert agg["p99_ttft_ms"] >= agg["p50_ttft_ms"]
        assert agg["p99_ttft_ms"] == pytest.approx(200.0, rel=0.2)


class TestTrainResultThroughput:
    def test_tokens_per_s(self):
        result = TrainResult(wall_time_s=2.0, train_tokens=4000)
        assert result.tokens_per_s == pytest.approx(2000.0)

    def test_tokens_per_s_undefined_without_timing(self):
        assert TrainResult().tokens_per_s is None
        assert TrainResult(wall_time_s=1.0).tokens_per_s is None


class TestProfileCLI:
    def test_profile_serve_prints_tree_and_writes_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        code = main([
            "profile", "--workload", "serve", "--requests", "2",
            "--max-new-tokens", "4", "--max-batch-size", "2",
            "--d-hidden", "32", "--seq-len", "16",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "serve.step" in out
        assert "span coverage" in out
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        assert "serving" in metrics.read_text() or \
            "kernels" in metrics.read_text()

    def test_profile_restores_disabled_state(self):
        from repro.cli import main

        telemetry.disable()
        assert main([
            "profile", "--workload", "serve", "--requests", "1",
            "--max-new-tokens", "2", "--max-batch-size", "1",
            "--d-hidden", "32", "--seq-len", "16",
        ]) == 0
