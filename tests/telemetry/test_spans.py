"""Span semantics: nesting, exception unwinding, rendering, export."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    Registry,
    chrome_trace_events,
    get_collector,
    render_span_tree,
    span,
    span_records,
    span_tree,
    top_ops,
    use_telemetry,
    write_chrome_trace,
)


@pytest.fixture
def clocked(fake_clock):
    """Enable telemetry with a deterministic default-registry clock."""
    telemetry.set_registry(Registry(clock=fake_clock))
    telemetry.enable()
    return fake_clock


class TestDisabled:
    def test_span_is_shared_noop(self):
        telemetry.disable()
        a = span("serve.step")
        b = span("serve.decode", batch=4)
        assert a is b  # one reusable object, no allocation per call
        with a:
            pass
        assert span_records() == []


class TestNesting:
    def test_parent_child_paths(self, clocked):
        with span("serve.step"):
            clocked.advance(0.1)
            with span("serve.decode"):
                clocked.advance(0.2)
            with span("serve.sample"):
                clocked.advance(0.3)
        tree = span_tree()
        assert tree[("serve.step",)]["count"] == 1
        assert tree[("serve.step",)]["total_s"] == pytest.approx(0.6)
        assert tree[("serve.step", "serve.decode")]["total_s"] == pytest.approx(0.2)
        assert tree[("serve.step", "serve.sample")]["total_s"] == pytest.approx(0.3)
        # self time = total minus direct children
        assert tree[("serve.step",)]["self_s"] == pytest.approx(0.1)

    def test_sibling_spans_aggregate_by_path(self, clocked):
        for _ in range(3):
            with span("kernels.butterfly_apply"):
                clocked.advance(0.5)
        tree = span_tree()
        assert tree[("kernels.butterfly_apply",)]["count"] == 3
        assert tree[("kernels.butterfly_apply",)]["total_s"] == pytest.approx(1.5)

    def test_exception_unwinds_and_tags(self, clocked):
        with pytest.raises(RuntimeError):
            with span("serve.step"):
                with span("serve.decode"):
                    clocked.advance(0.1)
                    raise RuntimeError("boom")
        records = {r.name: r for r in span_records()}
        # Both spans recorded despite the exception, inner tagged.
        assert records["serve.decode"].attrs["error"] == "RuntimeError"
        assert records["serve.decode"].duration == pytest.approx(0.1)
        assert records["serve.step"].attrs["error"] == "RuntimeError"
        # The stack unwound: a new root span must not be mis-parented.
        with span("fresh.root"):
            clocked.advance(0.1)
        assert ("fresh.root",) in span_tree()


class TestRendering:
    def test_tree_renders_depth_first(self, clocked):
        with span("serve.step"):
            with span("serve.decode"):
                with span("kernels.butterfly_apply"):
                    clocked.advance(0.2)
            with span("serve.sample"):
                clocked.advance(0.1)
        lines = render_span_tree().splitlines()
        names = [line.split()[0] for line in lines[1:]]
        # Grandchild immediately follows its parent, not detached at the end.
        assert names == ["serve.step", "serve.decode",
                         "kernels.butterfly_apply", "serve.sample"]

    def test_render_empty(self):
        telemetry.enable()
        assert "no spans" in render_span_tree()

    def test_top_ops_ranked_by_total(self, clocked):
        with span("fast"):
            clocked.advance(0.1)
        for _ in range(2):
            with span("slow"):
                clocked.advance(1.0)
        ranked = top_ops(5)
        assert ranked[0]["name"] == "slow"
        assert ranked[0]["count"] == 2
        assert ranked[0]["total_s"] == pytest.approx(2.0)
        assert ranked[1]["name"] == "fast"


class TestChromeTrace:
    def test_event_format(self, clocked):
        with span("serve.step", batch=4, note="x", skipme=(1, 2)):
            clocked.advance(0.25)
        (event,) = chrome_trace_events()
        assert event["ph"] == "X"
        assert event["name"] == "serve.step"
        assert event["dur"] == pytest.approx(0.25 * 1e6)
        assert event["args"] == {"batch": 4, "note": "x"}  # scalars only

    def test_written_file_loads(self, clocked, tmp_path):
        with span("a"):
            clocked.advance(0.1)
            with span("b"):
                clocked.advance(0.1)
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(path) == path
        payload = json.loads(open(path).read())
        assert len(payload["traceEvents"]) == 2


class TestBounds:
    def test_collector_drops_beyond_capacity(self, clocked):
        collector = get_collector()
        original = collector.max_spans
        collector.max_spans = 4
        try:
            for _ in range(10):
                with span("s"):
                    clocked.advance(0.01)
            assert len(span_records()) == 4
            assert collector.dropped == 6
        finally:
            collector.max_spans = original
