"""Property-based tests (hypothesis) for the butterfly/FFT core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.butterfly import (
    ButterflyMatrix,
    bit_reversal_permutation,
    fft,
    ifft,
    pair_indices,
    stage_halves,
)
from repro.hardware.functional.memory import bank_of, popcount

sizes = st.sampled_from([2, 4, 8, 16, 32, 64])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(n=sizes, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_butterfly_apply_equals_dense(n, seed):
    rng = np.random.default_rng(seed)
    matrix = ButterflyMatrix.random(n, rng)
    x = rng.normal(size=n)
    np.testing.assert_allclose(matrix.apply(x), matrix.dense() @ x, atol=1e-8)


@given(n=sizes, seed=seeds, alpha=st.floats(-3, 3), beta=st.floats(-3, 3))
@settings(max_examples=30, deadline=None)
def test_butterfly_linearity(n, seed, alpha, beta):
    rng = np.random.default_rng(seed)
    matrix = ButterflyMatrix.random(n, rng)
    x, y = rng.normal(size=n), rng.normal(size=n)
    lhs = matrix.apply(alpha * x + beta * y)
    rhs = alpha * matrix.apply(x) + beta * matrix.apply(y)
    np.testing.assert_allclose(lhs, rhs, atol=1e-7)


@given(n=sizes, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_fft_round_trip(n, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-8)


@given(n=sizes, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_fft_matches_numpy(n, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-8)


@given(n=st.sampled_from([2, 4, 8, 16, 32, 64, 128, 256]))
@settings(max_examples=20, deadline=None)
def test_bit_reversal_is_involution(n):
    perm = bit_reversal_permutation(n)
    np.testing.assert_array_equal(perm[perm], np.arange(n))


@given(n=st.sampled_from([4, 8, 16, 32, 64]))
@settings(max_examples=20, deadline=None)
def test_every_stage_pairs_partition_elements(n):
    for half in stage_halves(n):
        pairs = pair_indices(n, half)
        assert sorted(pairs.reshape(-1).tolist()) == list(range(n))
        assert all(b - a == half for a, b in pairs)


@given(
    n=st.sampled_from([16, 32, 64, 128]),
    nbanks=st.sampled_from([2, 4, 8, 16]),
)
@settings(max_examples=30, deadline=None)
def test_butterfly_layout_is_bijective(n, nbanks):
    """Every (bank, column) slot holds exactly one element."""
    if nbanks > n:
        return
    slots = set()
    for element in range(n):
        column = element // nbanks
        bank = bank_of(element, n, nbanks, "butterfly")
        slots.add((bank, column))
    assert len(slots) == n


@given(value=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_popcount_matches_python(value):
    assert popcount(value) == bin(value).count("1")


@given(n=sizes, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_butterfly_composition_associative(n, seed):
    """Applying two butterfly matrices in sequence equals applying the
    product of their dense forms."""
    rng = np.random.default_rng(seed)
    m1 = ButterflyMatrix.random(n, rng)
    m2 = ButterflyMatrix.random(n, rng)
    x = rng.normal(size=n)
    np.testing.assert_allclose(
        m2.apply(m1.apply(x)), (m2.dense() @ m1.dense()) @ x, atol=1e-6
    )
