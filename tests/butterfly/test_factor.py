"""Butterfly factor matrices: structure, apply/dense equivalence."""

import numpy as np
import pytest

from repro.butterfly import (
    ButterflyFactor,
    num_stages,
    pair_indices,
    stage_halves,
)


class TestStageStructure:
    @pytest.mark.parametrize("n,expected", [
        (2, [1]), (4, [1, 2]), (16, [1, 2, 4, 8]), (64, [1, 2, 4, 8, 16, 32]),
    ])
    def test_stage_halves(self, n, expected):
        assert stage_halves(n) == expected

    @pytest.mark.parametrize("n", [3, 5, 6, 12, 100])
    def test_stage_halves_rejects_non_pow2(self, n):
        with pytest.raises(ValueError, match="power of two"):
            stage_halves(n)

    def test_stage_halves_rejects_one(self):
        with pytest.raises(ValueError, match="power of two"):
            stage_halves(1)

    @pytest.mark.parametrize("n", [2, 8, 32, 256])
    def test_num_stages(self, n):
        assert num_stages(n) == int(np.log2(n))

    def test_pair_indices_half1(self):
        pairs = pair_indices(4, 1)
        np.testing.assert_array_equal(pairs, [[0, 1], [2, 3]])

    def test_pair_indices_half2(self):
        pairs = pair_indices(4, 2)
        np.testing.assert_array_equal(pairs, [[0, 2], [1, 3]])

    def test_pair_indices_largest_stage(self):
        pairs = pair_indices(8, 4)
        np.testing.assert_array_equal(pairs, [[0, 4], [1, 5], [2, 6], [3, 7]])

    def test_pair_indices_cover_all_elements_once(self):
        for half in stage_halves(32):
            pairs = pair_indices(32, half)
            flat = pairs.reshape(-1)
            assert sorted(flat) == list(range(32))

    def test_pair_indices_invalid_half(self):
        with pytest.raises(ValueError, match="invalid stage"):
            pair_indices(8, 3)
        with pytest.raises(ValueError, match="invalid stage"):
            pair_indices(8, 8)


class TestButterflyFactor:
    def test_identity_factor_is_identity(self, rng):
        for half in stage_halves(16):
            factor = ButterflyFactor.identity(16, half)
            x = rng.normal(size=16)
            np.testing.assert_allclose(factor.apply(x), x)
            np.testing.assert_allclose(factor.dense(), np.eye(16))

    @pytest.mark.parametrize("n,half", [(8, 1), (8, 2), (8, 4), (32, 8)])
    def test_apply_matches_dense(self, n, half, rng):
        factor = ButterflyFactor.random(n, half, rng)
        x = rng.normal(size=(5, n))
        np.testing.assert_allclose(factor.apply(x), x @ factor.dense().T, atol=1e-12)

    def test_dense_is_block_sparse(self, rng):
        """Each row/column of a factor has exactly two non-zeros."""
        factor = ButterflyFactor.random(16, 4, rng)
        dense = factor.dense()
        assert ((dense != 0).sum(axis=0) == 2).all()
        assert ((dense != 0).sum(axis=1) == 2).all()

    def test_complex_coefficients_supported(self, rng):
        coeffs = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        factor = ButterflyFactor(8, 2, coeffs)
        x = rng.normal(size=8)
        np.testing.assert_allclose(factor.apply(x), factor.dense() @ x, atol=1e-12)

    def test_wrong_coeffs_shape(self):
        with pytest.raises(ValueError, match="coeffs"):
            ButterflyFactor(8, 2, np.zeros((4, 3)))

    def test_invalid_half(self):
        with pytest.raises(ValueError, match="half"):
            ButterflyFactor(8, 3, np.zeros((4, 4)))

    def test_apply_wrong_size(self, rng):
        factor = ButterflyFactor.identity(8, 2)
        with pytest.raises(ValueError, match="last dim"):
            factor.apply(rng.normal(size=7))

    def test_num_multiplies(self):
        factor = ButterflyFactor.identity(16, 4)
        assert factor.num_multiplies(rows=1) == 8 * 4
        assert factor.num_multiplies(rows=10) == 10 * 8 * 4

    def test_random_variance_scale(self, rng):
        """Default init keeps outputs near unit variance through a stage."""
        factor = ButterflyFactor.random(1024, 16, rng)
        x = rng.normal(size=(64, 1024))
        out = factor.apply(x)
        assert 0.7 < out.std() < 1.4
