"""FFT-as-butterfly: correctness against numpy.fft and cost formulas."""

import numpy as np
import pytest

from repro.butterfly import (
    bit_reversal_permutation,
    fft,
    fft2,
    fft2_flops,
    fft_butterfly,
    fft_flops,
    fft_stage_factor,
    fourier_mix,
    ifft,
)


class TestBitReversal:
    def test_size_8(self):
        np.testing.assert_array_equal(
            bit_reversal_permutation(8), [0, 4, 2, 6, 1, 5, 3, 7]
        )

    def test_is_involution(self):
        perm = bit_reversal_permutation(64)
        np.testing.assert_array_equal(perm[perm], np.arange(64))

    def test_is_permutation(self):
        perm = bit_reversal_permutation(32)
        assert sorted(perm) == list(range(32))

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError, match="power of two"):
            bit_reversal_permutation(12)

    def test_size_1(self):
        np.testing.assert_array_equal(bit_reversal_permutation(1), [0])


class TestFFTCorrectness:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256, 1024])
    def test_matches_numpy_real_input(self, n, rng):
        x = rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [4, 32, 128])
    def test_matches_numpy_complex_input(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    def test_batched_rows(self, rng):
        x = rng.normal(size=(5, 16))
        np.testing.assert_allclose(fft(x), np.fft.fft(x, axis=-1), atol=1e-10)

    def test_ifft_inverts(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-10)

    def test_ifft_matches_numpy(self, rng):
        x = rng.normal(size=32) + 1j * rng.normal(size=32)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-10)

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(16)
        x[0] = 1.0
        np.testing.assert_allclose(fft(x), np.ones(16), atol=1e-12)

    def test_parseval(self, rng):
        x = rng.normal(size=128)
        energy_time = (np.abs(x) ** 2).sum()
        energy_freq = (np.abs(fft(x)) ** 2).sum() / 128
        assert energy_time == pytest.approx(energy_freq)


class TestFFT2:
    @pytest.mark.parametrize("shape", [(4, 4), (8, 16), (16, 8), (32, 32)])
    def test_matches_numpy(self, shape, rng):
        x = rng.normal(size=shape)
        np.testing.assert_allclose(fft2(x), np.fft.fft2(x), atol=1e-9)

    def test_fourier_mix_is_real_part(self, rng):
        x = rng.normal(size=(8, 8))
        np.testing.assert_allclose(fourier_mix(x), np.fft.fft2(x).real, atol=1e-9)

    def test_batched(self, rng):
        x = rng.normal(size=(3, 8, 8))
        np.testing.assert_allclose(fft2(x), np.fft.fft2(x, axes=(-2, -1)), atol=1e-9)


class TestFFTStructure:
    def test_stage_factor_twiddle_values(self):
        factor = fft_stage_factor(4, 1)
        a, b, c, d = factor.coeffs
        np.testing.assert_allclose(a, [1.0, 1.0])
        np.testing.assert_allclose(c, [1.0, 1.0])
        np.testing.assert_allclose(b, [1.0, 1.0])  # w^0 for half=1
        np.testing.assert_allclose(d, [-1.0, -1.0])

    def test_stage_factor_unit_magnitude_twiddles(self):
        factor = fft_stage_factor(32, 8)
        np.testing.assert_allclose(np.abs(factor.coeffs[1]), np.ones(16))

    def test_fft_butterfly_dense_equals_dft_with_permutation(self):
        """B * P == F where P is bit reversal and F the DFT matrix."""
        n = 8
        dense = fft_butterfly(n).dense()
        perm = bit_reversal_permutation(n)
        p_matrix = np.eye(n)[perm]
        dft = np.fft.fft(np.eye(n), axis=0)
        np.testing.assert_allclose(dense @ p_matrix, dft, atol=1e-10)

    def test_fft_is_special_butterfly(self):
        """FFT factors use the same (4, n/2) coefficient layout as
        trainable butterflies — the unification the hardware exploits."""
        for factor in fft_butterfly(16).factors:
            assert factor.coeffs.shape == (4, 8)


class TestFFTCosts:
    def test_fft_flops_formula(self):
        assert fft_flops(16) == 4 * 8 * 10
        assert fft_flops(16, rows=3) == 3 * 4 * 8 * 10

    def test_fft2_flops(self):
        assert fft2_flops(8, 16) == fft_flops(16, 8) + fft_flops(8, 16)

    def test_nlogn_scaling(self):
        assert fft_flops(2048) / fft_flops(1024) == pytest.approx(2 * 11 / 10)
