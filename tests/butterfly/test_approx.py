"""Butterfly approximation of dense matrices (expressiveness claims)."""

import numpy as np
import pytest

from repro.butterfly import (
    ButterflyMatrix,
    approximation_error,
    compare_with_truncated_svd,
    fit_butterfly,
    representable_exactly,
)


class TestFitButterfly:
    def test_loss_decreases(self, rng):
        target = rng.normal(size=(8, 8))
        result = fit_butterfly(target, steps=120, rng=rng)
        assert np.mean(result.losses[-10:]) < np.mean(result.losses[:10]) * 0.5

    def test_recovers_identity_well(self, rng):
        result = fit_butterfly(np.eye(8), steps=300, rng=rng)
        assert approximation_error(result.layer, np.eye(8)) < 0.1

    def test_recovers_butterfly_structured_target(self, rng):
        """A target that *is* a butterfly product is fit to low error —
        the universality claim on its home turf."""
        target = ButterflyMatrix.random(8, rng).dense()
        result = fit_butterfly(target, steps=500, lr=0.03, rng=rng)
        assert approximation_error(result.layer, target) < 0.15

    def test_rectangular_targets(self, rng):
        target = rng.normal(size=(4, 8)) * 0.3
        result = fit_butterfly(target, steps=150, rng=rng)
        assert result.layer.in_features == 8
        assert result.layer.out_features == 4
        assert approximation_error(result.layer, target) < 1.0

    def test_rejects_non_matrix(self, rng):
        with pytest.raises(ValueError, match="matrix"):
            fit_butterfly(rng.normal(size=8))

    def test_final_loss_property(self, rng):
        result = fit_butterfly(np.eye(4), steps=10, rng=rng)
        assert result.final_loss == result.losses[-1]


class TestApproximationError:
    def test_zero_for_exact_weight(self, rng):
        from repro.nn import ButterflyLinear
        layer = ButterflyLinear(8, 8, bias=False, rng=rng)
        assert approximation_error(layer, layer.dense_weight()) == pytest.approx(0.0)

    def test_zero_target(self, rng):
        from repro.nn import ButterflyLinear
        layer = ButterflyLinear(4, 4, bias=False, rng=rng)
        assert approximation_error(layer, np.zeros((4, 4))) >= 0.0


class TestRepresentability:
    def test_round_trip(self, rng):
        assert representable_exactly(ButterflyMatrix.random(16, rng))

    def test_identity(self):
        assert representable_exactly(ButterflyMatrix.identity(32))


class TestVsLowRank:
    def test_butterfly_beats_lowrank_on_butterfly_targets(self, rng):
        """On butterfly-structured targets, a parameter-matched truncated
        SVD cannot keep up — the Table II motivation for choosing
        butterfly over low-rank sparsity."""
        target = ButterflyMatrix.random(16, rng).dense()
        fit = fit_butterfly(target, steps=600, lr=0.03, rng=rng)
        report = compare_with_truncated_svd(target, fit)
        assert report["butterfly_error"] < report["lowrank_error"] + 0.05

    def test_report_fields(self, rng):
        fit = fit_butterfly(np.eye(8), steps=20, rng=rng)
        report = compare_with_truncated_svd(np.eye(8), fit, rank=2)
        assert set(report) == {"rank", "butterfly_error", "lowrank_error"}
        assert report["rank"] == 2
