"""ButterflyMatrix: factor products, parameter counts, FLOPs."""

import numpy as np
import pytest

from repro.butterfly import ButterflyFactor, ButterflyMatrix, butterfly_flops, dense_flops


class TestConstruction:
    def test_identity(self, rng):
        matrix = ButterflyMatrix.identity(16)
        x = rng.normal(size=16)
        np.testing.assert_allclose(matrix.apply(x), x)
        np.testing.assert_allclose(matrix.dense(), np.eye(16))

    def test_requires_all_stages_in_order(self):
        factors = [ButterflyFactor.identity(8, h) for h in (1, 4, 2)]
        with pytest.raises(ValueError, match="application order"):
            ButterflyMatrix(factors)

    def test_requires_nonempty(self):
        with pytest.raises(ValueError, match="at least one"):
            ButterflyMatrix([])

    def test_requires_same_size(self):
        factors = [ButterflyFactor.identity(8, 1), ButterflyFactor.identity(4, 2)]
        with pytest.raises(ValueError):
            ButterflyMatrix(factors)

    def test_depth(self):
        assert ButterflyMatrix.identity(64).depth == 6


class TestApplyDenseEquivalence:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 128])
    def test_apply_matches_dense(self, n, rng):
        matrix = ButterflyMatrix.random(n, rng)
        x = rng.normal(size=(3, n))
        np.testing.assert_allclose(matrix.apply(x), x @ matrix.dense().T, atol=1e-9)

    def test_dense_product_order(self, rng):
        """dense() must be B_n @ ... @ B_2 (first factor applied first)."""
        matrix = ButterflyMatrix.random(8, rng)
        manual = np.eye(8)
        for factor in matrix.factors:
            manual = factor.dense() @ manual
        np.testing.assert_allclose(matrix.dense(), manual, atol=1e-12)

    def test_apply_is_linear(self, rng):
        matrix = ButterflyMatrix.random(16, rng)
        x, y = rng.normal(size=16), rng.normal(size=16)
        np.testing.assert_allclose(
            matrix.apply(2.0 * x + 3.0 * y),
            2.0 * matrix.apply(x) + 3.0 * matrix.apply(y),
            atol=1e-10,
        )

    def test_apply_batch_shapes(self, rng):
        matrix = ButterflyMatrix.random(8, rng)
        assert matrix.apply(rng.normal(size=(2, 3, 8))).shape == (2, 3, 8)


class TestCosts:
    def test_num_parameters_is_2nlogn(self):
        assert ButterflyMatrix.identity(16).num_parameters == 2 * 16 * 4
        assert ButterflyMatrix.identity(256).num_parameters == 2 * 256 * 8

    def test_num_multiplies(self):
        matrix = ButterflyMatrix.identity(16)
        assert matrix.num_multiplies(rows=1) == 4 * 8 * 4  # stages * pairs * 4

    def test_butterfly_flops_formula(self):
        assert butterfly_flops(16, rows=1) == 4 * 8 * 6
        assert butterfly_flops(16, rows=5) == 5 * 4 * 8 * 6

    def test_dense_flops_formula(self):
        assert dense_flops(4, 3, rows=2) == 2 * 3 * 7

    def test_butterfly_cheaper_than_dense_for_large_n(self):
        n = 1024
        assert butterfly_flops(n) < dense_flops(n, n) / 10

    def test_complexity_crossover(self):
        """O(n log n) vs O(n^2): the ratio grows with n."""
        ratios = [dense_flops(n, n) / butterfly_flops(n) for n in (16, 64, 256, 1024)]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
