"""Concurrency safety of the kernel-layer caches (plans, scratch, bias).

The threaded backend runs kernels on pool workers, and two serving
engines may legitimately share a process — so the grouped-plan cache,
the per-thread dequant scratch pools and the attention bias cache must
tolerate concurrent callers without corrupting results.  Every test
hammers one cache from many threads and asserts the outputs stay
bit-identical to a single-threaded reference.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import kernels
from repro.kernels import attention as AK
from repro.kernels import grouped as GK
from repro.kernels import quant as QK

N_THREADS = 8
N_CALLS = 12


def _hammer(fn, n_threads=N_THREADS, n_calls=N_CALLS):
    """Run ``fn(thread_idx, call_idx)`` concurrently; re-raise any error."""
    barrier = threading.Barrier(n_threads)

    def worker(t):
        barrier.wait()  # maximize interleaving at the caches
        return [fn(t, c) for c in range(n_calls)]

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(worker, t) for t in range(n_threads)]
        return [f.result() for f in futures]


class TestGroupedPlanCache:
    def test_concurrent_plan_requests_return_one_plan(self):
        GK.get_plan.cache_clear() if hasattr(GK.get_plan, "cache_clear") else None
        plans = _hammer(lambda t, c: GK.get_plan(256, 8))
        flat = [p for row in plans for p in row]
        assert all(p is flat[0] for p in flat)  # one shared immutable plan

    def test_concurrent_butterfly_forward_bit_stable(self, rng):
        n, rows = 128, 8
        halves = kernels.stage_halves(n)
        coeffs = [rng.normal(size=(4, n // 2)) for _ in halves]
        x = rng.normal(size=(rows, n))
        expected, _ = kernels.butterfly_apply(x, coeffs, halves, need_ctx=False)

        def call(t, c):
            y, _ = kernels.butterfly_apply(x, coeffs, halves, need_ctx=False)
            np.testing.assert_array_equal(y, expected)
            return True

        assert all(all(row) for row in _hammer(call))

    def test_concurrent_vjp_bit_stable(self, rng):
        n, rows = 128, 8
        halves = kernels.stage_halves(n)
        coeffs = [rng.normal(size=(4, n // 2)) for _ in halves]
        x = rng.normal(size=(rows, n))
        grad = rng.normal(size=(rows, n))
        _, ctx = kernels.butterfly_apply(x, coeffs, halves)
        gx_ref, gc_ref = kernels.butterfly_apply_vjp(grad, ctx)

        def call(t, c):
            # fresh ctx per call: contexts hold per-call intermediates
            _, local_ctx = kernels.butterfly_apply(x, coeffs, halves)
            gx, gc = kernels.butterfly_apply_vjp(grad, local_ctx)
            np.testing.assert_array_equal(gx, gx_ref)
            for a, b in zip(gc, gc_ref):
                np.testing.assert_array_equal(a, b)
            return True

        assert all(all(row) for row in _hammer(call))


class TestQuantScratchPool:
    @pytest.mark.parametrize("tier", ["int8", "int4", "fp16"])
    def test_concurrent_linear_bit_stable(self, rng, tier):
        w = rng.normal(size=(64, 96))
        x = rng.normal(size=(5, 96)).astype(np.float32)
        if tier == "int8":
            q, s = QK.quantize_per_channel(w)
            run = lambda: QK.quantized_linear(x, q, s)
        elif tier == "int4":
            q, s = QK.quantize_int4_grouped(w)
            run = lambda: QK.int4_linear(x, q, s)
        else:
            wh = QK.quantize_to_half(w)
            run = lambda: QK.half_linear(x, wh)
        expected = run()

        def call(t, c):
            np.testing.assert_array_equal(run(), expected)
            return True

        assert all(all(row) for row in _hammer(call))

    def test_scratch_pools_are_per_thread(self, rng):
        w = rng.normal(size=(32, 64))
        q, s = QK.quantize_per_channel(w)
        x = rng.normal(size=(3, 64)).astype(np.float32)
        pools = {}

        def call(t, c):
            QK.quantized_linear(x, q, s)
            pools[threading.get_ident()] = QK._SCRATCH_TLS.cache
            return True

        _hammer(call, n_threads=4, n_calls=2)
        # distinct threads own distinct pool dicts — no shared buffers
        ids = [id(cache) for cache in pools.values()]
        assert len(set(ids)) == len(ids)

    def test_varied_shapes_respect_eviction_bound(self, rng):
        x32 = rng.normal(size=(2, 32)).astype(np.float32)

        def call(t, c):
            out_f = 16 + 8 * ((t + c) % (QK._SCRATCH_CACHE_MAX + 4))
            w = np.ones((out_f, 32))
            q, s = QK.quantize_per_channel(w)
            QK.quantized_linear(x32, q, s)
            return len(QK._SCRATCH_TLS.cache) <= QK._SCRATCH_CACHE_MAX

        assert all(all(row) for row in _hammer(call))


class TestAttentionBiasCache:
    def test_concurrent_causal_bias_consistent(self):
        AK._BIAS_CACHE.clear()

        def call(t, c):
            seq = 16 + (c % 4) * 16
            bias = AK.causal_bias(seq, seq, np.float32)
            assert bias.shape == (seq, seq)
            # strictly lower-triangular visibility
            assert (bias[np.triu_indices(seq, 1)] != 0).all()
            assert (bias[np.tril_indices(seq)] == 0).all()
            return True

        assert all(all(row) for row in _hammer(call))
        assert len(AK._BIAS_CACHE) <= AK._BIAS_CACHE_MAX

    def test_concurrent_attention_forward_bit_stable(self, rng):
        q = rng.normal(size=(2, 2, 32, 8))
        k = rng.normal(size=(2, 2, 32, 8))
        v = rng.normal(size=(2, 2, 32, 8))
        expected, _ = kernels.attention_forward(q, k, v, causal=True)

        def call(t, c):
            y, _ = kernels.attention_forward(q, k, v, causal=True)
            np.testing.assert_array_equal(y, expected)
            return True

        assert all(all(row) for row in _hammer(call))


class TestBackendUnderConcurrency:
    def test_threaded_backend_from_many_callers(self, rng):
        """Callers on distinct threads sharing one threaded backend."""
        backend = kernels.ThreadedBackend(workers=2)
        w = rng.normal(size=(64, 64))
        q, s = QK.quantize_per_channel(w)
        x = rng.normal(size=(4, 64)).astype(np.float32)
        expected = QK.quantized_linear(x, q, s)

        def call(t, c):
            got = QK.quantized_linear(x, q, s, backend=backend)
            np.testing.assert_array_equal(got, expected)
            return True

        assert all(all(row) for row in _hammer(call, n_threads=4))
