"""Index geometry of butterfly stages: pair-major layout invariants.

These are the closed-form indexing expressions every kernel (and the
hardware S2P banked memory) relies on; the tests pin down the geometry
so a regression here cannot hide behind downstream numeric tolerances.
"""

import numpy as np
import pytest

from repro.kernels import layout as L


class TestPowerOfTwoChecks:
    @pytest.mark.parametrize("n", [2, 4, 64, 1024])
    def test_accepts_powers_of_two(self, n):
        L.check_power_of_two(n)  # no raise

    @pytest.mark.parametrize("n", [0, 1, 3, 6, 12, -8])
    def test_rejects_non_powers(self, n):
        with pytest.raises(ValueError, match="power of two"):
            L.check_power_of_two(n)


class TestStageHalves:
    def test_application_order_is_doubling(self):
        assert L.stage_halves(16) == [1, 2, 4, 8]
        assert L.stage_halves(2) == [1]

    @pytest.mark.parametrize("n", [2, 8, 256])
    def test_num_stages_is_log2(self, n):
        assert L.num_stages(n) == int(np.log2(n))
        assert len(L.stage_halves(n)) == L.num_stages(n)

    def test_check_stage_accepts_every_ladder_stride(self):
        for half in L.stage_halves(64):
            L.check_stage(64, half)

    @pytest.mark.parametrize("half", [0, 64, 3, -1])
    def test_check_stage_rejects_bad_strides(self, half):
        with pytest.raises(ValueError):
            L.check_stage(64, half)

    def test_check_stage_divisible_allows_non_power_sizes(self):
        L.check_stage_divisible(12, 2)  # 12 = 3 blocks of 4: legal
        with pytest.raises(ValueError, match="divide"):
            L.check_stage_divisible(12, 5)


class TestPairIndices:
    @pytest.mark.parametrize("n,half", [(8, 1), (8, 2), (8, 4), (64, 8)])
    def test_pairs_partition_all_elements(self, n, half):
        pairs = L.pair_indices(n, half)
        assert pairs.shape == (n // 2, 2)
        assert sorted(pairs.reshape(-1).tolist()) == list(range(n))

    @pytest.mark.parametrize("n,half", [(8, 1), (8, 2), (16, 4)])
    def test_pair_stride_and_block_structure(self, n, half):
        pairs = L.pair_indices(n, half)
        # partner is always exactly `half` away...
        assert (pairs[:, 1] - pairs[:, 0] == half).all()
        # ...and both elements sit in the same size-2*half block
        assert (pairs[:, 0] // (2 * half) == pairs[:, 1] // (2 * half)).all()

    def test_explicit_small_case(self):
        np.testing.assert_array_equal(
            L.pair_indices(8, 2), [[0, 2], [1, 3], [4, 6], [5, 7]]
        )

    @pytest.mark.parametrize("n,half", [(8, 1), (8, 2), (8, 4), (64, 16)])
    def test_pair_index_of_inverts_pair_indices(self, n, half):
        pairs = L.pair_indices(n, half)
        for col in (0, 1):  # top and bottom elements map to their row
            np.testing.assert_array_equal(
                L.pair_index_of(pairs[:, col], half), np.arange(n // 2)
            )

    def test_pair_index_of_elementwise_on_arrays(self):
        i = np.arange(8).reshape(2, 4)
        p = L.pair_index_of(i, 2)
        assert p.shape == i.shape


class TestBitReversal:
    def test_explicit_n8(self):
        np.testing.assert_array_equal(
            L.bit_reversal_permutation(8), [0, 4, 2, 6, 1, 5, 3, 7]
        )

    @pytest.mark.parametrize("n", [1, 2, 4, 32, 256])
    def test_is_an_involution(self, n):
        perm = L.bit_reversal_permutation(n)
        # bit reversal is its own inverse: applying it twice is identity
        np.testing.assert_array_equal(perm[perm], np.arange(n))

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_is_a_permutation(self, n):
        perm = L.bit_reversal_permutation(n)
        assert sorted(perm.tolist()) == list(range(n))

    def test_matches_fft_recursion_order(self):
        # radix-2 DIT consumes inputs in bit-reversed order; cross-check
        # against numpy by permute-then-butterfly on a size-4 ladder
        n = 16
        perm = L.bit_reversal_permutation(n)
        bits = n.bit_length() - 1
        expected = [int(format(i, f"0{bits}b")[::-1], 2) for i in range(n)]
        np.testing.assert_array_equal(perm, expected)

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            L.bit_reversal_permutation(12)
