"""Machine-local autotuning: precedence, persistence and determinism.

The invariant that matters for CI: without ``REPRO_AUTOTUNE=1`` and
without a machine-local cache file, every lookup resolves to the
committed defaults (or the caller's default) — byte-deterministic, no
timing runs.  Sweeps are opt-in and write only to the (env-overridable)
cache file, never to the repo.
"""

import json

import numpy as np
import pytest

from repro.kernels import autotune as AT


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the machine cache at a temp file and reset all memos."""
    cache = tmp_path / "autotune.json"
    monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(cache))
    monkeypatch.delenv("REPRO_AUTOTUNE", raising=False)
    AT.clear_memo()
    yield cache
    AT.clear_memo()


class TestShapeClass:
    def test_buckets_are_powers_of_two(self):
        assert AT.shape_class(1) == "le256"
        assert AT.shape_class(256) == "le256"
        assert AT.shape_class(257) == "le512"
        assert AT.shape_class(1024) == "le1024"
        assert AT.shape_class(16384) == "le16384"
        assert AT.shape_class(16385) == "gt16384"

    def test_every_size_lands_in_exactly_one_bucket(self):
        for size in (1, 100, 512, 1000, 4096, 100000):
            cls = AT.shape_class(size)
            assert cls.startswith(("le", "gt"))


class TestCachePath:
    def test_env_override_wins(self, isolated_cache):
        assert AT.cache_path() == isolated_cache

    def test_default_is_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUTOTUNE_CACHE", raising=False)
        path = AT.cache_path()
        assert path.name == "autotune.json" and ".cache" in str(path)

    def test_disabled_by_default(self):
        assert not AT.autotune_enabled()


class TestGetTunedPrecedence:
    def test_falls_back_to_caller_default(self):
        got = AT.get_tuned("attention", "gt16384", np.float32, {"block": 96})
        assert got == {"block": 96}  # no committed entry for gt16384

    def test_committed_defaults_beat_caller_default(self):
        got = AT.get_tuned("attention", "le1024", np.float32, {"block": 999})
        assert got["block"] == 128  # the committed, behavior-neutral value

    def test_machine_cache_beats_committed_defaults(self, isolated_cache):
        key = "attention/le1024/float32"
        isolated_cache.write_text(json.dumps({key: {"block": 64}}))
        AT.clear_memo()
        got = AT.get_tuned("attention", "le1024", np.float32, {"block": 128})
        assert got["block"] == 64

    def test_missing_keys_filled_from_default(self, isolated_cache):
        key = "quantized_linear/le512/float32"
        isolated_cache.write_text(json.dumps({key: {"other": 1}}))
        AT.clear_memo()
        got = AT.get_tuned(
            "quantized_linear", "le512", np.float32, {"block_rows": 48}
        )
        assert got["block_rows"] == 48 and got["other"] == 1

    def test_memoized_after_first_lookup(self, isolated_cache):
        AT.get_tuned("attention", "le1024", np.float32, {"block": 128})
        # rewriting the file without clear_memo must not change results
        isolated_cache.write_text(
            json.dumps({"attention/le1024/float32": {"block": 32}})
        )
        got = AT.get_tuned("attention", "le1024", np.float32, {"block": 128})
        assert got["block"] == 128

    def test_corrupt_cache_file_is_ignored(self, isolated_cache):
        isolated_cache.write_text("{not json")
        AT.clear_memo()
        got = AT.get_tuned("attention", "le1024", np.float32, {"block": 128})
        assert got["block"] == 128

    def test_no_sweep_without_env_flag(self, isolated_cache):
        AT.get_tuned("attention", "le256", np.float32, {"block": 128})
        assert not isolated_cache.exists()  # read-only lookup, no timing


class TestCommittedDefaults:
    def test_defaults_file_parses_and_covers_attention(self):
        data = json.loads(AT._DEFAULTS_FILE.read_text())
        attention = {k: v for k, v in data.items() if k.startswith("attention/")}
        assert attention, "committed defaults must cover attention"
        # behavior-neutral: every committed attention block is the
        # kernel's hand-picked DEFAULT_BLOCK, so numerics never shift
        from repro.kernels.attention import DEFAULT_BLOCK

        assert all(v == {"block": DEFAULT_BLOCK} for v in attention.values())

    def test_quantized_linear_defaults_match_heuristic(self):
        # block_rows is execution-only, but the committed values should
        # agree with the in-code heuristic so fresh machines see one
        # consistent story
        from repro.kernels.quant import _block_rows

        data = json.loads(AT._DEFAULTS_FILE.read_text())
        for key, params in data.items():
            if not key.startswith("quantized_linear/"):
                continue
            _, shape_cls, dtype = key.split("/")
            size = int(shape_cls[2:])
            assert params["block_rows"] == _block_rows(
                size, np.dtype(dtype).itemsize
            ), key


class TestSweep:
    def test_sweep_returns_candidate_and_persists(self, isolated_cache):
        got = AT.autotune_sweep("attention", "le256", np.float32)
        assert got["block"] in (64, 128, 256)
        data = json.loads(isolated_cache.read_text())
        assert data["attention/le256/float32"] == got

    def test_sweep_persist_false_leaves_no_file(self, isolated_cache):
        AT.autotune_sweep("attention", "le256", np.float32, persist=False)
        assert not isolated_cache.exists()

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="no sweep registered"):
            AT.autotune_sweep("conv", "le256", np.float32)

    def test_env_flag_triggers_sweep_on_miss(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "1")
        assert AT.autotune_enabled()
        got = AT.get_tuned("attention", "le256", np.float32, {"block": 128})
        assert isolated_cache.exists()
        data = json.loads(isolated_cache.read_text())
        assert data["attention/le256/float32"]["block"] == got["block"]

    def test_threaded_backend_consumes_tuned_workers(self, isolated_cache):
        # a persisted 'workers' sweep must steer ThreadedBackend, not
        # sit as dead configuration
        from repro.kernels import backend as BK

        key = f"workers/{BK.WORKERS_TUNE_CLASS}/float32"
        isolated_cache.write_text(json.dumps({key: {"workers": 3}}))
        AT.clear_memo()
        assert BK.ThreadedBackend().workers == 3

    def test_explicit_and_env_workers_beat_tuned(
        self, isolated_cache, monkeypatch
    ):
        from repro.kernels import backend as BK

        key = f"workers/{BK.WORKERS_TUNE_CLASS}/float32"
        isolated_cache.write_text(json.dumps({key: {"workers": 3}}))
        AT.clear_memo()
        assert BK.ThreadedBackend(workers=7).workers == 7
        monkeypatch.setenv("REPRO_KERNEL_WORKERS", "5")
        assert BK.ThreadedBackend().workers == 5

    def test_swept_block_rows_change_execution_not_results(self, isolated_cache):
        # pin an absurd block_rows via the machine cache; the quantized
        # GEMM must still match the committed-default execution exactly
        from repro.kernels import quant as QK

        rng = np.random.default_rng(0)
        w = rng.normal(size=(48, 512))
        q, s = QK.quantize_per_channel(w)
        x = rng.normal(size=(4, 512)).astype(np.float32)
        baseline = QK.quantized_linear(x, q, s)
        isolated_cache.write_text(
            json.dumps({"quantized_linear/le512/float32": {"block_rows": 5}})
        )
        AT.clear_memo()
        np.testing.assert_array_equal(QK.quantized_linear(x, q, s), baseline)
