"""Golden-parity tests for the fused streaming-softmax attention kernel.

Oracles:

* :func:`repro.kernels.attention_reference` — the one-shot composite
  softmax attention (seed semantics) that the blockwise streaming
  forward must reproduce, in every masking configuration and both
  policy dtypes;
* finite differences — the analytic one-node VJP must match numeric
  gradients for q, k and v (causal / non-causal / padding mask);
* the autograd wrapper :func:`repro.nn.scaled_dot_attention` checked
  through the shared ``gradcheck`` fixture.

``block`` is forced small throughout so every test exercises the
multi-block streaming path, not just the single-block fast case.
"""

import numpy as np
import pytest

from repro import kernels as K
from repro import nn
from repro.kernels import attention as AK
from repro.nn.tensor import Tensor


def _qkv(rng, b=2, h=2, lq=7, lk=7, d=4, dtype=np.float64):
    return (
        rng.normal(size=(b, h, lq, d)).astype(dtype),
        rng.normal(size=(b, h, lk, d)).astype(dtype),
        rng.normal(size=(b, h, lk, d)).astype(dtype),
    )


class TestForwardParity:
    @pytest.mark.parametrize("dtype,atol", [(np.float64, 1e-12), (np.float32, 1e-5)])
    @pytest.mark.parametrize("causal", [False, True])
    @pytest.mark.parametrize("block", [2, 3, 64])
    def test_matches_reference(self, rng, dtype, atol, causal, block):
        q, k, v = _qkv(rng, dtype=dtype)
        out, _ = AK.attention_forward(q, k, v, causal=causal, block=block,
                                      need_ctx=False)
        ref = AK.attention_reference(q, k, v, causal=causal)
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_allclose(out, ref, atol=atol)

    @pytest.mark.parametrize("dtype,atol", [(np.float64, 1e-12), (np.float32, 1e-5)])
    def test_padding_mask(self, rng, dtype, atol):
        q, k, v = _qkv(rng, dtype=dtype)
        mask = rng.random((2, 7)) > 0.4
        mask[:, 0] = True  # keep at least one valid key per row
        out, _ = AK.attention_forward(q, k, v, key_mask=mask, block=3,
                                      need_ctx=False)
        ref = AK.attention_reference(q, k, v, key_mask=mask)
        np.testing.assert_allclose(out, ref, atol=atol)

    def test_masked_keys_get_exactly_zero_weight(self, rng):
        """Perturbing a masked key must not change the output at all."""
        q, k, v = _qkv(rng)
        mask = np.ones((2, 7), dtype=bool)
        mask[:, 5:] = False
        out, _ = AK.attention_forward(q, k, v, key_mask=mask, block=3,
                                      need_ctx=False)
        k2, v2 = k.copy(), v.copy()
        k2[:, :, 5:] += 100.0
        v2[:, :, 5:] -= 100.0
        out2, _ = AK.attention_forward(q, k2, v2, key_mask=mask, block=3,
                                       need_ctx=False)
        np.testing.assert_array_equal(out, out2)

    def test_q_start_matches_per_row_recompute(self, rng):
        """Ragged causal continuation: each row equals its own full attention."""
        b, h, lq, d = 3, 2, 2, 4
        starts = np.array([5, 3, 0])
        lk = int(starts.max()) + lq
        q, k, v = _qkv(rng, b=b, h=h, lq=lq, lk=lk, d=d)
        out, _ = AK.attention_forward(q, k, v, causal=True, q_start=starts,
                                      block=3, need_ctx=False)
        for row, start in enumerate(starts):
            t = int(start) + lq
            ref = AK.attention_reference(
                q[row:row + 1], k[row:row + 1, :, :t], v[row:row + 1, :, :t],
                causal=True,
            )
            np.testing.assert_allclose(out[row], ref[0], atol=1e-12)

    def test_inconsistent_uniform_q_start_rejected(self, rng):
        q, k, v = _qkv(rng, lq=3, lk=8)
        with pytest.raises(ValueError, match="q_start"):
            AK.attention_forward(q, k, v, causal=True,
                                 q_start=np.array([2, 2]), need_ctx=False)

    def test_shape_validation(self, rng):
        q, k, v = _qkv(rng)
        with pytest.raises(ValueError, match="incompatible"):
            AK.attention_forward(q, k[:, :, :, :3], v, need_ctx=False)
        with pytest.raises(ValueError, match="B, H, L, D"):
            AK.attention_forward(q[0], k[0], v[0], need_ctx=False)


class TestBiasCache:
    def test_causal_bias_cached_by_geometry_and_dtype(self):
        a = K.causal_bias(8, 8, np.float64)
        assert K.causal_bias(8, 8, np.float64) is a  # cache hit, no rebuild
        assert K.causal_bias(8, 8, np.float32) is not a
        assert K.causal_bias(8, 8, np.float32).dtype == np.float32

    def test_causal_bias_suffix_convention(self):
        bias = K.causal_bias(2, 5, np.float64)
        fill = K.mask_fill_value(np.float64)
        # query 0 sits at absolute position 3: sees keys 0..3
        np.testing.assert_array_equal(bias[0], [0, 0, 0, 0, fill])
        np.testing.assert_array_equal(bias[1], [0, 0, 0, 0, 0])

    def test_eviction_is_lru_not_fifo(self):
        """A hot entry refreshed by hits must survive cache-cap eviction."""
        AK._BIAS_CACHE.clear()
        hot = K.causal_bias(3, 3, np.float64)
        for total in range(4, 4 + AK._BIAS_CACHE_MAX - 1):
            K.causal_bias(1, total, np.float64)
            K.causal_bias(3, 3, np.float64)  # touch the hot entry
        K.causal_bias(2, 2, np.float64)  # overflows the cap; evicts LRU
        assert K.causal_bias(3, 3, np.float64) is hot

    def test_mask_fill_is_dtype_aware(self):
        for dt in (np.float32, np.float64):
            fill = K.mask_fill_value(dt)
            assert np.isfinite(np.dtype(dt).type(fill))
            assert np.exp(np.dtype(dt).type(fill)) == 0.0


class TestGradients:
    @pytest.mark.parametrize("causal", [False, True])
    @pytest.mark.parametrize("masked", [False, True])
    def test_finite_difference_parity_float64(self, rng, gradcheck, causal, masked):
        q, k, v = _qkv(rng, b=1, h=2, lq=5, lk=5, d=3)
        mask = None
        if masked:
            mask = np.ones((1, 5), dtype=bool)
            mask[:, 3:] = False
        gradcheck(
            lambda qt, kt, vt: nn.scaled_dot_attention(
                qt, kt, vt, causal=causal, key_mask=mask, block=2
            ),
            q, k, v,
        )

    def test_finite_difference_parity_float32(self, rng):
        """float32 VJP vs float64 finite differences of the same function."""
        with K.default_dtype("float32"):
            q, k, v = _qkv(rng, b=1, h=1, lq=4, lk=4, d=3, dtype=np.float32)
            out, ctx = AK.attention_forward(q, k, v, causal=True, block=2)
            assert out.dtype == np.float32
            gq, gk, gv = AK.attention_vjp(np.ones_like(out), ctx)
        q64, k64, v64 = (a.astype(np.float64) for a in (q, k, v))

        def loss(q_, k_, v_):
            o, _ = AK.attention_forward(q_, k_, v_, causal=True, block=2,
                                        need_ctx=False)
            return float(o.sum())

        eps = 1e-4
        for arr, grad, name in ((q64, gq, "q"), (k64, gk, "k"), (v64, gv, "v")):
            flat = arr.reshape(-1)
            idxs = [0, flat.size // 2, flat.size - 1]
            for i in idxs:
                orig = flat[i]
                flat[i] = orig + eps
                hi = loss(q64, k64, v64)
                flat[i] = orig - eps
                lo = loss(q64, k64, v64)
                flat[i] = orig
                fd = (hi - lo) / (2 * eps)
                assert abs(fd - grad.reshape(-1)[i]) < 5e-3, name

    def test_q_start_vjp_matches_finite_difference(self, rng):
        starts = np.array([3, 1])
        q, k, v = _qkv(rng, b=2, h=1, lq=2, lk=5, d=3)
        qt = Tensor(q, requires_grad=True)
        kt = Tensor(k, requires_grad=True)
        vt = Tensor(v, requires_grad=True)
        out = nn.scaled_dot_attention(qt, kt, vt, causal=True, q_start=starts,
                                      block=2)
        (out * out).sum().backward()

        def loss(q_, k_, v_):
            o, _ = AK.attention_forward(q_, k_, v_, causal=True,
                                        q_start=starts, block=2, need_ctx=False)
            return float((o * o).sum())

        eps = 1e-6
        for arr, grad in ((q, qt.grad), (k, kt.grad), (v, vt.grad)):
            flat = arr.reshape(-1)
            for i in (0, flat.size // 3, flat.size - 1):
                orig = flat[i]
                flat[i] = orig + eps
                hi = loss(q, k, v)
                flat[i] = orig - eps
                lo = loss(q, k, v)
                flat[i] = orig
                fd = (hi - lo) / (2 * eps)
                assert abs(fd - grad.reshape(-1)[i]) < 1e-5

    def test_single_graph_node(self, rng):
        """The fused op records exactly one backward node over (q, k, v)."""
        q, k, v = _qkv(rng, b=1, h=1, lq=4, lk=4, d=3)
        qt = Tensor(q, requires_grad=True)
        kt = Tensor(k, requires_grad=True)
        vt = Tensor(v, requires_grad=True)
        out = nn.scaled_dot_attention(qt, kt, vt, causal=True)
        assert out._parents == (qt, kt, vt)

    def test_no_ctx_outside_grad(self, rng):
        q, k, v = _qkv(rng)
        with nn.no_grad():
            out = nn.scaled_dot_attention(Tensor(q), Tensor(k), Tensor(v))
        assert out._parents == ()


class TestDecodeFastPath:
    @pytest.mark.parametrize("dtype,atol", [(np.float64, 1e-12), (np.float32, 1e-5)])
    def test_uniform_lengths(self, rng, dtype, atol):
        b, h, t, d = 3, 2, 6, 4
        k = rng.normal(size=(b, h, t, d)).astype(dtype)
        v = rng.normal(size=(b, h, t, d)).astype(dtype)
        q = rng.normal(size=(b, h, d)).astype(dtype)
        lengths = np.full(b, t - 1)
        out = AK.attention_decode(q, k, v, lengths=lengths)
        ref = AK.attention_reference(q[:, :, None], k, v)[:, :, 0]
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_allclose(out, ref, atol=atol)

    def test_ragged_lengths_match_per_row_truncation(self, rng):
        b, h, d = 3, 2, 4
        lengths = np.array([5, 2, 0])
        t = int(lengths.max()) + 1
        k = rng.normal(size=(b, h, t, d))
        v = rng.normal(size=(b, h, t, d))
        q = rng.normal(size=(b, h, d))
        out = AK.attention_decode(q, k, v, lengths=lengths)
        for row, n in enumerate(lengths):
            ref = AK.attention_reference(
                q[row:row + 1, :, None], k[row:row + 1, :, :n + 1],
                v[row:row + 1, :, :n + 1],
            )
            np.testing.assert_allclose(out[row], ref[0, :, 0], atol=1e-12)

    def test_garbage_in_padded_slots_cannot_poison_softmax(self, rng):
        """Stale values in padded cache slots (finite by the KV cache's
        zeros-born buffer invariant, but arbitrarily large) must not
        reach the softmax max or denominator.  Scores from padded slots
        are overwritten before the row max, so even NaN *key* garbage is
        neutralized; stale value-side entries get weight exactly 0."""
        b, h, d = 2, 2, 4
        lengths = np.array([5, 2])
        t = int(lengths.max()) + 1
        k = rng.normal(size=(b, h, t, d))
        v = rng.normal(size=(b, h, t, d))
        q = rng.normal(size=(b, h, d))
        clean = AK.attention_decode(q, k, v, lengths=lengths)
        k2, v2 = k.copy(), v.copy()
        k2[1, :, 3:-1] = 1e5 * np.sign(q[1, :, None])  # dominates valid scores
        k2[1, :, -1] = np.nan
        v2[1, :, 3:] = 1e30
        poisoned = AK.attention_decode(q, k2, v2, lengths=lengths)
        assert np.isfinite(poisoned).all()
        np.testing.assert_array_equal(clean, poisoned)

    def test_uniform_lengths_with_unsliced_capacity_view(self, rng):
        """A capacity-sized (unsliced) cache view must still mask the
        stale tail, even when every row has the same length."""
        b, h, d, cap = 2, 2, 4, 10
        lengths = np.full(b, 5)
        k = rng.normal(size=(b, h, cap, d))
        v = rng.normal(size=(b, h, cap, d))
        k[:, :, 6:] = 1e5  # stale garbage past the visible prefix
        q = rng.normal(size=(b, h, d))
        full_view = AK.attention_decode(q, k, v, lengths=lengths)
        sliced = AK.attention_decode(q, k[:, :, :6], v[:, :, :6],
                                     lengths=lengths)
        np.testing.assert_allclose(full_view, sliced, atol=1e-12)

    def test_rejects_batched_query_axis(self, rng):
        with pytest.raises(ValueError, match="B, H, D"):
            AK.attention_decode(rng.normal(size=(2, 2, 1, 4)),
                                rng.normal(size=(2, 2, 5, 4)),
                                rng.normal(size=(2, 2, 5, 4)))


class TestExpectedMacs:
    def test_closed_form(self):
        assert K.expected_macs(4, 6, 8) == {
            "qk_macs": 4 * 6 * 8, "sv_macs": 4 * 6 * 8, "softmax_elems": 4 * 6,
        }
