"""Int8 quantization kernels: round-trip, GEMM parity, butterfly parity."""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import quant as QK
from repro.nn import ButterflyLinear


class TestQuantizeRoundTrip:
    def test_scale_recovery_per_channel(self, rng):
        """Each channel's scale covers exactly its own absmax range."""
        magnitudes = np.array([1e-3, 1.0, 50.0, 1e3])
        w = rng.normal(size=(4, 64)) * magnitudes[:, None]
        q, scales = QK.quantize_per_channel(w)
        np.testing.assert_allclose(
            scales, np.abs(w).max(axis=1) / 127.0, rtol=1e-6
        )
        # codes use the full range: the absmax element must map to ±127
        assert all(np.abs(q[c]).max() == 127 for c in range(4))

    def test_round_trip_error_bounded_by_half_step(self, rng):
        """|w - dequant(quant(w))| <= scale/2 per element (absmax calibration)."""
        w = rng.normal(size=(8, 128))
        q, scales = QK.quantize_per_channel(w)
        w_hat = QK.dequantize(q, scales, dtype=np.float64)
        bound = scales.astype(np.float64)[:, None] / 2 + 1e-12
        assert (np.abs(w_hat - w) <= bound).all()

    def test_grid_values_round_trip_exactly(self):
        """Values already on the quantization grid survive bit-exactly."""
        scales = np.array([0.25], dtype=np.float32)
        w = (np.arange(-127, 128, dtype=np.float64) * scales[0])[None, :]
        q, s = QK.quantize_per_channel(w)
        np.testing.assert_array_equal(
            QK.dequantize(q, s, dtype=np.float64), w
        )

    def test_zero_channel_is_exact(self):
        w = np.zeros((2, 16))
        w[1] = 1.0
        q, scales = QK.quantize_per_channel(w)
        assert scales[0] == 1.0  # placeholder scale, codes all zero
        np.testing.assert_array_equal(QK.dequantize(q, scales)[0], 0.0)

    def test_per_channel_beats_per_tensor_on_mixed_magnitudes(self, rng):
        """The small channel keeps precision a per-tensor scale would lose."""
        w = rng.normal(size=(2, 256))
        w[0] *= 1e-3
        w[1] *= 1e3
        q, scales = QK.quantize_per_channel(w)
        rel = np.abs(QK.dequantize(q, scales, np.float64) - w) / np.abs(w).max(axis=1)[:, None]
        assert rel.max() < 1.0 / 127  # both channels at their own resolution

    def test_mse_calibration_never_worse(self, rng):
        """Grid-searched scales win on heavy-tailed channels, never lose.

        Clipping an outlier at shrink ``l`` costs ``((1-l) * absmax)^2``
        once but refines the grid for every other element, so it pays
        off when the channel is long enough — 8192 elements with one
        ~3x-absmax outlier is comfortably past that break-even.
        """
        w = rng.normal(size=(2, 8192))
        w[0, 0] = 12.0  # lone outlier ~3x the Gaussian bulk's absmax
        q_abs, s_abs = QK.quantize_per_channel(w, calibration="absmax")
        q_mse, s_mse = QK.quantize_per_channel(w, calibration="mse")
        # fp32 scale rounding leaves epsilon-level slack on the argmin
        assert QK.quantization_rmse(w, q_mse, s_mse) <= (
            QK.quantization_rmse(w, q_abs, s_abs) * (1 + 1e-6)
        )
        per_channel_abs = np.square(QK.dequantize(q_abs, s_abs, np.float64) - w).mean(axis=1)
        per_channel_mse = np.square(QK.dequantize(q_mse, s_mse, np.float64) - w).mean(axis=1)
        assert per_channel_mse[0] < per_channel_abs[0]  # the outlier channel improved

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            QK.quantize_per_channel(rng.normal(size=8))
        with pytest.raises(ValueError, match="calibration"):
            QK.quantize_per_channel(rng.normal(size=(2, 8)), calibration="entropy")


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
class TestQuantizedLinear:
    def test_blocked_gemm_matches_reference(self, rng, dtype):
        """The cache-blocked kernel computes the unblocked oracle's function."""
        for out_f, in_f in ((48, 32), (300, 128), (64, 520)):
            w = rng.normal(size=(out_f, in_f))
            q, scales = QK.quantize_per_channel(w)
            bias = rng.normal(size=out_f).astype(dtype)
            x = rng.normal(size=(5, in_f)).astype(dtype)
            got = QK.quantized_linear(x, q, scales, bias)
            want = QK.quantized_linear_reference(x, q, scales, bias)
            assert got.dtype == dtype
            np.testing.assert_allclose(got, want, rtol=2e-5, atol=2e-5)

    def test_parity_vs_fp_linear_within_quant_error(self, rng, dtype):
        """|y_int8 - y_fp| obeys the analytic bound 0.5 * s_o * sum|x|."""
        w = rng.normal(size=(96, 64))
        x = rng.normal(size=(7, 64)).astype(dtype)
        q, scales = QK.quantize_per_channel(w)
        y_fp = x.astype(np.float64) @ w.T
        y_q = QK.quantized_linear(x, q, scales).astype(np.float64)
        bound = 0.5 * scales.astype(np.float64) * np.abs(x.astype(np.float64)).sum(axis=1, keepdims=True)
        assert (np.abs(y_q - y_fp) <= bound + 1e-5).all()
        # and the relative error is small in aggregate
        rel = np.abs(y_q - y_fp).max() / np.abs(y_fp).max()
        assert rel < 0.02

    def test_leading_batch_dims(self, rng, dtype):
        w = rng.normal(size=(24, 16))
        q, scales = QK.quantize_per_channel(w)
        x = rng.normal(size=(2, 3, 16)).astype(dtype)
        got = QK.quantized_linear(x, q, scales)
        assert got.shape == (2, 3, 24)
        np.testing.assert_allclose(
            got, QK.quantized_linear_reference(x, q, scales), rtol=2e-5, atol=2e-5
        )

    def test_scratch_cache_reuse_is_consistent(self, rng, dtype):
        """Repeated calls through the cached scratch stay deterministic."""
        w = rng.normal(size=(40, 32))
        q, scales = QK.quantize_per_channel(w)
        x = rng.normal(size=(4, 32)).astype(dtype)
        first = QK.quantized_linear(x, q, scales)
        for _ in range(3):
            np.testing.assert_array_equal(QK.quantized_linear(x, q, scales), first)
        # the pool is per-thread now (threaded-backend safety); this
        # thread's cache still respects the eviction bound
        assert len(QK._SCRATCH_TLS.cache) <= QK._SCRATCH_CACHE_MAX

    def test_rejects_non_int8_weight(self, rng, dtype):
        x = rng.normal(size=(2, 8)).astype(dtype)
        with pytest.raises(TypeError, match="int8"):
            QK.quantized_linear(x, rng.normal(size=(4, 8)), np.ones(4, np.float32))


class TestQuantizedButterfly:
    def test_stage_quantization_shapes_and_channels(self, rng):
        layer = ButterflyLinear(16, 16, rng=rng)
        coeffs = [p.data for p in layer.stage_parameters()]
        qs, scales = QK.quantize_butterfly_stages(coeffs)
        assert len(qs) == len(coeffs)
        for q, s, c in zip(qs, scales, coeffs):
            assert q.shape == c.shape and q.dtype == np.int8
            assert s.shape == (4,) and s.dtype == np.float32  # one per a/b/c/d role

    @pytest.mark.parametrize("n", [16, 256])
    def test_apply_matches_dequantized_reference(self, rng, n):
        """Quantized ladder == reference apply on the dequantized coeffs.

        ``n=256`` with enough rows exercises the fused grouped kernel;
        ``n=16`` the per-stage path (both must agree with the per-stage
        reference to grouped-kernel reassociation tolerance).
        """
        layer = ButterflyLinear(n, n, rng=rng)
        coeffs = [p.data for p in layer.stage_parameters()]
        qs, scales = QK.quantize_butterfly_stages(coeffs)
        x = rng.normal(size=(64, n))
        got = QK.quantized_butterfly_apply(x, qs, scales, layer.halves)
        deq = QK.dequantize_butterfly_stages(qs, scales, dtype=np.float64)
        want = kernels.butterfly_apply_reference(x, deq, layer.halves)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_apply_close_to_fp_ladder(self, rng):
        """End-to-end ladder error stays in the int8 few-percent range."""
        n = 64
        layer = ButterflyLinear(n, n, rng=rng)
        coeffs = [p.data for p in layer.stage_parameters()]
        qs, scales = QK.quantize_butterfly_stages(coeffs)
        x = rng.normal(size=(8, n))
        exact = kernels.butterfly_apply_reference(x, coeffs, layer.halves)
        got = QK.quantized_butterfly_apply(x, qs, scales, layer.halves)
        assert np.abs(got - exact).max() / np.abs(exact).max() < 0.05

    def test_rejects_bad_stage_shape(self, rng):
        with pytest.raises(ValueError, match=r"\(4, n/2\)"):
            QK.quantize_butterfly_stages([rng.normal(size=(2, 8))])
