"""Golden-parity tests for the unified kernel layer.

Three oracles pin the kernels down:

* dense materialization — every apply path must equal multiplying by the
  explicitly materialized matrix;
* ``numpy.fft`` — the FFT twiddle special case must match the library FFT;
* finite differences — the VJP must match numeric gradients.

Both policy dtypes (float64 and float32) are covered, and the hardware
functional engine is cross-checked against the same reference.
"""

import numpy as np
import pytest

from repro import kernels as K


def _dense_ladder(coeffs, n, halves):
    """Dense matrix of a stage ladder: product of stage materializations."""
    mat = np.eye(n)
    for c, h in zip(coeffs, halves):
        mat = K.stage_dense(c, n, h) @ mat
    return mat


def _random_ladder(rng, n, dtype=np.float64):
    halves = K.stage_halves(n)
    coeffs = [
        rng.normal(0.0, 0.7, size=(4, n // 2)).astype(dtype) for _ in halves
    ]
    return coeffs, halves


class TestForwardVsDense:
    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_single_stage_matches_dense(self, rng, n):
        for half in K.stage_halves(n):
            coeffs = rng.normal(size=(4, n // 2))
            x = rng.normal(size=(5, n))
            dense = K.stage_dense(coeffs, n, half)
            np.testing.assert_allclose(
                K.stage_forward(x, coeffs, half), x @ dense.T, atol=1e-10
            )

    @pytest.mark.parametrize("n", [8, 64, 256, 1024])
    def test_full_ladder_matches_dense(self, rng, n):
        coeffs, halves = _random_ladder(rng, n)
        x = rng.normal(size=(64, n))  # large enough to hit the grouped path
        y, _ = K.butterfly_apply(x, coeffs, halves, need_ctx=False)
        dense = _dense_ladder(coeffs, n, halves)
        np.testing.assert_allclose(y, x @ dense.T, atol=1e-8)

    @pytest.mark.parametrize("n", [64, 256])
    def test_float32_matches_float64(self, rng, n):
        coeffs, halves = _random_ladder(rng, n)
        x = rng.normal(size=(64, n))
        y64, _ = K.butterfly_apply(x, coeffs, halves, need_ctx=False)
        y32, _ = K.butterfly_apply(
            x.astype(np.float32),
            [c.astype(np.float32) for c in coeffs],
            halves,
            need_ctx=False,
        )
        assert y32.dtype == np.float32
        np.testing.assert_allclose(y32, y64, rtol=2e-3, atol=2e-3)

    @pytest.mark.parametrize("n", [64, 512])
    def test_grouped_matches_reference(self, rng, n):
        """The fused GEMM path equals the per-stage reference kernel."""
        coeffs, halves = _random_ladder(rng, n)
        rows = max(64, K.MIN_WORK // n)  # enough work to engage the fused path
        x = rng.normal(size=(rows, n))
        y, ctx = K.butterfly_apply(x, coeffs, halves)
        assert ctx is not None and ctx[0] == "grouped"
        np.testing.assert_allclose(
            y, K.butterfly_apply_reference(x, coeffs, halves), atol=1e-9
        )

    def test_small_work_uses_stage_path(self, rng):
        n = 1024
        coeffs, halves = _random_ladder(rng, n)
        x = rng.normal(size=n)  # single vector: below the grouped threshold
        y, ctx = K.butterfly_apply(x, coeffs, halves)
        assert ctx[0] == "stages"
        np.testing.assert_allclose(
            y, K.butterfly_apply_reference(x, coeffs, halves), atol=1e-10
        )

    def test_leading_batch_dims(self, rng):
        n = 64
        coeffs, halves = _random_ladder(rng, n)
        x = rng.normal(size=(4, 8, 9, n))
        y, _ = K.butterfly_apply(x, coeffs, halves, need_ctx=False)
        flat, _ = K.butterfly_apply(x.reshape(-1, n), coeffs, halves,
                                    need_ctx=False)
        np.testing.assert_allclose(y, flat.reshape(x.shape), atol=1e-12)


class TestFFTParity:
    @pytest.mark.parametrize("n", [2, 8, 64, 512])
    def test_fft_matches_numpy(self, rng, n):
        x = rng.normal(size=(3, n)) + 1j * rng.normal(size=(3, n))
        np.testing.assert_allclose(K.fft_forward(x), np.fft.fft(x), atol=1e-8)

    @pytest.mark.parametrize("n", [16, 128])
    def test_fft_stage_coeffs_match_general_kernel(self, rng, n):
        """Twiddle coefficient arrays drive the general kernel to the FFT."""
        x = rng.normal(size=(2, n)) + 1j * rng.normal(size=(2, n))
        halves = K.stage_halves(n)
        coeffs = [K.fft_stage_coeffs(n, h) for h in halves]
        out = x[..., K.bit_reversal_permutation(n)]
        y, _ = K.butterfly_apply(out, coeffs, halves, need_ctx=False)
        np.testing.assert_allclose(y, np.fft.fft(x), atol=1e-8)

    def test_specialized_stage_matches_general(self, rng):
        n, half = 64, 4
        x = rng.normal(size=(5, n)) + 1j * rng.normal(size=(5, n))
        np.testing.assert_allclose(
            K.fft_stage_forward(x, half),
            K.stage_forward(x, K.fft_stage_coeffs(n, half), half),
            atol=1e-12,
        )


def _numeric_grad(f, arr, eps=1e-6):
    grad = np.zeros_like(arr)
    flat, gflat = arr.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestVJPvsFiniteDifferences:
    @pytest.mark.parametrize("n", [8, 16])
    def test_single_stage_vjp(self, rng, n):
        for half in K.stage_halves(n):
            x = rng.normal(size=(3, n))
            coeffs = rng.normal(size=(4, n // 2))
            seed = rng.normal(size=(3, n))
            gx, gc = K.stage_vjp(seed, x, coeffs, half)

            def loss():
                return float((K.stage_forward(x, coeffs, half) * seed).sum())

            np.testing.assert_allclose(gx, _numeric_grad(loss, x), atol=1e-6)
            np.testing.assert_allclose(gc, _numeric_grad(loss, coeffs),
                                       atol=1e-6)

    @pytest.mark.parametrize("n,rows", [(16, 3), (64, 64)])
    def test_full_ladder_vjp(self, rng, n, rows):
        """Covers both the per-stage (n=16) and grouped (n=64) paths."""
        coeffs, halves = _random_ladder(rng, n)
        x = rng.normal(size=(rows, n))
        seed = rng.normal(size=(rows, n))
        y, ctx = K.butterfly_apply(x, coeffs, halves)
        gx, gcs = K.butterfly_apply_vjp(seed, ctx)

        def loss():
            out, _ = K.butterfly_apply(x, coeffs, halves, need_ctx=False)
            return float((out * seed).sum())

        np.testing.assert_allclose(gx, _numeric_grad(loss, x),
                                   atol=5e-5, rtol=1e-5)
        for s in range(len(coeffs)):
            np.testing.assert_allclose(
                gcs[s], _numeric_grad(loss, coeffs[s]), atol=5e-5, rtol=1e-5,
                err_msg=f"stage {s} coefficient gradient",
            )

    def test_float32_vjp_matches_float64(self, rng):
        n, rows = 256, 64
        coeffs, halves = _random_ladder(rng, n)
        x = rng.normal(size=(rows, n))
        seed = rng.normal(size=(rows, n))
        _, ctx64 = K.butterfly_apply(x, coeffs, halves)
        gx64, gcs64 = K.butterfly_apply_vjp(seed, ctx64)
        _, ctx32 = K.butterfly_apply(
            x.astype(np.float32), [c.astype(np.float32) for c in coeffs],
            halves,
        )
        gx32, gcs32 = K.butterfly_apply_vjp(seed.astype(np.float32), ctx32)
        assert gx32.dtype == np.float32
        np.testing.assert_allclose(gx32, gx64, rtol=5e-3, atol=5e-3)
        for a, b in zip(gcs32, gcs64):
            np.testing.assert_allclose(a, b, rtol=5e-3, atol=1e-2)


class TestInterleavedContexts:
    def test_two_layers_interleaved(self, rng):
        """fwd/fwd/bwd/bwd on a shared plan must not cross-contaminate.

        Regression test for scratch-buffer aliasing: saved activations
        must own their memory even when rearrangements degenerate to
        views.
        """
        n, rows = 256, 64
        halves = K.stage_halves(n)
        ca, _ = _random_ladder(rng, n)
        cb, _ = _random_ladder(rng, n)
        xa = rng.normal(size=(rows, n))
        xb = rng.normal(size=(rows, n))
        sa = rng.normal(size=(rows, n))
        sb = rng.normal(size=(rows, n))
        ya, ctxa = K.butterfly_apply(xa, ca, halves)
        yb, ctxb = K.butterfly_apply(xb, cb, halves)
        gxb, gcsb = K.butterfly_apply_vjp(sb, ctxb)
        gxa, gcsa = K.butterfly_apply_vjp(sa, ctxa)
        # solo (non-interleaved) references
        _, ctx = K.butterfly_apply(xa, ca, halves)
        gxa_ref, gcsa_ref = K.butterfly_apply_vjp(sa, ctx)
        np.testing.assert_allclose(gxa, gxa_ref, atol=1e-12)
        for a, b in zip(gcsa, gcsa_ref):
            np.testing.assert_allclose(a, b, atol=1e-12)


class TestHardwareEngineParity:
    def test_engine_verifies_against_kernels(self, rng):
        """The access-accurate engine loop equals the kernel reference."""
        from repro.butterfly import ButterflyMatrix
        from repro.hardware.functional import ButterflyEngine

        engine = ButterflyEngine(pbu=4, verify=True)
        matrix = ButterflyMatrix.random(64, rng)
        x = rng.normal(size=64)
        out = engine.run_butterfly(x, matrix)  # raises if parity breaks
        np.testing.assert_allclose(out, matrix.apply(x), atol=1e-9)
        z = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(engine.run_fft(z), np.fft.fft(z),
                                   atol=1e-8)


class TestLayoutHelpers:
    @pytest.mark.parametrize("n", [4, 32, 256])
    def test_pair_indices_partition(self, n):
        for half in K.stage_halves(n):
            pairs = K.pair_indices(n, half)
            assert pairs.shape == (n // 2, 2)
            assert np.array_equal(np.sort(pairs.reshape(-1)), np.arange(n))
            np.testing.assert_array_equal(pairs[:, 1] - pairs[:, 0], half)
            # pair_index_of inverts pair_indices for both elements
            p = np.arange(n // 2)
            np.testing.assert_array_equal(K.pair_index_of(pairs[:, 0], half), p)
            np.testing.assert_array_equal(K.pair_index_of(pairs[:, 1], half), p)

    @pytest.mark.parametrize("n", [2, 16, 1024])
    def test_bit_reversal_involution(self, n):
        perm = K.bit_reversal_permutation(n)
        assert np.array_equal(perm[perm], np.arange(n))


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert K.get_default_dtype() == np.float64

    def test_scoped_override(self):
        from repro.nn import Tensor

        with K.default_dtype("float32"):
            t = Tensor([1.0, 2.0])
            assert t.dtype == np.float32
        assert Tensor([1.0]).dtype == np.float64

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            K.set_default_dtype(np.int32)

    def test_layer_trains_in_float32(self, rng):
        """A ButterflyLinear training step stays float32 end to end."""
        from repro.nn import ButterflyLinear, Tensor
        from repro.nn.optim import SGD

        with K.default_dtype("float32"):
            layer = ButterflyLinear(64, 64, rng=rng)
            opt = SGD(layer.parameters(), lr=0.01)
            x = Tensor(rng.normal(size=(32, 64)), requires_grad=True)
            out = layer.forward(x)
            assert out.dtype == np.float32
            loss = (out * out).mean()
            loss.backward()
            for p in layer.parameters():
                assert p.grad is not None and p.grad.dtype == np.float32
            opt.step()
            assert layer.stage_parameters()[0].dtype == np.float32
