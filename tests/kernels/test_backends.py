"""Kernel backends: registry semantics, bit parity, fp16/int4 tiers.

Backends are execution strategies only — the threaded backend shards
disjoint output blocks, so every kernel must produce *byte-identical*
results under ``serial`` and ``threaded``.  The storage tiers (fp16,
int4) are lossy by design and are checked against their dense
references with dtype-appropriate tolerances instead.
"""

import threading

import numpy as np
import pytest

from repro import kernels
from repro.kernels import backend as BK
from repro.kernels import quant as QK


@pytest.fixture
def threaded():
    """A threaded backend with a deterministic worker count."""
    return BK.ThreadedBackend(workers=4)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = kernels.available_backends()
        assert "serial" in names and "threaded" in names

    def test_default_is_serial(self):
        assert kernels.get_backend().name == "serial"

    def test_resolve_accepts_name_instance_and_none(self, threaded):
        assert kernels.resolve_backend("serial").name == "serial"
        assert kernels.resolve_backend(threaded) is threaded
        assert kernels.resolve_backend(None) is kernels.get_backend()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_backend("gpu")

    def test_use_backend_scopes_and_restores(self):
        before = kernels.get_backend().name
        with kernels.use_backend("threaded") as active:
            assert active.name == "threaded"
            assert kernels.get_backend().name == "threaded"
        assert kernels.get_backend().name == before

    def test_use_backend_is_thread_local(self):
        seen = {}

        def probe():
            seen["other"] = kernels.get_backend().name

        with kernels.use_backend("threaded"):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
            assert kernels.get_backend().name == "threaded"
        assert seen["other"] == "serial"

    def test_set_backend_round_trip(self):
        previous = kernels.set_backend("threaded")
        try:
            assert kernels.get_backend().name == "threaded"
        finally:
            kernels.set_backend(previous)
        assert kernels.get_backend().name == previous

    def test_register_custom_backend(self):
        class Tagged(BK.SerialBackend):
            name = "tagged"

        kernels.register_backend("tagged", Tagged)
        try:
            assert kernels.resolve_backend("tagged").name == "tagged"
        finally:
            BK._REGISTRY.pop("tagged", None)
            BK._INSTANCES.pop("tagged", None)


class TestThreadedPrimitives:
    def test_matmul_bit_identical_2d(self, rng, threaded):
        a = rng.normal(size=(512, 64))
        b = rng.normal(size=(64, 48))
        out = np.empty((512, 48))
        threaded.matmul(a, b, out)
        np.testing.assert_array_equal(out, a @ b)

    def test_matmul_bit_identical_batched(self, rng, threaded):
        a = rng.normal(size=(8, 64, 32))
        b = rng.normal(size=(8, 32, 64))
        out = np.empty((8, 64, 64))
        threaded.matmul(a, b, out)
        np.testing.assert_array_equal(out, a @ b)

    def test_matmul_broadcast_operand_not_sliced(self, rng, threaded):
        # one shared (k, n) factor against a batched (b, m, k) operand:
        # the factor has no batch axis and must be broadcast, not sliced
        a = rng.normal(size=(16, 128, 32))
        b = rng.normal(size=(32, 24))
        out = np.empty((16, 128, 24))
        threaded.matmul(a, b, out)
        np.testing.assert_array_equal(out, a @ b)

    def test_matmul_square_rows_equal_contraction(self, rng, threaded):
        # regression: square GEMM — the sharded output-row length equals
        # b's contraction length, which the old shape-equality heuristic
        # mistook for a shard axis and K-sliced b (ValueError at runtime)
        a = rng.normal(size=(256, 256))
        b = rng.normal(size=(256, 256))
        out = np.empty((256, 256))
        assert threaded._split_axis(out) == 0  # sharding engages
        threaded.matmul(a, b, out)
        np.testing.assert_array_equal(out, a @ b)

    def test_matmul_3d_rows_equal_weight_dim(self, rng, threaded):
        # regression: (B, T, in) @ (in, out) with T == in — the 2-D
        # weight has no row axis and must never be cut along K
        a = rng.normal(size=(2, 192, 192))
        b = rng.normal(size=(192, 128))
        out = np.empty((2, 192, 128))
        assert threaded._split_axis(out) == 1  # the T (row) axis
        threaded.matmul(a, b, out)
        np.testing.assert_array_equal(out, a @ b)

    def test_matmul_size1_batch_axis_not_sliced(self, rng, threaded):
        # a size-1 batch axis is broadcast across the shard axis
        a = rng.normal(size=(48, 32, 32))
        b = rng.normal(size=(1, 32, 24))
        out = np.empty((48, 32, 24))
        assert threaded._split_axis(out) == 0  # the batch axis
        threaded.matmul(a, b, out)
        np.testing.assert_array_equal(out, a @ b)

    def test_small_matmul_runs_inline(self, rng, threaded):
        a = rng.normal(size=(4, 8))
        b = rng.normal(size=(8, 4))
        out = np.empty((4, 4))
        assert threaded._split_axis(out) is None  # below MIN_PARALLEL_ELEMS
        threaded.matmul(a, b, out)
        np.testing.assert_array_equal(out, a @ b)

    def test_map_preserves_order(self, threaded):
        got = threaded.map(lambda i: i * i, list(range(37)))
        assert got == [i * i for i in range(37)]

    def test_map_single_item_runs_inline(self, threaded):
        tid = threaded.map(lambda _: threading.get_ident(), [0])
        assert tid == [threading.get_ident()]

    def test_nested_map_does_not_deadlock(self, threaded):
        def outer(i):
            return sum(threaded.map(lambda j: i + j, range(4)))

        got = threaded.map(outer, range(8))
        assert got == [sum(i + j for j in range(4)) for i in range(8)]

    def test_map_propagates_exceptions(self, threaded):
        with pytest.raises(RuntimeError, match="boom"):
            threaded.map(
                lambda i: (_ for _ in ()).throw(RuntimeError("boom")), range(4)
            )

    def test_split_ranges_cover_exactly(self):
        for n in (1, 5, 16, 17):
            for parts in (1, 3, 4, 32):
                ranges = BK._split_ranges(n, parts)
                flat = [i for r in ranges for i in r]
                assert flat == list(range(n))
                assert len(ranges) <= max(1, min(parts, n))

    def test_worker_count_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_WORKERS", "3")
        assert BK.ThreadedBackend().workers == 3
        monkeypatch.setenv("REPRO_KERNEL_WORKERS", "junk")
        assert BK.ThreadedBackend().workers >= 1


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
class TestBitParity:
    """Serial and threaded backends must agree byte-for-byte."""

    def test_butterfly_forward_and_vjp(self, rng, dtype, threaded):
        n, rows = 256, 16
        halves = kernels.stage_halves(n)
        coeffs = [rng.normal(size=(4, n // 2)).astype(dtype) for _ in halves]
        x = rng.normal(size=(rows, n)).astype(dtype)
        grad = rng.normal(size=(rows, n)).astype(dtype)
        y_s, ctx_s = kernels.butterfly_apply(x, coeffs, halves)
        y_t, ctx_t = kernels.butterfly_apply(x, coeffs, halves, backend=threaded)
        np.testing.assert_array_equal(y_s, y_t)
        gx_s, gc_s = kernels.butterfly_apply_vjp(grad, ctx_s)
        gx_t, gc_t = kernels.butterfly_apply_vjp(grad, ctx_t, backend=threaded)
        np.testing.assert_array_equal(gx_s, gx_t)
        for a, b in zip(gc_s, gc_t):
            np.testing.assert_array_equal(a, b)

    def test_attention_forward_vjp_decode(self, rng, dtype, threaded):
        b, h, lq, d = 4, 2, 48, 16
        q = rng.normal(size=(b, h, lq, d)).astype(dtype)
        k = rng.normal(size=(b, h, lq, d)).astype(dtype)
        v = rng.normal(size=(b, h, lq, d)).astype(dtype)
        ga = rng.normal(size=(b, h, lq, d)).astype(dtype)
        y_s, ctx_s = kernels.attention_forward(q, k, v, causal=True)
        y_t, ctx_t = kernels.attention_forward(
            q, k, v, causal=True, backend=threaded
        )
        np.testing.assert_array_equal(y_s, y_t)
        for a, b_ in zip(
            kernels.attention_vjp(ga, ctx_s),
            kernels.attention_vjp(ga, ctx_t, backend=threaded),
        ):
            np.testing.assert_array_equal(a, b_)
        dec_s = kernels.attention_decode(q[:, :, -1, :], k, v)
        dec_t = kernels.attention_decode(q[:, :, -1, :], k, v, backend=threaded)
        np.testing.assert_array_equal(dec_s, dec_t)

    def test_quantized_tiers(self, rng, dtype, threaded):
        w = rng.normal(size=(96, 64))
        x = rng.normal(size=(9, 64)).astype(dtype)
        q8, s8 = QK.quantize_per_channel(w)
        np.testing.assert_array_equal(
            QK.quantized_linear(x, q8, s8),
            QK.quantized_linear(x, q8, s8, backend=threaded),
        )
        q4, s4 = QK.quantize_int4_grouped(w)
        np.testing.assert_array_equal(
            QK.int4_linear(x, q4, s4),
            QK.int4_linear(x, q4, s4, backend=threaded),
        )
        wh = QK.quantize_to_half(w)
        np.testing.assert_array_equal(
            QK.half_linear(x, wh),
            QK.half_linear(x, wh, backend=threaded),
        )

    def test_active_backend_scoping_matches_explicit(self, rng, dtype):
        n = 256
        halves = kernels.stage_halves(n)
        coeffs = [rng.normal(size=(4, n // 2)).astype(dtype) for _ in halves]
        x = rng.normal(size=(8, n)).astype(dtype)
        y_serial, _ = kernels.butterfly_apply(x, coeffs, halves, need_ctx=False)
        with kernels.use_backend("threaded"):
            y_scoped, _ = kernels.butterfly_apply(x, coeffs, halves, need_ctx=False)
        np.testing.assert_array_equal(y_serial, y_scoped)


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
class TestHalfTier:
    def test_half_linear_matches_reference(self, rng, dtype):
        w = rng.normal(size=(40, 32))
        wh = QK.quantize_to_half(w)
        x = rng.normal(size=(6, 32)).astype(dtype)
        bias = rng.normal(size=40).astype(dtype)
        got = QK.half_linear(x, wh, bias)
        assert got.dtype == dtype
        np.testing.assert_allclose(
            got, QK.half_linear_reference(x, wh, bias), rtol=2e-5, atol=2e-5
        )

    def test_fp16_activations_stay_fp16(self, rng, dtype):
        del dtype
        w = rng.normal(size=(16, 16))
        x = rng.normal(size=(3, 16)).astype(np.float16)
        got = QK.half_linear(x, QK.quantize_to_half(w))
        assert got.dtype == np.float16  # storage tier end to end

    def test_storage_is_half_precision(self, rng, dtype):
        del dtype
        w = rng.normal(size=(8, 8))
        wh = QK.quantize_to_half(w)
        assert wh.dtype == np.float16 and wh.nbytes == w.nbytes // 4

    def test_half_butterfly_drift_bounded(self, rng, dtype):
        n = 64
        halves = kernels.stage_halves(n)
        coeffs = [rng.normal(size=(4, n // 2)) for _ in halves]
        x = rng.normal(size=(8, n)).astype(dtype)
        exact, _ = kernels.butterfly_apply(x, coeffs, halves, need_ctx=False)
        approx = QK.half_butterfly_apply(
            x, QK.half_butterfly_stages(coeffs), halves
        )
        assert approx.dtype == dtype
        scale = np.abs(exact).max()
        assert np.abs(approx - exact).max() / scale < 5e-3


class TestInt4Tier:
    def test_pack_unpack_round_trip(self, rng):
        w = rng.normal(size=(24, 64))
        packed, scales = QK.quantize_int4_grouped(w)
        assert packed.dtype == np.uint8 and packed.shape == (24, 32)
        assert scales.shape == (24, 64 // QK.INT4_GROUP)
        codes = QK.unpack_int4(packed)
        assert codes.min() >= -QK.Q4MAX and codes.max() <= QK.Q4MAX

    def test_grid_values_round_trip_exactly(self):
        # values already on the 4-bit grid survive the pack/unpack cycle
        scale = 0.5
        codes = np.tile(np.arange(-7, 8, dtype=np.float64), 2)[None, :28]
        w = np.repeat(codes * scale, 2, axis=0)
        packed, scales = QK.quantize_int4_grouped(w, group_size=28)
        np.testing.assert_array_equal(
            QK.dequantize_int4_grouped(packed, scales, dtype=np.float64), w
        )

    def test_round_trip_error_bounded_by_half_step(self, rng):
        w = rng.normal(size=(16, 128))
        packed, scales = QK.quantize_int4_grouped(w)
        w_hat = QK.dequantize_int4_grouped(packed, scales, dtype=np.float64)
        step = np.repeat(
            scales.astype(np.float64), QK.INT4_GROUP, axis=1
        )
        assert (np.abs(w_hat - w) <= step / 2 + 1e-12).all()

    def test_grouping_beats_per_channel_on_mixed_magnitudes(self, rng):
        # a channel whose halves differ 1000x: per-group scales keep the
        # small half at its own resolution, per-channel scales cannot
        w = rng.normal(size=(1, 64))
        w[:, :32] *= 1e-3
        packed, scales = QK.quantize_int4_grouped(w, group_size=32)
        w_hat = QK.dequantize_int4_grouped(packed, scales, dtype=np.float64)
        small = np.abs(w_hat[:, :32] - w[:, :32]).max()
        assert small < np.abs(w[:, :32]).max() / QK.Q4MAX

    def test_int4_linear_matches_reference(self, rng):
        w = rng.normal(size=(48, 64))
        packed, scales = QK.quantize_int4_grouped(w)
        x = rng.normal(size=(7, 64)).astype(np.float32)
        bias = rng.normal(size=48).astype(np.float32)
        got = QK.int4_linear(x, packed, scales, bias)
        assert got.dtype == np.float32
        np.testing.assert_allclose(
            got,
            QK.int4_linear_reference(x, packed, scales, bias),
            rtol=2e-5, atol=2e-5,
        )

    def test_validates_group_size_and_dtype(self, rng):
        w = rng.normal(size=(4, 64))
        with pytest.raises(ValueError, match="group_size"):
            QK.quantize_int4_grouped(w, group_size=3)
        with pytest.raises(ValueError, match="multiple"):
            QK.quantize_int4_grouped(w, group_size=24)
        with pytest.raises(TypeError, match="uint8"):
            QK.int4_linear(
                rng.normal(size=(2, 64)).astype(np.float32),
                rng.normal(size=(4, 32)),
                np.ones((4, 2), np.float32),
            )

    def test_int4_coarser_than_int8(self, rng):
        w = rng.normal(size=(32, 128))
        q8, s8 = QK.quantize_per_channel(w)
        q4, s4 = QK.quantize_int4_grouped(w)
        rmse8 = QK.quantization_rmse(w, q8, s8)
        rmse4 = QK.int4_quantization_rmse(w, q4, s4)
        assert rmse8 < rmse4 < 1.0  # coarser, but bounded
